(* avasim — run a configurable workload against a chosen protocol.

   Examples:
     avasim --protocol ava3 --nodes 5 --duration 3000 --update-rate 0.3
     avasim --protocol mvcc --theta 1.0 --long-query-period 100
     avasim --protocol ava3 --scheme undo-redo --advancement-period 50 --seed 7 *)

open Cmdliner

type protocol = Ava3_p | S2pl_p | Two_version_p | Mvcc_p | Four_version_p

let protocol_conv =
  let parse = function
    | "ava3" -> Ok Ava3_p
    | "s2pl" -> Ok S2pl_p
    | "two-version" | "2v" -> Ok Two_version_p
    | "mvcc" -> Ok Mvcc_p
    | "four-version" | "4v" -> Ok Four_version_p
    | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with
      | Ava3_p -> "ava3"
      | S2pl_p -> "s2pl"
      | Two_version_p -> "two-version"
      | Mvcc_p -> "mvcc"
      | Four_version_p -> "four-version")
  in
  Arg.conv (parse, print)

let scheme_conv =
  let parse = function
    | "no-undo" -> Ok Wal.Scheme.No_undo
    | "undo-redo" -> Ok Wal.Scheme.Undo_redo
    | s -> Error (`Msg (Printf.sprintf "unknown scheme %S" s))
  in
  let print ppf k = Format.pp_print_string ppf (Wal.Scheme.kind_name k) in
  Arg.conv (parse, print)

let run protocol scheme nodes duration seed update_rate query_rate theta
    keys_per_node advancement_period long_query_period long_query_reads
    remote_fraction eager piggyback use_tree verbose =
  let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
  let ks = Workload.Keyspace.create ~nodes ~keys_per_node ~theta in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Workload.Driver.default_spec with
      duration;
      update_rate;
      query_rate;
      remote_fraction;
      long_query_period;
      long_query_reads;
    }
  in
  let preload load db =
    for n = 0 to nodes - 1 do
      load db ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
    done
  in
  let go (type db) (module Db : Workload.Db_intf.DB with type t = db) (db : db)
      ~(extra : unit -> (string * float) list) =
    let report = Workload.Driver.run (module Db) db ~engine ~rng ~keyspace:ks ~spec in
    Format.printf "protocol: %s, %d nodes, duration %.0f, seed %d@." Db.name
      nodes duration seed;
    Format.printf "%a@." Workload.Driver.pp_report report;
    Format.printf "max versions of any item: %d@." (Db.max_versions_ever db);
    if verbose then
      List.iter (fun (k, v) -> Format.printf "  %-20s %.1f@." k v) (extra ())
  in
  match protocol with
  | Ava3_p ->
      let config =
        {
          Ava3.Config.default with
          scheme;
          eager_counter_handoff = eager;
          piggyback_version = piggyback;
        }
      in
      let db =
        Baseline.Ava3_db.create ~engine ~config ~advancement_period
          ~advancement_until:duration ~use_tree ~nodes ()
      in
      preload Baseline.Ava3_db.load db;
      go (module Baseline.Ava3_db) db ~extra:(fun () ->
          Baseline.Ava3_db.extra_stats db);
      (match Ava3.Cluster.check_invariants (Baseline.Ava3_db.cluster db) with
      | [] -> Format.printf "invariants: OK@."
      | vs -> List.iter (Format.printf "invariant violation: %s@.") vs)
  | S2pl_p ->
      let db = Baseline.S2pl.create ~engine ~nodes () in
      preload Baseline.S2pl.load db;
      go (module Baseline.S2pl) db ~extra:(fun () -> Baseline.S2pl.extra_stats db)
  | Two_version_p ->
      let db = Baseline.Two_version.create ~engine ~nodes () in
      preload Baseline.Two_version.load db;
      go
        (module Baseline.Two_version)
        db
        ~extra:(fun () -> Baseline.Two_version.extra_stats db)
  | Mvcc_p ->
      let db = Baseline.Mvcc.create ~engine ~nodes () in
      preload Baseline.Mvcc.load db;
      go (module Baseline.Mvcc) db ~extra:(fun () -> Baseline.Mvcc.extra_stats db)
  | Four_version_p ->
      let db =
        Baseline.Four_version.create ~engine ~advancement_period
          ~advancement_until:duration ~nodes ()
      in
      preload Baseline.Four_version.load db;
      go
        (module Baseline.Four_version)
        db
        ~extra:(fun () -> Baseline.Four_version.extra_stats db)

let cmd =
  let protocol =
    Arg.(
      value
      & opt protocol_conv Ava3_p
      & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
          ~doc:"Protocol: ava3, s2pl, two-version, mvcc, four-version.")
  in
  let scheme =
    Arg.(
      value
      & opt scheme_conv Wal.Scheme.No_undo
      & info [ "scheme" ] ~docv:"SCHEME"
          ~doc:"Recovery scheme for ava3: no-undo or undo-redo.")
  in
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~doc:"Number of sites.")
  in
  let duration =
    Arg.(value & opt float 2000.0 & info [ "d"; "duration" ] ~doc:"Virtual run time.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let update_rate =
    Arg.(
      value & opt float 0.25
      & info [ "update-rate" ] ~doc:"Mean update transactions per time unit.")
  in
  let query_rate =
    Arg.(
      value & opt float 0.15
      & info [ "query-rate" ] ~doc:"Mean queries per time unit.")
  in
  let theta =
    Arg.(value & opt float 0.8 & info [ "theta" ] ~doc:"Zipf skew of key access.")
  in
  let keys_per_node =
    Arg.(value & opt int 80 & info [ "keys" ] ~doc:"Data items per node.")
  in
  let advancement_period =
    Arg.(
      value & opt float 100.0
      & info [ "advancement-period" ]
          ~doc:"Version advancement period (ava3/four-version).")
  in
  let long_query_period =
    Arg.(
      value & opt float 0.0
      & info [ "long-query-period" ]
          ~doc:"Period of long decision-support queries (0 = none).")
  in
  let long_query_reads =
    Arg.(
      value & opt int 50
      & info [ "long-query-reads" ] ~doc:"Reads per long query.")
  in
  let remote_fraction =
    Arg.(
      value & opt float 0.3
      & info [ "remote-fraction" ]
          ~doc:"Probability an update op touches a non-root node.")
  in
  let eager =
    Arg.(
      value & flag
      & info [ "eager-handoff" ] ~doc:"Enable the §8 eager counter hand-off.")
  in
  let piggyback =
    Arg.(
      value & flag
      & info [ "piggyback" ] ~doc:"Enable §10 version piggybacking.")
  in
  let use_tree =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:"Execute ava3 updates through the R*-style tree executor \
                (concurrent subtransactions).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print protocol counters.")
  in
  let term =
    Term.(
      const run $ protocol $ scheme $ nodes $ duration $ seed $ update_rate
      $ query_rate $ theta $ keys_per_node $ advancement_period
      $ long_query_period $ long_query_reads $ remote_fraction $ eager
      $ piggyback $ use_tree $ verbose)
  in
  Cmd.v
    (Cmd.info "avasim" ~version:"1.0"
       ~doc:"Simulate workloads on the AVA3 protocol and its baselines")
    term

let () = exit (Cmd.eval cmd)
