(* Measure and print the paper's Figure 1 version-advancement time diagram.
   Pass --eager to enable the §8 eager counter hand-off.
   Exit status 1 if any bound check fails. *)

let () =
  let eager = Array.length Sys.argv > 1 && Sys.argv.(1) = "--eager" in
  let r = Dbsim.Figure1.run ~eager_handoff:eager () in
  print_string (Dbsim.Figure1.render r);
  match r.Dbsim.Figure1.violations with
  | [] -> print_endline "all Figure 1 checks passed"
  | vs ->
      List.iter (Printf.printf "VIOLATION: %s\n") vs;
      exit 1
