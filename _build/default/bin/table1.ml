(* Replay the paper's Table 1 example execution and print it.
   Exit status 1 if any check against the paper's behaviour fails. *)

let () =
  let scheme =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "--undo-redo" then
      Wal.Scheme.Undo_redo
    else Wal.Scheme.No_undo
  in
  let r = Dbsim.Table1.run ~scheme () in
  print_string (Dbsim.Table1.render r);
  match r.Dbsim.Table1.violations with
  | [] -> print_endline "\nall Table 1 checks passed"
  | vs ->
      List.iter (Printf.printf "VIOLATION: %s\n") vs;
      exit 1
