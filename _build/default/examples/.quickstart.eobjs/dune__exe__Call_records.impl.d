examples/call_records.ml: Ava3 List Net Option Printf Sim Workload
