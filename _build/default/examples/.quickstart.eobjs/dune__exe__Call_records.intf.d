examples/call_records.mli:
