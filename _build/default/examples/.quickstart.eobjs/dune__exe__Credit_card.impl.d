examples/credit_card.ml: Baseline Driver Histogram List Printf Sim Workload
