examples/credit_card.mli:
