examples/manual_versioning.ml: Ava3 Hashtbl List Printf Sim Workload
