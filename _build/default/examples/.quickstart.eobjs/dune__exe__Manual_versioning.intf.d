examples/manual_versioning.mli:
