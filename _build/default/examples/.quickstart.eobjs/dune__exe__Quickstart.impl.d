examples/quickstart.ml: Ava3 Format List Option Printf Sim
