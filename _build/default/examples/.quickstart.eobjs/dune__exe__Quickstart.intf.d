examples/quickstart.mli:
