examples/staleness_control.ml: Ava3 Baseline List Option Printf Sim Workload
