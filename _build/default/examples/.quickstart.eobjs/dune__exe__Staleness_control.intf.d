examples/staleness_control.mli:
