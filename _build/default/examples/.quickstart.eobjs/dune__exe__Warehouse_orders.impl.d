examples/warehouse_orders.ml: Ava3 List Net Option Printf Sim Workload
