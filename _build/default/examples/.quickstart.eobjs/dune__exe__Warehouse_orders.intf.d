examples/warehouse_orders.mli:
