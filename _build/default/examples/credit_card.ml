(* Credit-card processing — the paper's second motivating application.

   Authorizations are short, latency-critical update transactions; fraud
   analytics are long scans over many accounts.  The example runs the same
   workload on AVA3 and on the unbounded-MVCC baseline and contrasts the
   paper's trade-off (§9):

   - both decouple the analytics scan from authorizations,
   - MVCC analytics read the freshest data but version chains grow behind
     the long scan,
   - AVA3 reads a slightly stale snapshot but never keeps more than three
     versions of any account.

   Run with: dune exec examples/credit_card.exe *)

let nodes = 3
let accounts_per_node = 60
let run_for = 3000.0

let account_key n a = Printf.sprintf "acct-%d-%03d" n a

let spec =
  {
    Workload.Driver.default_spec with
    duration = run_for;
    update_rate = 0.4;
    (* authorizations *)
    query_rate = 0.05;
    (* balance checks *)
    ops_per_update = (1, 3);
    reads_per_query = (1, 3);
    remote_fraction = 0.2;
    long_query_period = 250.0;
    (* fraud analytics: scan 120 accounts *)
    long_query_reads = 120;
  }

let run_protocol (type db) name (module Db : Workload.Db_intf.DB with type t = db)
    (make : Sim.Engine.t -> db)
    (load : db -> node:int -> (string * int) list -> unit) =
  let engine = Sim.Engine.create ~seed:1234L ~trace:false () in
  let db = make engine in
  let ks =
    Workload.Keyspace.create ~nodes ~keys_per_node:accounts_per_node ~theta:0.8
  in
  for n = 0 to nodes - 1 do
    load db ~node:n
      (List.init accounts_per_node (fun a -> (account_key n a, 1000)))
  done;
  (* The generated keyspace uses its own names; preload those too. *)
  for n = 0 to nodes - 1 do
    load db ~node:n
      (List.map (fun k -> (k, 1000)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let report = Workload.Driver.run (module Db) db ~engine ~rng ~keyspace:ks ~spec in
  let open Workload in
  Printf.printf
    "%-16s auth p95 %6.2f | analytics p95 %7.2f (%d failed) | staleness mean      %6.1f | max versions %2d\n"
    name
    (Histogram.percentile report.Driver.update_latency 0.95)
    (Histogram.percentile report.Driver.long_query_latency 0.95)
    report.Driver.queries_failed
    (Histogram.mean report.Driver.staleness)
    (Db.max_versions_ever db);
  report

let () =
  Printf.printf
    "credit-card processing: authorizations + fraud analytics (%d nodes, %.0f \
     time units)\n\n"
    nodes run_for;
  let _ =
    run_protocol "ava3"
      (module Baseline.Ava3_db)
      (fun engine ->
        Baseline.Ava3_db.create ~engine ~advancement_period:100.0
          ~advancement_until:run_for ~nodes ())
      Baseline.Ava3_db.load
  in
  let _ =
    run_protocol "mvcc-unbounded"
      (module Baseline.Mvcc)
      (fun engine -> Baseline.Mvcc.create ~engine ~nodes ())
      Baseline.Mvcc.load
  in
  let _ =
    run_protocol "s2pl"
      (module Baseline.S2pl)
      (fun engine -> Baseline.S2pl.create ~engine ~nodes ())
      Baseline.S2pl.load
  in
  print_newline ();
  print_endline
    "reading guide: AVA3 and MVCC both keep authorizations fast while the";
  print_endline
    "fraud scan runs; S2PL's scan blocks behind writers (and vice versa).";
  print_endline
    "MVCC grows version chains behind the scan; AVA3 caps them at three at";
  print_endline "the price of analytics reading a slightly stale snapshot."
