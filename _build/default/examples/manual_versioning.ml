(* Manual versioning vs AVA3 — the paper's §1.1 motivation.

   The status quo the paper describes: the data lives in two copies, one for
   operations support and one for read-only customer queries; periodically
   the accumulated updates are flushed to the read-only copy, and *access to
   the read-only copy is blocked while the flush runs*.

   This example implements that manual scheme directly (two stores + a
   blocking flush) and runs the same update/query workload against it and
   against AVA3.  It reports what the paper promises AVA3 removes: the
   query-visible blocked time, without giving up freshness (the flush period
   and the advancement period are the same).

   Run with: dune exec examples/manual_versioning.exe *)

let duration = 3000.0
let flush_period = 200.0
let n_keys = 200
let key i = Printf.sprintf "k%d" (i mod n_keys)

(* --- The manual scheme: one node, two copies, blocking flush. --- *)

module Manual = struct
  type t = {
    engine : Sim.Engine.t;
    ops_copy : (string, int) Hashtbl.t;  (** operations support copy *)
    read_copy : (string, int) Hashtbl.t;  (** customer query copy *)
    mutable flushing : bool;
    flush_done : Sim.Condition.t;
    mutable blocked_queries : int;
    mutable blocked_time : float;
    mutable flushes : int;
    per_item_flush_cost : float;
  }

  let create ~engine =
    {
      engine;
      ops_copy = Hashtbl.create 256;
      read_copy = Hashtbl.create 256;
      flushing = false;
      flush_done = Sim.Condition.create ();
      blocked_queries = 0;
      blocked_time = 0.0;
      flushes = 0;
      per_item_flush_cost = 0.05;
    }

  let update t k v = Hashtbl.replace t.ops_copy k v

  (* Queries read the read-only copy — but must wait out a running flush. *)
  let query t k =
    if t.flushing then begin
      let t0 = Sim.Engine.now t.engine in
      t.blocked_queries <- t.blocked_queries + 1;
      Sim.Condition.await_until t.flush_done ~pred:(fun () -> not t.flushing);
      t.blocked_time <- t.blocked_time +. (Sim.Engine.now t.engine -. t0)
    end;
    Hashtbl.find_opt t.read_copy k

  let flush t =
    t.flushing <- true;
    t.flushes <- t.flushes + 1;
    (* Copy every accumulated update; queries stay blocked throughout. *)
    let items = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.ops_copy [] in
    Sim.Engine.sleep (float_of_int (List.length items) *. t.per_item_flush_cost);
    List.iter (fun (k, v) -> Hashtbl.replace t.read_copy k v) items;
    t.flushing <- false;
    Sim.Condition.broadcast t.flush_done
end

let () =
  (* ---- Manual scheme ---- *)
  let engine = Sim.Engine.create ~seed:88L ~trace:false () in
  let m = Manual.create ~engine in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  for i = 0 to n_keys - 1 do
    Hashtbl.replace m.Manual.read_copy (key i) 0;
    Hashtbl.replace m.Manual.ops_copy (key i) 0
  done;
  let queries = ref 0 in
  let rec updates at =
    if at < duration then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          Manual.update m (key (Sim.Rng.int rng n_keys)) (Sim.Rng.int rng 1000));
      updates (at +. Sim.Rng.exponential rng ~mean:2.0)
    end
  in
  updates 1.0;
  let rec qs at =
    if at < duration then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          ignore (Manual.query m (key (Sim.Rng.int rng n_keys)));
          incr queries);
      qs (at +. Sim.Rng.exponential rng ~mean:4.0)
    end
  in
  qs 2.0;
  let rec flushes at =
    if at < duration then begin
      Sim.Engine.schedule engine ~delay:at (fun () -> Manual.flush m);
      flushes (at +. flush_period)
    end
  in
  flushes flush_period;
  Sim.Engine.run engine;
  Printf.printf "manual two-copy versioning (flush every %.0f):\n" flush_period;
  Printf.printf "  flushes: %d; queries: %d\n" m.Manual.flushes !queries;
  Printf.printf "  queries blocked by flushes: %d (total blocked time %.1f)\n\n"
    m.Manual.blocked_queries m.Manual.blocked_time;

  (* ---- AVA3, same workload shape ---- *)
  let engine2 = Sim.Engine.create ~seed:88L ~trace:false () in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine:engine2 ~nodes:1 () in
  Ava3.Cluster.load db ~node:0 (List.init n_keys (fun i -> (key i, 0)));
  Ava3.Cluster.start_periodic_advancement db ~coordinator:0 ~period:flush_period
    ~until:duration;
  let rng2 = Sim.Rng.split (Sim.Engine.rng engine2) in
  let query_latency = Workload.Histogram.create () in
  let rec updates2 at =
    if at < duration then begin
      Sim.Engine.schedule engine2 ~delay:at (fun () ->
          ignore
            (Ava3.Cluster.run_update_with_retry db ~root:0
               ~ops:
                 [
                   Ava3.Update_exec.Write
                     {
                       node = 0;
                       key = key (Sim.Rng.int rng2 n_keys);
                       value = Sim.Rng.int rng2 1000;
                     };
                 ]
               ()));
      updates2 (at +. Sim.Rng.exponential rng2 ~mean:2.0)
    end
  in
  updates2 1.0;
  let queries2 = ref 0 in
  let rec qs2 at =
    if at < duration then begin
      Sim.Engine.schedule engine2 ~delay:at (fun () ->
          let q =
            Ava3.Cluster.run_query db ~root:0
              ~reads:[ (0, key (Sim.Rng.int rng2 n_keys)) ]
          in
          Workload.Histogram.add query_latency
            (q.Ava3.Query_exec.finished_at -. q.Ava3.Query_exec.started_at);
          incr queries2);
      qs2 (at +. Sim.Rng.exponential rng2 ~mean:4.0)
    end
  in
  qs2 2.0;
  Sim.Engine.run engine2;
  let stats = Ava3.Cluster.stats db in
  Printf.printf "ava3 (advancement every %.0f):\n" flush_period;
  Printf.printf "  advancements: %d; queries: %d\n" stats.Ava3.Cluster.advancements
    !queries2;
  Printf.printf "  query latency: %s\n" (Workload.Histogram.summary query_latency);
  Printf.printf
    "  queries blocked by version management: 0 — advancement is asynchronous\n";
  Printf.printf "  space: at most %d versions per item (vs 2 full copies)\n"
    stats.Ava3.Cluster.max_versions_ever
