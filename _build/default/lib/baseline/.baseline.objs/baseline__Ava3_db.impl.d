lib/baseline/ava3_db.ml: Ava3 Hashtbl List Net Option Sim Workload
