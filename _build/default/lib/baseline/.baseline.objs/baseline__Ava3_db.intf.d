lib/baseline/ava3_db.mli: Ava3 Net Sim Workload
