lib/baseline/common.ml: Sim Workload
