lib/baseline/common.mli: Workload
