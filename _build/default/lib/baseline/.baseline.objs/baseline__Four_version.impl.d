lib/baseline/four_version.ml: Ava3 List Net Sim Wal Workload
