lib/baseline/four_version.mli: Ava3 Net Sim Wal Workload
