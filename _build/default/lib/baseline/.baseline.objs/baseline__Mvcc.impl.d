lib/baseline/mvcc.ml: Array Common Hashtbl List Lockmgr Net Sim Vstore Workload
