lib/baseline/mvcc.mli: Net Sim Workload
