lib/baseline/s2pl.ml: Array Common Hashtbl List Lockmgr Net Sim Workload
