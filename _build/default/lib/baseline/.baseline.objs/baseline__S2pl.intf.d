lib/baseline/s2pl.mli: Net Sim Workload
