lib/baseline/two_version.ml: Array Common Hashtbl List Lockmgr Net Sim Workload
