lib/baseline/two_version.mli: Net Sim Workload
