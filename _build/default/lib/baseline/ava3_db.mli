(** {!Workload.Db_intf.DB} adapter for the AVA3 cluster, so the protocol
    under study runs the exact same generated workloads as the baselines.

    Version advancement is driven by a periodic process (configured at
    creation); query staleness comes from the cluster's freeze-time
    bookkeeping. *)

type t

val create :
  engine:Sim.Engine.t ->
  ?config:Ava3.Config.t ->
  ?latency:Net.Latency.t ->
  ?advancement_period:float ->
  ?advancement_until:float ->
  ?use_tree:bool ->
  nodes:int ->
  unit ->
  t
(** [advancement_period] (default 100.0) drives periodic advancement from
    node 0 until [advancement_until] (default 10_000.0).  Pass
    [advancement_period = 0.] for manual advancement only.

    [use_tree] (default false) executes update transactions through the
    R*-style tree executor ({!Ava3.Tree_txn}) — the root's operations as its
    own work and one concurrent child subtransaction per remote node —
    instead of the flat executor. *)

val cluster : t -> int Ava3.Cluster.t
val load : t -> node:int -> (string * int) list -> unit

include Workload.Db_intf.DB with type t := t
