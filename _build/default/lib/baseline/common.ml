let counter = ref 0

let fresh_txn_id () =
  incr counter;
  !counter

let retry ~max_attempts ~backoff attempt =
  let rec go n =
    match attempt () with
    | `Committed -> Workload.Db_intf.Committed
    | `Aborted ->
        if n >= max_attempts then Workload.Db_intf.Aborted
        else begin
          Sim.Engine.sleep backoff;
          go (n + 1)
        end
  in
  go 1
