(** Shared plumbing for the baseline protocols. *)

val fresh_txn_id : unit -> int
(** Process-wide transaction id allocator for baselines (ids only need to be
    unique within one engine run; a global counter is simplest). *)

val retry :
  max_attempts:int ->
  backoff:float ->
  (unit -> [ `Committed | `Aborted ]) ->
  Workload.Db_intf.update_outcome
(** Retry transient aborts with a fixed backoff, inside a process. *)
