(** Baseline: four-version transient versioning (MPL92/WYC91-flavoured).

    Same substrate as AVA3 but with the two trade-offs the paper contrasts
    against:

    - {b Centralized trade}: one extra ("fourth") version is retained so
      advancement's Phase 2 never waits for running queries — new queries
      always get the freshest published version immediately.  AVA3 pays a
      wait instead and needs only three versions.
    - {b Distributed flaw}: version advancement is synchronous with user
      transactions — there is no moveToFuture, so any transaction caught
      straddling an advancement (a subtransaction version mismatch at data
      access or commit) is {e aborted}.  The paper cites exactly this as why
      MPL92's distributed extension violates non-interference.

    Experiment E7 measures both: max resident versions (4 vs 3) and
    advancement-induced aborts (positive vs zero). *)

type t

val create :
  engine:Sim.Engine.t ->
  ?scheme:Wal.Scheme.kind ->
  ?latency:Net.Latency.t ->
  ?read_service_time:float ->
  ?write_service_time:float ->
  ?advancement_period:float ->
  ?advancement_until:float ->
  nodes:int ->
  unit ->
  t

val cluster : t -> int Ava3.Cluster.t
val load : t -> node:int -> (string * int) list -> unit

val mismatch_aborts : t -> int
(** Transactions killed because they straddled a version advancement. *)

include Workload.Db_intf.DB with type t := t
