(** Baseline: unbounded multi-version concurrency control (CG85-flavoured).

    Update transactions use strict 2PL and stamp their writes with a commit
    timestamp from a global oracle (standing in for CG85's committed-
    transaction-list machinery).  Queries read the snapshot as of the oracle
    value at their start, lock-free, always seeing the latest committed
    data.

    The cost the paper targets: the number of versions is unbounded — a
    long-running query holds the garbage-collection horizon back and version
    chains grow with every update behind it.  {!max_versions_ever} and the
    chain statistics quantify it. *)

type t

val create :
  engine:Sim.Engine.t ->
  ?latency:Net.Latency.t ->
  ?read_service_time:float ->
  ?write_service_time:float ->
  ?gc_every:int ->
  nodes:int ->
  unit ->
  t
(** Versions older than the oldest active snapshot are pruned whenever a
    snapshot retires and after every [gc_every] commits (default 20). *)

val load : t -> node:int -> (string * int) list -> unit

include Workload.Db_intf.DB with type t := t
