(** Baseline: single-version strict two-phase locking.

    The no-versioning strawman: queries are ordinary transactions that take
    shared locks, so they block behind updates and updates block behind
    them.  This is the interference AVA3 exists to remove; experiment E5
    measures it as query latency inflation and update lock-wait time. *)

type t

val create :
  engine:Sim.Engine.t ->
  ?latency:Net.Latency.t ->
  ?read_service_time:float ->
  ?write_service_time:float ->
  nodes:int ->
  unit ->
  t

val load : t -> node:int -> (string * int) list -> unit

include Workload.Db_intf.DB with type t := t
