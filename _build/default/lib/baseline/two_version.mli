(** Baseline: two-version before-value scheme (BHR80-flavoured).

    Writers keep the before-value of every item they modify, so queries read
    committed data without locks.  The cost, as the paper notes about
    [BHR80]: a read-only query can {e delay the commitment} of an update
    transaction — a writer may not commit an item while queries that read
    its before-value are still running.  Queries pin the items they read
    until they finish; writer commit waits for the pins to drain. *)

type t

val create :
  engine:Sim.Engine.t ->
  ?latency:Net.Latency.t ->
  ?read_service_time:float ->
  ?write_service_time:float ->
  nodes:int ->
  unit ->
  t

val load : t -> node:int -> (string * int) list -> unit

val commit_delay_total : t -> float
(** Virtual time writers spent waiting for query pins at commit — the
    direct measure of reader-induced interference. *)

include Workload.Db_intf.DB with type t := t
