lib/core/advancement.ml: Array Cluster_state Config Messages Net Node_state Printf Sim Vstore
