lib/core/advancement.mli: Cluster_state
