lib/core/centralized.ml: Cluster List Net Update_exec
