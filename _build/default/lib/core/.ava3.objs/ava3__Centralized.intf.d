lib/core/centralized.mli: Cluster Config Node_state Query_exec Sim Update_exec
