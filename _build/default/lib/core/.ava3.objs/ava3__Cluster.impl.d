lib/core/cluster.ml: Advancement Array Cluster_state Config Format Invariant List Lockmgr Net Node_state Printf Query_exec Sim Tree_query Tree_txn Update_exec Vstore Wal
