lib/core/cluster.mli: Cluster_state Config Format Messages Net Node_state Query_exec Sim Tree_query Tree_txn Update_exec
