lib/core/cluster_state.ml: Array Config Hashtbl Lockmgr Messages Net Node_state Sim
