lib/core/cluster_state.mli: Config Hashtbl Lockmgr Messages Net Node_state Sim
