lib/core/config.ml: Format Wal
