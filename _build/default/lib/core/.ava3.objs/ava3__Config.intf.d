lib/core/config.mli: Format Wal
