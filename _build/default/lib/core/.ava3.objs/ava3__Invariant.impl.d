lib/core/invariant.ml: Array Cluster_state Config List Node_state Printf Vstore
