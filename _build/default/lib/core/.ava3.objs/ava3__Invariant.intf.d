lib/core/invariant.mli: Cluster_state
