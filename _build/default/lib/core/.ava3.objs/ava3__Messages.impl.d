lib/core/messages.ml: Format
