lib/core/messages.mli: Format
