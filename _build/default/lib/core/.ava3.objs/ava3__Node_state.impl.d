lib/core/node_state.ml: Format Hashtbl Lockmgr Printf Sim Vstore Wal
