lib/core/node_state.mli: Format Lockmgr Sim Vstore Wal
