lib/core/query_exec.ml: Cluster_state Config Hashtbl List Net Node_state Printf Sim Vstore
