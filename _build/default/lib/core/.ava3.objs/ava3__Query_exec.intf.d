lib/core/query_exec.mli: Cluster_state
