lib/core/subtxn.ml: Cluster_state Config Lockmgr Node_state Printf Sim Vstore Wal
