lib/core/subtxn.mli: Cluster_state Node_state
