lib/core/tree_query.ml: Array Cluster_state Config Hashtbl List Net Node_state Printf Query_exec Sim Vstore
