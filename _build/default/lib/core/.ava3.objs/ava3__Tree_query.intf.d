lib/core/tree_query.mli: Cluster_state Query_exec
