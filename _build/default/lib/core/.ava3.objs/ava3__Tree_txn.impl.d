lib/core/tree_txn.ml: Array Cluster_state Config Hashtbl List Net Node_state Printf Sim Subtxn
