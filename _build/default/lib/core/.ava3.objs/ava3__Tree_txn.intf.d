lib/core/tree_txn.mli: Cluster_state Subtxn
