lib/core/update_exec.ml: Cluster_state Config Hashtbl List Net Node_state Printf Sim Subtxn
