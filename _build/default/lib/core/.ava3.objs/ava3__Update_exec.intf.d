lib/core/update_exec.mli: Cluster_state Subtxn
