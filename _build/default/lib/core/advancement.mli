(** The three-phase asynchronous version-advancement protocol (paper §3.2).

    Any node may initiate advancement and become its coordinator; multiple
    nodes may initiate independently and the handlers keep them consistent
    (all coordinators drive the system to the same version numbers; a
    coordinator abandons its run when it learns another one is already a
    phase ahead).  All handler steps are idempotent, so the coordinator
    retransmits periodically to tolerate participant crashes.

    Phase 1 switches new update transactions to [newu] and waits (per node)
    until [updateCount(newu - 1) = 0].  Phase 2 switches new queries to
    [newq = newu - 1] and waits until [queryCount(newq - 1) = 0].  Phase 3
    garbage-collects version [newq - 1].  Nodes that missed a
    garbage-collection message catch up through the inference rule:
    receiving [advance-u(newu)] with [g < newu - 3] proves versions up to
    [newu - 3] are collectible. *)

val install : 'v Cluster_state.t -> unit
(** Wire the advancement message handlers into the cluster's network.  Must
    be called exactly once, before any messages flow. *)

val initiate :
  'v Cluster_state.t -> coordinator:int -> [ `Started of int | `Busy ]
(** Try to start a version advancement coordinated by the given node.
    [`Started newu] reports the update version the system is advancing to.
    [`Busy] means the node is already coordinating, or its local state shows
    an advancement in progress that it cannot resume.  A node whose previous
    round stalled (e.g. the old coordinator crashed) resumes that round
    instead of starting a new one. *)

val in_progress : 'v Cluster_state.t -> bool
(** True while any node's local state shows an unfinished advancement. *)

val await_published : 'v Cluster_state.t -> newu:int -> unit
(** Block until every live node switched its query version to [newu - 1] —
    the round's data is readable everywhere, though garbage collection may
    still be running. *)

val await_completion : 'v Cluster_state.t -> newu:int -> unit
(** Block (inside a process) until every live node has garbage-collected
    version [newu - 2], i.e. the round that advanced to [newu] fully
    finished. *)
