type 'v t = 'v Cluster.t

type 'v op =
  | Read of string
  | Write of string * 'v
  | Read_modify_write of string * ('v option -> 'v)
  | Delete of string
  | Pause of float

let create ~engine ?config () =
  Cluster.create ~engine ?config ~latency:(Net.Latency.Constant 0.0) ~nodes:1 ()

let cluster t = t
let node t = Cluster.node t 0
let load t items = Cluster.load t ~node:0 items

let to_cluster_op = function
  | Read key -> Update_exec.Read { node = 0; key }
  | Write (key, value) -> Update_exec.Write { node = 0; key; value }
  | Read_modify_write (key, f) -> Update_exec.Read_modify_write { node = 0; key; f }
  | Delete key -> Update_exec.Delete { node = 0; key }
  | Pause d -> Update_exec.Pause d

let run_update t ~ops =
  Cluster.run_update t ~root:0 ~ops:(List.map to_cluster_op ops)

let run_query t ~keys =
  Cluster.run_query t ~root:0 ~reads:(List.map (fun k -> (0, k)) keys)

let run_scan t ~lo ~hi = Cluster.run_scan t ~root:0 ~ranges:[ (0, lo, hi) ]

let advance t = Cluster.advance t ~coordinator:0
let advance_and_wait t = Cluster.advance_and_wait t ~coordinator:0
let stats t = Cluster.stats t
let check_invariants t = Cluster.check_invariants t
