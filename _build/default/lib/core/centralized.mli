(** Centralized (single-site) AVA3 (paper §7).

    With one node there is no distributed commitment: an update transaction
    simply commits when it completes, and version advancement runs its three
    phases locally.  Three versions still suffice — one fewer than the
    four-version transient-versioning schemes (MPL92, WYC91) need for the
    same non-interference guarantee, which experiment E7 demonstrates.

    Implemented as a one-node {!Cluster} (loopback messages have zero
    latency), with a key-based API that drops the node addressing. *)

type 'v t

type 'v op =
  | Read of string
  | Write of string * 'v
  | Read_modify_write of string * ('v option -> 'v)
  | Delete of string
  | Pause of float

val create : engine:Sim.Engine.t -> ?config:Config.t -> unit -> 'v t

val cluster : 'v t -> 'v Cluster.t
val node : 'v t -> 'v Node_state.t

val load : 'v t -> (string * 'v) list -> unit

val run_update : 'v t -> ops:'v op list -> 'v Update_exec.outcome
val run_query : 'v t -> keys:string list -> 'v Query_exec.result

val run_scan : 'v t -> lo:string -> hi:string -> 'v Query_exec.result
(** Lock-free ordered range scan over the query snapshot. *)

val advance : 'v t -> [ `Started of int | `Busy ]
val advance_and_wait : 'v t -> [ `Completed of int | `Busy ]

val stats : 'v t -> Cluster.stats
val check_invariants : 'v t -> string list
