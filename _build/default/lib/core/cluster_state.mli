(** Shared state of an AVA3 cluster — internal plumbing.

    This module is the record the protocol components ({!Advancement},
    {!Query_exec}, {!Update_exec}) operate on; applications should use the
    {!Cluster} facade instead. *)

(** Coordinator-side state of one advancement run (paper §3.2). *)
type coord = {
  c_newu : int;
  mutable c_phase : [ `Collect_u | `Collect_q ];
  mutable c_acks_u : bool array;
  mutable c_acks_q : bool array;
  mutable c_abandoned : bool;
}

type 'v t = {
  engine : Sim.Engine.t;
  config : Config.t;
  net : Messages.t Net.Network.t;
  lock_group : Lockmgr.Lock_table.group;
      (** shared deadlock-detection group spanning all nodes *)
  mutable nodes : 'v Node_state.t array;
  coords : coord option array;  (** per-node active coordination, if any *)
  frozen_at : (int, float) Hashtbl.t;
      (** version -> virtual time it became stable (all its update
          transactions finished); feeds the staleness metric of §8 *)
  state_changed : Sim.Condition.t;
      (** broadcast whenever any node's u/q/g changes *)
  (* statistics *)
  mutable advancements_completed : int;
  mutable commits : int;
  mutable aborts : int;
  mutable queries_completed : int;
  mutable mtf_data_access : int;
  mutable mtf_commit_time : int;
  mutable commit_version_mismatches : int;
      (** transactions whose subtransactions prepared with differing
          versions — the situation the modified 2PC exists for *)
}

val create :
  engine:Sim.Engine.t ->
  config:Config.t ->
  nodes:int ->
  ?latency:Net.Latency.t ->
  unit ->
  'v t

val node : 'v t -> int -> 'v Node_state.t
val node_count : _ t -> int
val emit : _ t -> tag:string -> string -> unit
val now : _ t -> float

val note_version_change : _ t -> unit
(** Wake everyone watching for u/q/g movement. *)

val freeze_version : _ t -> int -> unit
(** Record that [version] is now stable (first recording wins). *)

val staleness_of : _ t -> version:int -> at:float -> float option
(** Age of the snapshot [version] at time [at]: [at - frozen_at version].
    [None] if the version's freeze time is unknown (still being written). *)
