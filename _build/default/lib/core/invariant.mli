(** Runtime checks of the paper's §6.2 performance properties.

    Each function returns a list of human-readable violations (empty when
    the property holds), so tests can assert emptiness and experiment
    harnesses can report counts. *)

val check : 'v Cluster_state.t -> string list
(** Properties that must hold at {e every} instant:
    - per node, [q < u <= q + 2] (property 3);
    - across nodes, [u_i <> u_j] implies [q_i = q_j] and [q_i <> q_j]
      implies [u_i = u_j] (properties 2b, 2c);
    - no item ever held more than three live versions (property 2a; checked
      against the store's high-water mark, so a past violation is caught
      even after garbage collection) — skipped when the §8 overlapping-GC
      relaxation is enabled;
    - no negative transaction counters. *)

val check_quiescent : 'v Cluster_state.t -> string list
(** Additional properties that must hold when no advancement is running and
    no transactions are active (property 1): all nodes agree on [u] and
    [q], [u = q + 1], and every item has at most two live versions. *)
