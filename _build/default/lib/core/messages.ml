type t =
  | Advance_u of { newu : int }
  | Ack_advance_u of { newu : int }
  | Advance_q of { newq : int }
  | Ack_advance_q of { newq : int }
  | Garbage_collect of { newg : int }

let pp ppf = function
  | Advance_u { newu } -> Format.fprintf ppf "advance-u(%d)" newu
  | Ack_advance_u { newu } -> Format.fprintf ppf "ack-advance-u(%d)" newu
  | Advance_q { newq } -> Format.fprintf ppf "advance-q(%d)" newq
  | Ack_advance_q { newq } -> Format.fprintf ppf "ack-advance-q(%d)" newq
  | Garbage_collect { newg } -> Format.fprintf ppf "garbage-collect(%d)" newg

let to_string t = Format.asprintf "%a" pp t
