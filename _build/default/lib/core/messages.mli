(** Version-advancement protocol messages (paper §3.2).

    These are the only messages AVA3 itself adds to the system; user
    transactions travel over the R*-style RPC path instead. *)

type t =
  | Advance_u of { newu : int }
      (** Phase 1: switch new update transactions to version [newu]. *)
  | Ack_advance_u of { newu : int }
      (** Participant confirms: its update version is at least [newu] and
          all its subtransactions that started on [newu - 1] finished. *)
  | Advance_q of { newq : int }
      (** Phase 2: switch new queries to version [newq]. *)
  | Ack_advance_q of { newq : int }
  | Garbage_collect of { newg : int }  (** Phase 3. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
