open Cluster_state

type plan = { at : int; keys : string list; children : plan list }

let rec plan_nodes plan = plan.at :: List.concat_map plan_nodes plan.children

let validate plan =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg "Tree_query.run: plan visits a node twice"
      else Hashtbl.replace seen n ())
    (plan_nodes plan)

let parallel cs thunks =
  let n = List.length thunks in
  let results = Array.make n None in
  let completed = ref 0 in
  let cv = Sim.Condition.create () in
  List.iteri
    (fun i thunk ->
      Sim.Engine.spawn cs.engine (fun () ->
          let r = try Ok (thunk ()) with e -> Error e in
          results.(i) <- Some r;
          incr completed;
          Sim.Condition.broadcast cv))
    thunks;
  Sim.Condition.await_until cv ~pred:(fun () -> !completed = n);
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)

let run cs ~plan =
  validate plan;
  let root = plan.at in
  let root_node = node cs root in
  if not (Node_state.alive root_node) then raise (Net.Network.Node_down root);
  let txn_id = Node_state.fresh_txn_id root_node in
  let started_at = now cs in
  (* §3.3 step 1, atomic at the root. *)
  let v = Node_state.q root_node in
  Node_state.incr_query_count root_node ~version:v;
  emit cs ~tag:"query"
    (Printf.sprintf "Q%d: starts at node%d with version %d" txn_id root v);
  let child_counters = not cs.config.Config.root_only_query_counters in
  let read_service = cs.config.Config.read_service_time in
  (* Execute the subquery at [p]; returns its composed results (own reads
     then children's, preorder).  [is_root] marks the pinned root counter,
     which must be released last — by the caller, not here. *)
  let rec exec_subquery parent_node (p : plan) ~is_root =
    let body () =
      let nd = node cs p.at in
      if not (Node_state.alive nd) then raise (Net.Network.Node_down p.at);
      if not is_root then begin
        (* §3.3 step 2: a subquery arriving ahead of the node's query
           version triggers the node's query-version advancement. *)
        if v > Node_state.q nd then begin
          Node_state.set_q nd v;
          note_version_change cs
        end;
        if child_counters then Node_state.incr_query_count nd ~version:v
      end;
      let own =
        List.map
          (fun key ->
            Sim.Engine.sleep read_service;
            (p.at, key, Vstore.Store.read_le (Node_state.store nd) key v))
          p.keys
      in
      let child_results =
        parallel cs
          (List.map
             (fun child () -> exec_subquery p.at child ~is_root:false)
             p.children)
      in
      (* Completion (§3.3 step 5): compose, decrement, commit.  Errors from
         children propagate only after our own counter is safely released. *)
      if (not is_root) && child_counters then
        Node_state.decr_query_count nd ~version:v;
      let composed =
        List.concat_map
          (function Ok values -> values | Error e -> raise e)
          child_results
      in
      own @ composed
    in
    if p.at = parent_node then body ()
    else Net.Network.call cs.net ~src:parent_node ~dst:p.at body
  in
  match exec_subquery root plan ~is_root:true with
  | values ->
      Node_state.decr_query_count root_node ~version:v;
      cs.queries_completed <- cs.queries_completed + 1;
      emit cs ~tag:"query" (Printf.sprintf "Q%d: completed" txn_id);
      {
        Query_exec.txn_id;
        version = v;
        values;
        started_at;
        finished_at = now cs;
        staleness = staleness_of cs ~version:v ~at:started_at;
      }
  | exception e ->
      Node_state.decr_query_count root_node ~version:v;
      raise e
