lib/dbsim/experiment.ml: Ava3 Baseline Float List Net Option Printf Report Sim Vstore Wal Workload
