lib/dbsim/experiment.mli:
