lib/dbsim/figure1.ml: Ava3 Buffer Float List Net Printf Sim String
