lib/dbsim/figure1.mli:
