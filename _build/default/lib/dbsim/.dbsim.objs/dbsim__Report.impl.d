lib/dbsim/report.ml: List Printf String
