lib/dbsim/report.mli:
