lib/dbsim/serial_check.ml: Array Ava3 Hashtbl List Option Printf Sim Vstore
