lib/dbsim/serial_check.mli:
