lib/dbsim/table1.ml: Ava3 Char List Net Option Printf Report Sim String Wal
