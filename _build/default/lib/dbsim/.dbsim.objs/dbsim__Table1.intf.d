lib/dbsim/table1.mli: Wal
