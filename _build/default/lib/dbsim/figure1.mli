(** Reproduction of the paper's Figure 1 — the time diagram of version
    advancement.

    The figure's claim: Phase 1 (switching updates to [v+2]) lasts until the
    longest update transaction that was active in [v+1] at advancement start
    finishes; Phase 2 (switching queries to [v+1]) lasts until the longest
    query still reading [v] finishes; Phase 3 is garbage collection.
    Meanwhile new update transactions run in [v+2] and new queries in the
    freshly published versions, never blocked by the advancement.

    [run] stages exactly that: one long update transaction and one long
    query spanning an advancement, plus a stream of short transactions and
    queries used to verify non-interference.  With the §8 eager counter
    hand-off enabled, the long update transaction stops bounding Phase 1 as
    soon as it executes its moveToFuture. *)

type timings = {
  advancement_started : float;
  all_nodes_on_new_u : float;  (** every node switched its update version *)
  long_update_committed : float;
  phase1_complete : float;
  all_nodes_on_new_q : float;
  long_query_completed : float;
  phase2_complete : float;
  gc_complete : float;  (** every node collected the old version *)
  short_update_max_latency : float;
      (** slowest short update running concurrently with the advancement *)
  short_query_max_latency : float;
}

type result = { timings : timings; violations : string list }

val run :
  ?eager_handoff:bool ->
  ?long_update_duration:float ->
  ?long_query_duration:float ->
  unit ->
  result

val render : result -> string
(** ASCII time diagram plus the measured bounds. *)
