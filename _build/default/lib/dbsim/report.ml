let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i v = string_of_int v

let render ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let line row =
    String.concat "  " (List.mapi (fun c cell -> pad cell (List.nth widths c)) row)
    |> rtrim
    |> fun s -> s ^ "\n"
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n"
  in
  line header ^ rule ^ String.concat "" (List.map line rows)

let print ~title ~header ~rows =
  Printf.printf "\n== %s ==\n%s%!" title (render ~header ~rows)
