(** Plain-text table rendering for experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** Aligned columns, a rule under the header. *)

val print : title:string -> header:string list -> rows:string list list -> unit
(** Render to stdout with a title banner. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
val i : int -> string
