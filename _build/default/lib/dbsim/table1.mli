(** Reproduction of the paper's Table 1 — the example execution of §5.

    Three sites (i=0, j=1, k=2) hold data items w@i, x@j, y@j, z@k.  Update
    transactions S, T, U and queries P, Q, R interleave with a version
    advancement coordinated by site k, exercising every interesting path:

    - T spans all three sites: its subtransaction at k starts in version 2
      (k had already advanced), at i and j in version 1;
    - U is a pure version-2 transaction whose committed x drags T_j to
      version 2 via a data-access moveToFuture;
    - T's version mismatch (1 at site i vs 2 at j, k) is repaired at commit
      time by the modified 2PC;
    - S starts in version 1 at j and performs a trivial moveToFuture when it
      touches y after T committed it in version 2;
    - R reads the version-0 snapshot untouched by any of this;
    - Q starts before the query-version switch (snapshot 0) and P just
      after it (snapshot 1), so two queries moments apart read different
      versions — and Phase 2 waits for Q before garbage collection runs.

    [run] replays the scenario through the real protocol stack and checks
    each of those facts, returning the full event log for rendering. *)

type event = { time : float; site : int option; text : string }

type result = {
  events : event list;
  violations : string list;  (** empty when the reproduction matches *)
}

val run : ?scheme:Wal.Scheme.kind -> unit -> result

val render : result -> string
(** The paper-style table: TIME | SITE i | SITE j | SITE k. *)
