lib/lockmgr/latch.ml:
