lib/lockmgr/latch.mli:
