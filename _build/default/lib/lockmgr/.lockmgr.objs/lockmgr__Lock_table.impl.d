lib/lockmgr/lock_table.ml: Hashtbl List Sim
