type t = { name : string; mutable acquisitions : int }

let create name = { name; acquisitions = 0 }

let name t = t.name
let acquisitions t = t.acquisitions

let protect t f =
  t.acquisitions <- t.acquisitions + 1;
  f ()

let incr_protected t cell = protect t (fun () -> incr cell)
let decr_protected t cell = protect t (fun () -> decr cell)
