(** Latch accounting.

    The paper allows read transactions to "increment some main memory
    counters associated with the node using latches (no locks)".  In the
    single-threaded simulation a latch never blocks, so a latch is purely an
    accounting device: it counts short critical sections so experiments can
    report how much latching each protocol performs, and the microbenchmarks
    can measure the real-time cost of a latched counter update. *)

type t

val create : string -> t

val name : t -> string

val acquisitions : t -> int

val protect : t -> (unit -> 'a) -> 'a
(** Run the critical section, counting one acquisition. *)

val incr_protected : t -> int ref -> unit
(** The common case: latched increment of a main-memory counter. *)

val decr_protected : t -> int ref -> unit
