lib/net/network.ml: Array Latency Sim
