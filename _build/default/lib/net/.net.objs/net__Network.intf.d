lib/net/network.mli: Latency Sim
