type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }

let sample t rng =
  let v =
    match t with
    | Constant c -> c
    | Uniform { lo; hi } -> lo +. Sim.Rng.float rng (hi -. lo)
    | Exponential { mean; floor } ->
        let tail = mean -. floor in
        if tail <= 0.0 then floor
        else floor +. Sim.Rng.exponential rng ~mean:tail
  in
  if v < 0.0 then 0.0 else v

let mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean; _ } -> mean

let pp ppf = function
  | Constant c -> Format.fprintf ppf "constant(%g)" c
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential { mean; floor } ->
      Format.fprintf ppf "exponential(mean=%g,floor=%g)" mean floor
