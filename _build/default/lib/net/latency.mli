(** Message-latency models for the simulated network. *)

type t =
  | Constant of float  (** Every message takes exactly this long. *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float; floor : float }
      (** [floor + Exp(mean - floor)]: a minimum wire time plus an
          exponentially distributed queueing component. *)

val sample : t -> Sim.Rng.t -> float
(** Draw one latency value; always non-negative. *)

val mean : t -> float
(** Expected latency, used for reporting. *)

val pp : Format.formatter -> t -> unit
