exception Node_down of int

type 'm t = {
  engine : Sim.Engine.t;
  nodes : int;
  latency : Latency.t;
  self_latency : float;
  rng : Sim.Rng.t;
  handlers : (src:int -> 'm -> unit) option array;
  down : bool array;
  link_down : bool array array;
  (* FIFO enforcement: earliest admissible delivery time per (src,dst). *)
  link_clock : float array array;
  link_sent : int array array;
  mutable sent : int;
  mutable dropped : int;
}

let create ~engine ~nodes ?(latency = Latency.Constant 1.0) ?(self_latency = 0.0)
    () =
  if nodes <= 0 then invalid_arg "Network.create: need at least one node";
  {
    engine;
    nodes;
    latency;
    self_latency;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    handlers = Array.make nodes None;
    down = Array.make nodes false;
    link_down = Array.make_matrix nodes nodes false;
    link_clock = Array.make_matrix nodes nodes 0.0;
    link_sent = Array.make_matrix nodes nodes 0;
    sent = 0;
    dropped = 0;
  }

let engine t = t.engine
let node_count t = t.nodes

let check_node t node =
  if node < 0 || node >= t.nodes then invalid_arg "Network: no such node"

let set_handler t ~node handler =
  check_node t node;
  t.handlers.(node) <- Some handler

let set_down t ~node flag =
  check_node t node;
  t.down.(node) <- flag

let is_down t ~node =
  check_node t node;
  t.down.(node)

let set_link_down t ~src ~dst flag =
  check_node t src;
  check_node t dst;
  t.link_down.(src).(dst) <- flag

let link_is_down t ~src ~dst = t.down.(src) || t.down.(dst) || t.link_down.(src).(dst)

let messages_sent t = t.sent
let messages_dropped t = t.dropped

let link_count t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.link_sent.(src).(dst)

(* Latency for one message on link src->dst, respecting per-link FIFO:
   delivery time is clamped to be no earlier than the previous delivery on
   the same link. *)
let delivery_delay t ~src ~dst =
  let raw =
    if src = dst then t.self_latency else Latency.sample t.latency t.rng
  in
  let now = Sim.Engine.now t.engine in
  let at = now +. raw in
  let at = if at < t.link_clock.(src).(dst) then t.link_clock.(src).(dst) else at in
  t.link_clock.(src).(dst) <- at;
  at -. now

let deliver t ~src ~dst msg =
  if t.down.(dst) then t.dropped <- t.dropped + 1
  else
    match t.handlers.(dst) with
    | None -> invalid_arg "Network: destination has no handler"
    | Some handler -> handler ~src msg

let send t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  t.sent <- t.sent + 1;
  t.link_sent.(src).(dst) <- t.link_sent.(src).(dst) + 1;
  if t.down.(src) || t.link_down.(src).(dst) then t.dropped <- t.dropped + 1
  else begin
    let delay = delivery_delay t ~src ~dst in
    Sim.Engine.schedule t.engine ~delay (fun () -> deliver t ~src ~dst msg)
  end

let broadcast t ~src msg =
  for dst = 0 to t.nodes - 1 do
    send t ~src ~dst msg
  done

let call t ~src ~dst thunk =
  check_node t src;
  check_node t dst;
  t.sent <- t.sent + 1;
  t.link_sent.(src).(dst) <- t.link_sent.(src).(dst) + 1;
  if t.down.(dst) || t.link_down.(src).(dst) || t.link_down.(dst).(src) then
    raise (Node_down dst);
  let request_delay = delivery_delay t ~src ~dst in
  let outcome =
    Sim.Engine.suspend (fun resume ->
        Sim.Engine.schedule t.engine ~delay:request_delay (fun () ->
            (* The thunk runs at the destination; failures travel back to
               the caller instead of crashing the engine. *)
            let result =
              if t.down.(dst) then Error (Node_down dst)
              else try Ok (thunk ()) with e -> Error e
            in
            t.sent <- t.sent + 1;
            t.link_sent.(dst).(src) <- t.link_sent.(dst).(src) + 1;
            let reply_delay = delivery_delay t ~src:dst ~dst:src in
            Sim.Engine.schedule t.engine ~delay:reply_delay (fun () ->
                resume result)))
  in
  match outcome with Ok v -> v | Error e -> raise e
