lib/sim/condition.mli:
