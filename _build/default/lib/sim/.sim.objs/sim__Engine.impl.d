lib/sim/engine.ml: Effect Heap Rng Trace
