lib/sim/heap.mli:
