lib/sim/rng.mli:
