(* Each waiter is a thunk returning whether it actually accepted the wakeup:
   a waiter whose timeout already fired declines, so [signal] keeps looking
   for a live waiter instead of losing the signal. *)
type waiter = unit -> bool

type t = { mutable queue : waiter list (* oldest first *) }

let create () = { queue = [] }

let waiters t = List.length t.queue

let add_waiter t w = t.queue <- t.queue @ [ w ]

let await t =
  Engine.suspend (fun resume ->
      add_waiter t (fun () ->
          resume ();
          true))

let await_until t ~pred =
  while not (pred ()) do
    await t
  done

let await_timeout t ~timeout =
  let engine = Engine.current () in
  Engine.suspend (fun resume ->
      let fired = ref false in
      add_waiter t (fun () ->
          if !fired then false
          else begin
            fired := true;
            resume `Signaled;
            true
          end);
      Engine.schedule engine ~delay:timeout (fun () ->
          if not !fired then begin
            fired := true;
            resume `Timeout
          end))

let signal t =
  let rec wake = function
    | [] -> t.queue <- []
    | w :: rest -> if w () then t.queue <- rest else wake rest
  in
  wake t.queue

let broadcast t =
  let all = t.queue in
  t.queue <- [];
  List.iter (fun w -> ignore (w () : bool)) all
