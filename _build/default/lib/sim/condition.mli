(** Condition variables for simulation processes.

    A condition carries no value: a waiter parks until some other process
    signals or broadcasts.  The usual lost-wakeup caveat applies, so most
    call sites should use {!await_until}, which re-checks a predicate after
    every wakeup. *)

type t

val create : unit -> t

val waiters : t -> int
(** Number of processes currently parked. *)

val await : t -> unit
(** Park the calling process until signalled. *)

val await_until : t -> pred:(unit -> bool) -> unit
(** [await_until c ~pred] returns immediately if [pred ()] holds, otherwise
    parks, re-testing [pred] after each wakeup. *)

val await_timeout : t -> timeout:float -> [ `Signaled | `Timeout ]
(** Park until signalled or until [timeout] virtual time units elapse.
    Timed-out waiters never consume a signal. *)

val signal : t -> unit
(** Wake the oldest live waiter, if any. *)

val broadcast : t -> unit
(** Wake all current waiters. *)
