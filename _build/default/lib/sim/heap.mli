(** Minimal binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties between events scheduled for the same
    simulated instant, giving the engine a deterministic FIFO order. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek_time : 'a t -> float option
(** Time key of the minimum element without removing it. *)
