lib/vstore/store.ml: Hashtbl List Option Set String
