lib/vstore/store.mli:
