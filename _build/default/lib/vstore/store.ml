type version = int

exception Version_bound_exceeded of { key : string; versions : version list }

type 'v entry = { version : version; body : 'v body }
and 'v body = Value of 'v | Tombstone

(* Entries are kept sorted by version, descending (newest first); items have
   very few versions (<= 3 for AVA3) so list operations are cheap. *)
type 'v item = { mutable entries : 'v entry list }

module String_set = Set.Make (String)

type 'v t = {
  bound : int option;
  gc_renumber : bool;
  items : (string, 'v item) Hashtbl.t;
  mutable key_order : String_set.t;
      (* ordered key index for range scans, kept in sync with [items] *)
  (* Version index (the structure the paper defers to MPL92 for): which
     items have an entry in each version.  Keeps garbage collection
     proportional to the touched items instead of the whole store. *)
  by_version : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable high_water : int;
  mutable gc_items_visited : int;
}

let create ?bound ?(gc_renumber = true) () =
  (match bound with
  | Some b when b < 1 -> invalid_arg "Store.create: bound must be >= 1"
  | _ -> ());
  {
    bound;
    gc_renumber;
    items = Hashtbl.create 1024;
    key_order = String_set.empty;
    by_version = Hashtbl.create 8;
    high_water = 0;
    gc_items_visited = 0;
  }

let index_add t version key =
  let set =
    match Hashtbl.find_opt t.by_version version with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.replace t.by_version version s;
        s
  in
  Hashtbl.replace set key ()

let index_remove t version key =
  match Hashtbl.find_opt t.by_version version with
  | None -> ()
  | Some s ->
      Hashtbl.remove s key;
      if Hashtbl.length s = 0 then Hashtbl.remove t.by_version version

(* Re-derive an item's index membership after its entry list changed. *)
let reindex t key ~before ~after =
  List.iter
    (fun v -> if not (List.mem v after) then index_remove t v key)
    before;
  List.iter
    (fun v -> if not (List.mem v before) then index_add t v key)
    after

let bound t = t.bound

let find_item t key = Hashtbl.find_opt t.items key

let versions_of_item item = List.rev_map (fun e -> e.version) item.entries

let exists_in t key v =
  match find_item t key with
  | None -> false
  | Some item -> List.exists (fun e -> e.version = v) item.entries

let max_version t key =
  match find_item t key with
  | None | Some { entries = [] } -> None
  | Some { entries = newest :: _ } -> Some newest.version

let versions_of t key =
  match find_item t key with None -> [] | Some item -> versions_of_item item

let read_le t key v =
  match find_item t key with
  | None -> None
  | Some item -> (
      match List.find_opt (fun e -> e.version <= v) item.entries with
      | None | Some { body = Tombstone; _ } -> None
      | Some { body = Value value; _ } -> Some value)

let read_exact t key v =
  match find_item t key with
  | None -> None
  | Some item -> (
      match List.find_opt (fun e -> e.version = v) item.entries with
      | None | Some { body = Tombstone; _ } -> None
      | Some { body = Value value; _ } -> Some value)

let note_size t key item =
  let n = List.length item.entries in
  if n > t.high_water then t.high_water <- n;
  match t.bound with
  | Some b when n > b ->
      raise (Version_bound_exceeded { key; versions = versions_of_item item })
  | _ -> ()

(* Insert or replace the entry for [e.version], keeping descending order. *)
let put_entry t key item e =
  let rec insert = function
    | [] -> [ e ]
    | x :: rest when x.version = e.version -> e :: rest
    | x :: rest when x.version < e.version -> e :: x :: rest
    | x :: rest -> x :: insert rest
  in
  item.entries <- insert item.entries;
  index_add t e.version key;
  note_size t key item

let get_or_create_item t key =
  match find_item t key with
  | Some item -> item
  | None ->
      let item = { entries = [] } in
      Hashtbl.replace t.items key item;
      t.key_order <- String_set.add key t.key_order;
      item

let remove_item t key =
  Hashtbl.remove t.items key;
  t.key_order <- String_set.remove key t.key_order

let write t key v value =
  let item = get_or_create_item t key in
  put_entry t key item { version = v; body = Value value }

let copy_forward t key ~src ~dst =
  match find_item t key with
  | None -> raise Not_found
  | Some item -> (
      match List.find_opt (fun e -> e.version = src) item.entries with
      | None -> raise Not_found
      | Some e -> put_entry t key item { version = dst; body = e.body })

let drop_item_if_empty t key item =
  if item.entries = [] then remove_item t key

(* An item whose only remaining entry is a tombstone can be removed outright
   (paper: once all earlier versions are gone, the deleted item itself may
   be removed). *)
let drop_lone_tombstone t key item =
  match item.entries with
  | [ { body = Tombstone; version } ] ->
      index_remove t version key;
      remove_item t key
  | _ -> drop_item_if_empty t key item

(* The tombstone is retained even when it is the item's only entry: an
   uncommitted transaction may still hold an undo image or need to copy the
   entry forward in moveToFuture.  The paper removes fully-deleted items
   when their earlier versions are garbage-collected, which is what {!gc}
   does. *)
let delete t key v =
  let item = get_or_create_item t key in
  put_entry t key item { version = v; body = Tombstone }

let remove_version t key v =
  match find_item t key with
  | None -> ()
  | Some item ->
      item.entries <- List.filter (fun e -> e.version <> v) item.entries;
      index_remove t v key;
      drop_item_if_empty t key item

let gc t ~collect ~query =
  let process key item =
    t.gc_items_visited <- t.gc_items_visited + 1;
    let before = List.map (fun e -> e.version) item.entries in
    if List.exists (fun e -> e.version = query) item.entries then
      item.entries <- List.filter (fun e -> e.version > collect) item.entries
    else if t.gc_renumber then begin
      (* Paper rule: no incarnation at [query] — renumber the newest entry
         at or below [collect] so readers of [query] still find the item. *)
      match List.find_opt (fun e -> e.version <= collect) item.entries with
      | None -> ()
      | Some e ->
          item.entries <-
            List.filter (fun x -> x.version > collect) item.entries
            @ [ { e with version = query } ];
          (* Restore descending order: renumbered entry belongs after any
             entries with version > query, before those in (collect, query). *)
          item.entries <-
            List.sort (fun a b -> compare b.version a.version) item.entries
    end
    else begin
      (* In-place rule: keep the newest entry <= collect (still the one
         readers of [query] resolve to) and drop any older ones. *)
      match List.find_opt (fun e -> e.version <= collect) item.entries with
      | None -> ()
      | Some newest ->
          item.entries <-
            List.filter
              (fun x -> x.version > collect || x.version = newest.version)
              item.entries
    end;
    reindex t key ~before ~after:(List.map (fun e -> e.version) item.entries);
    drop_lone_tombstone t key item
  in
  (* The version index bounds the scan.  Under the paper's renumbering rule
     every item with an entry at or below [collect] is a candidate (each
     untouched item gets renumbered every round).  Under the in-place rule,
     steady state guarantees at most one entry below [collect] per item, so
     only items actually written in [collect] or [query] need work. *)
  let candidate_versions =
    Hashtbl.fold
      (fun v _ acc ->
        if
          (if t.gc_renumber then v <= collect
           else v = collect || v = query)
        then v :: acc
        else acc)
      t.by_version []
  in
  let keys = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.by_version v with
      | None -> ()
      | Some set -> Hashtbl.iter (fun k () -> Hashtbl.replace keys k ()) set)
    candidate_versions;
  Hashtbl.iter
    (fun k () ->
      match find_item t k with None -> () | Some item -> process k item)
    keys

let prune_below t ~keep =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.items [] in
  List.iter
    (fun key ->
      match find_item t key with
      | None -> ()
      | Some item ->
          let before = List.map (fun e -> e.version) item.entries in
          (match List.find_opt (fun e -> e.version <= keep) item.entries with
          | None -> ()
          | Some newest_visible ->
              item.entries <-
                List.filter
                  (fun e -> e.version >= newest_visible.version)
                  item.entries);
          reindex t key ~before
            ~after:(List.map (fun e -> e.version) item.entries);
          drop_lone_tombstone t key item)
    keys

type 'v snapshot = (string * (version * 'v option) list) list

let snapshot t =
  Hashtbl.fold
    (fun key item acc ->
      let entries =
        List.rev_map
          (fun e ->
            ( e.version,
              match e.body with Value v -> Some v | Tombstone -> None ))
          item.entries
      in
      (key, entries) :: acc)
    t.items []
  |> List.sort compare

let restore ?bound ?gc_renumber snap =
  let t = create ?bound ?gc_renumber () in
  List.iter
    (fun (key, entries) ->
      List.iter
        (fun (v, value) ->
          match value with
          | Some value -> write t key v value
          | None -> delete t key v)
        entries)
    snap;
  t

let snapshot_items snap = snap
let snapshot_of_items items = List.sort compare items

(* Range scan at a version: keys in [lo, hi] (inclusive), ascending, with
   their value as of [version]; deleted/absent-as-of-version keys are
   skipped. *)
let range t ~lo ~hi version =
  if hi < lo then []
  else begin
    (* Split twice to isolate [lo, hi]. *)
    let _, lo_present, ge_lo = String_set.split lo t.key_order in
    let le_hi, hi_present, _ = String_set.split hi ge_lo in
    let keys =
      (if lo_present then [ lo ] else [])
      @ String_set.elements le_hi
      @ if hi_present && hi <> lo then [ hi ] else []
    in
    List.filter_map
      (fun key ->
        match read_le t key version with
        | Some value -> Some (key, value)
        | None -> None)
      keys
  end

let item_count t = Hashtbl.length t.items

let iter f t =
  Hashtbl.iter
    (fun key item ->
      let summary =
        List.rev_map
          (fun e ->
            (e.version, match e.body with Value _ -> `Value | Tombstone -> `Tombstone))
          item.entries
      in
      f key summary)
    t.items

let live_versions t key =
  match find_item t key with None -> 0 | Some item -> List.length item.entries

let max_live_versions_now t =
  Hashtbl.fold (fun _ item acc -> max acc (List.length item.entries)) t.items 0

let high_water_versions t = t.high_water
let gc_items_visited t = t.gc_items_visited

let items_in_version t v =
  match Hashtbl.find_opt t.by_version v with
  | None -> 0
  | Some s -> Hashtbl.length s

let version_histogram t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ item ->
      let k = List.length item.entries in
      let cur = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
      Hashtbl.replace tbl k (cur + 1))
    t.items;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
