lib/wal/log.ml: List Record
