lib/wal/log.mli: Record
