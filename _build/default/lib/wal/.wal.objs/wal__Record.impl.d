lib/wal/record.ml: Format List
