lib/wal/record.mli: Format
