lib/wal/recovery.ml: Hashtbl List Log Option Record Vstore
