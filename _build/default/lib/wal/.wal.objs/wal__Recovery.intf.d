lib/wal/recovery.mli: Log Vstore
