lib/wal/scheme.ml: Hashtbl List Log Record Vstore
