lib/wal/scheme.mli: Log Vstore
