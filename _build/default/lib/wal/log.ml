type 'v t = { mutable rev : 'v Record.t list; mutable count : int }

let create () = { rev = []; count = 0 }

let append t r =
  t.rev <- r :: t.rev;
  t.count <- t.count + 1

let length t = t.count
let records t = List.rev t.rev
let records_rev t = t.rev
let fold_rev f init t = List.fold_left f init t.rev

let truncate t =
  t.rev <- [];
  t.count <- 0
