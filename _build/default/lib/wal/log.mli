(** Append-only write-ahead log for one node.

    The log is kept in memory (the simulated node's "disk"): appends are
    counted so experiments can report log traffic, and {!Recovery} replays
    the log after a simulated crash. *)

type 'v t

val create : unit -> 'v t

val append : 'v t -> 'v Record.t -> unit

val length : _ t -> int

val records : 'v t -> 'v Record.t list
(** In append order. *)

val records_rev : 'v t -> 'v Record.t list
(** Newest first — the direction moveToFuture walks. *)

val fold_rev : ('a -> 'v Record.t -> 'a) -> 'a -> 'v t -> 'a
(** Fold newest-to-oldest. *)

val truncate : _ t -> unit
(** Discard all records (used after a checkpoint in long experiments so logs
    do not grow without bound). *)
