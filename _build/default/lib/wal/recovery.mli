(** Crash recovery by log replay.

    A simulated crash discards a node's volatile state: the transaction
    counters (the paper notes they restart at zero because in-flight
    transactions are aborted during recovery) and any uncommitted work.
    What survives is the log; {!replay} rebuilds the versioned store and the
    node's version numbers from it.

    Updates of a committed transaction are applied at the {e final} version
    carried by its commit record — exactly why the paper puts the final
    version number in that record. *)

type versions = {
  update_version : int;  (** last logged [Advance_update], or the initial 1 *)
  query_version : int;  (** last logged [Advance_query], or the initial 0 *)
  collected_version : int;  (** last logged [Collect], or -1 *)
}

val checkpoint :
  'v Log.t -> store:'v Vstore.Store.t -> u:int -> q:int -> g:int -> unit
(** Truncate the log and write a checkpoint record capturing the store and
    the node's version numbers.  Only valid at a quiescent point: no update
    transaction may be active (its earlier log records would be lost). *)

val replay :
  'v Log.t -> ?bound:int -> ?gc_renumber:bool -> unit -> 'v Vstore.Store.t * versions
(** Rebuild a store (with the given version bound, default unbounded) and
    recover the node's version numbers. *)

val committed_transactions : _ Log.t -> int list
(** Transactions with a commit record, in commit order. *)

val in_flight_transactions : _ Log.t -> int list
(** Transactions with a begin record but neither commit nor abort — the
    ones a crash kills. *)
