lib/workload/db_intf.ml:
