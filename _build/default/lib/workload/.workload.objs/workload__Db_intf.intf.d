lib/workload/db_intf.mli:
