lib/workload/driver.ml: Db_intf Format Histogram Keyspace List Option Sim
