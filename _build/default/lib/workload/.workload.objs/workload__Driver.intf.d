lib/workload/driver.mli: Db_intf Format Histogram Keyspace Sim
