lib/workload/histogram.ml: Array Format Printf
