lib/workload/keyspace.ml: List Printf Sim Zipf
