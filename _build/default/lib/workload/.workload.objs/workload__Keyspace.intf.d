lib/workload/keyspace.mli: Sim
