type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { samples = [||]; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.samples then begin
    let cap = max 64 (2 * Array.length t.samples) in
    let fresh = Array.make cap 0.0 in
    Array.blit t.samples 0 fresh 0 t.len;
    t.samples <- fresh
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let mean t = if t.len = 0 then 0.0 else fold ( +. ) 0.0 t /. float_of_int t.len
let min_value t = if t.len = 0 then 0.0 else fold min infinity t
let max_value t = if t.len = 0 then 0.0 else fold max neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank = int_of_float (ceil (p *. float_of_int t.len)) in
    let index = max 0 (min (t.len - 1) (rank - 1)) in
    t.samples.(index)
  end

let merge a b =
  let t = create () in
  for i = 0 to a.len - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.len - 1 do
    add t b.samples.(i)
  done;
  t

let summary t =
  if t.len = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f" t.len
      (mean t) (percentile t 0.50) (percentile t 0.95) (percentile t 0.99)
      (max_value t)

let pp ppf t = Format.pp_print_string ppf (summary t)
