(** Sample collector with percentile reporting.

    Keeps every sample (experiment scales are small enough); quantiles are
    computed on demand over a sorted copy. *)

type t

val create : unit -> t

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t 0.99] — nearest-rank quantile.  0 on an empty histogram. *)

val merge : t -> t -> t
(** New histogram holding both sample sets. *)

val summary : t -> string
(** "n=… mean=… p50=… p95=… p99=… max=…" *)

val pp : Format.formatter -> t -> unit
