type t = { node_count : int; per_node : int; zipf : Zipf.t }

let create ~nodes ~keys_per_node ~theta =
  if nodes <= 0 then invalid_arg "Keyspace.create: nodes must be positive";
  {
    node_count = nodes;
    per_node = keys_per_node;
    zipf = Zipf.create ~n:keys_per_node ~theta;
  }

let nodes t = t.node_count
let keys_per_node t = t.per_node

let key_name ~node ~rank = Printf.sprintf "n%d-k%d" node rank

let draw t rng =
  let node = Sim.Rng.int rng t.node_count in
  let rank = Zipf.sample t.zipf rng in
  (node, key_name ~node ~rank)

let draw_at t rng ~node = key_name ~node ~rank:(Zipf.sample t.zipf rng)

let all_keys t ~node = List.init t.per_node (fun rank -> key_name ~node ~rank)
