(** Partitioned keyspace with skewed access.

    Each node owns [keys_per_node] items named ["n<node>-k<rank>"]; a draw
    picks a node uniformly and a rank from a Zipf distribution, modelling
    hot records (recent calls, active accounts) in a partitioned database. *)

type t

val create : nodes:int -> keys_per_node:int -> theta:float -> t

val nodes : t -> int
val keys_per_node : t -> int

val key_name : node:int -> rank:int -> string

val draw : t -> Sim.Rng.t -> int * string
(** A random (node, key) pair. *)

val draw_at : t -> Sim.Rng.t -> node:int -> string
(** A random key on a specific node. *)

val all_keys : t -> node:int -> string list
(** Every key a node owns (for preloading). *)
