type t = { count : int; skew : float; cumulative : float array }

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for rank = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (rank + 1)) theta);
    cumulative.(rank) <- !total
  done;
  (* Normalise so the last entry is exactly 1. *)
  for rank = 0 to n - 1 do
    cumulative.(rank) <- cumulative.(rank) /. !total
  done;
  { count = n; skew = theta; cumulative }

let n t = t.count
let theta t = t.skew

let sample t rng =
  let u = Sim.Rng.float rng 1.0 in
  (* First index whose cumulative weight is >= u. *)
  let lo = ref 0 and hi = ref (t.count - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
