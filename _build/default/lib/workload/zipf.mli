(** Zipfian key-popularity distribution.

    The classic skewed-access model for OLTP workloads: item rank [r] (from
    1) is drawn with probability proportional to [1 / r^theta].  Sampling is
    O(log n) by binary search over precomputed cumulative weights. *)

type t

val create : n:int -> theta:float -> t
(** [n] items with skew [theta] ([theta = 0.] is uniform; common benchmark
    values are 0.8–1.2). *)

val n : t -> int
val theta : t -> float

val sample : t -> Sim.Rng.t -> int
(** A rank in [\[0, n)] (0 = most popular). *)
