test/test_ava3.ml: Alcotest Ava3 Int64 List Net Option Printf QCheck QCheck_alcotest Sim String Vstore Wal
