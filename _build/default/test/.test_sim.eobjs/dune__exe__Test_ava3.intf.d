test/test_ava3.mli:
