test/test_baseline.ml: Alcotest Array Ava3 Baseline Char List Net Sim String Workload
