test/test_centralized.ml: Alcotest Ava3 Option Sim
