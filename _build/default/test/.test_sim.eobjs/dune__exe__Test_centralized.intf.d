test/test_centralized.mli:
