test/test_dbsim.ml: Alcotest Dbsim Float Int64 List QCheck QCheck_alcotest String Wal
