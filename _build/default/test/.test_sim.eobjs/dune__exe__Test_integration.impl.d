test/test_integration.ml: Alcotest Ava3 Baseline Dbsim Int64 List Option Printf QCheck QCheck_alcotest Sim String Vstore Wal Workload
