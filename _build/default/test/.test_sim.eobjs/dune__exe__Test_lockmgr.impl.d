test/test_lockmgr.ml: Alcotest Gen List Lockmgr Printf QCheck QCheck_alcotest Sim
