test/test_net.ml: Alcotest List Net Sim
