test/test_sim.ml: Alcotest Array Buffer Int64 List Printf QCheck QCheck_alcotest Sim String
