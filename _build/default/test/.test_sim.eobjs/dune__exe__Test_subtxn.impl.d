test/test_subtxn.ml: Alcotest Ava3 Lockmgr Sim Vstore
