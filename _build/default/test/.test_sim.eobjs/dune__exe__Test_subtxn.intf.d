test/test_subtxn.mli:
