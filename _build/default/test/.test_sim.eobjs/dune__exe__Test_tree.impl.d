test/test_tree.ml: Alcotest Ava3 Int64 List Net Printf QCheck QCheck_alcotest Sim Vstore
