test/test_vstore.ml: Alcotest List Option Printf QCheck QCheck_alcotest Vstore
