test/test_vstore.mli:
