test/test_wal.ml: Alcotest List Printf QCheck QCheck_alcotest Vstore Wal
