test/test_workload.ml: Alcotest Baseline Dbsim Gen List QCheck QCheck_alcotest Sim String Workload
