(* Tests for the baseline protocols and the workload machinery, plus the
   cross-protocol behavioural contrasts the paper claims. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Zipf and keyspace} *)

let test_zipf_skew () =
  let z = Workload.Zipf.create ~n:100 ~theta:1.0 in
  let rng = Sim.Rng.create 5L in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  check_bool "rank 0 much hotter than rank 50" true
    (counts.(0) > 10 * counts.(50));
  check_bool "all samples in range" true (Array.for_all (fun c -> c >= 0) counts)

let test_zipf_uniform () =
  let z = Workload.Zipf.create ~n:10 ~theta:0.0 in
  let rng = Sim.Rng.create 6L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_histogram () =
  let h = Workload.Histogram.create () in
  for i = 1 to 100 do
    Workload.Histogram.add h (float_of_int i)
  done;
  check_int "count" 100 (Workload.Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Workload.Histogram.mean h);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Workload.Histogram.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Workload.Histogram.percentile h 0.99);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Workload.Histogram.max_value h)

let test_keyspace () =
  let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:10 ~theta:0.5 in
  let rng = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    let node, key = Workload.Keyspace.draw ks rng in
    check_bool "node in range" true (node >= 0 && node < 3);
    check_bool "key belongs to node" true
      (String.length key > 1 && key.[1] = Char.chr (Char.code '0' + node))
  done;
  check_int "all_keys size" 10 (List.length (Workload.Keyspace.all_keys ks ~node:0))

(* {1 Driver smoke tests per protocol} *)

let small_spec =
  {
    Workload.Driver.default_spec with
    duration = 300.0;
    update_rate = 0.3;
    query_rate = 0.15;
    long_query_period = 100.0;
    long_query_reads = 12;
  }

let preload load_fn db ks =
  for n = 0 to Workload.Keyspace.nodes ks - 1 do
    load_fn db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done

let run_driver (type db) (module Db : Workload.Db_intf.DB with type t = db)
    (make : Sim.Engine.t -> db) (load : db -> node:int -> (string * int) list -> unit) =
  let engine = Sim.Engine.create ~seed:99L () in
  let db = make engine in
  let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:20 ~theta:0.9 in
  preload load db ks;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let report =
    Workload.Driver.run
      (module Db)
      db ~engine ~rng ~keyspace:ks ~spec:small_spec
  in
  (db, report)

let assert_healthy (report : Workload.Driver.report) =
  check_bool "some commits" true (report.Workload.Driver.committed > 20);
  check_bool "some queries" true (report.Workload.Driver.queries_ok > 10);
  check_bool "no failed queries" true (report.Workload.Driver.queries_failed = 0)

let test_driver_ava3 () =
  let db, report =
    run_driver
      (module Baseline.Ava3_db)
      (fun engine ->
        Baseline.Ava3_db.create ~engine ~advancement_period:50.0
          ~advancement_until:300.0 ~nodes:3 ())
      Baseline.Ava3_db.load
  in
  assert_healthy report;
  check_bool "at most 3 versions" true (Baseline.Ava3_db.max_versions_ever db <= 3);
  check_bool "advancements happened" true
    (List.assoc "advancements" (Baseline.Ava3_db.extra_stats db) > 1.0);
  check_bool "staleness measured" true
    (Workload.Histogram.count report.Workload.Driver.staleness > 0);
  Alcotest.(check (list string))
    "invariants hold" []
    (Ava3.Cluster.check_invariants (Baseline.Ava3_db.cluster db))

let test_driver_ava3_tree_mode () =
  (* The adapter's tree mode runs the same workload through the R*-style
     executor with concurrent subtransactions. *)
  let db, report =
    run_driver
      (module Baseline.Ava3_db)
      (fun engine ->
        Baseline.Ava3_db.create ~engine ~advancement_period:50.0
          ~advancement_until:300.0 ~use_tree:true ~nodes:3 ())
      Baseline.Ava3_db.load
  in
  assert_healthy report;
  check_bool "at most 3 versions" true (Baseline.Ava3_db.max_versions_ever db <= 3);
  Alcotest.(check (list string))
    "invariants hold under tree execution" []
    (Ava3.Cluster.check_invariants (Baseline.Ava3_db.cluster db))

let test_driver_s2pl () =
  let db, report =
    run_driver
      (module Baseline.S2pl)
      (fun engine -> Baseline.S2pl.create ~engine ~nodes:3 ())
      Baseline.S2pl.load
  in
  assert_healthy report;
  check_int "single version" 1 (Baseline.S2pl.max_versions_ever db)

let test_driver_two_version () =
  let db, report =
    run_driver
      (module Baseline.Two_version)
      (fun engine -> Baseline.Two_version.create ~engine ~nodes:3 ())
      Baseline.Two_version.load
  in
  assert_healthy report;
  check_int "two versions" 2 (Baseline.Two_version.max_versions_ever db)

let test_driver_mvcc () =
  let db, report =
    run_driver
      (module Baseline.Mvcc)
      (fun engine -> Baseline.Mvcc.create ~engine ~nodes:3 ())
      Baseline.Mvcc.load
  in
  assert_healthy report;
  check_bool "chains can exceed three" true
    (Baseline.Mvcc.max_versions_ever db >= 1)

let test_driver_four_version () =
  let db, report =
    run_driver
      (module Baseline.Four_version)
      (fun engine ->
        Baseline.Four_version.create ~engine ~advancement_period:50.0
          ~advancement_until:300.0 ~nodes:3 ())
      Baseline.Four_version.load
  in
  assert_healthy report;
  check_bool "at most 4 versions" true
    (Baseline.Four_version.max_versions_ever db <= 4)

(* {1 Behavioural contrasts (small-scale versions of experiment E5/E7)} *)

(* Under S2PL a long query blocks writers; under AVA3 it does not. *)
let test_contrast_query_interference () =
  let blocking_spec =
    {
      small_spec with
      duration = 400.0;
      long_query_period = 50.0;
      long_query_reads = 30;
    }
  in
  let run_s2pl () =
    let engine = Sim.Engine.create ~seed:3L () in
    let db = Baseline.S2pl.create ~engine ~nodes:3 () in
    let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:20 ~theta:0.9 in
    preload Baseline.S2pl.load db ks;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let _ =
      Workload.Driver.run
        (module Baseline.S2pl)
        db ~engine ~rng ~keyspace:ks ~spec:blocking_spec
    in
    List.assoc "lock_wait_time" (Baseline.S2pl.extra_stats db)
  in
  let run_ava3 () =
    let engine = Sim.Engine.create ~seed:3L () in
    let db =
      Baseline.Ava3_db.create ~engine ~advancement_period:50.0
        ~advancement_until:400.0 ~nodes:3 ()
    in
    let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:20 ~theta:0.9 in
    preload Baseline.Ava3_db.load db ks;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let _ =
      Workload.Driver.run
        (module Baseline.Ava3_db)
        db ~engine ~rng ~keyspace:ks ~spec:blocking_spec
    in
    List.assoc "lock_wait_time" (Baseline.Ava3_db.extra_stats db)
  in
  (* AVA3's lock waiting comes only from update-update conflicts; S2PL adds
     query-update interference on a hot skewed keyspace. *)
  check_bool "s2pl waits more than ava3" true (run_s2pl () > run_ava3 ())

(* A long query makes unbounded MVCC grow version chains beyond three. *)
let test_contrast_mvcc_growth () =
  let engine = Sim.Engine.create ~seed:11L () in
  let db = Baseline.Mvcc.create ~engine ~nodes:2 () in
  Baseline.Mvcc.load db ~node:0 [ ("hot", 0) ];
  Baseline.Mvcc.load db ~node:1 [ ("cold", 0) ];
  (* One very long query pins the GC horizon... *)
  Sim.Engine.spawn engine (fun () ->
      ignore
        (Baseline.Mvcc.submit_query db ~root:1
           ~reads:(List.init 40 (fun _ -> (1, "cold")))));
  (* ...while a stream of writers keeps updating the hot item. *)
  for i = 1 to 30 do
    Sim.Engine.schedule engine
      ~delay:(float_of_int i *. 0.1)
      (fun () ->
        ignore
          (Baseline.Mvcc.submit_update db ~root:0
             ~ops:[ Workload.Db_intf.Write { node = 0; key = "hot"; value = i } ]))
  done;
  Sim.Engine.run engine;
  check_bool "chain grew beyond AVA3's bound" true
    (Baseline.Mvcc.max_versions_ever db > 3)

(* The synchronous-advancement four-version scheme aborts transactions that
   straddle an advancement; AVA3 never does. *)
let test_contrast_sync_advancement_aborts () =
  let engine = Sim.Engine.create ~seed:21L () in
  let db =
    Baseline.Four_version.create ~engine ~read_service_time:0.0
      ~write_service_time:0.0 ~advancement_period:0.0 ~nodes:2 ()
  in
  Baseline.Four_version.load db ~node:0 [ ("a", 0) ];
  Baseline.Four_version.load db ~node:1 [ ("b", 0) ];
  let cluster = Baseline.Four_version.cluster db in
  (* A transaction that writes on node 0, lingers across an advancement,
     then writes on node 1 — a guaranteed version mismatch. *)
  Sim.Engine.spawn engine (fun () ->
      ignore
        (Baseline.Four_version.submit_update db ~root:0
           ~ops:
             [
               Workload.Db_intf.Write { node = 0; key = "a"; value = 1 };
               Workload.Db_intf.Read { node = 0; key = "a" };
             ]));
  Sim.Engine.spawn engine (fun () ->
      ignore
        (Ava3.Cluster.run_update cluster ~root:0
           ~ops:
             [
               Ava3.Update_exec.Write { node = 0; key = "a"; value = 2 };
               Ava3.Update_exec.Pause 30.0;
               Ava3.Update_exec.Write { node = 1; key = "b"; value = 2 };
             ]));
  Sim.Engine.schedule engine ~delay:5.0 (fun () ->
      Net.Network.send (Ava3.Cluster.network cluster) ~src:1 ~dst:1
        (Ava3.Messages.Advance_u { newu = 2 }));
  Sim.Engine.run engine;
  let s = Ava3.Cluster.stats cluster in
  check_bool "straddling transaction aborted" true (s.Ava3.Cluster.aborts >= 1);
  check_int "no moveToFuture in sync mode" 0
    (s.Ava3.Cluster.mtf_data_access + s.Ava3.Cluster.mtf_commit_time)

(* Four-version mode really retains a fourth version and never makes
   Phase 2 wait for queries. *)
let test_four_version_phase2_no_wait () =
  let engine = Sim.Engine.create ~seed:31L () in
  let db =
    Baseline.Four_version.create ~engine ~advancement_period:0.0 ~nodes:1 ()
  in
  Baseline.Four_version.load db ~node:0 [ ("x", 0) ];
  let cluster = Baseline.Four_version.cluster db in
  let advanced_at = ref infinity and query_done_at = ref infinity in
  (* Long-running query on version 0. *)
  Sim.Engine.spawn engine (fun () ->
      ignore
        (Ava3.Cluster.run_query cluster ~root:0
           ~reads:(List.init 400 (fun _ -> (0, "x"))));
      query_done_at := Sim.Engine.now engine);
  Sim.Engine.schedule engine ~delay:1.0 (fun () ->
      ignore
        (Ava3.Cluster.run_update cluster ~root:0
           ~ops:[ Ava3.Update_exec.Write { node = 0; key = "x"; value = 1 } ]));
  Sim.Engine.schedule engine ~delay:5.0 (fun () ->
      match Ava3.Cluster.advance_and_wait cluster ~coordinator:0 with
      | `Completed _ -> advanced_at := Sim.Engine.now engine
      | `Busy -> Alcotest.fail "busy");
  Sim.Engine.run engine;
  check_bool "advancement did not wait for the long query" true
    (!advanced_at < !query_done_at)

let () =
  Alcotest.run "baseline"
    [
      ( "workload",
        [
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "keyspace" `Quick test_keyspace;
        ] );
      ( "driver",
        [
          Alcotest.test_case "ava3" `Quick test_driver_ava3;
          Alcotest.test_case "ava3 tree mode" `Quick test_driver_ava3_tree_mode;
          Alcotest.test_case "s2pl" `Quick test_driver_s2pl;
          Alcotest.test_case "two-version" `Quick test_driver_two_version;
          Alcotest.test_case "mvcc" `Quick test_driver_mvcc;
          Alcotest.test_case "four-version" `Quick test_driver_four_version;
        ] );
      ( "contrasts",
        [
          Alcotest.test_case "query interference" `Quick
            test_contrast_query_interference;
          Alcotest.test_case "mvcc chain growth" `Quick test_contrast_mvcc_growth;
          Alcotest.test_case "sync advancement aborts" `Quick
            test_contrast_sync_advancement_aborts;
          Alcotest.test_case "four-version phase2 no wait" `Quick
            test_four_version_phase2_no_wait;
        ] );
    ]
