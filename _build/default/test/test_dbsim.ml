(* Integration tests of the experiment harness: the Table 1 and Figure 1
   reproductions must pass their own checks, and the quantitative
   experiments must show the paper's claimed shapes. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let no_violations what = Alcotest.(check (list string)) what []

(* {1 Table 1} *)

let test_table1_no_undo () =
  let r = Dbsim.Table1.run ~scheme:Wal.Scheme.No_undo () in
  no_violations "table1 under no-undo" r.Dbsim.Table1.violations;
  check_bool "events recorded" true (List.length r.Dbsim.Table1.events > 20)

let test_table1_undo_redo () =
  let r = Dbsim.Table1.run ~scheme:Wal.Scheme.Undo_redo () in
  no_violations "table1 under undo-redo" r.Dbsim.Table1.violations

let test_table1_renders () =
  let r = Dbsim.Table1.run () in
  let s = Dbsim.Table1.render r in
  check_bool "mentions moveToFuture" true
    (String.length s > 500
    &&
    let needle = "moveToFuture" in
    let rec scan i =
      i + String.length needle <= String.length s
      && (String.sub s i (String.length needle) = needle || scan (i + 1))
    in
    scan 0)

(* {1 Figure 1} *)

let test_figure1_base () =
  let f = Dbsim.Figure1.run () in
  no_violations "figure1 base" f.Dbsim.Figure1.violations;
  let t = f.Dbsim.Figure1.timings in
  check_bool "phases ordered" true
    (t.Dbsim.Figure1.advancement_started < t.Dbsim.Figure1.phase1_complete
    && t.Dbsim.Figure1.phase1_complete < t.Dbsim.Figure1.phase2_complete
    && t.Dbsim.Figure1.phase2_complete <= t.Dbsim.Figure1.gc_complete)

let test_figure1_eager () =
  let f = Dbsim.Figure1.run ~eager_handoff:true () in
  no_violations "figure1 eager" f.Dbsim.Figure1.violations

let test_figure1_durations_scale () =
  (* Doubling the long query's length stretches Phase 2 accordingly. *)
  let f1 = Dbsim.Figure1.run ~long_query_duration:60.0 () in
  let f2 = Dbsim.Figure1.run ~long_query_duration:120.0 () in
  let span f =
    f.Dbsim.Figure1.timings.Dbsim.Figure1.phase2_complete
    -. f.Dbsim.Figure1.timings.Dbsim.Figure1.phase1_complete
  in
  check_bool "phase2 tracks query length" true (span f2 > span f1 +. 30.0)

(* {1 Experiments} *)

let test_invariants_clean () =
  let r = Dbsim.Experiment.invariants ~nodes:3 ~duration:600.0 () in
  check_int "no violations" 0 r.Dbsim.Experiment.violations;
  check_bool "work happened" true
    (r.Dbsim.Experiment.commits > 50 && r.Dbsim.Experiment.advancements > 3);
  check_bool "three version bound" true (r.Dbsim.Experiment.max_versions_ever <= 3)

let test_staleness_monotone () =
  let points =
    Dbsim.Experiment.staleness_sweep ~periods:[ 50.0; 200.0 ] ~eager:false ()
  in
  match points with
  | [ fast; slow ] ->
      check_bool "staleness grows with period" true
        (slow.Dbsim.Experiment.mean_staleness
        > fast.Dbsim.Experiment.mean_staleness +. 10.0);
      check_bool "staleness bounded by period + txn time" true
        (fast.Dbsim.Experiment.max_staleness < 3.0 *. fast.Dbsim.Experiment.period)
  | _ -> Alcotest.fail "unexpected sweep size"

let test_staleness_bound_optimisation () =
  let b = Dbsim.Experiment.staleness_bound ~long_txn_duration:80.0 () in
  check_bool "plain lag tracks the long transaction" true
    (b.Dbsim.Experiment.publish_lag_plain > 0.6 *. b.Dbsim.Experiment.long_txn_duration);
  check_bool "eager hand-off cuts the lag" true
    (b.Dbsim.Experiment.publish_lag_eager
    < b.Dbsim.Experiment.publish_lag_plain /. 2.0)

let test_comparison_shapes () =
  let rows = Dbsim.Experiment.comparison ~duration:800.0 () in
  let find name =
    List.find (fun r -> r.Dbsim.Experiment.protocol = name) rows
  in
  let ava3 = find "ava3" in
  let s2pl = find "s2pl" in
  let twov = find "two-version" in
  let mvcc = find "mvcc-unbounded" in
  let fourv = find "four-version-sync" in
  (* Who wins and why — the shape of the paper's §9 comparison table. *)
  check_bool "ava3 caps versions at 3" true (ava3.Dbsim.Experiment.max_versions <= 3);
  check_bool "fourv needs an extra version slot" true
    (fourv.Dbsim.Experiment.max_versions <= 4);
  check_bool "mvcc grows beyond three versions" true
    (mvcc.Dbsim.Experiment.max_versions > 3);
  check_bool "s2pl suffers query interference" true
    (s2pl.Dbsim.Experiment.query_p95 > ava3.Dbsim.Experiment.query_p95);
  check_bool "s2pl interference is lock waiting" true
    (s2pl.Dbsim.Experiment.interference_metric
    > 10.0 *. Float.max 1.0 ava3.Dbsim.Experiment.interference_metric);
  check_bool "two-version delays writer commits" true
    (twov.Dbsim.Experiment.interference_metric > 0.0);
  check_bool "only ava3/fourv read stale data" true
    (ava3.Dbsim.Experiment.staleness_mean > 0.0
    && mvcc.Dbsim.Experiment.staleness_mean = 0.0)

let test_piggyback_targeted () =
  let p = Dbsim.Experiment.piggyback_targeted () in
  check_bool "plain straddlers need commit-time repair" true
    (p.Dbsim.Experiment.commit_mtf_plain >= p.Dbsim.Experiment.staged / 2);
  check_int "piggyback eliminates them" 0 p.Dbsim.Experiment.commit_mtf_piggyback

let test_centralized_trade () =
  match Dbsim.Experiment.centralized () with
  | [ ava3; fourv ] ->
      check_bool "ava3 keeps fewer steady versions" true
        (ava3.Dbsim.Experiment.steady_versions
        < fourv.Dbsim.Experiment.steady_versions);
      check_bool "fourv advances faster" true
        (fourv.Dbsim.Experiment.advancement_mean_latency
        < ava3.Dbsim.Experiment.advancement_mean_latency);
      check_bool "both ran advancements" true
        (ava3.Dbsim.Experiment.advancements >= 5
        && fourv.Dbsim.Experiment.advancements >= 5)
  | _ -> Alcotest.fail "expected two variants"

let test_sync_advancement_aborts () =
  let s = Dbsim.Experiment.sync_advancement_aborts () in
  check_int "ava3 advancement aborts nothing" 0
    s.Dbsim.Experiment.ava3_aborts_from_advancement;
  check_bool "synchronous scheme aborts straddlers" true
    (s.Dbsim.Experiment.fourv_mismatch_aborts > 0)



let test_ablations_consistent () =
  let rows = Dbsim.Experiment.ablations ~duration:500.0 () in
  (match rows with
  | base :: rest ->
      List.iter
        (fun r ->
          check_int "same workload commits" base.Dbsim.Experiment.abl_commits
            r.Dbsim.Experiment.abl_commits)
        rest;
      let root_only =
        List.find
          (fun r ->
            String.length r.Dbsim.Experiment.ablation >= 5
            && String.sub r.Dbsim.Experiment.ablation 0 5 = "+root")
          rows
      in
      check_bool "root-only counters cut latch work" true
        (root_only.Dbsim.Experiment.abl_latches < base.Dbsim.Experiment.abl_latches)
  | [] -> Alcotest.fail "no ablation rows")

let test_gc_cost_rules () =
  match Dbsim.Experiment.gc_cost () with
  | [ renumber; in_place ] ->
      check_bool "paper rule scans everything" true
        (renumber.Dbsim.Experiment.items_visited
        = renumber.Dbsim.Experiment.full_scan_equivalent);
      check_bool "in-place rule visits far less" true
        (in_place.Dbsim.Experiment.items_visited * 4
        < in_place.Dbsim.Experiment.full_scan_equivalent)
  | _ -> Alcotest.fail "expected two gc rules"

let test_tree_vs_flat_latency () =
  let rows = Dbsim.Experiment.tree_vs_flat () in
  List.iter
    (fun r ->
      if r.Dbsim.Experiment.fanout >= 2 then
        check_bool "tree beats flat at fanout >= 2" true
          (r.Dbsim.Experiment.tree_latency < r.Dbsim.Experiment.flat_latency))
    rows;
  (* Tree latency stays flat while flat grows linearly. *)
  match (List.hd rows, List.nth rows (List.length rows - 1)) with
  | first, last ->
      check_bool "tree latency constant in fanout" true
        (last.Dbsim.Experiment.tree_latency
        < first.Dbsim.Experiment.tree_latency +. 2.0);
      check_bool "flat latency grows" true
        (last.Dbsim.Experiment.flat_latency
        > 3.0 *. first.Dbsim.Experiment.flat_latency)

(* {1 Serializability checking (Theorem 6.2, executable)} *)

let test_serializability_default () =
  let v = Dbsim.Serial_check.check () in
  Alcotest.(check (list string)) "no serialization anomalies" []
    v.Dbsim.Serial_check.errors;
  Alcotest.(check bool) "meaningful history" true
    (v.Dbsim.Serial_check.transactions_checked > 30
    && v.Dbsim.Serial_check.queries_checked > 10)

let prop_serializable_histories =
  QCheck.Test.make ~name:"random histories replay serially (Theorem 6.2)"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let v = Dbsim.Serial_check.check ~seed:(Int64.of_int seed) () in
      match v.Dbsim.Serial_check.errors with
      | [] -> true
      | e :: _ -> QCheck.Test.fail_reportf "serialization anomaly: %s" e)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "dbsim"
    [
      ( "table1",
        [
          Alcotest.test_case "no-undo scheme" `Quick test_table1_no_undo;
          Alcotest.test_case "undo-redo scheme" `Quick test_table1_undo_redo;
          Alcotest.test_case "renders" `Quick test_table1_renders;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "base protocol" `Quick test_figure1_base;
          Alcotest.test_case "eager hand-off" `Quick test_figure1_eager;
          Alcotest.test_case "durations scale" `Quick test_figure1_durations_scale;
        ] );
      ( "serializability",
        [
          Alcotest.test_case "default run" `Quick test_serializability_default;
        ]
        @ qc [ prop_serializable_histories ] );
      ( "experiments",
        [
          Alcotest.test_case "E3 invariants clean" `Slow test_invariants_clean;
          Alcotest.test_case "E4 staleness monotone" `Slow test_staleness_monotone;
          Alcotest.test_case "E4 bound optimisation" `Quick
            test_staleness_bound_optimisation;
          Alcotest.test_case "E5 comparison shapes" `Slow test_comparison_shapes;
          Alcotest.test_case "E6 piggyback targeted" `Quick test_piggyback_targeted;
          Alcotest.test_case "E7 centralized trade" `Quick test_centralized_trade;
          Alcotest.test_case "E7 sync advancement aborts" `Slow
            test_sync_advancement_aborts;
          Alcotest.test_case "E8a ablations consistent" `Slow
            test_ablations_consistent;
          Alcotest.test_case "E8b gc cost rules" `Quick test_gc_cost_rules;
          Alcotest.test_case "E8c tree vs flat" `Quick test_tree_vs_flat_latency;
        ] );
    ]
