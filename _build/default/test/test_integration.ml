(* Cross-module integration and fuzz tests: crash/recovery equivalence,
   advancement under chaos, determinism of whole runs. *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec

let check_bool = Alcotest.(check bool)

(* {1 Crash-recovery equivalence} *)

(* Run a random committed-only workload on one node, snapshot the visible
   state, crash + recover, snapshot again: they must agree.  (Committed-only:
   we stop the workload and let everything finish before crashing.) *)
let prop_recovery_equivalence =
  QCheck.Test.make ~name:"crash recovery preserves exactly the committed state"
    ~count:30
    QCheck.(pair (int_bound 100_000) (int_range 1 40))
    (fun (seed, txns) ->
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
      let config =
        {
          Ava3.Config.default with
          scheme =
            (if seed mod 2 = 0 then Wal.Scheme.No_undo else Wal.Scheme.Undo_redo);
          read_service_time = 0.1;
          write_service_time = 0.1;
        }
      in
      let db : int Cluster.t = Cluster.create ~engine ~config ~nodes:2 () in
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      Cluster.load db ~node:0 (List.init 6 (fun i -> (Printf.sprintf "a%d" i, i)));
      Cluster.load db ~node:1 (List.init 6 (fun i -> (Printf.sprintf "b%d" i, i)));
      let key node = Printf.sprintf "%c%d" (if node = 0 then 'a' else 'b') (Sim.Rng.int rng 6) in
      for _ = 1 to txns do
        let delay = Sim.Rng.float rng 200.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            let root = Sim.Rng.int rng 2 in
            let ops =
              List.init
                (1 + Sim.Rng.int rng 3)
                (fun _ ->
                  let n = Sim.Rng.int rng 2 in
                  match Sim.Rng.int rng 4 with
                  | 0 -> Update.Read { node = n; key = key n }
                  | 1 -> Update.Delete { node = n; key = key n }
                  | _ -> Update.Write { node = n; key = key n; value = Sim.Rng.int rng 1000 })
            in
            ignore (Cluster.run_update_with_retry db ~root ~ops ()))
      done;
      (* A couple of advancements mixed in. *)
      Sim.Engine.schedule engine ~delay:80.0 (fun () ->
          ignore (Cluster.advance db ~coordinator:0));
      Sim.Engine.schedule engine ~delay:160.0 (fun () ->
          ignore (Cluster.advance db ~coordinator:1));
      Sim.Engine.run engine;
      (* Snapshot node 0's VISIBLE state: what queries (at q) and update
         transactions (at u) can read.  Physical version sets may differ
         benignly after recovery — e.g. a dead tombstone kept alive during
         GC by an uncommitted in-place entry — so we compare reads, not
         internals. *)
      let snapshot () =
        let nd = Cluster.node db 0 in
        let store = Ava3.Node_state.store nd in
        List.init 6 (fun i ->
            let k = Printf.sprintf "a%d" i in
            ( Vstore.Store.read_le store k (Ava3.Node_state.q nd),
              Vstore.Store.read_le store k (Ava3.Node_state.u nd),
              Vstore.Store.read_le store k max_int ))
      in
      let before = snapshot () in
      Cluster.crash db ~node:0;
      Cluster.recover db ~node:0;
      Sim.Engine.run engine;
      let after = snapshot () in
      if before <> after then
        QCheck.Test.fail_reportf "state diverged after recovery"
      else true)

(* {1 Chaos: crashes during advancement} *)

let prop_advancement_survives_chaos =
  QCheck.Test.make ~name:"advancement converges despite crashes" ~count:20
    QCheck.(pair (int_bound 100_000) (int_range 0 2))
    (fun (seed, victim) ->
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
      let config = { Ava3.Config.default with advancement_retry = 25.0 } in
      let db : int Cluster.t = Cluster.create ~engine ~config ~nodes:3 () in
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      Cluster.load db ~node:0 [ ("x", 1) ];
      (* Start an advancement, crash a random node at a random moment during
         it, recover later; the round must still complete. *)
      let coordinator = Sim.Rng.int rng 3 in
      Sim.Engine.schedule engine ~delay:5.0 (fun () ->
          ignore (Cluster.advance db ~coordinator));
      let crash_at = 5.0 +. Sim.Rng.float rng 10.0 in
      Sim.Engine.schedule engine ~delay:crash_at (fun () ->
          Cluster.crash db ~node:victim);
      Sim.Engine.schedule engine ~delay:(crash_at +. 40.0) (fun () ->
          Cluster.recover db ~node:victim);
      (* If the victim was the coordinator, its run dies with it; another
         node resumes the stalled round later. *)
      Sim.Engine.schedule engine ~delay:(crash_at +. 80.0) (fun () ->
          ignore (Cluster.advance db ~coordinator:((victim + 1) mod 3)));
      Sim.Engine.run ~until:2000.0 engine;
      let ok = ref true in
      for i = 0 to 2 do
        let nd = Cluster.node db i in
        if Ava3.Node_state.u nd < 2 || Ava3.Node_state.q nd < 1 then ok := false
      done;
      if not !ok then QCheck.Test.fail_reportf "advancement never converged"
      else if Cluster.check_invariants db <> [] then
        QCheck.Test.fail_reportf "invariants violated after chaos"
      else true)

(* {1 Snapshot consistency: conserved ledger}

   Accounts across all nodes start with a fixed total; concurrent transfer
   transactions move money around (two RMW ops, possibly on different
   nodes) while advancements run.  Serializability + snapshot reads mean
   EVERY query must see the exact initial total — a partially-applied
   transfer or a torn snapshot would break the sum. *)
let prop_conserved_ledger =
  QCheck.Test.make ~name:"every query snapshot conserves the ledger total"
    ~count:25
    QCheck.(pair (int_bound 100_000) (int_range 2 4))
    (fun (seed, nodes) ->
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
      let config =
        { Ava3.Config.default with read_service_time = 0.2; write_service_time = 0.3 }
      in
      let db : int Cluster.t = Cluster.create ~engine ~config ~nodes () in
      let accounts_per_node = 4 in
      let initial = 100 in
      let total = nodes * accounts_per_node * initial in
      let account n i = Printf.sprintf "acct-%d-%d" n i in
      for n = 0 to nodes - 1 do
        Cluster.load db ~node:n
          (List.init accounts_per_node (fun i -> (account n i, initial)))
      done;
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      let pick () =
        let n = Sim.Rng.int rng nodes in
        (n, account n (Sim.Rng.int rng accounts_per_node))
      in
      (* Transfers. *)
      for _ = 1 to 30 do
        let delay = Sim.Rng.float rng 300.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            let (n1, a1) = pick () and (n2, a2) = pick () in
            if a1 <> a2 then begin
              let amount = 1 + Sim.Rng.int rng 20 in
              ignore
                (Cluster.run_update_with_retry db ~root:n1
                   ~ops:
                     [
                       Update.Read_modify_write
                         { node = n1; key = a1; f = (fun v -> Option.value v ~default:0 - amount) };
                       Update.Read_modify_write
                         { node = n2; key = a2; f = (fun v -> Option.value v ~default:0 + amount) };
                     ]
                   ())
            end)
      done;
      (* Advancements interleaved. *)
      for k = 0 to 2 do
        Sim.Engine.schedule engine ~delay:(60.0 +. (90.0 *. float_of_int k))
          (fun () -> ignore (Cluster.advance db ~coordinator:(k mod nodes)))
      done;
      (* Auditing queries: full scans at random times. *)
      let violations = ref 0 and audits = ref 0 in
      let all_reads =
        List.concat_map
          (fun n -> List.init accounts_per_node (fun i -> (n, account n i)))
          (List.init nodes (fun n -> n))
      in
      for _ = 1 to 15 do
        let delay = Sim.Rng.float rng 350.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            let q = Cluster.run_query db ~root:(Sim.Rng.int rng nodes) ~reads:all_reads in
            let sum =
              List.fold_left
                (fun acc (_, _, v) -> acc + Option.value v ~default:0)
                0 q.Ava3.Query_exec.values
            in
            incr audits;
            if sum <> total then incr violations)
      done;
      Sim.Engine.run engine;
      if !violations > 0 then
        QCheck.Test.fail_reportf "%d of %d audits saw a torn total" !violations !audits
      else !audits > 0)

(* {1 Determinism of full runs} *)

let run_fingerprint seed =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~advancement_period:60.0
      ~advancement_until:400.0 ~nodes:3 ()
  in
  let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:30 ~theta:0.9 in
  for n = 0 to 2 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Workload.Driver.default_spec with
      duration = 400.0;
      update_rate = 0.3;
      query_rate = 0.2;
    }
  in
  let report =
    Workload.Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks
      ~spec
  in
  let stats = Ava3.Cluster.stats (Baseline.Ava3_db.cluster db) in
  ( report.Workload.Driver.committed,
    report.Workload.Driver.aborted,
    report.Workload.Driver.queries_ok,
    stats.Ava3.Cluster.messages,
    stats.Ava3.Cluster.mtf_data_access,
    stats.Ava3.Cluster.mtf_commit_time,
    Workload.Histogram.mean report.Workload.Driver.update_latency,
    Sim.Engine.now engine )

let test_full_run_deterministic () =
  let a = run_fingerprint 99L and b = run_fingerprint 99L in
  check_bool "identical fingerprints" true (a = b);
  let c = run_fingerprint 100L in
  check_bool "different seed differs" true (a <> c)

let test_table1_deterministic () =
  let event_times r =
    List.map (fun e -> (e.Dbsim.Table1.time, e.Dbsim.Table1.text)) r.Dbsim.Table1.events
  in
  let a = Dbsim.Table1.run () and b = Dbsim.Table1.run () in
  check_bool "identical traces" true (event_times a = event_times b)

(* {1 Multi-coordinator storms} *)

let prop_coordinator_storm =
  QCheck.Test.make ~name:"simultaneous coordinators always converge" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
      let db : int Cluster.t = Cluster.create ~engine ~nodes:4 () in
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      Cluster.load db ~node:0 [ ("x", 1) ];
      (* Several waves of advancement attempts from random nodes at random
         (close) times, plus background updates. *)
      for _ = 1 to 8 do
        let delay = Sim.Rng.float rng 120.0 in
        let k = Sim.Rng.int rng 4 in
        Sim.Engine.schedule engine ~delay (fun () ->
            ignore (Cluster.advance db ~coordinator:k))
      done;
      for _ = 1 to 12 do
        let delay = Sim.Rng.float rng 120.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            ignore
              (Cluster.run_update_with_retry db ~root:(Sim.Rng.int rng 4)
                 ~ops:[ Update.Write { node = Sim.Rng.int rng 4; key = "x"; value = 1 } ]
                 ()))
      done;
      Sim.Engine.run engine;
      (* All nodes agree and the system is quiescent-consistent. *)
      match
        Cluster.check_invariants db @ Cluster.check_quiescent_invariants db
      with
      | [] -> true
      | vs -> QCheck.Test.fail_reportf "violations: %s" (String.concat "; " vs))

(* Updates write to "x" at node picked randomly but key lives at node 0...
   every node's store is independent in this model, so a write through node
   n creates the item there; that is fine for the storm test. *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "integration"
    [
      ( "determinism",
        [
          Alcotest.test_case "full run fingerprint" `Quick
            test_full_run_deterministic;
          Alcotest.test_case "table1 trace" `Quick test_table1_deterministic;
        ] );
      ( "fuzz",
        qc
          [
            prop_recovery_equivalence;
            prop_advancement_survives_chaos;
            prop_coordinator_storm;
            prop_conserved_ledger;
          ] );
    ]
