(* Tests for the strict-2PL lock table: grants, queueing, upgrades,
   deadlock detection, and the prepare-time shared-lock release. *)

module Lt = Lockmgr.Lock_table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run a scenario of processes inside a fresh engine; returns after the
   engine drains. *)
let in_sim scenario =
  let e = Sim.Engine.create () in
  scenario e;
  Sim.Engine.run e;
  e

let test_shared_compatible () =
  let lt = Lt.create () in
  let granted = ref 0 in
  ignore
    (in_sim (fun e ->
         for owner = 1 to 3 do
           Sim.Engine.spawn e (fun () ->
               match Lt.acquire lt ~owner ~key:"x" Lt.Shared with
               | `Granted -> incr granted
               | `Deadlock -> ())
         done));
  check_int "all shared granted" 3 !granted;
  check_int "no waits" 0 (Lt.waits lt)

let test_exclusive_blocks () =
  let lt = Lt.create () in
  let order = ref [] in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive);
             order := `A_got :: !order;
             Sim.Engine.sleep 10.0;
             Lt.release_all lt ~owner:1;
             order := `A_released :: !order);
         Sim.Engine.schedule e ~delay:1.0 (fun () ->
             ignore (Lt.acquire lt ~owner:2 ~key:"x" Lt.Exclusive);
             order := `B_got :: !order)));
  Alcotest.(check bool)
    "B granted only after A released" true
    (List.rev !order = [ `A_got; `A_released; `B_got ]);
  check_int "one wait" 1 (Lt.waits lt)

let test_reacquire_held () =
  let lt = Lt.create () in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive);
             (* Both re-requests are immediate. *)
             (match Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive with
             | `Granted -> ()
             | `Deadlock -> Alcotest.fail "self re-acquire deadlocked");
             match Lt.acquire lt ~owner:1 ~key:"x" Lt.Shared with
             | `Granted -> ()
             | `Deadlock -> Alcotest.fail "S under X deadlocked")));
  check_int "no waits" 0 (Lt.waits lt)

let test_upgrade_sole_holder () =
  let lt = Lt.create () in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Shared);
             match Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive with
             | `Granted ->
                 check_bool "now exclusive" true
                   (Lt.holds lt ~owner:1 ~key:"x" = Some Lt.Exclusive)
             | `Deadlock -> Alcotest.fail "sole-holder upgrade deadlocked")));
  check_int "immediate upgrade" 0 (Lt.waits lt)

let test_upgrade_waits_for_other_reader () =
  let lt = Lt.create () in
  let upgraded_at = ref 0.0 in
  let e =
    in_sim (fun e ->
        Sim.Engine.spawn e (fun () ->
            ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Shared);
            Sim.Engine.sleep 10.0;
            Lt.release_all lt ~owner:1);
        Sim.Engine.schedule e ~delay:1.0 (fun () ->
            ignore (Lt.acquire lt ~owner:2 ~key:"x" Lt.Shared);
            match Lt.acquire lt ~owner:2 ~key:"x" Lt.Exclusive with
            | `Granted -> upgraded_at := Sim.Engine.now (Sim.Engine.current ())
            | `Deadlock -> Alcotest.fail "upgrade deadlocked"))
  in
  ignore e;
  Alcotest.(check (float 1e-9)) "upgrade granted at release" 10.0 !upgraded_at

let test_deadlock_detected () =
  let lt = Lt.create () in
  let outcomes = ref [] in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive);
             Sim.Engine.sleep 5.0;
             let r = Lt.acquire lt ~owner:1 ~key:"y" Lt.Exclusive in
             outcomes := (1, r) :: !outcomes;
             Lt.release_all lt ~owner:1);
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:2 ~key:"y" Lt.Exclusive);
             Sim.Engine.sleep 5.0;
             let r = Lt.acquire lt ~owner:2 ~key:"x" Lt.Exclusive in
             outcomes := (2, r) :: !outcomes;
             Lt.release_all lt ~owner:2)));
  check_int "both finished" 2 (List.length !outcomes);
  check_int "exactly one deadlock victim" 1 (Lt.deadlocks lt);
  let victims = List.filter (fun (_, r) -> r = `Deadlock) !outcomes in
  check_int "one victim reported" 1 (List.length victims)

let test_upgrade_deadlock () =
  (* Two readers both upgrading: a classic conversion deadlock. *)
  let lt = Lt.create () in
  let deadlocks = ref 0 and grants = ref 0 in
  ignore
    (in_sim (fun e ->
         for owner = 1 to 2 do
           Sim.Engine.spawn e (fun () ->
               ignore (Lt.acquire lt ~owner ~key:"x" Lt.Shared);
               Sim.Engine.sleep 2.0;
               (match Lt.acquire lt ~owner ~key:"x" Lt.Exclusive with
               | `Granted -> incr grants
               | `Deadlock -> incr deadlocks);
               Lt.release_all lt ~owner)
         done));
  check_int "one aborted" 1 !deadlocks;
  check_int "one upgraded" 1 !grants

let test_release_shared_only () =
  let lt = Lt.create () in
  let reader2_done = ref false in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"r" Lt.Shared);
             ignore (Lt.acquire lt ~owner:1 ~key:"w" Lt.Exclusive);
             Sim.Engine.sleep 5.0;
             (* Prepare time: reads unlock, writes stay. *)
             Lt.release_shared lt ~owner:1;
             check_bool "S gone" true (Lt.holds lt ~owner:1 ~key:"r" = None);
             check_bool "X kept" true
               (Lt.holds lt ~owner:1 ~key:"w" = Some Lt.Exclusive);
             Sim.Engine.sleep 20.0;
             Lt.release_all lt ~owner:1);
         Sim.Engine.schedule e ~delay:6.0 (fun () ->
             (* After release_shared, another writer can take "r". *)
             ignore (Lt.acquire lt ~owner:2 ~key:"r" Lt.Exclusive);
             reader2_done := true)));
  check_bool "writer got released key" true !reader2_done

let test_fifo_no_starvation () =
  let lt = Lt.create () in
  let order = ref [] in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive);
             Sim.Engine.sleep 10.0;
             Lt.release_all lt ~owner:1);
         (* A writer queues first, then a reader: the reader must not jump
            the queue even though it is compatible with the holder. *)
         Sim.Engine.schedule e ~delay:1.0 (fun () ->
             ignore (Lt.acquire lt ~owner:2 ~key:"x" Lt.Exclusive);
             order := 2 :: !order;
             Sim.Engine.sleep 5.0;
             Lt.release_all lt ~owner:2);
         Sim.Engine.schedule e ~delay:2.0 (fun () ->
             ignore (Lt.acquire lt ~owner:3 ~key:"x" Lt.Shared);
             order := 3 :: !order;
             Lt.release_all lt ~owner:3)));
  Alcotest.(check (list int)) "fifo order" [ 2; 3 ] (List.rev !order)

let test_wait_time_accounting () =
  let lt = Lt.create () in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive);
             Sim.Engine.sleep 7.0;
             Lt.release_all lt ~owner:1);
         Sim.Engine.schedule e ~delay:2.0 (fun () ->
             ignore (Lt.acquire lt ~owner:2 ~key:"x" Lt.Exclusive))));
  Alcotest.(check (float 1e-9)) "waited 5" 5.0 (Lt.total_wait_time lt)


let test_cross_table_deadlock () =
  (* T1 holds a lock on table A and waits on table B; T2 holds on B and
     waits on A.  Only group-wide detection can see this cycle — exactly
     the distributed deadlock a transaction spanning two nodes creates. *)
  let group = Lt.new_group () in
  let ta = Lt.create ~group () and tb = Lt.create ~group () in
  let outcomes = ref [] in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire ta ~owner:1 ~key:"x" Lt.Exclusive);
             Sim.Engine.sleep 5.0;
             let r = Lt.acquire tb ~owner:1 ~key:"y" Lt.Exclusive in
             outcomes := (1, r) :: !outcomes;
             Lt.release_all ta ~owner:1;
             Lt.release_all tb ~owner:1);
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire tb ~owner:2 ~key:"y" Lt.Exclusive);
             Sim.Engine.sleep 5.0;
             let r = Lt.acquire ta ~owner:2 ~key:"x" Lt.Exclusive in
             outcomes := (2, r) :: !outcomes;
             Lt.release_all ta ~owner:2;
             Lt.release_all tb ~owner:2)));
  check_int "both finished" 2 (List.length !outcomes);
  check_int "cycle detected across tables" 1 (Lt.deadlocks ta + Lt.deadlocks tb)

let test_ungrouped_tables_blind () =
  (* Without a shared group the same cycle is invisible: both requests
     block (no false positives, no detection) — documents why the cluster
     uses a group. *)
  let ta = Lt.create () and tb = Lt.create () in
  let granted = ref 0 in
  let e = Sim.Engine.create () in
  Sim.Engine.spawn e (fun () ->
      ignore (Lt.acquire ta ~owner:1 ~key:"x" Lt.Exclusive);
      Sim.Engine.sleep 5.0;
      (match Lt.acquire tb ~owner:1 ~key:"y" Lt.Exclusive with
      | `Granted -> incr granted
      | `Deadlock -> ()));
  Sim.Engine.spawn e (fun () ->
      ignore (Lt.acquire tb ~owner:2 ~key:"y" Lt.Exclusive);
      Sim.Engine.sleep 5.0;
      match Lt.acquire ta ~owner:2 ~key:"x" Lt.Exclusive with
      | `Granted -> incr granted
      | `Deadlock -> ());
  Sim.Engine.run e;
  check_int "nobody detected anything" 0 (Lt.deadlocks ta + Lt.deadlocks tb);
  check_int "both still blocked" 2 (Sim.Engine.suspended_count e)

let test_waiting_requests_count () =
  let lt = Lt.create () in
  ignore
    (in_sim (fun e ->
         Sim.Engine.spawn e (fun () ->
             ignore (Lt.acquire lt ~owner:1 ~key:"x" Lt.Exclusive);
             Sim.Engine.sleep 10.0;
             check_int "two queued" 2 (Lt.waiting_requests lt);
             Lt.release_all lt ~owner:1);
         for o = 2 to 3 do
           Sim.Engine.schedule e ~delay:1.0 (fun () ->
               ignore (Lt.acquire lt ~owner:o ~key:"x" Lt.Exclusive);
               Lt.release_all lt ~owner:o)
         done));
  check_int "queue drained" 0 (Lt.waiting_requests lt)

(* Property: random lock/release scripts never hang (every process ends)
   and grants never produce an incompatible holder set. *)
let prop_no_incompatible_holders =
  QCheck.Test.make ~name:"random scripts keep holder sets compatible"
    ~count:60
    QCheck.(
      list_of_size (Gen.int_bound 40)
        (triple (int_range 1 6) (int_range 1 4) bool))
    (fun script ->
      let lt = Lt.create () in
      let e = Sim.Engine.create () in
      let violation = ref false in
      List.iteri
        (fun i (owner, key_i, exclusive) ->
          let key = Printf.sprintf "k%d" key_i in
          Sim.Engine.schedule e ~delay:(float_of_int i) (fun () ->
              let mode = if exclusive then Lt.Exclusive else Lt.Shared in
              (match Lt.acquire lt ~owner ~key mode with
              | `Granted ->
                  (* With an exclusive holder there must be exactly one
                     owner on the key. *)
                  if
                    Lt.holds lt ~owner ~key = Some Lt.Exclusive
                    && List.exists
                         (fun o -> o <> owner && Lt.holds lt ~owner:o ~key <> None)
                         [ 1; 2; 3; 4; 5; 6 ]
                  then violation := true
              | `Deadlock -> Lt.release_all lt ~owner);
              Sim.Engine.sleep 2.5;
              Lt.release_all lt ~owner))
        script;
      Sim.Engine.run e;
      not !violation)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lockmgr"
    [
      ( "grants",
        [
          Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks;
          Alcotest.test_case "reacquire held" `Quick test_reacquire_held;
          Alcotest.test_case "fifo no starvation" `Quick test_fifo_no_starvation;
        ] );
      ( "upgrades",
        [
          Alcotest.test_case "sole holder immediate" `Quick
            test_upgrade_sole_holder;
          Alcotest.test_case "waits for other reader" `Quick
            test_upgrade_waits_for_other_reader;
          Alcotest.test_case "conversion deadlock" `Quick test_upgrade_deadlock;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "cycle detected" `Quick test_deadlock_detected;
          Alcotest.test_case "cross-table cycle" `Quick test_cross_table_deadlock;
          Alcotest.test_case "ungrouped tables are blind" `Quick
            test_ungrouped_tables_blind;
          Alcotest.test_case "waiting requests count" `Quick
            test_waiting_requests_count;
        ] );
      ( "release",
        [
          Alcotest.test_case "release shared only" `Quick
            test_release_shared_only;
          Alcotest.test_case "wait time accounting" `Quick
            test_wait_time_accounting;
        ] );
      ("properties", qc [ prop_no_incompatible_holders ]);
    ]
