(* Tests for the simulated network: latency models, per-link FIFO delivery,
   RPC exception propagation, and node-down behaviour. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_latency_models () =
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 500 do
    check_float "constant" 2.5 (Net.Latency.sample (Net.Latency.Constant 2.5) rng);
    let u = Net.Latency.sample (Net.Latency.Uniform { lo = 1.0; hi = 3.0 }) rng in
    check_bool "uniform in range" true (u >= 1.0 && u <= 3.0);
    let e =
      Net.Latency.sample (Net.Latency.Exponential { mean = 5.0; floor = 1.0 }) rng
    in
    check_bool "exponential above floor" true (e >= 1.0)
  done;
  check_float "uniform mean" 2.0 (Net.Latency.mean (Net.Latency.Uniform { lo = 1.0; hi = 3.0 }))

let test_send_delivers () =
  let e = Sim.Engine.create () in
  let net : string Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 3.0) ()
  in
  let received = ref [] in
  Net.Network.set_handler net ~node:1 (fun ~src msg ->
      received := (src, msg, Sim.Engine.now e) :: !received);
  Net.Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  Net.Network.send net ~src:0 ~dst:1 "hello";
  Sim.Engine.run e;
  match !received with
  | [ (0, "hello", t) ] -> check_float "latency applied" 3.0 t
  | _ -> Alcotest.fail "message not delivered exactly once"

let test_fifo_per_link () =
  (* Even with highly variable latency, two sends on the same link arrive
     in order. *)
  let e = Sim.Engine.create ~seed:9L () in
  let net : int Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2
      ~latency:(Net.Latency.Uniform { lo = 0.1; hi = 10.0 })
      ()
  in
  let received = ref [] in
  Net.Network.set_handler net ~node:1 (fun ~src:_ msg ->
      received := msg :: !received);
  Net.Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  for i = 1 to 50 do
    Net.Network.send net ~src:0 ~dst:1 i
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1))
    (List.rev !received)

let test_self_latency_zero () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:1 ~latency:(Net.Latency.Constant 5.0) ()
  in
  let at = ref nan in
  Net.Network.set_handler net ~node:0 (fun ~src:_ () -> at := Sim.Engine.now e);
  Net.Network.send net ~src:0 ~dst:0 ();
  Sim.Engine.run e;
  check_float "self delivery immediate" 0.0 !at

let test_broadcast () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:4 () in
  let hits = ref 0 in
  for n = 0 to 3 do
    Net.Network.set_handler net ~node:n (fun ~src:_ () -> incr hits)
  done;
  Net.Network.broadcast net ~src:2 ();
  Sim.Engine.run e;
  check_int "all nodes including self" 4 !hits;
  check_int "counted" 4 (Net.Network.messages_sent net)

let test_call_roundtrip () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 2.0) ()
  in
  let result = ref 0 and finished = ref nan in
  Sim.Engine.spawn e (fun () ->
      result := Net.Network.call net ~src:0 ~dst:1 (fun () -> 21 * 2);
      finished := Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "result returned" 42 !result;
  check_float "two latencies" 4.0 !finished

exception Boom

let test_call_propagates_exception () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let caught = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> raise Boom))
      with Boom -> caught := true);
  Sim.Engine.run e;
  check_bool "exception surfaced at caller" true !caught

let test_down_node_drops () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let hits = ref 0 in
  Net.Network.set_handler net ~node:1 (fun ~src:_ () -> incr hits);
  Net.Network.set_down net ~node:1 true;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "dropped" 0 !hits;
  check_int "counted as dropped" 1 (Net.Network.messages_dropped net);
  (* Recovery: traffic flows again. *)
  Net.Network.set_down net ~node:1 false;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "delivered after recovery" 1 !hits

let test_call_to_down_node () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  Net.Network.set_down net ~node:1 true;
  let raised = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ()))
      with Net.Network.Node_down 1 -> raised := true);
  Sim.Engine.run e;
  check_bool "Node_down raised" true !raised

let test_call_node_dies_mid_flight () =
  (* The destination goes down after the request is sent but before it is
     processed: the caller still gets Node_down, not a hang. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 5.0) ()
  in
  let raised = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ()))
      with Net.Network.Node_down 1 -> raised := true);
  Sim.Engine.schedule e ~delay:1.0 (fun () -> Net.Network.set_down net ~node:1 true);
  Sim.Engine.run e;
  check_bool "mid-flight crash surfaces" true !raised

let test_link_partition () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let hits = ref 0 in
  Net.Network.set_handler net ~node:1 (fun ~src:_ () -> incr hits);
  Net.Network.set_link_down net ~src:0 ~dst:1 true;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "dropped on partitioned link" 0 !hits;
  check_bool "reported down" true (Net.Network.link_is_down net ~src:0 ~dst:1);
  (* The reverse direction still works. *)
  Net.Network.set_handler net ~node:0 (fun ~src:_ () -> incr hits);
  Net.Network.send net ~src:1 ~dst:0 ();
  Sim.Engine.run e;
  check_int "reverse link unaffected" 1 !hits;
  (* Heal. *)
  Net.Network.set_link_down net ~src:0 ~dst:1 false;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "healed" 2 !hits

let test_call_on_partitioned_link () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  Net.Network.set_link_down net ~src:1 ~dst:0 true;
  (* The reply path is down: the call must fail, not hang. *)
  let raised = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ()))
      with Net.Network.Node_down _ -> raised := true);
  Sim.Engine.run e;
  check_bool "call fails on half-open link" true !raised

let test_link_stats () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:3 () in
  for n = 0 to 2 do
    Net.Network.set_handler net ~node:n (fun ~src:_ () -> ())
  done;
  Net.Network.send net ~src:0 ~dst:1 ();
  Net.Network.send net ~src:0 ~dst:1 ();
  Net.Network.send net ~src:1 ~dst:2 ();
  Sim.Engine.run e;
  check_int "link 0->1" 2 (Net.Network.link_count net ~src:0 ~dst:1);
  check_int "link 1->2" 1 (Net.Network.link_count net ~src:1 ~dst:2);
  check_int "link 2->0" 0 (Net.Network.link_count net ~src:2 ~dst:0)

let () =
  Alcotest.run "net"
    [
      ( "latency",
        [ Alcotest.test_case "models" `Quick test_latency_models ] );
      ( "delivery",
        [
          Alcotest.test_case "send delivers" `Quick test_send_delivers;
          Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
          Alcotest.test_case "self latency zero" `Quick test_self_latency_zero;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "link stats" `Quick test_link_stats;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "exception propagation" `Quick
            test_call_propagates_exception;
        ] );
      ( "failures",
        [
          Alcotest.test_case "down node drops" `Quick test_down_node_drops;
          Alcotest.test_case "call to down node" `Quick test_call_to_down_node;
          Alcotest.test_case "dies mid-flight" `Quick
            test_call_node_dies_mid_flight;
          Alcotest.test_case "link partition" `Quick test_link_partition;
          Alcotest.test_case "call on partitioned link" `Quick
            test_call_on_partitioned_link;
        ] );
    ]
