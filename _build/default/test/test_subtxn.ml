(* Unit tests of the shared subtransaction layer (lib/core/subtxn.ml) —
   the machinery under both the flat and the tree executor. *)

module Sub = Ava3.Subtxn
module Ns = Ava3.Node_state

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let vopt = Alcotest.(option int)

(* A one-node cluster-state sandbox. *)
let with_state ?(config = Ava3.Config.default) body =
  let engine = Sim.Engine.create ~seed:3L () in
  let cs : int Ava3.Cluster_state.t =
    Ava3.Cluster_state.create ~engine ~config ~nodes:1 ()
  in
  Sim.Engine.spawn engine (fun () -> body cs (Ava3.Cluster_state.node cs 0));
  Sim.Engine.run engine;
  cs

let start cs nd ?(txn = 900) () =
  Sub.start cs ~txn_id:txn ~state:(ref Sub.Running) ~node:nd ~carried:0

let test_start_counts () =
  let _ =
    with_state (fun cs nd ->
        let sub = start cs nd () in
        check_int "occupies the update counter" 1 (Ns.update_count nd ~version:1);
        check_int "starts at u" 1 (Sub.version sub);
        Sub.commit cs sub ~final_version:1;
        check_int "counter released" 0 (Ns.update_count nd ~version:1);
        check_bool "finished" true (Sub.finished sub))
  in
  ()

let test_read_write_cycle () =
  let _ =
    with_state (fun cs nd ->
        Vstore.Store.write (Ns.store nd) "x" 0 5;
        let sub = start cs nd () in
        Alcotest.check vopt "reads version 0 data" (Some 5) (Sub.read cs sub "x");
        Sub.write cs sub "x" 50;
        Alcotest.check vopt "reads own write" (Some 50) (Sub.read cs sub "x");
        Sub.delete cs sub "x";
        Alcotest.check vopt "reads own delete" None (Sub.read cs sub "x");
        Sub.commit cs sub ~final_version:1)
  in
  ()

let test_abort_idempotent () =
  let _ =
    with_state (fun cs nd ->
        let sub = start cs nd () in
        Sub.write cs sub "x" 1;
        Sub.abort cs sub;
        check_int "counter released once" 0 (Ns.update_count nd ~version:1);
        (* A second abort must not double-decrement. *)
        Sub.abort cs sub;
        check_int "still zero" 0 (Ns.update_count nd ~version:1))
  in
  ()

let test_abort_after_commit_noop () =
  let _ =
    with_state (fun cs nd ->
        let sub = start cs nd () in
        Sub.write cs sub "x" 7;
        Sub.commit cs sub ~final_version:1;
        Sub.abort cs sub (* past the point of no return: no-op *);
        Alcotest.check vopt "commit survived" (Some 7)
          (Vstore.Store.read_le (Ns.store nd) "x" 1))
  in
  ()

let test_catch_up_on_later_version () =
  let _ =
    with_state (fun cs nd ->
        Vstore.Store.write (Ns.store nd) "x" 0 5;
        let sub = start cs nd () in
        (* Another (committed) transaction raced ahead: x exists in v2 and
           the node advanced. *)
        Ns.set_u nd 2;
        Vstore.Store.write (Ns.store nd) "x" 2 55;
        Alcotest.check vopt "reads the later version after moving" (Some 55)
          (Sub.read cs sub "x");
        check_int "session moved to u" 2 (Sub.version sub);
        Sub.commit cs sub ~final_version:2)
  in
  ()

let test_eager_handoff_moves_counter () =
  let config = { Ava3.Config.default with eager_counter_handoff = true } in
  let _ =
    with_state ~config (fun cs nd ->
        Vstore.Store.write (Ns.store nd) "x" 0 5;
        let sub = start cs nd () in
        Ns.set_u nd 2;
        Vstore.Store.write (Ns.store nd) "x" 2 55;
        ignore (Sub.read cs sub "x") (* triggers moveToFuture *);
        check_int "old slot released" 0 (Ns.update_count nd ~version:1);
        check_int "new slot occupied" 1 (Ns.update_count nd ~version:2);
        Sub.commit cs sub ~final_version:2;
        check_int "new slot released at commit" 0 (Ns.update_count nd ~version:2))
  in
  ()

let test_sibling_abort_cancels () =
  (* Once the shared transaction state flips to Aborting, further
     operations fail fast instead of touching data. *)
  let _ =
    with_state (fun cs nd ->
        let state = ref Sub.Running in
        let sub = Sub.start cs ~txn_id:901 ~state ~node:nd ~carried:0 in
        state := Sub.Aborting;
        (match Sub.read cs sub "x" with
        | exception Sub.Txn_abort _ -> ()
        | _ -> Alcotest.fail "operation on aborting transaction succeeded");
        Sub.abort cs sub)
  in
  ()

let test_mismatch_abort_mode () =
  let config = { Ava3.Config.default with abort_on_version_mismatch = true } in
  let _ =
    with_state ~config (fun cs nd ->
        Vstore.Store.write (Ns.store nd) "x" 0 5;
        let sub = start cs nd () in
        Ns.set_u nd 2;
        Vstore.Store.write (Ns.store nd) "x" 2 55;
        (match Sub.read cs sub "x" with
        | exception Sub.Txn_abort `Version_mismatch -> ()
        | _ -> Alcotest.fail "synchronous mode should abort on mismatch");
        Sub.abort cs sub)
  in
  ()

let test_prepare_releases_shared_only () =
  let _ =
    with_state (fun cs nd ->
        Vstore.Store.write (Ns.store nd) "r" 0 1;
        let sub = start cs nd () in
        ignore (Sub.read cs sub "r");
        Sub.write cs sub "w" 9;
        let v = Sub.prepare cs sub in
        check_int "prepared version" 1 v;
        let locks = Ns.locks nd in
        check_bool "shared lock released" true
          (Lockmgr.Lock_table.holds locks ~owner:900 ~key:"r" = None);
        check_bool "exclusive lock kept" true
          (Lockmgr.Lock_table.holds locks ~owner:900 ~key:"w"
          = Some Lockmgr.Lock_table.Exclusive);
        Sub.commit cs sub ~final_version:1;
        check_bool "all released at commit" true
          (Lockmgr.Lock_table.holds locks ~owner:900 ~key:"w" = None))
  in
  ()

let () =
  Alcotest.run "subtxn"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "start counts" `Quick test_start_counts;
          Alcotest.test_case "read/write/delete" `Quick test_read_write_cycle;
          Alcotest.test_case "abort idempotent" `Quick test_abort_idempotent;
          Alcotest.test_case "abort after commit" `Quick
            test_abort_after_commit_noop;
          Alcotest.test_case "prepare releases shared" `Quick
            test_prepare_releases_shared_only;
        ] );
      ( "versions",
        [
          Alcotest.test_case "catch up on later version" `Quick
            test_catch_up_on_later_version;
          Alcotest.test_case "eager hand-off" `Quick
            test_eager_handoff_moves_counter;
          Alcotest.test_case "sibling abort cancels" `Quick
            test_sibling_abort_cancels;
          Alcotest.test_case "mismatch abort mode" `Quick test_mismatch_abort_mode;
        ] );
    ]
