(* Benchmark and reproduction harness.

   `dune exec bench/main.exe` regenerates every table and figure:
     table1       — the paper's Table 1 example execution (checked replay)
     figure1      — the paper's Figure 1 advancement time diagram (measured)
     invariants   — E3: §6.2 properties under random load
     staleness    — E4: §8 staleness bounds and sweep
     comparison   — E5: AVA3 vs the §9 baseline protocols
     movetofuture — E6: §4 moveToFuture cost, §10 piggyback ablation
     centralized  — E7: §7 three vs four versions; sync-advancement aborts
     serializability — Theorem 6.2 executable: histories replayed serially
     ablations    — E8: optimisation flags one by one; version-indexed GC cost
     scalability  — E9: advancement latency and messages vs cluster size
     faults       — E10: availability under a deterministic fault schedule
     micro        — bechamel microbenchmarks of the core operations

   Pass one of those names as the single argument to run it alone.
   `--json` additionally writes BENCH_micro.json (micro ns/run, per-suite
   wall-clock, and the per-node metrics registry of every experiment
   configuration under "experiments") for machine consumption.

   Experiment sweeps fan out over domains (see Sim.Pool); set
   AVA3_DOMAINS=1 to force sequential runs.  Results are identical at
   any domain count. *)

open Bechamel
open Toolkit

let json_mode = ref false
let micro_rows : (string * float) list ref = ref []
let suite_times : (string * float) list ref = ref []

(* ------------------------------------------------------------------ *)
(* Microbenchmarks: the primitive operations whose cost the paper
   argues about (latched counters, version lookups, moveToFuture).     *)
(* ------------------------------------------------------------------ *)

let bench_latch =
  let latch = Lockmgr.Latch.create "bench" in
  let cell = ref 0 in
  Test.make ~name:"latched counter incr+decr"
    (Staged.stage (fun () ->
         Lockmgr.Latch.incr_protected latch cell;
         Lockmgr.Latch.decr_protected latch cell))

let bench_store_read =
  let store : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  Vstore.Store.write store "x" 0 1;
  Vstore.Store.write store "x" 1 2;
  Vstore.Store.write store "x" 2 3;
  Test.make ~name:"vstore read_le (3 live versions)"
    (Staged.stage (fun () -> ignore (Vstore.Store.read_le store "x" 1)))

let bench_store_write =
  let store : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  let i = ref 0 in
  Test.make ~name:"vstore write (overwrite same version)"
    (Staged.stage (fun () ->
         incr i;
         Vstore.Store.write store "x" 0 !i))

let bench_copy_forward =
  let store : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  Vstore.Store.write store "x" 0 1;
  Test.make ~name:"vstore copy_forward (overwrite dst slot)"
    (Staged.stage (fun () -> Vstore.Store.copy_forward store "x" ~src:0 ~dst:1))

(* Steady-state slot rotation: the advancement pattern — drop the oldest
   version, then write the next one.  Live count stays at 3, so the
   bounded store never spills and never raises. *)
let bench_slot_rotate =
  let store : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  let v = ref 0 in
  Vstore.Store.write store "x" 0 0;
  Vstore.Store.write store "x" 1 1;
  Vstore.Store.write store "x" 2 2;
  Test.make ~name:"vstore rotate (remove oldest + write newest)"
    (Staged.stage (fun () ->
         Vstore.Store.remove_version store "x" !v;
         Vstore.Store.write store "x" (!v + 3) !v;
         incr v))

let bench_mvcc_chain_read =
  let store : int Vstore.Store.t = Vstore.Store.create () in
  for v = 0 to 63 do
    Vstore.Store.write store "x" v v
  done;
  Test.make ~name:"vstore read_le (64-version MVCC chain)"
    (Staged.stage (fun () -> ignore (Vstore.Store.read_le store "x" 0)))

let bench_zipf =
  let z = Workload.Zipf.create ~n:10_000 ~theta:0.9 in
  let rng = Sim.Rng.create 5L in
  Test.make ~name:"zipf sample (10k items)"
    (Staged.stage (fun () -> ignore (Workload.Zipf.sample z rng)))

(* moveToFuture cost under both recovery schemes, 8 touched items. *)
let mtf_once kind =
  let store : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  let log = Wal.Log.create () in
  let scheme = Wal.Scheme.create kind ~store ~log in
  for i = 0 to 7 do
    Vstore.Store.write store (Printf.sprintf "k%d" i) 0 i
  done;
  let session = Wal.Scheme.begin_session scheme ~txn:1 ~version:1 in
  for i = 0 to 7 do
    Wal.Scheme.write scheme session (Printf.sprintf "k%d" i) (Some (i * 10))
  done;
  Wal.Scheme.move_to_future scheme session ~new_version:2;
  Wal.Scheme.commit scheme session ~final_version:2

let bench_mtf_no_undo =
  Test.make ~name:"moveToFuture no-undo (8 writes, incl. setup)"
    (Staged.stage (fun () -> mtf_once Wal.Scheme.No_undo))

let bench_mtf_undo_redo =
  Test.make ~name:"moveToFuture undo-redo (8 writes, incl. setup)"
    (Staged.stage (fun () -> mtf_once Wal.Scheme.Undo_redo))

let bench_centralized_txn =
  Test.make ~name:"centralized update transaction (sim end-to-end)"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create ~trace:false () in
         let db : int Ava3.Centralized.t =
           Ava3.Centralized.create ~engine
             ~config:
               {
                 Ava3.Config.default with
                 read_service_time = 0.0;
                 write_service_time = 0.0;
               }
             ()
         in
         Ava3.Centralized.load db [ ("x", 0) ];
         Sim.Engine.spawn engine (fun () ->
             ignore (Ava3.Centralized.run_update db ~ops:[ Write ("x", 1) ]));
         Sim.Engine.run engine))

let micro_tests =
  Test.make_grouped ~name:"micro" ~fmt:"%s %s"
    [
      bench_latch;
      bench_store_read;
      bench_store_write;
      bench_copy_forward;
      bench_slot_rotate;
      bench_mvcc_chain_read;
      bench_zipf;
      bench_mtf_no_undo;
      bench_mtf_undo_redo;
      bench_centralized_txn;
    ]

let run_micro () =
  print_endline "\n== microbenchmarks (bechamel, monotonic clock) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances micro_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> (name, e) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  micro_rows := estimates;
  let rows =
    List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) estimates
  in
  print_string
    (Dbsim.Report.render ~header:[ "operation"; "ns/run" ] ~rows)

(* ------------------------------------------------------------------ *)
(* Engine throughput: simulator events/sec on two representative loads *)
(* ------------------------------------------------------------------ *)

(* name -> (events, best wall-clock seconds, events/sec) *)
let engine_rows : (string * (int * float * float)) list ref = ref []

(* Pure scheduler churn: hundreds of processes sleeping in loops, so the
   run is dominated by heap push/pop and the effect-handler resume path.
   Event count is a pure function of the seed. *)
let engine_synthetic () =
  let engine = Sim.Engine.create ~seed:42L ~trace:false () in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  for _ = 1 to 512 do
    let first = Sim.Rng.float rng 10.0 in
    Sim.Engine.schedule engine ~delay:first (fun () ->
        for _ = 1 to 600 do
          Sim.Engine.sleep (Sim.Rng.float rng 5.0)
        done)
  done;
  engine

(* Protocol end-to-end: a 64-site cluster running periodic advancement
   rounds under a spaced update/query load — message delivery, counter
   waits, WAL appends and advancement barriers all on the hot path. *)
let engine_cluster () =
  let engine = Sim.Engine.create ~seed:7L ~trace:false () in
  let nodes = 64 in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~nodes () in
  for n = 0 to nodes - 1 do
    Ava3.Cluster.load db ~node:n
      (List.init 8 (fun i -> (Printf.sprintf "n%d-k%d" n i, i)))
  done;
  let duration = 1000.0 in
  Ava3.Cluster.start_periodic_advancement db ~coordinator:0 ~period:20.0
    ~until:duration;
  for i = 0 to 1999 do
    let root = i mod nodes in
    let remote = (root + 1 + (i mod 7)) mod nodes in
    Sim.Engine.schedule engine
      ~delay:(0.5 +. (float_of_int i *. duration /. 2000.0))
      (fun () ->
        ignore
          (Ava3.Cluster.run_update_with_retry db ~root
             ~ops:
               [
                 Ava3.Update_exec.Write
                   { node = root; key = Printf.sprintf "n%d-k%d" root (i mod 8); value = i };
                 Ava3.Update_exec.Write
                   {
                     node = remote;
                     key = Printf.sprintf "n%d-k%d" remote (i mod 8);
                     value = i;
                   };
               ]
             ()))
  done;
  for i = 0 to 1199 do
    let root = (i * 5) mod nodes in
    Sim.Engine.schedule engine
      ~delay:(1.0 +. (float_of_int i *. duration /. 1200.0))
      (fun () ->
        ignore
          (Ava3.Cluster.run_query db ~root
             ~reads:[ (root, Printf.sprintf "n%d-k%d" root (i mod 8)) ]))
  done;
  engine

(* Time only [Engine.run]: setup (cluster creation, event scheduling)
   happens before the clock starts.  Three runs, best wall-clock —
   event counts are deterministic, so the rate is the only noisy part. *)
let timed_engine name setup =
  let best = ref infinity and events = ref 0 in
  for _ = 1 to 3 do
    let engine = setup () in
    let t0 = Unix.gettimeofday () in
    Sim.Engine.run engine;
    let dt = Unix.gettimeofday () -. t0 in
    events := Sim.Engine.events_executed engine;
    if dt < !best then best := dt
  done;
  let rate = float_of_int !events /. !best in
  engine_rows := !engine_rows @ [ (name, (!events, !best, rate)) ]

(* Crude numeric extraction: the committed baseline is machine-written
   with unique keys, so "key": <number> lookup is unambiguous. *)
let find_float_after content key =
  let klen = String.length key and n = String.length content in
  let rec search i =
    if i + klen > n then None
    else if String.sub content i klen = key then begin
      let j = ref (i + klen) in
      while !j < n && (content.[!j] = ' ' || content.[!j] = ':') do incr j done;
      let k = ref !j in
      while
        !k < n
        && (match content.[!k] with
           | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr k
      done;
      if !k > !j then float_of_string_opt (String.sub content !j (!k - !j))
      else None
    end
    else search (i + 1)
  in
  search 0

let write_engine_json path =
  let oc = open_out path in
  let row f = String.concat ",\n" (List.map f !engine_rows) in
  Printf.fprintf oc
    "{\n\
    \  \"events_per_sec\": {\n%s\n  },\n\
    \  \"events\": {\n%s\n  },\n\
    \  \"wall_s\": {\n%s\n  }\n\
     }\n"
    (row (fun (name, (_, _, r)) -> Printf.sprintf "    \"%s\": %.0f" name r))
    (row (fun (name, (ev, _, _)) -> Printf.sprintf "    \"%s\": %d" name ev))
    (row (fun (name, (_, w, _)) -> Printf.sprintf "    \"%s\": %.4f" name w));
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* Soft regression report: compare against the committed baseline, print
   the delta, never fail the run — wall-clock rates are machine-relative,
   so this is a trend signal, not a gate. *)
let engine_baseline_report () =
  let baseline = "BENCH_engine_baseline.json" in
  if Sys.file_exists baseline then begin
    let ic = open_in_bin baseline in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    List.iter
      (fun (name, (_, _, rate)) ->
        match find_float_after content (Printf.sprintf "\"%s\"" name) with
        | Some base when base > 0.0 ->
            let delta = (rate -. base) /. base *. 100.0 in
            Printf.printf
              "engine %-12s %10.0f events/s vs committed baseline %10.0f \
               (%+.1f%%)%s\n"
              name rate base delta
              (if delta < -20.0 then "  [soft regression: >20% below baseline]"
               else "")
        | _ -> ())
      !engine_rows
  end
  else
    Printf.printf
      "no %s present; skipping events/sec comparison\n" baseline

let run_engine () =
  print_endline "\n== engine throughput: simulator events/sec ==";
  engine_rows := [];
  timed_engine "synthetic" engine_synthetic;
  timed_engine "cluster64" engine_cluster;
  let rows =
    List.map
      (fun (name, (ev, wall, rate)) ->
        [
          name;
          string_of_int ev;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.0f" rate;
        ])
      !engine_rows
  in
  print_string
    (Dbsim.Report.render
       ~header:[ "load"; "events"; "best wall (s)"; "events/sec" ]
       ~rows);
  write_engine_json "BENCH_engine.json";
  engine_baseline_report ()

(* ------------------------------------------------------------------ *)
(* Multicore backend throughput: wall-clock ops/sec on real domains    *)
(* ------------------------------------------------------------------ *)

(* Unlike [bench engine] (simulated events per wall-clock second, one
   domain), this measures the lib/mcore backend executing real protocol
   operations — latched counter bumps, striped item locks, store reads
   and writes — across 1/2/4/8 domains.  Each worker performs a fixed
   per-domain operation count so the offered load scales with the
   domain count; the interesting number is how ops/sec scales. *)

let mcore_rows : (string * (int * float * float)) list ref = ref []

let mcore_sites = 4
let mcore_keys_per_site = 64

let mcore_backend () =
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:mcore_sites () in
  for s = 0 to mcore_sites - 1 do
    Mcore.Backend.load b ~site:s
      (List.init mcore_keys_per_site (fun k ->
           (Printf.sprintf "n%d-k%d" s k, k)))
  done;
  b

(* [mk_work domains w d i] performs operation [i] of domain [d]
   ([mk_work domains] runs once per timed run, so workloads carrying
   per-run state — the per-domain Rngs feeding the Zipf sampler — start
   identically each repeat).  Wall-clock covers only the parallel
   section; backend setup and domain spawn cost stay outside.  Best of
   three runs, like [timed_engine]. *)
let timed_mcore name ~domains ~ops_per_domain mk_work =
  let best = ref infinity in
  for _ = 1 to 3 do
    let b = mcore_backend () in
    let work = mk_work domains in
    let body d () =
      let w = Mcore.Backend.worker b in
      for i = 0 to ops_per_domain - 1 do
        work w d i
      done
    in
    let t0 = Unix.gettimeofday () in
    let workers = Array.init domains (fun d -> Domain.spawn (body d)) in
    Array.iter Domain.join workers;
    let dt = Unix.gettimeofday () -. t0 in
    (match Mcore.Backend.check_quiescent b with
    | [] -> ()
    | problems ->
        List.iter (Printf.eprintf "mcore bench %s: %s\n" name) problems;
        exit 1);
    if dt < !best then best := dt
  done;
  let total = domains * ops_per_domain in
  let rate = float_of_int total /. !best in
  mcore_rows := !mcore_rows @ [ (name, (total, !best, rate)) ]

(* Key choice is Zipf-skewed (rank 0 hottest), not uniform: real traffic
   concentrates on hot keys, and hot keys are what actually contend on
   the striped item locks and latched counters.  The [Zipf.t] is an
   immutable CDF shared by all domains; each domain samples it through
   its own seeded [Sim.Rng.t], so a run's key stream is deterministic
   per (domain, seed) regardless of interleaving. *)
let mcore_zipf_theta = 0.9

let mcore_mk_read_heavy domains =
  let zipf =
    Workload.Zipf.create ~n:mcore_keys_per_site ~theta:mcore_zipf_theta
  in
  let rngs =
    Array.init domains (fun d -> Sim.Rng.create (Int64.of_int (0x5eed + d)))
  in
  fun w d i ->
    let rng = rngs.(d) in
    let root = i mod mcore_sites in
    let k = Printf.sprintf "n%d-k%d" root (Workload.Zipf.sample zipf rng) in
    let k' =
      Printf.sprintf "n%d-k%d"
        ((root + 1) mod mcore_sites)
        (Workload.Zipf.sample zipf rng)
    in
    ignore
      (Mcore.Backend.run_query w ~root
         ~reads:[ (root, k); ((root + 1) mod mcore_sites, k') ]
        : int Mcore.Backend.query_result)

(* 5% updates in the read stream (same Zipf-hot keys, so writers collide
   with readers where it matters), with domain 0 initiating an
   advancement every 512 operations so versions actually move. *)
let mcore_mk_mixed domains =
  let read_heavy = mcore_mk_read_heavy domains in
  let zipf =
    Workload.Zipf.create ~n:mcore_keys_per_site ~theta:mcore_zipf_theta
  in
  let rngs =
    Array.init domains (fun d -> Sim.Rng.create (Int64.of_int (0xdeed + d)))
  in
  fun w d i ->
    if d = 0 && i mod 512 = 0 then
      ignore
        (Mcore.Backend.advance w ~coordinator:0 : [ `Busy | `Completed of int ])
    else if i mod 20 = 0 then begin
      let root = i mod mcore_sites in
      let k =
        Printf.sprintf "n%d-k%d" root (Workload.Zipf.sample zipf rngs.(d))
      in
      ignore
        (Mcore.Backend.run_update w ~root
           ~ops:[ (root, Mcore.Backend.Write (k, i)) ]
          : int Mcore.Backend.outcome)
    end
    else read_heavy w d i

let write_mcore_json path =
  let oc = open_out path in
  let row f = String.concat ",\n" (List.map f !mcore_rows) in
  Printf.fprintf oc
    "{\n\
    \  \"ops_per_sec\": {\n%s\n  },\n\
    \  \"ops\": {\n%s\n  },\n\
    \  \"wall_s\": {\n%s\n  },\n\
    \  \"cores\": %d\n\
     }\n"
    (row (fun (name, (_, _, r)) -> Printf.sprintf "    \"%s\": %.0f" name r))
    (row (fun (name, (ops, _, _)) -> Printf.sprintf "    \"%s\": %d" name ops))
    (row (fun (name, (_, w, _)) -> Printf.sprintf "    \"%s\": %.4f" name w))
    (Domain.recommended_domain_count ());
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* Soft gates, mirroring [engine_baseline_report]: wall-clock rates are
   machine-relative and this repo's CI runners vary, so both the
   baseline comparison and the scaling check print trend signals and
   never fail the run. *)
let mcore_baseline_report () =
  let baseline = "BENCH_mcore_baseline.json" in
  if Sys.file_exists baseline then begin
    let ic = open_in_bin baseline in
    let content = really_input_string ic (in_channel_length ic) in
    close_in ic;
    List.iter
      (fun (name, (_, _, rate)) ->
        match find_float_after content (Printf.sprintf "\"%s\"" name) with
        | Some base when base > 0.0 ->
            let delta = (rate -. base) /. base *. 100.0 in
            Printf.printf
              "mcore %-8s %10.0f ops/s vs committed baseline %10.0f (%+.1f%%)%s\n"
              name rate base delta
              (if delta < -20.0 then "  [soft regression: >20% below baseline]"
               else "")
        | _ -> ())
      !mcore_rows
  end
  else
    Printf.printf "no %s present; skipping ops/sec comparison\n" baseline

let mcore_scaling_report () =
  (* Read-heavy throughput should be monotonic from 1 to 4 domains — but
     only where the hardware can actually run 4 domains in parallel.
     On smaller machines (including this repo's 1-core CI tier) the
     check prints what it sees and stays advisory. *)
  let rate name =
    match List.assoc_opt name !mcore_rows with
    | Some (_, _, r) -> r
    | None -> 0.0
  in
  let r1 = rate "read1" and r2 = rate "read2" and r4 = rate "read4" in
  let cores = Domain.recommended_domain_count () in
  if cores >= 4 then begin
    if r1 <= r2 && r2 <= r4 then
      Printf.printf "mcore scaling: read-heavy monotonic 1->2->4 domains OK\n"
    else
      Printf.printf
        "mcore scaling: NOT monotonic (%.0f -> %.0f -> %.0f ops/s on %d \
         cores) [soft: investigate]\n"
        r1 r2 r4 cores
  end
  else
    Printf.printf
      "mcore scaling: %d core(s) available; monotonicity check skipped \
       (%.0f -> %.0f -> %.0f ops/s)\n"
      cores r1 r2 r4

let run_mcore_bench () =
  print_endline "\n== mcore backend: wall-clock throughput on real domains ==";
  mcore_rows := [];
  let ops = try int_of_string (Sys.getenv "AVA3_MCORE_OPS") with _ -> 30_000 in
  List.iter
    (fun domains ->
      timed_mcore
        (Printf.sprintf "read%d" domains)
        ~domains ~ops_per_domain:ops mcore_mk_read_heavy)
    [ 1; 2; 4; 8 ];
  List.iter
    (fun domains ->
      timed_mcore
        (Printf.sprintf "mixed%d" domains)
        ~domains ~ops_per_domain:ops mcore_mk_mixed)
    [ 1; 4 ];
  let rows =
    List.map
      (fun (name, (ops, wall, rate)) ->
        [
          name;
          string_of_int ops;
          Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.2f" (rate /. 1e6);
        ])
      !mcore_rows
  in
  print_string
    (Dbsim.Report.render
       ~header:[ "workload"; "ops"; "best wall (s)"; "Mops/s" ]
       ~rows);
  write_mcore_json "BENCH_mcore.json";
  mcore_baseline_report ();
  mcore_scaling_report ()

(* ------------------------------------------------------------------ *)
(* Secondary index: probe vs full scan, and maintenance overhead       *)
(* ------------------------------------------------------------------ *)

(* Direct wall-clock timing (bechamel is overkill for these loops): a
   populated three-slot store with an attached index, measuring the
   read-path win (probe vs full scan at the same version) and the
   write-path cost (store writes with and without the index listener).
   Recorded for BENCH_index.json and the --json "index" key. *)
let index_rows : (string * float) list ref = ref []

let index_bench_keys = 4096
let index_extract v = Printf.sprintf "a%03d" (((v mod 1000) + 1000) mod 1000)

let timed_ns name ~iters f =
  let t0 = Unix.gettimeofday () in
  for i = 0 to iters - 1 do
    f i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let ns = dt /. float_of_int iters *. 1e9 in
  index_rows := !index_rows @ [ (name, ns) ];
  ns

let populated_store () =
  let store : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  for i = 0 to index_bench_keys - 1 do
    Vstore.Store.write store (Printf.sprintf "k%06d" i) 0 i
  done;
  store

let run_index_bench () =
  print_endline "\n== secondary index: probe vs full scan, maintenance ==";
  index_rows := [];
  let store = populated_store () in
  let ix = Vindex.Index.attach store ~extract:index_extract in
  (* ~4 matches per attribute value out of 4096 keys: the selective-probe
     regime the index exists for. *)
  ignore
    (timed_ns "probe (selective, 4k keys)" ~iters:2000 (fun i ->
         let a = Printf.sprintf "a%03d" (i mod 1000) in
         ignore (Vindex.Index.probe ix ~lo:a ~hi:a 0)));
  ignore
    (timed_ns "full scan (same predicate)" ~iters:50 (fun i ->
         let a = Printf.sprintf "a%03d" (i mod 1000) in
         ignore (Vindex.Index.full_scan ix ~lo:a ~hi:a 0)));
  ignore
    (timed_ns "probe (10% range)" ~iters:500 (fun i ->
         let lo = Printf.sprintf "a%03d" (i mod 900) in
         let hi = Printf.sprintf "a%03d" ((i mod 900) + 100) in
         ignore (Vindex.Index.probe ix ~lo ~hi 0)));
  Vindex.Index.detach ix;
  (* Write-path overhead: the same overwrite loop with no listener, then
     with the index maintaining itself through the listener. *)
  let bare = populated_store () in
  let plain =
    timed_ns "store write (no index)" ~iters:20_000 (fun i ->
        Vstore.Store.write bare (Printf.sprintf "k%06d" (i mod index_bench_keys)) 0 i)
  in
  let indexed_store = populated_store () in
  let ix2 = Vindex.Index.attach indexed_store ~extract:index_extract in
  let with_ix =
    timed_ns "store write (indexed)" ~iters:20_000 (fun i ->
        Vstore.Store.write indexed_store
          (Printf.sprintf "k%06d" (i mod index_bench_keys))
          0 i)
  in
  Vindex.Index.detach ix2;
  index_rows :=
    !index_rows @ [ ("maintenance overhead ns/write", with_ix -. plain) ];
  let rows =
    List.map
      (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ])
      !index_rows
  in
  print_string (Dbsim.Report.render ~header:[ "operation"; "ns/run" ] ~rows);
  let oc = open_out "BENCH_index.json" in
  Printf.fprintf oc "{\n  \"index_ns_per_run\": {\n%s\n  }\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (name, ns) -> Printf.sprintf "    \"%s\": %.1f" name ns)
          !index_rows));
  close_out oc;
  print_endline "wrote BENCH_index.json"

(* ------------------------------------------------------------------ *)
(* Paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  print_endline "\n== Table 1: example execution (paper §5), replayed ==";
  let r = Dbsim.Table1.run () in
  print_string (Dbsim.Table1.render r);
  (match r.Dbsim.Table1.violations with
  | [] -> print_endline "table 1: all checks passed"
  | vs ->
      List.iter (Printf.printf "table 1 VIOLATION: %s\n") vs;
      exit 1);
  (* The same execution under the in-place recovery scheme. *)
  let r2 = Dbsim.Table1.run ~scheme:Wal.Scheme.Undo_redo () in
  match r2.Dbsim.Table1.violations with
  | [] -> print_endline "table 1 (undo-redo scheme): all checks passed"
  | vs ->
      List.iter (Printf.printf "table 1 undo-redo VIOLATION: %s\n") vs;
      exit 1

let run_figure1 () =
  print_endline "\n== Figure 1: version-advancement time diagram (paper §8) ==";
  let f = Dbsim.Figure1.run () in
  print_string (Dbsim.Figure1.render f);
  (match f.Dbsim.Figure1.violations with
  | [] -> print_endline "figure 1: all checks passed"
  | vs ->
      List.iter (Printf.printf "figure 1 VIOLATION: %s\n") vs;
      exit 1);
  print_endline "\n-- with the §8 eager counter hand-off --";
  let fe = Dbsim.Figure1.run ~eager_handoff:true () in
  print_string (Dbsim.Figure1.render fe);
  match fe.Dbsim.Figure1.violations with
  | [] -> print_endline "figure 1 (eager hand-off): all checks passed"
  | vs ->
      List.iter (Printf.printf "figure 1 eager VIOLATION: %s\n") vs;
      exit 1

let run_serializability () =
  print_endline
    "\n== Theorem 6.2, executable: record histories, replay the claimed \
     serial order ==";
  let rows =
    Sim.Pool.map
      (fun seed ->
        let v = Dbsim.Serial_check.check ~seed:(Int64.of_int seed) () in
        [
          string_of_int seed;
          string_of_int v.Dbsim.Serial_check.transactions_checked;
          string_of_int v.Dbsim.Serial_check.queries_checked;
          (match v.Dbsim.Serial_check.errors with
          | [] -> "serializable"
          | e :: _ -> "ANOMALY: " ^ e);
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  print_string
    (Dbsim.Report.render
       ~header:[ "seed"; "transactions"; "queries"; "verdict" ]
       ~rows);
  if
    List.exists
      (fun row -> match row with [ _; _; _; v ] -> v <> "serializable" | _ -> true)
      rows
  then exit 1

let run_ablations () =
  Dbsim.Experiment.print_ablations ();
  Dbsim.Experiment.print_tree_vs_flat ()

(* Schedule exploration (lib/check): per-scenario coverage statistics,
   recorded for the JSON dump under "check".  Self-verifying like the
   other suites — a violation in a clean scenario fails the run. *)
let check_stats : (string * Explorer.stats) list ref = ref []

let run_check () =
  let budget = 2_000 in
  let rows =
    List.map
      (fun sc ->
        let r = Explorer.explore ~budget sc in
        check_stats := !check_stats @ [ (r.Explorer.scenario, r.Explorer.stats) ];
        (match r.Explorer.violation with
        | Some v ->
            Printf.eprintf "check %s found a violation:\n" r.Explorer.scenario;
            List.iter (fun m -> Printf.eprintf "  %s\n" m) v.Explorer.v_messages;
            exit 1
        | None -> ());
        let s = r.Explorer.stats in
        [
          sc.Scenario.name;
          string_of_int s.Explorer.schedules;
          string_of_int s.Explorer.completed;
          string_of_int s.Explorer.pruned;
          string_of_int s.Explorer.distinct_states;
          string_of_int s.Explorer.max_depth;
          string_of_bool s.Explorer.exhausted;
        ])
      [
        Scenarios.race2; Scenarios.mtf_race; Scenarios.crash_advance;
        Scenarios.group_commit_crash; Scenarios.table1_3site;
        Scenarios.relay_crash; Scenarios.backup_promotion;
        Scenarios.index_mtf_race; Scenarios.savepoint_rollback;
        Scenarios.session_dsl; Scenarios.toy_safe;
      ]
  in
  print_endline
    (Dbsim.Report.render
       ~header:
         [
           "scenario"; "schedules"; "completed"; "pruned"; "distinct";
           "max-depth"; "exhausted";
         ]
       ~rows);
  (* Conviction self-tests: the deliberately broken twins must be caught
     within budget — if the explorer stops finding these bugs, the
     oracles have gone blind. *)
  List.iter
    (fun (buggy, budget) ->
      (* The defect windows are a few events wide, so conviction needs a
         deeper sweep than the clean scenarios' coverage passes. *)
      let r = Explorer.explore ~budget buggy in
      check_stats := !check_stats @ [ (r.Explorer.scenario, r.Explorer.stats) ];
      match r.Explorer.violation with
      | Some v ->
          Printf.printf "check %s: convicted as expected (%s)\n"
            buggy.Scenario.name
            (match v.Explorer.v_messages with m :: _ -> m | [] -> "")
      | None ->
          Printf.eprintf "check %s: NO violation found but one was expected\n"
            buggy.Scenario.name;
          exit 1)
    [
      (Scenarios.replica_ack_early_buggy, 5_000);
      (Scenarios.index_skip_mtf_buggy, 2_000);
      (Scenarios.savepoint_leak_buggy, 2_000);
    ]

let experiments =
  [
    ("table1", run_table1);
    ("figure1", run_figure1);
    ("invariants", Dbsim.Experiment.print_invariants);
    ("staleness", Dbsim.Experiment.print_staleness);
    ("comparison", Dbsim.Experiment.print_comparison);
    ("movetofuture", Dbsim.Experiment.print_move_to_future);
    ("centralized", Dbsim.Experiment.print_centralized);
    ("serializability", run_serializability);
    ("ablations", run_ablations);
    ("scalability", Dbsim.Experiment.print_scalability);
    ("e12", fun () -> Dbsim.Experiment.print_hierarchy ());
    ("e12smoke", fun () -> Dbsim.Experiment.print_hierarchy ~sizes:[ 256 ] ());
    ("faults", Dbsim.Experiment.print_faults);
    ("batching", Dbsim.Experiment.print_batching);
    ("e13", fun () -> Dbsim.Experiment.print_replication ());
    ("e13smoke", fun () -> Dbsim.Experiment.print_replication ~horizon:300.0 ());
    ("e14", fun () -> Dbsim.Experiment.print_analytical ());
    ("e14smoke", fun () -> Dbsim.Experiment.print_analytical ~horizon:300.0 ());
    ("e15", fun () -> Dbsim.Experiment.print_session_retry ());
    ("e15smoke", fun () -> Dbsim.Experiment.print_session_retry ~horizon:300.0 ());
    ("check", run_check);
    ("index", run_index_bench);
    ("micro", run_micro);
    ("engine", run_engine);
    ("mcore", run_mcore_bench);
  ]

(* ------------------------------------------------------------------ *)
(* Driver: per-suite wall-clock, optional JSON dump                    *)
(* ------------------------------------------------------------------ *)

let timed name run =
  let t0 = Unix.gettimeofday () in
  run ();
  let dt = Unix.gettimeofday () -. t0 in
  suite_times := !suite_times @ [ (name, dt) ];
  Printf.printf "[%s: %.2fs wall-clock]\n%!" name dt

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path =
  let field (name, v) = Printf.sprintf "    \"%s\": %g" (json_escape name) v in
  let obj fields = String.concat ",\n" (List.map field fields) in
  let oc = open_out path in
  (* Per-node protocol metrics (commits/aborts by reason, moveToFutures,
     advancement phase durations, RPC latency histograms) for every
     experiment configuration that ran, sorted — see Dbsim.Report. *)
  let metrics_json =
    Dbsim.Report.metrics_to_json (Dbsim.Report.metrics_records ())
  in
  let check_json =
    let one (name, (s : Explorer.stats)) =
      Printf.sprintf
        "    \"%s\": {\"schedules\": %d, \"completed\": %d, \"pruned\": %d, \
         \"distinct_states\": %d, \"choice_points\": %d, \"max_depth\": %d, \
         \"exhausted\": %b, \"elapsed_s\": %g}"
        (json_escape name) s.Explorer.schedules s.Explorer.completed
        s.Explorer.pruned s.Explorer.distinct_states s.Explorer.choice_points
        s.Explorer.max_depth s.Explorer.exhausted s.Explorer.elapsed_s
    in
    match !check_stats with
    | [] -> "{}"
    | stats -> "{\n" ^ String.concat ",\n" (List.map one stats) ^ "\n  }"
  in
  (* Every suite owns one stable top-level key, so downstream tooling can
     key on suite names without parsing row labels: "micro_ns_per_run",
     "index", "suite_wall_clock_s", "check", "experiments". *)
  Printf.fprintf oc
    "{\n\
    \  \"domains\": %d,\n\
    \  \"micro_ns_per_run\": {\n%s\n  },\n\
    \  \"index\": {\n%s\n  },\n\
    \  \"suite_wall_clock_s\": {\n%s\n  },\n\
    \  \"check\": %s,\n\
    \  \"experiments\": %s\n\
     }\n"
    (Sim.Pool.default_domains ())
    (obj !micro_rows) (obj !index_rows) (obj !suite_times) check_json
    metrics_json;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let names, flags = List.partition (fun a -> a.[0] <> '-') args in
  List.iter
    (fun f ->
      if f = "--json" then json_mode := true
      else begin
        Printf.eprintf "usage: %s [--json] [experiment]\n" Sys.argv.(0);
        exit 2
      end)
    flags;
  (* Every suite below builds its configs as [{ Config.default with ... }];
     validating the base record here fails the whole binary fast if a
     default ever goes nonsensical, and per-suite overrides are validated
     again by [Cluster.create]. *)
  Ava3.Config.validate Ava3.Config.default;
  Printf.printf "parallel sweep domains: %d (override with AVA3_DOMAINS)\n%!"
    (Sim.Pool.default_domains ());
  (match names with
  | [] ->
      List.iter
        (fun (name, run) ->
          Printf.printf "\n###### %s ######\n%!" name;
          timed name run)
        experiments
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some run -> timed name run
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        names);
  if !json_mode then write_json "BENCH_micro.json"
