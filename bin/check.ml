(* check.exe — systematic schedule exploration over the built-in
   scenarios (lib/check).

   Default: explore every scenario that is expected to be clean and exit
   1 on the first violation, writing a replayable counterexample file.
   [--scenario NAME] restricts to one scenario; [--replay FILE] re-runs a
   counterexample file instead of exploring; [--expect-violation] inverts
   the exit sense (for exercising the deliberately buggy toy scenarios:
   finding their bug is the passing outcome). *)

let budget = ref 10_000
let max_depth = ref 400
let scenario = ref ""
let replay_file = ref ""
let out_file = ref ""
let list_only = ref false
let no_prune = ref false
let no_minimize = ref false
let expect_violation = ref false
let min_schedules = ref 0
let quiet = ref false

let specs =
  [
    ("--budget", Arg.Set_int budget, "N  max runs per scenario (default 10000)");
    ( "--max-depth",
      Arg.Set_int max_depth,
      "N  deepest choice point to branch at (default 400)" );
    ("--scenario", Arg.Set_string scenario, "NAME  explore one scenario only");
    ( "--replay",
      Arg.Set_string replay_file,
      "FILE  replay a counterexample file instead of exploring" );
    ( "--out",
      Arg.Set_string out_file,
      "FILE  counterexample output path (default counterexample-<name>.txt)" );
    ("--list", Arg.Set list_only, " list scenarios and exit");
    ("--no-prune", Arg.Set no_prune, " disable fingerprint pruning");
    ( "--no-minimize",
      Arg.Set no_minimize,
      " report the raw violating schedule without minimizing" );
    ( "--expect-violation",
      Arg.Set expect_violation,
      " exit 0 iff a violation IS found (buggy-scenario self-test)" );
    ( "--min-schedules",
      Arg.Set_int min_schedules,
      "N  fail unless at least N schedules were explored (CI gate)" );
    ("--quiet", Arg.Set quiet, " suppress per-run detail, print verdicts only");
  ]

let usage = "check.exe [options]\nSystematic schedule explorer for AVA3."

(* The buggy toy scenarios are self-tests of the explorer: they are only
   run when named explicitly or under --expect-violation. *)
let expected_clean =
  [ "race2"; "table1-3site"; "mtf-race"; "crash-advance";
    "group-commit-crash"; "relay-crash"; "backup-promotion";
    "savepoint-rollback"; "session-dsl"; "toy-safe"; "toy-rmw-safe" ]

let say fmt = Printf.ksprintf (fun s -> if not !quiet then print_endline s) fmt

let report_violation (sc : Scenario.t) (v : Explorer.violation) =
  Printf.printf "VIOLATION in %s:\n" sc.name;
  List.iter (fun m -> Printf.printf "  %s\n" m) v.v_messages;
  Printf.printf "  minimized schedule (%d decisions):\n"
    (List.length v.v_decisions);
  List.iteri
    (fun i (d : Explorer.decision) ->
      Printf.printf "    %2d. %s -> %d (of %d)\n" i d.label d.index d.arity)
    v.v_decisions;
  let path =
    if !out_file <> "" then !out_file
    else Printf.sprintf "counterexample-%s.txt" sc.name
  in
  Counterexample.save ~path ~scenario:sc.name
    ~decisions:
      (List.map
         (fun (d : Explorer.decision) -> (d.index, d.label))
         v.v_decisions)
    ~messages:v.v_messages;
  Printf.printf "  counterexample written to %s (replay: check.exe --replay %s)\n"
    path path

let explore_one (sc : Scenario.t) =
  say "exploring %-16s %s" sc.name sc.descr;
  let result =
    Explorer.explore ~budget:!budget ~max_depth:!max_depth
      ~prune:(not !no_prune)
      ~minimize_violation:(not !no_minimize)
      sc
  in
  say "  %s" (Format.asprintf "%a" Explorer.pp_stats result.stats);
  if !min_schedules > 0 && result.stats.schedules < !min_schedules then begin
    Printf.printf
      "FAIL %s: only %d schedules explored (--min-schedules %d)\n" sc.name
      result.stats.schedules !min_schedules;
    exit 1
  end;
  match result.violation with
  | None ->
      say "  ok: no violation within budget";
      false
  | Some v ->
      report_violation sc v;
      true

let run_replay path =
  let ce = Counterexample.load ~path in
  match Scenarios.find ce.scenario with
  | None ->
      Printf.eprintf "unknown scenario %S in %s\n" ce.scenario path;
      exit 2
  | Some sc ->
      Printf.printf "replaying %s (%d decisions) against %s\n" path
        (List.length ce.decisions) sc.name;
      let out = Explorer.replay sc ce.decisions in
      List.iter (fun l -> if not !quiet then print_endline ("  | " ^ l)) out.r_trace;
      List.iteri
        (fun i (d : Explorer.decision) ->
          Printf.printf "  %2d. %s -> %d (of %d)\n" i d.label d.index d.arity)
        out.r_decisions;
      (match out.r_fingerprint with
      | Some fp ->
          Printf.printf "  final state fingerprint: %s\n"
            (Fingerprint.to_hex fp)
      | None -> ());
      if out.r_messages = [] then begin
        Printf.printf "replay is clean: no violation reproduced\n";
        if !expect_violation then exit 1
      end
      else begin
        Printf.printf "replay reproduces the violation:\n";
        List.iter (fun m -> Printf.printf "  %s\n" m) out.r_messages;
        if not !expect_violation then exit 1
      end

let () =
  Arg.parse specs
    (fun anon ->
      Printf.eprintf "unexpected argument %S\n" anon;
      exit 2)
    usage;
  if !list_only then begin
    List.iter
      (fun (sc : Scenario.t) ->
        Printf.printf "%-16s %s\n" sc.name sc.descr)
      Scenarios.all;
    exit 0
  end;
  if !replay_file <> "" then begin
    run_replay !replay_file;
    exit 0
  end;
  let scenarios =
    if !scenario <> "" then begin
      match Scenarios.find !scenario with
      | Some sc -> [ sc ]
      | None ->
          Printf.eprintf "unknown scenario %S (try --list)\n" !scenario;
          exit 2
    end
    else
      List.filter
        (fun (sc : Scenario.t) -> List.mem sc.name expected_clean)
        Scenarios.all
  in
  let violations = List.length (List.filter explore_one scenarios) in
  if !expect_violation then
    if violations > 0 then begin
      Printf.printf "expected violation found\n";
      exit 0
    end
    else begin
      Printf.printf "FAIL: no violation found but one was expected\n";
      exit 1
    end
  else if violations > 0 then exit 1
  else say "all scenarios clean"
