(* stress — randomized protocol stress with livelock and invariant checks.

   Runs many seeds of a randomized mixed workload (updates, queries,
   advancements from random coordinators, optional crashes, optionally the
   tree executor) and fails loudly on: an exception, a §6.2 invariant
   violation, or a livelock (events still pending far beyond the workload
   horizon).  This is the tool that caught the premature-GC and
   cross-node-deadlock bugs during development; it runs in CI spirit:
   `dune exec bin/stress.exe -- --seeds 500`.  *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec

let run_one ~seed ~nodes ~crashes ~partitions ~use_tree ~nemesis ~hot_theta
    ~with_index ~with_sessions =
  let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
  let config =
    {
      Ava3.Config.default with
      scheme = (if seed mod 2 = 0 then Wal.Scheme.No_undo else Wal.Scheme.Undo_redo);
      eager_counter_handoff = seed mod 3 = 0;
      piggyback_version = seed mod 5 = 0;
      root_only_query_counters = seed mod 7 = 0;
      shared_transaction_counters = seed mod 11 = 0;
      gc_renumber = seed mod 13 <> 0;
      read_service_time = 0.3;
      write_service_time = 0.5;
      advancement_retry = 50.0;
      (* Finite: configurations with crashes/partitions must detect lost
         RPCs by timeout, not hang on them. *)
      rpc_timeout = 25.0;
      (* Commit-path batching at seed-derived strengths: about a third of
         the seeds pay for a real disk force and group-commit window (so
         crashes genuinely lose volatile log tails), and a subset of those
         also coalesce RPC legs into envelopes. *)
      disk_force_latency = (if seed mod 3 = 1 then 0.4 else 0.0);
      group_commit_window =
        (if seed mod 3 = 1 then 0.5 *. float_of_int (1 + (seed mod 4)) else 0.0);
      group_commit_batch = 4 + (seed mod 13);
      rpc_batch_window = (if seed mod 6 = 1 then 0.5 else 0.0);
    }
  in
  (* Fail fast on a nonsensical knob combination before any cluster
     setup; Cluster.create validates again, but by then a bad CLI value
     has already cost the run's setup work. *)
  Ava3.Config.validate config;
  let extract v = Printf.sprintf "a%03d" (((v mod 1000) + 1000) mod 1000) in
  let db : int Cluster.t =
    if with_index then Cluster.create ~engine ~config ~index:extract ~nodes ()
    else Cluster.create ~engine ~config ~nodes ()
  in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  for n = 0 to nodes - 1 do
    Cluster.load db ~node:n
      (List.init 12 (fun i -> (Printf.sprintf "n%d-k%d" n i, i)))
  done;
  let key n = Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng 12) in
  (* --hot-theta skews transaction/query roots toward low-numbered sites
     (hot partitions); the default 0.0 takes the uniform path and leaves
     the RNG sequence of every existing seed untouched. *)
  let zipf =
    if hot_theta > 0.0 then Some (Workload.Zipf.create ~n:nodes ~theta:hot_theta)
    else None
  in
  let pick_root () =
    match zipf with
    | Some z -> Workload.Zipf.sample z rng
    | None -> Sim.Rng.int rng nodes
  in
  let horizon = 400.0 in
  (* Updates. *)
  for _ = 1 to 25 do
    let delay = Sim.Rng.float rng horizon in
    Sim.Engine.schedule engine ~delay (fun () ->
        let root = pick_root () in
        let mk _ =
          let n = Sim.Rng.int rng nodes in
          if Sim.Rng.bool rng then
            Workload.Db_intf.Write { node = n; key = key n; value = Sim.Rng.int rng 1000 }
          else Workload.Db_intf.Read { node = n; key = key n }
        in
        let ops =
          List.init (1 + Sim.Rng.int rng 4) (fun i ->
              match mk i with
              | Workload.Db_intf.Write { node; key; value } ->
                  Update.Write { node; key; value }
              | Workload.Db_intf.Read { node; key } -> Update.Read { node; key })
        in
        ignore (Cluster.run_update_with_retry db ~root ~ops ()))
  done;
  (* Tree transactions (explicit), when enabled. *)
  if use_tree then
    for _ = 1 to 10 do
      let delay = Sim.Rng.float rng horizon in
      Sim.Engine.schedule engine ~delay (fun () ->
          let root = pick_root () in
          let children =
            List.filteri (fun i _ -> i <> root) (List.init nodes (fun i -> i))
            |> List.filter (fun _ -> Sim.Rng.bool rng)
            |> List.map (fun n ->
                   {
                     Ava3.Tree_txn.at = n;
                     work = [ Ava3.Tree_txn.Write (key n, Sim.Rng.int rng 1000) ];
                     children = [];
                   })
          in
          let plan =
            { Ava3.Tree_txn.at = root; work = [ Ava3.Tree_txn.Read (key root) ]; children }
          in
          ignore (Cluster.run_tree_update db ~plan))
    done;
  (* Queries. *)
  for _ = 1 to 20 do
    let delay = Sim.Rng.float rng horizon in
    Sim.Engine.schedule engine ~delay (fun () ->
        let root = pick_root () in
        let reads =
          List.init (1 + Sim.Rng.int rng 5) (fun _ ->
              let n = Sim.Rng.int rng nodes in
              (n, key n))
        in
        try ignore (Cluster.run_query db ~root ~reads)
        with Net.Network.Node_down _ | Net.Network.Rpc_timeout _ -> ())
  done;
  (* Index scans and joins under --index: every select runs [`Both_check] —
     the index plan and the full-scan plan back to back at each site — so
     any divergence between them surfaces as an Index_mismatch exception
     and fails the seed.  Off by default; the flag leaves the RNG sequence
     of unindexed runs untouched. *)
  if with_index then begin
    let attr () = Printf.sprintf "a%03d" (Sim.Rng.int rng 1000) in
    let range () =
      let a = attr () and b = attr () in
      if a <= b then (a, b) else (b, a)
    in
    for _ = 1 to 10 do
      let delay = Sim.Rng.float rng horizon in
      Sim.Engine.schedule engine ~delay (fun () ->
          let root = pick_root () in
          let lo, hi = range () in
          let ranges = List.init nodes (fun n -> (n, lo, hi)) in
          try ignore (Cluster.run_select db ~root ~plan:`Both_check ~ranges)
          with Net.Network.Node_down _ | Net.Network.Rpc_timeout _ -> ())
    done;
    for _ = 1 to 4 do
      let delay = Sim.Rng.float rng horizon in
      Sim.Engine.schedule engine ~delay (fun () ->
          let root = pick_root () in
          let parts = List.init nodes Fun.id in
          let blo, bhi = range () and plo, phi = range () in
          try
            ignore
              (Cluster.run_join db ~root ~plan:`Both_check
                 ~build:(parts, blo, bhi) ~probe:(parts, plo, phi))
          with Net.Network.Node_down _ | Net.Network.Rpc_timeout _ -> ())
    done
  end;
  (* Session-layer client programs under --sessions: seeded DSL programs
     (savepoint scopes, expect-abort rollbacks, automatic seeded retry)
     run through Session on pooled coordinators, racing everything else
     the seed schedules.  All randomness comes from a named fork of the
     engine's root stream, so runs without the flag keep their exact RNG
     sequences. *)
  if with_sessions then begin
    let srng = Sim.Rng.fork_named (Sim.Engine.rng engine) "stress-sessions" in
    for i = 0 to 1 do
      let delay = Sim.Rng.float srng (horizon /. 2.0) in
      let prog = Session.Dsl.gen ~rng:srng ~nodes ~keys_per_node:8 ~txns:5 in
      Sim.Engine.schedule engine ~delay
        ~name:(Printf.sprintf "sessions-%d" i)
        (fun () ->
          let sess =
            Session.create db ~seed:(Int64.of_int ((seed * 17) + i))
          in
          ignore (Session.Dsl.run sess prog : Session.Dsl.summary))
    done
  end;
  (* Advancements from random coordinators. *)
  for _ = 1 to 5 do
    let delay = Sim.Rng.float rng horizon in
    let k = Sim.Rng.int rng nodes in
    Sim.Engine.schedule engine ~delay (fun () ->
        ignore (Cluster.advance db ~coordinator:k))
  done;
  (* Crash/recover cycles. *)
  if crashes then begin
    let victim = Sim.Rng.int rng nodes in
    let at = Sim.Rng.float rng (horizon /. 2.0) in
    Sim.Engine.schedule engine ~delay:at (fun () -> Cluster.crash db ~node:victim);
    Sim.Engine.schedule engine ~delay:(at +. 60.0) (fun () ->
        Cluster.recover db ~node:victim);
    Sim.Engine.schedule engine ~delay:(at +. 120.0) (fun () ->
        ignore (Cluster.advance db ~coordinator:((victim + 1) mod nodes)))
  end;
  (* Seeded nemesis: random crash/partition/slow-link schedule with WAL
     recovery on restart, plus a late advancement to exercise the §3.2
     stalled-round re-initiation after mid-round faults. *)
  if nemesis then begin
    let plan =
      Net.Nemesis.random_plan ~rng ~nodes ~horizon:(horizon /. 1.5)
        ~crashes:2 ~partitions:1 ~slow_links:1 ~min_duration:20.0
        ~max_duration:50.0 ~extra_latency:3.0 ()
    in
    Net.Nemesis.install ~engine (Cluster.nemesis_target db) plan;
    Sim.Engine.schedule engine ~delay:(horizon +. 50.0) (fun () ->
        for k = 0 to nodes - 1 do
          ignore (Cluster.advance db ~coordinator:k)
        done)
  end;
  (* Network partitions: cut a random directed pair both ways, heal later. *)
  if partitions then begin
    let a = Sim.Rng.int rng nodes in
    let b = (a + 1 + Sim.Rng.int rng (nodes - 1)) mod nodes in
    let at = Sim.Rng.float rng (horizon /. 2.0) in
    let net = Cluster.network db in
    Sim.Engine.schedule engine ~delay:at (fun () ->
        Net.Network.set_link_down net ~src:a ~dst:b true;
        Net.Network.set_link_down net ~src:b ~dst:a true);
    Sim.Engine.schedule engine ~delay:(at +. 80.0) (fun () ->
        Net.Network.set_link_down net ~src:a ~dst:b false;
        Net.Network.set_link_down net ~src:b ~dst:a false);
    Sim.Engine.schedule engine ~delay:(at +. 160.0) (fun () ->
        ignore (Cluster.advance db ~coordinator:a))
  end;
  (* Invariant probes. *)
  let violations = ref [] in
  for _ = 1 to 10 do
    let delay = Sim.Rng.float rng (horizon +. 100.0) in
    Sim.Engine.schedule engine ~delay (fun () ->
        violations := Cluster.check_invariants db @ !violations)
  done;
  (* Livelock detection: the run must drain well before this wall. *)
  let wall = 50_000.0 in
  Sim.Engine.run ~until:wall engine;
  let pending = Sim.Engine.pending_events engine in
  violations := Cluster.check_invariants db @ !violations;
  let metrics = Cluster.metrics_snapshot db in
  let outcome =
    if pending > 0 then begin
      let buf = Buffer.create 256 in
      Buffer.add_string buf
        (Printf.sprintf "livelock: %d events still pending at t=%.0f;" pending
           wall);
      for n = 0 to nodes - 1 do
        let nd = Cluster.node db n in
        Buffer.add_string buf
          (Printf.sprintf " node%d{u=%d q=%d g=%d upd=%d qry(q)=%d wait=%d}" n
             (Ava3.Node_state.u nd) (Ava3.Node_state.q nd) (Ava3.Node_state.g nd)
             (Ava3.Node_state.active_update_transactions nd)
             (Ava3.Node_state.query_count nd ~version:(Ava3.Node_state.q nd))
             (Lockmgr.Lock_table.waiting_requests (Ava3.Node_state.locks nd)))
      done;
      Buffer.add_string buf
        (Printf.sprintf " in_progress=%b" (Cluster.advancement_in_progress db));
      Error (Buffer.contents buf)
    end
    else if !violations <> [] then
      Error
        (Printf.sprintf "invariant violations: %s"
           (String.concat "; " !violations))
    else Ok ()
  in
  (outcome, metrics)

let configurations =
  [
    (* nodes, crashes, partitions, use_tree, nemesis *)
    (2, false, false, false, false);
    (3, true, false, false, false);
    (4, false, false, true, false);
    (3, false, true, false, false);
    (3, false, false, false, true);
  ]

let () =
  let seeds = ref 200 and from = ref 1 and verbose = ref false in
  let hot_theta = ref 0.0 and with_index = ref false in
  let with_sessions = ref false in
  let spec =
    [
      ("--seeds", Arg.Set_int seeds, "number of seeds to run (default 200)");
      ("--from", Arg.Set_int from, "first seed (default 1)");
      ( "--hot-theta",
        Arg.Set_float hot_theta,
        "Zipf skew of transaction roots over sites (default 0.0 = uniform)" );
      ( "--index",
        Arg.Set with_index,
        "attach a secondary index and mix in Both_check scans and joins" );
      ( "--sessions",
        Arg.Set with_sessions,
        "mix in session-layer DSL programs (savepoints, automatic retry)" );
      ("-v", Arg.Set verbose, "print each seed");
    ]
  in
  Arg.parse spec
    (fun _ -> ())
    "stress [--seeds N] [--from S] [--hot-theta T] [--index] [--sessions]";
  let hot_theta = !hot_theta and with_index = !with_index in
  let with_sessions = !with_sessions in
  (* Seeds fan out over domains (AVA3_DOMAINS, see Sim.Pool); each run is a
     self-contained engine, so outcomes are identical at any width.  Workers
     only compute — all printing happens afterwards, in seed order. *)
  let outcomes =
    Sim.Pool.map
      (fun seed ->
        List.map
          (fun ((nodes, crashes, partitions, use_tree, nemesis) as cfg) ->
            let outcome, metrics =
              try
                run_one ~seed ~nodes ~crashes ~partitions ~use_tree ~nemesis
                  ~hot_theta ~with_index ~with_sessions
              with e -> (Error ("exception: " ^ Printexc.to_string e), [])
            in
            (seed, cfg, outcome, metrics))
          configurations)
      (List.init !seeds (fun i -> !from + i))
  in
  let failures = ref 0 in
  (* Aggregate protocol totals across every run, from the per-run
     metrics snapshots. *)
  let commits = ref 0
  and aborts = ref 0
  and root_down = ref 0
  and queries = ref 0
  and mtf = ref 0
  and advancements = ref 0
  and rpc_calls = ref 0
  and rpc_timeouts = ref 0
  and session_retries = ref 0
  and sp_rollbacks = ref 0 in
  List.iter
    (List.iter
       (fun
         (seed, (nodes, crashes, partitions, use_tree, nemesis), outcome, metrics)
       ->
         List.iter
           (fun (n : Sim.Metrics.node_snapshot) ->
             commits := !commits + n.commits;
             aborts := !aborts + Sim.Metrics.aborts_total n;
             root_down := !root_down + n.root_down_rejections;
             queries := !queries + n.queries;
             mtf := !mtf + n.mtf_data_access + n.mtf_commit_time;
             advancements := !advancements + n.advancements;
             rpc_calls := !rpc_calls + n.rpc_calls;
             rpc_timeouts := !rpc_timeouts + n.rpc_timeouts;
             session_retries := !session_retries + n.session_retries;
             sp_rollbacks := !sp_rollbacks + n.savepoint_rollbacks)
           metrics;
         if !verbose then
           Printf.printf
             "seed %d nodes %d crashes %b partitions %b tree %b nemesis %b\n%!"
             seed nodes crashes partitions use_tree nemesis;
         match outcome with
         | Ok () -> ()
         | Error msg ->
             incr failures;
             Printf.printf
               "FAIL seed=%d nodes=%d crashes=%b partitions=%b tree=%b \
                nemesis=%b: %s\n%!"
               seed nodes crashes partitions use_tree nemesis msg))
    outcomes;
  Printf.printf
    "stress metrics: commits=%d aborts=%d root-down=%d queries=%d mtf=%d \
     advancements=%d rpc=%d timeouts=%d retries=%d sp-rollbacks=%d\n"
    !commits !aborts !root_down !queries !mtf !advancements !rpc_calls
    !rpc_timeouts !session_retries !sp_rollbacks;
  if !failures = 0 then
    Printf.printf "stress: %d seeds x %d configurations clean\n" !seeds
      (List.length configurations)
  else begin
    Printf.printf "stress: %d failures\n" !failures;
    exit 1
  end
