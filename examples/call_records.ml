(* Telephone call records — the paper's motivating AT&T workload (§1.1).

   An operations-support stream continuously records completed calls
   (update transactions touching per-customer usage counters), while
   customer-care queries read whole account histories (multi-item read-only
   queries).  Manual versioning would block customer access during the
   periodic "flush"; AVA3 runs version advancement every few minutes of
   virtual time with zero blocking.

   The example reports: call-recording throughput, customer-query latency,
   the snapshot staleness customers observe, and the fact that no query ever
   waited for a lock.

   Run with: dune exec examples/call_records.exe *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec

let nodes = 4 (* regional switches *)
let customers_per_node = 50
let minutes = 60.0 (* one virtual "minute" *)
let run_for = 120.0 *. minutes

let customer_key c = Printf.sprintf "cust-%04d" c

let () =
  let engine = Sim.Engine.create ~seed:77L ~trace:false () in
  let config =
    { Ava3.Config.default with read_service_time = 0.2; write_service_time = 0.4 }
  in
  let db : int Cluster.t =
    Cluster.create ~engine ~config
      ~latency:(Net.Latency.Exponential { mean = 2.0; floor = 0.5 })
      ~nodes ()
  in
  (* Every customer starts with zero usage. *)
  for n = 0 to nodes - 1 do
    Cluster.load db ~node:n
      (List.init customers_per_node (fun c ->
           (customer_key ((n * customers_per_node) + c), 0)))
  done;
  (* Version advancement every "five minutes". *)
  Cluster.start_periodic_advancement db ~coordinator:0 ~period:(5.0 *. minutes)
    ~until:run_for;

  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let calls_recorded = ref 0 and calls_failed = ref 0 in
  let query_latency = Workload.Histogram.create () in
  let staleness = Workload.Histogram.create () in

  (* Call-record stream: ~1 call per time unit, each charging one customer
     (and, for long-distance calls, settling with the destination region). *)
  let rec schedule_calls at =
    if at < run_for then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let origin = Sim.Rng.int rng nodes in
          let customer =
            (origin * customers_per_node) + Sim.Rng.int rng customers_per_node
          in
          let duration = 1 + Sim.Rng.int rng 30 in
          let charge v = Option.value v ~default:0 + duration in
          let ops =
            let base =
              [
                Update.Read_modify_write
                  { node = origin; key = customer_key customer; f = charge };
              ]
            in
            if Sim.Rng.chance rng 0.3 then
              (* Long-distance: also update the destination region's
                 settlement record. *)
              let dest = Sim.Rng.int rng nodes in
              base
              @ [
                  Update.Read_modify_write
                    {
                      node = dest;
                      key =
                        customer_key
                          ((dest * customers_per_node)
                          + Sim.Rng.int rng customers_per_node);
                      f = charge;
                    };
                ]
            else base
          in
          match Cluster.run_update_with_retry db ~root:origin ~ops () with
          | Update.Committed _, _ -> incr calls_recorded
          | (Update.Aborted _ | Update.Root_down _), _ -> incr calls_failed);
      schedule_calls (at +. Sim.Rng.exponential rng ~mean:1.0)
    end
  in
  schedule_calls 1.0;

  (* Customer-care queries: read a customer's records plus a few related
     accounts, every ~10 time units. *)
  let rec schedule_queries at =
    if at < run_for then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let agent_site = Sim.Rng.int rng nodes in
          let reads =
            List.init 5 (fun _ ->
                let n = Sim.Rng.int rng nodes in
                ( n,
                  customer_key
                    ((n * customers_per_node) + Sim.Rng.int rng customers_per_node)
                ))
          in
          let q = Cluster.run_query db ~root:agent_site ~reads in
          Workload.Histogram.add query_latency
            (q.Ava3.Query_exec.finished_at -. q.Ava3.Query_exec.started_at);
          Option.iter
            (Workload.Histogram.add staleness)
            (q.Ava3.Query_exec.staleness));
      schedule_queries (at +. Sim.Rng.exponential rng ~mean:10.0)
    end
  in
  schedule_queries 2.0;

  (* Billing sweeps: each region's whole customer block scanned as one
     ordered, lock-free range over a consistent snapshot. *)
  let bill_scans = ref 0 and bill_rows = ref 0 in
  let rec schedule_bills at =
    if at < run_for then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let region = Sim.Rng.int rng nodes in
          let lo = customer_key (region * customers_per_node) in
          let hi = customer_key (((region + 1) * customers_per_node) - 1) in
          let scan = Cluster.run_scan db ~root:region ~ranges:[ (region, lo, hi) ] in
          incr bill_scans;
          bill_rows := !bill_rows + List.length scan.Ava3.Query_exec.values);
      schedule_bills (at +. (15.0 *. minutes))
    end
  in
  schedule_bills (10.0 *. minutes);

  Sim.Engine.run engine;

  let stats = Cluster.stats db in
  Printf.printf "call records (AT&T-style workload, %d regions, %.0f minutes)\n"
    nodes (run_for /. minutes);
  Printf.printf "  calls recorded:      %d (failed: %d)\n" !calls_recorded
    !calls_failed;
  Printf.printf "  version advancements: %d (one per ~5 min)\n"
    stats.Cluster.advancements;
  Printf.printf "  customer query latency: %s\n"
    (Workload.Histogram.summary query_latency);
  Printf.printf "  snapshot staleness (minutes): mean %.2f, max %.2f\n"
    (Workload.Histogram.mean staleness /. minutes)
    (Workload.Histogram.max_value staleness /. minutes);
  Printf.printf "  billing sweeps: %d full-region scans, %d rows, zero locks\n"
    !bill_scans !bill_rows;
  Printf.printf "  queries blocked by updates: 0 by construction — queries take no locks\n";
  Printf.printf "  max versions of any record: %d (bound: 3)\n"
    stats.Cluster.max_versions_ever;
  match Cluster.check_invariants db with
  | [] -> print_endline "  invariants: OK"
  | vs -> List.iter print_endline vs
