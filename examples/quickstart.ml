(* Quickstart: a three-node AVA3 cluster in a simulation.

   Shows the public API end to end: build an engine and a cluster, preload
   data, run update transactions and lock-free queries, advance the version
   so queries see newer data, and read the protocol statistics.

   Run with: dune exec examples/quickstart.exe *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec

let () =
  (* All activity happens on a deterministic virtual clock. *)
  let engine = Sim.Engine.create ~seed:2024L () in
  let db : int Cluster.t = Cluster.create ~engine ~nodes:3 () in

  (* Preload some data (version 0). *)
  Cluster.load db ~node:0 [ ("alice", 100) ];
  Cluster.load db ~node:1 [ ("bob", 250) ];
  Cluster.load db ~node:2 [ ("carol", 75) ];

  (* Everything that talks to the database runs inside a simulation
     process. *)
  Sim.Engine.spawn engine (fun () ->
      (* A distributed update transaction: transfer 50 from alice (node 0)
         to bob (node 1).  Strict 2PL + 2PC underneath. *)
      (match
         Cluster.run_update db ~root:0
           ~ops:
             [
               Update.Read_modify_write
                 {
                   node = 0;
                   key = "alice";
                   f = (fun v -> Option.value v ~default:0 - 50);
                 };
               Update.Read_modify_write
                 {
                   node = 1;
                   key = "bob";
                   f = (fun v -> Option.value v ~default:0 + 50);
                 };
             ]
       with
      | Update.Committed c ->
          Printf.printf "[%.1f] transfer committed in version %d\n"
            (Sim.Engine.now engine) c.Update.final_version
      | Update.Aborted _ | Update.Root_down _ ->
          print_endline "transfer aborted");

      (* Queries read a consistent snapshot without locks.  Before any
         version advancement they still see version 0. *)
      let q = Cluster.run_query db ~root:2 ~reads:[ (0, "alice"); (1, "bob") ] in
      Printf.printf "[%.1f] query (snapshot v%d):" (Sim.Engine.now engine)
        q.Ava3.Query_exec.version;
      List.iter
        (fun (_, key, v) ->
          Printf.printf " %s=%s" key
            (match v with Some v -> string_of_int v | None -> "-"))
        q.Ava3.Query_exec.values;
      print_newline ();

      (* Advance the version: the committed transfer becomes readable. *)
      (match Cluster.advance_and_wait db ~coordinator:1 with
      | `Completed newu ->
          Printf.printf "[%.1f] advancement to u=%d complete\n"
            (Sim.Engine.now engine) newu
      | `Busy -> print_endline "advancement busy");

      let q2 = Cluster.run_query db ~root:2 ~reads:[ (0, "alice"); (1, "bob") ] in
      Printf.printf "[%.1f] query (snapshot v%d):" (Sim.Engine.now engine)
        q2.Ava3.Query_exec.version;
      List.iter
        (fun (_, key, v) ->
          Printf.printf " %s=%s" key
            (match v with Some v -> string_of_int v | None -> "-"))
        q2.Ava3.Query_exec.values;
      print_newline ());

  Sim.Engine.run engine;

  let stats = Cluster.stats db in
  Format.printf "stats: %a@." Cluster.pp_stats stats;
  match Cluster.check_invariants db with
  | [] -> print_endline "invariants: OK"
  | vs -> List.iter print_endline vs
