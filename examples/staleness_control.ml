(* Controlling snapshot staleness with the advancement rate (paper §8).

   "The staleness of data returned by queries can be effectively controlled
   by the frequency of version advancement."  This example sweeps the
   advancement period on a fixed workload and prints the staleness queries
   observe, then demonstrates the §8 on-demand trick: a user who wants fresh
   data triggers an advancement immediately before querying.

   Run with: dune exec examples/staleness_control.exe *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec

let run_for = 2000.0

let run_with_period period =
  let engine = Sim.Engine.create ~seed:55L ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~advancement_period:period
      ~advancement_until:run_for ~nodes:3 ()
  in
  let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:60 ~theta:0.8 in
  for n = 0 to 2 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Workload.Driver.default_spec with
      duration = run_for;
      update_rate = 0.2;
      query_rate = 0.2;
      ops_per_update = (1, 3);
    }
  in
  let report =
    Workload.Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks
      ~spec
  in
  (report, Ava3.Cluster.stats (Baseline.Ava3_db.cluster db))

let () =
  print_endline "staleness vs advancement period (fixed workload, 3 nodes)";
  Printf.printf "%10s  %12s  %10s  %10s  %12s\n" "period" "advancements"
    "mean stale" "max stale" "messages";
  List.iter
    (fun period ->
      let report, stats = run_with_period period in
      Printf.printf "%10.0f  %12d  %10.1f  %10.1f  %12d\n" period
        stats.Cluster.advancements
        (Workload.Histogram.mean report.Workload.Driver.staleness)
        (Workload.Histogram.max_value report.Workload.Driver.staleness)
        stats.Cluster.messages)
    [ 20.0; 50.0; 100.0; 250.0; 500.0 ];
  print_endline
    "\nfaster advancement => fresher snapshots, more protocol messages.\n";

  (* On-demand freshness: advance right before the query (§8). *)
  print_endline "on-demand freshness: advance immediately before querying";
  let engine = Sim.Engine.create ~seed:56L () in
  let db : int Cluster.t = Cluster.create ~engine ~nodes:3 () in
  Cluster.load db ~node:0 [ ("ticker", 0) ];
  Sim.Engine.spawn engine (fun () ->
      (* A write happens... *)
      (match
         Cluster.run_update db ~root:0
           ~ops:[ Update.Write { node = 0; key = "ticker"; value = 42 } ]
       with
      | Update.Committed _ -> ()
      | Update.Aborted _ | Update.Root_down _ -> assert false);
      Sim.Engine.sleep 100.0;
      (* ...a plain query still sees the old snapshot... *)
      let stale = Cluster.run_query db ~root:1 ~reads:[ (0, "ticker") ] in
      Printf.printf "  plain query:     snapshot v%d, ticker=%s\n"
        stale.Ava3.Query_exec.version
        (match stale.Ava3.Query_exec.values with
        | [ (_, _, Some v) ] -> string_of_int v
        | _ -> "-");
      (* ...but advancing first yields (almost) current data. *)
      (match Cluster.advance_and_wait db ~coordinator:1 with
      | `Completed _ -> ()
      | `Busy -> ());
      let fresh = Cluster.run_query db ~root:1 ~reads:[ (0, "ticker") ] in
      Printf.printf "  after advance:   snapshot v%d, ticker=%s (staleness %.1f)\n"
        fresh.Ava3.Query_exec.version
        (match fresh.Ava3.Query_exec.values with
        | [ (_, _, Some v) ] -> string_of_int v
        | _ -> "-")
        (Option.value fresh.Ava3.Query_exec.staleness ~default:nan));
  Sim.Engine.run engine
