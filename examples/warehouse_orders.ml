(* Multi-warehouse order processing — the R*-style tree-transaction API.

   An order arrives at a regional front-end (the transaction root), which
   concurrently reserves stock at two warehouses and appends to the regional
   order log: one tree transaction, children running in parallel, committed
   atomically by the versioned two-phase commit.  Meanwhile an analyst scans
   whole warehouses with lock-free ordered range queries over a consistent
   snapshot.

   Run with: dune exec examples/warehouse_orders.exe *)

module Cluster = Ava3.Cluster
module Tree = Ava3.Tree_txn

let front_end = 0
let warehouse_a = 1
let warehouse_b = 2
let skus_per_warehouse = 25
let run_for = 2000.0

let sku w i = Printf.sprintf "w%d-sku%03d" w i

let () =
  let engine = Sim.Engine.create ~seed:321L ~trace:false () in
  let config =
    { Ava3.Config.default with read_service_time = 0.1; write_service_time = 0.2 }
  in
  let db : int Cluster.t =
    Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.5) ~nodes:3 ()
  in
  (* Stock levels at the warehouses, an order counter at the front-end. *)
  List.iter
    (fun w ->
      Cluster.load db ~node:w
        (List.init skus_per_warehouse (fun i -> (sku w i, 100))))
    [ warehouse_a; warehouse_b ];
  Cluster.load db ~node:front_end [ ("orders", 0) ];
  Cluster.start_periodic_advancement db ~coordinator:front_end ~period:150.0
    ~until:run_for;

  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let placed = ref 0 and rejected = ref 0 in
  let order_latency = Workload.Histogram.create () in

  (* Order stream: each order reserves one SKU at each warehouse,
     concurrently, and bumps the order counter at the root. *)
  let rec schedule_orders at =
    if at < run_for then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let pick w = sku w (Sim.Rng.int rng skus_per_warehouse) in
          let reserve w =
            {
              Tree.at = w;
              work =
                [
                  Tree.Read_modify_write
                    (pick w, fun v -> Option.value v ~default:0 - 1);
                ];
              children = [];
            }
          in
          let plan =
            {
              Tree.at = front_end;
              work =
                [
                  Tree.Read_modify_write
                    ("orders", fun v -> Option.value v ~default:0 + 1);
                ];
              children = [ reserve warehouse_a; reserve warehouse_b ];
            }
          in
          let t0 = Sim.Engine.now engine in
          match Cluster.run_tree_update db ~plan with
          | Tree.Committed _ ->
              incr placed;
              Workload.Histogram.add order_latency (Sim.Engine.now engine -. t0)
          | Tree.Aborted _ | Tree.Root_down _ -> incr rejected);
      schedule_orders (at +. Sim.Rng.exponential rng ~mean:4.0)
    end
  in
  schedule_orders 1.0;

  (* Analyst: periodic full-warehouse stock scans, lock-free. *)
  let scans = ref 0 and min_stock_seen = ref max_int in
  let rec schedule_scans at =
    if at < run_for then begin
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let w = if Sim.Rng.bool rng then warehouse_a else warehouse_b in
          let scan =
            Cluster.run_scan db ~root:front_end
              ~ranges:[ (w, sku w 0, sku w (skus_per_warehouse - 1)) ]
          in
          incr scans;
          List.iter
            (fun (_, _, v) ->
              Option.iter (fun v -> min_stock_seen := min !min_stock_seen v) v)
            scan.Ava3.Query_exec.values);
      schedule_scans (at +. 100.0)
    end
  in
  schedule_scans 50.0;

  Sim.Engine.run engine;

  let stats = Cluster.stats db in
  Printf.printf "warehouse orders (tree transactions, %d SKUs per warehouse)\n"
    skus_per_warehouse;
  Printf.printf "  orders placed: %d (rejected: %d)\n" !placed !rejected;
  Printf.printf "  order latency: %s\n" (Workload.Histogram.summary order_latency);
  Printf.printf "  stock scans: %d (lowest stock observed %d)\n" !scans
    !min_stock_seen;
  Printf.printf "  commit-time version repairs: %d; data-access repairs: %d\n"
    stats.Cluster.mtf_commit_time stats.Cluster.mtf_data_access;
  Printf.printf "  max versions of any item: %d\n" stats.Cluster.max_versions_ever;
  (* Audit: every order removed exactly one unit from each warehouse. *)
  Sim.Engine.spawn engine (fun () ->
      let audit w =
        let scan =
          Cluster.run_scan db ~root:front_end
            ~ranges:[ (w, sku w 0, sku w (skus_per_warehouse - 1)) ]
        in
        List.fold_left
          (fun acc (_, _, v) -> acc + Option.value v ~default:0)
          0 scan.Ava3.Query_exec.values
      in
      ignore (Cluster.advance_and_wait db ~coordinator:front_end);
      let total = audit warehouse_a + audit warehouse_b in
      let expected = (2 * skus_per_warehouse * 100) - (2 * !placed) in
      Printf.printf "  audit: remaining stock %d, expected %d -> %s\n" total
        expected
        (if total = expected then "consistent" else "INCONSISTENT"));
  Sim.Engine.run engine;
  match Cluster.check_invariants db with
  | [] -> print_endline "  invariants: OK"
  | vs -> List.iter print_endline vs
