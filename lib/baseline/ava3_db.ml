type t = {
  db : int Ava3.Cluster.t;
  use_tree : bool;
  indexed : bool;
  attr_of : float -> string;
  scan_plan : Ava3.Query_exec.select_plan;
}

let name = "ava3"

(* Standard secondary attribute for int-valued stores: the value modulo
   1000, zero-padded so lexicographic order matches numeric order, which
   lets normalized [0,1] ranges map onto contiguous attribute intervals. *)
let default_extract v = Printf.sprintf "a%03d" (((v mod 1000) + 1000) mod 1000)

let default_attr_of f =
  let f = Float.min 1.0 (Float.max 0.0 f) in
  Printf.sprintf "a%03d" (min 999 (int_of_float (f *. 1000.0)))

let create ~engine ?config ?latency ?(advancement_period = 100.0)
    ?(advancement_until = 10_000.0) ?(use_tree = false) ?index
    ?(attr_of = default_attr_of) ?(scan_plan = `Index) ~nodes () =
  let db = Ava3.Cluster.create ~engine ?config ?latency ?index ~nodes () in
  if advancement_period > 0.0 then
    Ava3.Cluster.start_periodic_advancement db ~coordinator:0
      ~period:advancement_period ~until:advancement_until;
  { db; use_tree; indexed = Option.is_some index; attr_of; scan_plan }

let cluster t = t.db
let load t ~node items = Ava3.Cluster.load t.db ~node items
let node_count t = Ava3.Cluster.node_count t.db

let to_op = function
  | Workload.Db_intf.Read { node; key } -> Ava3.Update_exec.Read { node; key }
  | Workload.Db_intf.Write { node; key; value } ->
      Ava3.Update_exec.Write { node; key; value }

(* Build a one-level tree: the root's own operations plus one concurrent
   child per remote node touched. *)
let tree_plan ~root ops =
  let to_step = function
    | Workload.Db_intf.Read { key; _ } -> Ava3.Tree_txn.Read key
    | Workload.Db_intf.Write { key; value; _ } -> Ava3.Tree_txn.Write (key, value)
  in
  let node_of = function
    | Workload.Db_intf.Read { node; _ } | Workload.Db_intf.Write { node; _ } ->
        node
  in
  let by_node = Hashtbl.create 4 in
  List.iter
    (fun op ->
      let n = node_of op in
      let steps = Option.value (Hashtbl.find_opt by_node n) ~default:[] in
      Hashtbl.replace by_node n (to_step op :: steps))
    ops;
  let work =
    List.rev (Option.value (Hashtbl.find_opt by_node root) ~default:[])
  in
  let children =
    Hashtbl.fold
      (fun n steps acc ->
        if n = root then acc
        else
          { Ava3.Tree_txn.at = n; work = List.rev steps; children = [] } :: acc)
      by_node []
    |> List.sort (fun a b -> compare a.Ava3.Tree_txn.at b.Ava3.Tree_txn.at)
  in
  { Ava3.Tree_txn.at = root; work; children }

let submit_update t ~root ~ops =
  if t.use_tree then begin
    let plan = tree_plan ~root ops in
    let rec attempt n =
      match Ava3.Cluster.run_tree_update t.db ~plan with
      | Ava3.Tree_txn.Committed _ -> Workload.Db_intf.Committed
      | Ava3.Tree_txn.Aborted _ when n < 10 ->
          Sim.Engine.sleep 5.0;
          attempt (n + 1)
      | Ava3.Tree_txn.Aborted _ | Ava3.Tree_txn.Root_down _ ->
          Workload.Db_intf.Aborted
    in
    attempt 1
  end
  else
    match
      Ava3.Cluster.run_update_with_retry t.db ~root ~ops:(List.map to_op ops) ()
    with
    | Ava3.Update_exec.Committed _, _ -> Workload.Db_intf.Committed
    | (Ava3.Update_exec.Aborted _ | Ava3.Update_exec.Root_down _), _ ->
        Workload.Db_intf.Aborted

let submit_query t ~root ~reads =
  match Ava3.Cluster.run_query t.db ~root ~reads with
  | result ->
      Some
        {
          Workload.Db_intf.q_latency =
            result.Ava3.Query_exec.finished_at -. result.Ava3.Query_exec.started_at;
          q_staleness = result.Ava3.Query_exec.staleness;
        }
  | exception Net.Network.Node_down _ -> None
  | exception Net.Network.Rpc_timeout _ -> None

let query_outcome (result : int Ava3.Query_exec.result) =
  Some
    {
      Workload.Db_intf.q_latency =
        result.Ava3.Query_exec.finished_at -. result.Ava3.Query_exec.started_at;
      q_staleness = result.Ava3.Query_exec.staleness;
    }

let submit_scan t ~root ~range:(fl, fh) =
  if not t.indexed then None
  else begin
    let lo = t.attr_of (Float.min fl fh) and hi = t.attr_of (Float.max fl fh) in
    let ranges =
      List.init (Ava3.Cluster.partitions t.db) (fun n -> (n, lo, hi))
    in
    match Ava3.Cluster.run_select t.db ~root ~plan:t.scan_plan ~ranges with
    | result -> query_outcome result
    | exception Net.Network.Node_down _ -> None
    | exception Net.Network.Rpc_timeout _ -> None
  end

let submit_join t ~root ~build:(bl, bh) ~probe:(pl, ph) =
  if not t.indexed then None
  else begin
    let parts = List.init (Ava3.Cluster.partitions t.db) Fun.id in
    let side (fl, fh) =
      (parts, t.attr_of (Float.min fl fh), t.attr_of (Float.max fl fh))
    in
    match
      Ava3.Cluster.run_join t.db ~root ~plan:t.scan_plan ~build:(side (bl, bh))
        ~probe:(side (pl, ph))
    with
    | { Ava3.Query_exec.join; _ } -> query_outcome join
    | exception Net.Network.Node_down _ -> None
    | exception Net.Network.Rpc_timeout _ -> None
  end

let max_versions_ever t = (Ava3.Cluster.stats t.db).Ava3.Cluster.max_versions_ever
let metrics_snapshot t = Some (Ava3.Cluster.metrics_snapshot t.db)

let extra_stats t =
  let s = Ava3.Cluster.stats t.db in
  [
    ("commits", float_of_int s.Ava3.Cluster.commits);
    ("aborts", float_of_int s.Ava3.Cluster.aborts);
    ("advancements", float_of_int s.Ava3.Cluster.advancements);
    ("mtf_data", float_of_int s.Ava3.Cluster.mtf_data_access);
    ("mtf_commit", float_of_int s.Ava3.Cluster.mtf_commit_time);
    ("lock_waits", float_of_int s.Ava3.Cluster.lock_waits);
    ("lock_wait_time", s.Ava3.Cluster.lock_wait_time);
    ("deadlocks", float_of_int s.Ava3.Cluster.deadlocks);
    ("messages", float_of_int s.Ava3.Cluster.messages);
  ]
