(** {!Workload.Db_intf.DB} adapter for the AVA3 cluster, so the protocol
    under study runs the exact same generated workloads as the baselines.

    Version advancement is driven by a periodic process (configured at
    creation); query staleness comes from the cluster's freeze-time
    bookkeeping. *)

type t

val default_extract : int -> string
(** Standard secondary attribute for int-valued stores — the value modulo
    1000, zero-padded ("a042") so lexicographic order matches numeric
    order.  Pair it with {!default_attr_of} when enabling [?index]. *)

val default_attr_of : float -> string
(** Maps a normalized range endpoint onto the {!default_extract} attribute
    encoding. *)

val create :
  engine:Sim.Engine.t ->
  ?config:Ava3.Config.t ->
  ?latency:Net.Latency.t ->
  ?advancement_period:float ->
  ?advancement_until:float ->
  ?use_tree:bool ->
  ?index:(int -> string) ->
  ?attr_of:(float -> string) ->
  ?scan_plan:Ava3.Query_exec.select_plan ->
  nodes:int ->
  unit ->
  t
(** [advancement_period] (default 100.0) drives periodic advancement from
    node 0 until [advancement_until] (default 10_000.0).  Pass
    [advancement_period = 0.] for manual advancement only.

    [use_tree] (default false) executes update transactions through the
    R*-style tree executor ({!Ava3.Tree_txn}) — the root's operations as its
    own work and one concurrent child subtransaction per remote node —
    instead of the flat executor.

    [index] attaches a secondary index on the extracted attribute at every
    site (see {!Ava3.Cluster.create}) and enables [submit_scan] /
    [submit_join]; without it both return [None].  [attr_of] (default
    {!default_attr_of}) maps the driver's normalized range endpoints onto
    the attribute encoding and must agree with [index]'s output order.
    [scan_plan] (default [`Index]) picks the execution plan for scans and
    joins — [`Full_scan] for the unindexed reference plan, [`Both_check]
    to run both and raise on any divergence. *)

val cluster : t -> int Ava3.Cluster.t
val load : t -> node:int -> (string * int) list -> unit

include Workload.Db_intf.DB with type t := t
