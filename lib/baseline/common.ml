(* Domain-local: parallel sweep workers each allocate from their own
   counter, so concurrent engine runs never contend and a run observes
   the same strictly increasing id sequence regardless of how many other
   domains are active (ids only need uniqueness within one engine). *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_txn_id () =
  let c = Domain.DLS.get counter in
  incr c;
  !c

let retry ~max_attempts ~backoff attempt =
  let rec go n =
    match attempt () with
    | `Committed -> Workload.Db_intf.Committed
    | `Aborted ->
        if n >= max_attempts then Workload.Db_intf.Aborted
        else begin
          Sim.Engine.sleep backoff;
          go (n + 1)
        end
  in
  go 1
