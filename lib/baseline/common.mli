(** Shared plumbing for the baseline protocols. *)

val fresh_txn_id : unit -> int
(** Domain-wide transaction id allocator for baselines (ids only need to be
    unique within one engine run, and every engine run executes on a single
    domain; a domain-local counter keeps parallel sweeps race-free). *)

val retry :
  max_attempts:int ->
  backoff:float ->
  (unit -> [ `Committed | `Aborted ]) ->
  Workload.Db_intf.update_outcome
(** Retry transient aborts with a fixed backoff, inside a process. *)
