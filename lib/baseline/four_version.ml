type t = { db : int Ava3.Cluster.t; mutable mismatch_aborts : int }

let name = "four-version-sync"

let create ~engine ?(scheme = Wal.Scheme.No_undo) ?latency
    ?(read_service_time = 0.1) ?(write_service_time = 0.2)
    ?(advancement_period = 100.0) ?(advancement_until = 10_000.0) ~nodes () =
  let config =
    {
      Ava3.Config.default with
      scheme;
      abort_on_version_mismatch = true;
      retain_extra_version = true;
      read_service_time;
      write_service_time;
    }
  in
  let db = Ava3.Cluster.create ~engine ~config ?latency ~nodes () in
  if advancement_period > 0.0 then
    Ava3.Cluster.start_periodic_advancement db ~coordinator:0
      ~period:advancement_period ~until:advancement_until;
  { db; mismatch_aborts = 0 }

let cluster t = t.db
let load t ~node items = Ava3.Cluster.load t.db ~node items
let node_count t = Ava3.Cluster.node_count t.db

let to_op = function
  | Workload.Db_intf.Read { node; key } -> Ava3.Update_exec.Read { node; key }
  | Workload.Db_intf.Write { node; key; value } ->
      Ava3.Update_exec.Write { node; key; value }

(* Mismatch aborts restart with the current update version, so a retry
   usually succeeds — but the abort itself is the interference AVA3 avoids. *)
let submit_update t ~root ~ops =
  let ops = List.map to_op ops in
  let rec go n =
    match Ava3.Cluster.run_update t.db ~root ~ops with
    | Ava3.Update_exec.Committed _ -> Workload.Db_intf.Committed
    | Ava3.Update_exec.Aborted { reason; _ } ->
        (match reason with
        | `Version_mismatch -> t.mismatch_aborts <- t.mismatch_aborts + 1
        | `Deadlock | `Node_down _ | `Rpc_timeout _ -> ());
        if n >= 10 then Workload.Db_intf.Aborted
        else begin
          Sim.Engine.sleep 5.0;
          go (n + 1)
        end
    | Ava3.Update_exec.Root_down _ -> Workload.Db_intf.Aborted
  in
  go 1

let submit_query t ~root ~reads =
  match Ava3.Cluster.run_query t.db ~root ~reads with
  | result ->
      Some
        {
          Workload.Db_intf.q_latency =
            result.Ava3.Query_exec.finished_at -. result.Ava3.Query_exec.started_at;
          q_staleness = result.Ava3.Query_exec.staleness;
        }
  | exception Net.Network.Node_down _ -> None
  | exception Net.Network.Rpc_timeout _ -> None

let mismatch_aborts t = t.mismatch_aborts

let max_versions_ever t = (Ava3.Cluster.stats t.db).Ava3.Cluster.max_versions_ever
let metrics_snapshot t = Some (Ava3.Cluster.metrics_snapshot t.db)

let extra_stats t =
  let s = Ava3.Cluster.stats t.db in
  [
    ("commits", float_of_int s.Ava3.Cluster.commits);
    ("aborts", float_of_int s.Ava3.Cluster.aborts);
    ("mismatch_aborts", float_of_int t.mismatch_aborts);
    ("advancements", float_of_int s.Ava3.Cluster.advancements);
    ("lock_waits", float_of_int s.Ava3.Cluster.lock_waits);
    ("deadlocks", float_of_int s.Ava3.Cluster.deadlocks);
  ]

(* No secondary index in this baseline: the driver's scan/join streams
   count as failed queries here. *)
let submit_scan _ ~root:_ ~range:_ = None
let submit_join _ ~root:_ ~build:_ ~probe:_ = None
