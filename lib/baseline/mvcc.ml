type node = { store : int Vstore.Store.t; locks : Lockmgr.Lock_table.t }

type t = {
  engine : Sim.Engine.t;
  net : unit Net.Network.t;
  nodes : node array;
  read_time : float;
  write_time : float;
  mutable clock : int;  (** commit-timestamp oracle *)
  active_snapshots : (int, int) Hashtbl.t;  (** query id -> snapshot ts *)
  gc_every : int;  (** prune after this many commits *)
  mutable commits_since_gc : int;
  mutable commits : int;
  mutable aborts : int;
  mutable queries : int;
}

let name = "mvcc-unbounded"

let create ~engine ?latency ?(read_service_time = 0.1)
    ?(write_service_time = 0.2) ?(gc_every = 20) ~nodes () =
  let group = Lockmgr.Lock_table.new_group () in
  {
      engine;
      net = Net.Network.create ~engine ~nodes ?latency ();
      nodes =
        Array.init nodes (fun _ ->
            {
              store = Vstore.Store.create ();
              locks = Lockmgr.Lock_table.create ~group ();
            });
      read_time = read_service_time;
      write_time = write_service_time;
      clock = 0;
      active_snapshots = Hashtbl.create 32;
      gc_every;
      commits_since_gc = 0;
      commits = 0;
      aborts = 0;
      queries = 0;
    }

(* Prune versions below the oldest active snapshot.  Runs inline (after a
   batch of commits, and when a snapshot retires) rather than as a
   background process, so the engine drains naturally. *)
let prune t =
  let horizon =
    Hashtbl.fold (fun _ ts acc -> min ts acc) t.active_snapshots t.clock
  in
  Array.iter (fun nd -> Vstore.Store.prune_below nd.store ~keep:horizon) t.nodes

let load t ~node items =
  List.iter (fun (k, v) -> Vstore.Store.write t.nodes.(node).store k 0 v) items

let node_count t = Array.length t.nodes

exception Deadlocked

let at_node t ~root ~node f =
  if node = root then f ()
  else Net.Network.call t.net ~src:root ~dst:node f

let attempt_update t ~root ~ops =
  let txn = Common.fresh_txn_id () in
  let touched = Hashtbl.create 4 in
  let buffered : (int * string, int) Hashtbl.t = Hashtbl.create 8 in
  let acquire ~node ~key mode =
    match
      Lockmgr.Lock_table.acquire t.nodes.(node).locks ~owner:txn ~key mode
    with
    | `Granted -> ()
    | `Deadlock -> raise Deadlocked
  in
  let release_all () =
    Hashtbl.iter
      (fun n () -> Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn)
      touched
  in
  let run_op = function
    | Workload.Db_intf.Read { node; key } ->
        at_node t ~root ~node (fun () ->
            Hashtbl.replace touched node ();
            acquire ~node ~key Lockmgr.Lock_table.Shared;
            Sim.Engine.sleep t.read_time;
            ignore
              (match Hashtbl.find_opt buffered (node, key) with
              | Some v -> Some v
              | None -> Vstore.Store.read_le t.nodes.(node).store key max_int))
    | Workload.Db_intf.Write { node; key; value } ->
        at_node t ~root ~node (fun () ->
            Hashtbl.replace touched node ();
            acquire ~node ~key Lockmgr.Lock_table.Exclusive;
            Sim.Engine.sleep t.write_time;
            Hashtbl.replace buffered (node, key) value)
  in
  match List.iter run_op ops with
  | () ->
      (* Commit: take a timestamp and install the writes as new versions. *)
      t.clock <- t.clock + 1;
      let ts = t.clock in
      Hashtbl.iter
        (fun n () ->
          at_node t ~root ~node:n (fun () ->
              Hashtbl.iter
                (fun (wn, key) value ->
                  if wn = n then Vstore.Store.write t.nodes.(n).store key ts value)
                buffered;
              Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn))
        touched;
      t.commits <- t.commits + 1;
      t.commits_since_gc <- t.commits_since_gc + 1;
      if t.commits_since_gc >= t.gc_every then begin
        t.commits_since_gc <- 0;
        prune t
      end;
      `Committed
  | exception Deadlocked ->
      release_all ();
      t.aborts <- t.aborts + 1;
      `Aborted

let submit_update t ~root ~ops =
  Common.retry ~max_attempts:10 ~backoff:5.0 (fun () ->
      attempt_update t ~root ~ops)

(* Queries: lock-free reads of the snapshot at the oracle value taken at
   start.  The snapshot registration holds the GC horizon back. *)
let submit_query t ~root ~reads =
  let qid = Common.fresh_txn_id () in
  let snapshot = t.clock in
  Hashtbl.replace t.active_snapshots qid snapshot;
  let t0 = Sim.Engine.now t.engine in
  let read_one (node, key) =
    at_node t ~root ~node (fun () ->
        Sim.Engine.sleep t.read_time;
        ignore (Vstore.Store.read_le t.nodes.(node).store key snapshot))
  in
  List.iter read_one reads;
  Hashtbl.remove t.active_snapshots qid;
  prune t;
  t.queries <- t.queries + 1;
  Some
    {
      Workload.Db_intf.q_latency = Sim.Engine.now t.engine -. t0;
      q_staleness = Some 0.0;
    }

let max_versions_ever t =
  Array.fold_left
    (fun acc nd -> max acc (Vstore.Store.high_water_versions nd.store))
    0 t.nodes

let extra_stats t =
  let live_chain_max =
    Array.fold_left
      (fun acc nd -> max acc (Vstore.Store.max_live_versions_now nd.store))
      0 t.nodes
  in
  let total_items, total_versions =
    Array.fold_left
      (fun (items, versions) nd ->
        let i = ref items and v = ref versions in
        Vstore.Store.iter
          (fun _ entries ->
            incr i;
            v := !v + List.length entries)
          nd.store;
        (!i, !v))
      (0, 0) t.nodes
  in
  [
    ("chain_max_ever", float_of_int (max_versions_ever t));
    ("chain_max_now", float_of_int live_chain_max);
    ( "chain_mean_now",
      if total_items = 0 then 0.0
      else float_of_int total_versions /. float_of_int total_items );
    ("commits", float_of_int t.commits);
    ("aborts", float_of_int t.aborts);
  ]

let metrics_snapshot _ = None

(* No secondary index in this baseline: the driver's scan/join streams
   count as failed queries here. *)
let submit_scan _ ~root:_ ~range:_ = None
let submit_join _ ~root:_ ~build:_ ~probe:_ = None
