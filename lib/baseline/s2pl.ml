type node = {
  store : (string, int) Hashtbl.t;
  locks : Lockmgr.Lock_table.t;
}

type t = {
  engine : Sim.Engine.t;
  net : unit Net.Network.t;
  nodes : node array;
  read_time : float;
  write_time : float;
  mutable commits : int;
  mutable aborts : int;
  mutable query_count : int;
}

let name = "s2pl"

let create ~engine ?latency ?(read_service_time = 0.1)
    ?(write_service_time = 0.2) ~nodes () =
  let group = Lockmgr.Lock_table.new_group () in
  {
    engine;
    net = Net.Network.create ~engine ~nodes ?latency ();
    nodes =
      Array.init nodes (fun _ ->
          {
            store = Hashtbl.create 256;
            locks = Lockmgr.Lock_table.create ~group ();
          });
    read_time = read_service_time;
    write_time = write_service_time;
    commits = 0;
    aborts = 0;
    query_count = 0;
  }

let load t ~node items =
  List.iter (fun (k, v) -> Hashtbl.replace t.nodes.(node).store k v) items

let node_count t = Array.length t.nodes

exception Deadlocked

let acquire t ~txn ~node ~key mode =
  match Lockmgr.Lock_table.acquire t.nodes.(node).locks ~owner:txn ~key mode with
  | `Granted -> ()
  | `Deadlock -> raise Deadlocked

let at_node t ~root ~node f =
  if node = root then f ()
  else Net.Network.call t.net ~src:root ~dst:node f

(* One attempt at a read-write transaction under strict 2PL with deferred
   writes applied at commit. *)
let attempt_update t ~root ~ops =
  let txn = Common.fresh_txn_id () in
  let touched = Hashtbl.create 4 in
  let buffered : (int * string, int) Hashtbl.t = Hashtbl.create 8 in
  let release_all () =
    Hashtbl.iter
      (fun n () -> Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn)
      touched
  in
  let run_op op =
    match op with
    | Workload.Db_intf.Read { node; key } ->
        at_node t ~root ~node (fun () ->
            Hashtbl.replace touched node ();
            acquire t ~txn ~node ~key Lockmgr.Lock_table.Shared;
            Sim.Engine.sleep t.read_time;
            ignore
              (match Hashtbl.find_opt buffered (node, key) with
              | Some v -> Some v
              | None -> Hashtbl.find_opt t.nodes.(node).store key))
    | Workload.Db_intf.Write { node; key; value } ->
        at_node t ~root ~node (fun () ->
            Hashtbl.replace touched node ();
            acquire t ~txn ~node ~key Lockmgr.Lock_table.Exclusive;
            Sim.Engine.sleep t.write_time;
            Hashtbl.replace buffered (node, key) value)
  in
  match List.iter run_op ops with
  | () ->
      (* Commit: apply buffered writes at each node, then release. *)
      Hashtbl.iter
        (fun n () ->
          at_node t ~root ~node:n (fun () ->
              Hashtbl.iter
                (fun (wn, key) value ->
                  if wn = n then Hashtbl.replace t.nodes.(n).store key value)
                buffered;
              Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn))
        touched;
      t.commits <- t.commits + 1;
      `Committed
  | exception Deadlocked ->
      release_all ();
      t.aborts <- t.aborts + 1;
      `Aborted

let submit_update t ~root ~ops =
  Common.retry ~max_attempts:10 ~backoff:5.0 (fun () ->
      attempt_update t ~root ~ops)

(* Queries are plain transactions that take shared locks — the source of
   the interference this baseline exists to exhibit. *)
let submit_query t ~root ~reads =
  let txn = Common.fresh_txn_id () in
  let touched = Hashtbl.create 4 in
  let t0 = Sim.Engine.now t.engine in
  let release_all () =
    Hashtbl.iter
      (fun n () -> Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn)
      touched
  in
  let read_one (node, key) =
    at_node t ~root ~node (fun () ->
        Hashtbl.replace touched node ();
        acquire t ~txn ~node ~key Lockmgr.Lock_table.Shared;
        Sim.Engine.sleep t.read_time;
        ignore (Hashtbl.find_opt t.nodes.(node).store key))
  in
  match List.iter read_one reads with
  | () ->
      release_all ();
      t.query_count <- t.query_count + 1;
      Some
        {
          Workload.Db_intf.q_latency = Sim.Engine.now t.engine -. t0;
          q_staleness = Some 0.0;
        }
  | exception Deadlocked ->
      release_all ();
      (* A deadlocked query retries once from scratch. *)
      None

let max_versions_ever _ = 1

let extra_stats t =
  let sum f =
    Array.fold_left (fun acc nd -> acc +. f nd.locks) 0.0 t.nodes
  in
  [
    ("lock_waits", sum (fun l -> float_of_int (Lockmgr.Lock_table.waits l)));
    ("lock_wait_time", sum Lockmgr.Lock_table.total_wait_time);
    ("deadlocks", sum (fun l -> float_of_int (Lockmgr.Lock_table.deadlocks l)));
    ("commits", float_of_int t.commits);
    ("aborts", float_of_int t.aborts);
  ]

let metrics_snapshot _ = None

(* No secondary index in this baseline: the driver's scan/join streams
   count as failed queries here. *)
let submit_scan _ ~root:_ ~range:_ = None
let submit_join _ ~root:_ ~build:_ ~probe:_ = None
