type node = {
  store : (string, int) Hashtbl.t;  (** committed values *)
  locks : Lockmgr.Lock_table.t;  (** update-update conflicts only *)
  pins : (string, int ref) Hashtbl.t;  (** active query readers per item *)
  pins_zero : Sim.Condition.t;
}

type t = {
  engine : Sim.Engine.t;
  net : unit Net.Network.t;
  nodes : node array;
  read_time : float;
  write_time : float;
  mutable commits : int;
  mutable aborts : int;
  mutable queries : int;
  mutable commit_delay : float;
}

let name = "two-version"

let create ~engine ?latency ?(read_service_time = 0.1)
    ?(write_service_time = 0.2) ~nodes () =
  let group = Lockmgr.Lock_table.new_group () in
  {
    engine;
    net = Net.Network.create ~engine ~nodes ?latency ();
    nodes =
      Array.init nodes (fun _ ->
          {
            store = Hashtbl.create 256;
            locks = Lockmgr.Lock_table.create ~group ();
            pins = Hashtbl.create 64;
            pins_zero = Sim.Condition.create ();
          });
    read_time = read_service_time;
    write_time = write_service_time;
    commits = 0;
    aborts = 0;
    queries = 0;
    commit_delay = 0.0;
  }

let load t ~node items =
  List.iter (fun (k, v) -> Hashtbl.replace t.nodes.(node).store k v) items

let node_count t = Array.length t.nodes

exception Deadlocked

let at_node t ~root ~node f =
  if node = root then f ()
  else Net.Network.call t.net ~src:root ~dst:node f

let pin nd key =
  let c =
    match Hashtbl.find_opt nd.pins key with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace nd.pins key c;
        c
  in
  incr c

let unpin nd key =
  match Hashtbl.find_opt nd.pins key with
  | None -> ()
  | Some c ->
      decr c;
      if !c <= 0 then begin
        Hashtbl.remove nd.pins key;
        Sim.Condition.broadcast nd.pins_zero
      end

let await_unpinned nd key =
  Sim.Condition.await_until nd.pins_zero ~pred:(fun () ->
      not (Hashtbl.mem nd.pins key))

let attempt_update t ~root ~ops =
  let txn = Common.fresh_txn_id () in
  let touched = Hashtbl.create 4 in
  let buffered : (int * string, int) Hashtbl.t = Hashtbl.create 8 in
  let release_all () =
    Hashtbl.iter
      (fun n () -> Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn)
      touched
  in
  let acquire ~node ~key mode =
    match
      Lockmgr.Lock_table.acquire t.nodes.(node).locks ~owner:txn ~key mode
    with
    | `Granted -> ()
    | `Deadlock -> raise Deadlocked
  in
  let run_op = function
    | Workload.Db_intf.Read { node; key } ->
        at_node t ~root ~node (fun () ->
            Hashtbl.replace touched node ();
            acquire ~node ~key Lockmgr.Lock_table.Shared;
            Sim.Engine.sleep t.read_time;
            ignore
              (match Hashtbl.find_opt buffered (node, key) with
              | Some v -> Some v
              | None -> Hashtbl.find_opt t.nodes.(node).store key))
    | Workload.Db_intf.Write { node; key; value } ->
        at_node t ~root ~node (fun () ->
            Hashtbl.replace touched node ();
            acquire ~node ~key Lockmgr.Lock_table.Exclusive;
            Sim.Engine.sleep t.write_time;
            (* The before-value stays in [store]; the new value is the
               second, uncommitted version. *)
            Hashtbl.replace buffered (node, key) value)
  in
  match List.iter run_op ops with
  | () ->
      (* Commit: before installing a new value, wait for queries still
         reading the before-value — the BHR80 interference. *)
      let wait_start = Sim.Engine.now t.engine in
      Hashtbl.iter
        (fun n () ->
          at_node t ~root ~node:n (fun () ->
              Hashtbl.iter
                (fun (wn, key) value ->
                  if wn = n then begin
                    await_unpinned t.nodes.(n) key;
                    Hashtbl.replace t.nodes.(n).store key value
                  end)
                buffered;
              Lockmgr.Lock_table.release_all t.nodes.(n).locks ~owner:txn))
        touched;
      t.commit_delay <- t.commit_delay +. (Sim.Engine.now t.engine -. wait_start);
      t.commits <- t.commits + 1;
      `Committed
  | exception Deadlocked ->
      release_all ();
      t.aborts <- t.aborts + 1;
      `Aborted

let submit_update t ~root ~ops =
  Common.retry ~max_attempts:10 ~backoff:5.0 (fun () ->
      attempt_update t ~root ~ops)

(* Queries take no locks: they read committed values and pin what they read
   until they finish, delaying conflicting writer commits. *)
let submit_query t ~root ~reads =
  let t0 = Sim.Engine.now t.engine in
  let pinned = ref [] in
  let read_one (node, key) =
    at_node t ~root ~node (fun () ->
        pin t.nodes.(node) key;
        pinned := (node, key) :: !pinned;
        Sim.Engine.sleep t.read_time;
        ignore (Hashtbl.find_opt t.nodes.(node).store key))
  in
  List.iter read_one reads;
  List.iter (fun (node, key) -> unpin t.nodes.(node) key) !pinned;
  t.queries <- t.queries + 1;
  Some
    {
      Workload.Db_intf.q_latency = Sim.Engine.now t.engine -. t0;
      q_staleness = Some 0.0;
    }

let commit_delay_total t = t.commit_delay

let max_versions_ever _ = 2

let extra_stats t =
  let sum f = Array.fold_left (fun acc nd -> acc +. f nd.locks) 0.0 t.nodes in
  [
    ("commit_delay", t.commit_delay);
    ("lock_waits", sum (fun l -> float_of_int (Lockmgr.Lock_table.waits l)));
    ("deadlocks", sum (fun l -> float_of_int (Lockmgr.Lock_table.deadlocks l)));
    ("commits", float_of_int t.commits);
    ("aborts", float_of_int t.aborts);
  ]

let metrics_snapshot _ = None

(* No secondary index in this baseline: the driver's scan/join streams
   count as failed queries here. *)
let submit_scan _ ~root:_ ~range:_ = None
let submit_join _ ~root:_ ~build:_ ~probe:_ = None
