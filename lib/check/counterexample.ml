(* A counterexample is a scenario name plus a decision vector — nothing
   more, because the simulator is deterministic: replaying the decisions
   against the scenario's fixed seed reconstructs the whole execution.
   The file format is line-oriented plain text so a failing CI run's
   artifact can be read by a human before it is fed to
   [check.exe --replay]. *)

type t = { scenario : string; decisions : int list }

let save ~path ~scenario ~decisions ~messages =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# ava3-check counterexample\n";
      Printf.fprintf oc "# replay with: check.exe --replay %s\n"
        (Filename.basename path);
      List.iter (fun m -> Printf.fprintf oc "# violation: %s\n" m) messages;
      Printf.fprintf oc "scenario: %s\n" scenario;
      Printf.fprintf oc "decisions:%s\n"
        (String.concat ""
           (List.map (fun (d, _) -> " " ^ string_of_int d) decisions));
      List.iteri
        (fun i (d, label) ->
          Printf.fprintf oc "# choice %d: %s -> %d\n" i label d)
        decisions)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let scenario = ref None and decisions = ref None in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if String.length line = 0 || line.[0] = '#' then ()
           else
             match String.index_opt line ':' with
             | None -> failwith (Printf.sprintf "unparseable line %S" line)
             | Some i -> (
                 let key = String.trim (String.sub line 0 i) in
                 let value =
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1))
                 in
                 match key with
                 | "scenario" -> scenario := Some value
                 | "decisions" ->
                     decisions :=
                       Some
                         (String.split_on_char ' ' value
                         |> List.filter (fun s -> s <> "")
                         |> List.map int_of_string)
                 | _ -> ())
         done
       with End_of_file -> ());
      match (!scenario, !decisions) with
      | Some scenario, Some decisions -> { scenario; decisions }
      | None, _ -> failwith "counterexample file: missing 'scenario:' line"
      | _, None -> failwith "counterexample file: missing 'decisions:' line")
