(** Replayable counterexample files.

    A violation found by the explorer is persisted as the scenario name
    plus the decision vector that reaches it; engine determinism makes
    that pair a complete reproduction recipe.  The format is line-oriented
    text: [#] comments (the violation messages and one line per labelled
    choice), a [scenario: <name>] line and a [decisions: i0 i1 ...]
    line. *)

type t = { scenario : string; decisions : int list }

val save :
  path:string ->
  scenario:string ->
  decisions:(int * string) list ->
  messages:string list ->
  unit
(** Write a counterexample.  [decisions] pairs each chosen index with the
    choice-point label it answered (labels become comments); [messages]
    are the oracle's violation reports. *)

val load : path:string -> t
(** Parse a file written by {!save} (or by hand).  Raises [Failure] on a
    malformed file and [Sys_error] on an unreadable path. *)
