(* Stateless schedule exploration in the CHESS style: every enumerated
   schedule is a fresh run of the scenario from its initial state, steered
   through the engine's chooser hook by a decision vector.  A vector is a
   prefix of forced choices; past its end every choice defaults to 0.
   Running a vector records the decisions actually taken (with their
   arities), and each position [i >= |prefix|] with arity [a] spawns the
   alternative prefixes [D[0..i) ++ [alt]] for [alt in 1..a-1].  The
   frontier is a stack, so exploration is depth-first: deep alternatives
   are taken before shallow ones, which keeps the shared prefix of
   consecutive runs long and the per-run replay cost low.

   Pruning: at every choice point past the forced prefix the scenario's
   fingerprint is looked up in a table shared across the whole
   exploration.  A hit means some other explored path already reached a
   state with this digest at a choice point — the engine being
   deterministic, the futures coincide, so the run is cut (Engine.stop)
   and counted as pruned.  The guard [depth >= |prefix|] keeps a replayed
   prefix from pruning against its own parent's insertions.  Fingerprints
   are 64-bit hashes of a state summary, not the full state, so pruning
   trades a sliver of soundness for orders of magnitude of coverage;
   [~prune:false] turns it off. *)

type decision = { index : int; arity : int; label : string }

type stats = {
  schedules : int;
  completed : int;
  pruned : int;
  distinct_states : int;
  choice_points : int;
  max_depth : int;
  exhausted : bool;
  elapsed_s : float;
}

type violation = {
  v_decisions : decision list;
  v_messages : string list;
  v_trace : string list;
}

type result = {
  scenario : string;
  stats : stats;
  violation : violation option;
}

(* Outcome of running one decision vector to completion or cut. *)
type run_status =
  | Completed of string list * Fingerprint.t
      (* final-oracle messages (empty = clean) and final-state digest *)
  | Pruned_at of int
  | Step_violation of string list * int

let label_of_point = function
  | Sim.Engine.Branch { label; _ } -> label
  | Sim.Engine.Tie { labels } ->
      "tie("
      ^ String.concat "|"
          (List.map (Option.value ~default:"_") (Array.to_list labels))
      ^ ")"

let arity_of_point = function
  | Sim.Engine.Branch { arity; _ } -> arity
  | Sim.Engine.Tie { labels } -> Array.length labels

(* One run of [sc] under [prefix].  Returns the decisions taken (in
   order), the status, and — when [record_trace] — the engine trace as
   rendered lines.  [prune_seen], when given, is the shared fingerprint
   table; consulted and extended only at depths past the prefix. *)
let run_schedule ?(prefix = [||]) ?prune_seen ?(record_trace = false) sc =
  let engine =
    Sim.Engine.create ~seed:sc.Scenario.seed ~trace:record_trace
      ~trace_capacity:20_000 ()
  in
  let inst = ref None in
  let rev_decisions = ref [] in
  let depth = ref 0 in
  let cut = ref None in
  let chooser point =
    let arity = arity_of_point point in
    let d = !depth in
    (match !cut with
    | Some _ -> () (* already cut; the engine is draining its last event *)
    | None -> (
        (* Oracles and pruning look at the state *before* this decision;
           setup-time branches (inst not yet built) skip both. *)
        match !inst with
        | None -> ()
        | Some (i : Scenario.instance) -> (
            match i.check_step () with
            | [] -> (
                match prune_seen with
                | Some table when d >= Array.length prefix ->
                    let fp = i.fingerprint () in
                    if Hashtbl.mem table fp then begin
                      cut := Some (Pruned_at d);
                      Sim.Engine.stop engine
                    end
                    else Hashtbl.add table fp ()
                | _ -> ())
            | msgs ->
                cut := Some (Step_violation (msgs, d));
                Sim.Engine.stop engine)));
    match !cut with
    | Some _ -> 0
    | None ->
        let pick =
          if d < Array.length prefix then
            let p = prefix.(d) in
            if p < 0 || p >= arity then 0 else p
          else 0
        in
        rev_decisions :=
          { index = pick; arity; label = label_of_point point }
          :: !rev_decisions;
        depth := d + 1;
        pick
  in
  Sim.Engine.set_chooser engine (Some chooser);
  inst := Some (sc.Scenario.setup engine);
  Sim.Engine.run ~until:sc.Scenario.max_time engine;
  let status =
    match !cut with
    | Some s -> s
    | None ->
        let i = Option.get !inst in
        Completed (i.check_final (), i.fingerprint ())
  in
  let trace =
    if record_trace then
      List.map
        (fun e -> Format.asprintf "%a" Sim.Trace.pp_entry e)
        (Sim.Trace.entries (Sim.Engine.trace engine))
    else []
  in
  (List.rev !rev_decisions, status, trace)

(* Does this decision vector still reach a violation (step or final)?
   Used by the minimizer; runs without pruning or tracing. *)
let violates sc prefix =
  let _, status, _ = run_schedule ~prefix sc in
  match status with
  | Step_violation (msgs, _) -> Some msgs
  | Completed (msgs, _) when msgs <> [] -> Some msgs
  | Completed _ | Pruned_at _ -> None

let strip_trailing_zeros arr =
  let n = ref (Array.length arr) in
  while !n > 0 && arr.(!n - 1) = 0 do
    decr n
  done;
  Array.sub arr 0 !n

(* Greedy minimization: drop trailing zeros (they are the default
   anyway), then try to zero each remaining non-default decision in
   turn, keeping any reduction that still violates.  Every candidate is
   validated by a full replay, so the result is a genuine, replayable
   counterexample — typically the handful of decisions that actually
   constitute the race. *)
let minimize sc decisions =
  let cur = ref (strip_trailing_zeros decisions) in
  let i = ref 0 in
  while !i < Array.length !cur do
    (if !cur.(!i) <> 0 then begin
       let cand = Array.copy !cur in
       cand.(!i) <- 0;
       let cand = strip_trailing_zeros cand in
       if violates sc cand <> None then cur := cand
     end);
    incr i
  done;
  !cur

type replay_outcome = {
  r_decisions : decision list;
  r_messages : string list;
  r_fingerprint : Fingerprint.t option;
  r_trace : string list;
}

let replay ?(record_trace = true) sc decisions =
  let prefix = Array.of_list decisions in
  let r_decisions, status, r_trace = run_schedule ~prefix ~record_trace sc in
  let r_messages, r_fingerprint =
    match status with
    | Completed (msgs, fp) -> (msgs, Some fp)
    | Step_violation (msgs, _) -> (msgs, None)
    | Pruned_at _ -> assert false (* no prune table was given *)
  in
  { r_decisions; r_messages; r_fingerprint; r_trace }

let explore ?(budget = 10_000) ?(max_depth = 400) ?(prune = true)
    ?(minimize_violation = true) sc =
  let t0 = Sys.time () in
  let seen = if prune then Some (Hashtbl.create 4096) else None in
  let final_states = Hashtbl.create 1024 in
  let frontier = ref [ [||] ] in
  let completed = ref 0
  and pruned = ref 0
  and points = ref 0
  and deepest = ref 0 in
  let found = ref None in
  let exhausted = ref true in
  let stop = ref false in
  while (not !stop) && !frontier <> [] do
    if !completed + !pruned >= budget then begin
      exhausted := false;
      stop := true
    end
    else
      match !frontier with
      | [] -> ()
      | prefix :: rest -> (
          frontier := rest;
          let decisions, status, _ = run_schedule ~prefix ?prune_seen:seen sc in
          let n = List.length decisions in
          points := !points + n;
          if n > !deepest then deepest := n;
          let darr = Array.of_list (List.map (fun d -> d.index) decisions) in
          let arities = Array.of_list (List.map (fun d -> d.arity) decisions) in
          let expand_to =
            match status with
            | Pruned_at d ->
                incr pruned;
                d
            | Step_violation (msgs, _) ->
                found := Some (darr, msgs);
                stop := true;
                0
            | Completed (msgs, fp) ->
                incr completed;
                Hashtbl.replace final_states fp ();
                if msgs <> [] then begin
                  found := Some (darr, msgs);
                  stop := true;
                  0
                end
                else n
          in
          if not !stop then
            (* Push shallow alternatives first so the deepest ends up on
               top of the stack: depth-first order. *)
            for i = Array.length prefix to min expand_to max_depth - 1 do
              for alt = darr.(i) + 1 to arities.(i) - 1 do
                let p = Array.append (Array.sub darr 0 i) [| alt |] in
                frontier := p :: !frontier
              done
            done)
  done;
  if !found <> None then exhausted := false;
  let violation =
    match !found with
    | None -> None
    | Some (darr, _) ->
        let minimal = if minimize_violation then minimize sc darr else darr in
        let out = replay sc (Array.to_list minimal) in
        Some
          {
            v_decisions = out.r_decisions;
            v_messages = out.r_messages;
            v_trace = out.r_trace;
          }
  in
  {
    scenario = sc.Scenario.name;
    stats =
      {
        schedules = !completed + !pruned;
        completed = !completed;
        pruned = !pruned;
        distinct_states = Hashtbl.length final_states;
        choice_points = !points;
        max_depth = !deepest;
        exhausted = !exhausted;
        elapsed_s = Sys.time () -. t0;
      };
    violation;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "schedules=%d (completed=%d pruned-converged=%d) distinct_states=%d \
     choice_points=%d max_depth=%d exhausted=%b elapsed=%.2fs"
    s.schedules s.completed s.pruned s.distinct_states s.choice_points
    s.max_depth s.exhausted s.elapsed_s
