(** Depth-first stateless schedule exploration over {!Scenario}s.

    Each enumerated schedule is a fresh, deterministic run of the
    scenario steered by a decision vector through the engine's chooser
    hook (ready-queue ties between named processes, [Engine.branch]
    fault choices).  Past the vector's end every choice takes index 0,
    so the empty vector is the scenario's default schedule; running a
    vector discovers the arity of every choice point it passes, and each
    untried alternative becomes a new vector on a depth-first frontier.

    State fingerprints prune runs that reach an already-seen digest at a
    choice point; a violation of a step oracle, a final oracle, or
    serializability stops the search, and the offending vector is
    greedily minimized (every candidate validated by full replay) into a
    replayable counterexample. *)

type decision = { index : int; arity : int; label : string }

type stats = {
  schedules : int;
      (** distinct schedules enumerated ([completed + pruned]); every run
          has a distinct decision vector, and pruned runs still executed
          and step-checked everything up to their cut point *)
  completed : int;  (** schedules that ran to the end un-pruned *)
  pruned : int;  (** runs cut at a fingerprint already seen *)
  distinct_states : int;  (** distinct final-state fingerprints *)
  choice_points : int;  (** decisions taken, summed over runs *)
  max_depth : int;  (** longest decision vector encountered *)
  exhausted : bool;
      (** the frontier emptied within budget and no violation was found:
          the space is covered up to fingerprint-collision odds *)
  elapsed_s : float;  (** processor time spent *)
}

type violation = {
  v_decisions : decision list;  (** minimized, with labels and arities *)
  v_messages : string list;
  v_trace : string list;  (** engine trace of the minimized replay *)
}

type result = {
  scenario : string;
  stats : stats;
  violation : violation option;
}

val explore :
  ?budget:int ->
  ?max_depth:int ->
  ?prune:bool ->
  ?minimize_violation:bool ->
  Scenario.t ->
  result
(** Explore up to [budget] runs (schedules + pruned, default 10_000).
    [max_depth] (default 400) bounds the depth at which alternatives are
    generated — deeper choice points still execute but take the default.
    [prune:false] disables fingerprint pruning (slower, but immune to
    digest collisions). *)

type replay_outcome = {
  r_decisions : decision list;
      (** decisions actually taken, labels included — may extend past the
          given vector (defaults) or stop short (a step violation) *)
  r_messages : string list;  (** violations; empty = clean run *)
  r_fingerprint : Fingerprint.t option;
      (** final-state digest; [None] when a step oracle cut the run *)
  r_trace : string list;
}

val replay : ?record_trace:bool -> Scenario.t -> int list -> replay_outcome
(** Re-run one decision vector (e.g. a loaded counterexample) and report
    what happened, with the engine trace unless [record_trace:false]. *)

val pp_stats : Format.formatter -> stats -> unit
