(* 64-bit FNV-1a, folded over a canonical rendering of the state.  The
   explorer only compares fingerprints for equality, so all that matters
   is that equal states hash equal (canonical ordering below) and that
   unequal states collide with probability ~2^-64. *)

type t = int64

let empty = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let int h v = int64 h (Int64.of_int v)
let bool h b = int h (if b then 1 else 0)
let float h f = int64 h (Int64.bits_of_float f)

let string h s =
  let h = ref (int h (String.length s)) in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

let option f h = function None -> int h (-1) | Some v -> f (int h 1) v
let list f h l = List.fold_left f (int h (List.length l)) l

let to_hex v = Printf.sprintf "%016Lx" v

(* Engine-level component: virtual time plus the in-flight work.  Two
   states with equal data but different pending activity must not be
   merged — their futures differ — so the whole (time, label) multiset
   of pending events goes in, not just a count: a count would merge
   every pair of same-time choice points whose intervening event left
   the data untouched, and exploration would prune itself to nothing. *)
let engine h engine =
  let h = float h (Sim.Engine.now engine) in
  let h = int h (Sim.Engine.suspended_count engine) in
  list
    (fun h (t, l) -> option string (float h t) l)
    h
    (Sim.Engine.pending_summary engine)

let store f h st =
  let items = Vstore.Store.snapshot_items (Vstore.Store.snapshot st) in
  (* Canonical order: the snapshot's item order depends on hash-table
     insertion history, which differs between schedules that reach the
     same logical state. *)
  let items = List.sort (fun (a, _) (b, _) -> compare a b) items in
  list
    (fun h (key, versions) ->
      let h = string h key in
      list
        (fun h (v, value) ->
          let h = int h v in
          option f h value)
        h versions)
    h items

(* Full cluster state: per-node liveness, version numbers, counter
   occupancy and store contents, plus the cluster-wide protocol counters
   (so histories that diverged, even if their data converged, stay
   distinct) and the engine component. *)
let cluster ~value (db : _ Ava3.Cluster.t) =
  let h = ref empty in
  for i = 0 to Ava3.Cluster.node_count db - 1 do
    let nd = Ava3.Cluster.node db i in
    h := int !h i;
    h := bool !h (Ava3.Node_state.alive nd);
    h := int !h (Ava3.Node_state.u nd);
    h := int !h (Ava3.Node_state.q nd);
    h := int !h (Ava3.Node_state.g nd);
    h := int !h (Ava3.Node_state.active_update_transactions nd);
    (* Counter occupancy over the live version window and the lock
       table: a node can look identical in data while a query pins an
       old version or a transaction holds locks, and those states'
       futures differ. *)
    for v = max 0 (Ava3.Node_state.g nd) to Ava3.Node_state.u nd do
      h := int !h (Ava3.Node_state.update_count nd ~version:v);
      h := int !h (Ava3.Node_state.query_count nd ~version:v)
    done;
    let locks = Ava3.Node_state.locks nd in
    let locked = ref [] in
    Lockmgr.Lock_table.iter_locked locks (fun key holders waiters ->
        locked := (key, holders, waiters) :: !locked);
    let mode_bit = function
      | Lockmgr.Lock_table.Shared -> 0
      | Lockmgr.Lock_table.Exclusive -> 1
    in
    let owner h (owner, mode) = int (int h owner) (mode_bit mode) in
    h :=
      list
        (fun h (key, holders, waiters) ->
          list owner (list owner (string h key) holders) waiters)
        !h
        (List.sort compare !locked);
    h := store value !h (Ava3.Node_state.store nd)
  done;
  let s = Ava3.Cluster.stats db in
  h := int !h s.Ava3.Cluster.commits;
  h := int !h s.Ava3.Cluster.aborts;
  h := int !h s.Ava3.Cluster.queries;
  h := int !h s.Ava3.Cluster.advancements;
  h := int !h s.Ava3.Cluster.mtf_data_access;
  h := int !h s.Ava3.Cluster.mtf_commit_time;
  h := int !h s.Ava3.Cluster.messages;
  h := bool !h (Ava3.Cluster.advancement_in_progress db);
  engine !h (Ava3.Cluster.engine db)

let cluster_int db = cluster ~value:int db
