(** State fingerprinting for the schedule explorer.

    A fingerprint is a 64-bit FNV-1a digest of a canonical rendering of
    simulation state.  The explorer uses fingerprints two ways: to prune a
    schedule whose state at a choice point was already reached on another
    explored path (the futures are identical, the engine being
    deterministic), and to count distinct end states across schedules.
    Equal states always hash equal; distinct states collide with
    probability about 2{^-64}. *)

type t = int64

val empty : t
(** The fold seed. *)

(** {1 Combinators} *)

val int : t -> int -> t
val int64 : t -> int64 -> t
val bool : t -> bool -> t
val float : t -> float -> t
val string : t -> string -> t
val option : (t -> 'a -> t) -> t -> 'a option -> t
val list : (t -> 'a -> t) -> t -> 'a list -> t

val to_hex : t -> string

(** {1 Simulator state} *)

val engine : t -> Sim.Engine.t -> t
(** Virtual time, pending event count and suspended process count — the
    engine-level component every scenario fingerprint should include, so
    states equal in data but different in in-flight work stay distinct. *)

val store : (t -> 'v -> t) -> t -> 'v Vstore.Store.t -> t
(** Store contents (keys, live versions, values, tombstones) in canonical
    key order, independent of insertion history. *)

val cluster : value:(t -> 'v -> t) -> 'v Ava3.Cluster.t -> t
(** Full AVA3 cluster digest: per-node liveness, [u]/[q]/[g], active
    transaction counts and store contents, the cluster-wide protocol
    counters, advancement status, and the {!engine} component. *)

val cluster_int : int Ava3.Cluster.t -> t
(** {!cluster} for the usual [int]-valued test clusters. *)
