type instance = {
  check_step : unit -> string list;
  check_final : unit -> string list;
  fingerprint : unit -> Fingerprint.t;
}

type t = {
  name : string;
  descr : string;
  seed : int64;
  max_time : float;
  setup : Sim.Engine.t -> instance;
}

let quiet = { check_step = (fun () -> []); check_final = (fun () -> []); fingerprint = (fun () -> Fingerprint.empty) }
