(** What the explorer runs: a small, closed simulation plus its oracles.

    A scenario owns everything about one system under test; the explorer
    owns the engine and the schedule.  Per enumerated schedule, the
    explorer creates a fresh engine, calls [setup] (which builds the
    system, spawns its processes and returns the oracles), installs its
    chooser, runs the engine to quiescence (or [max_time]), and evaluates
    the oracles.  Determinism of the engine guarantees that a recorded
    choice trace replays to the identical execution.

    Requirements on [setup]:
    - it must not run the engine itself, only build state and spawn;
    - all nondeterminism must flow through the engine (its clock, its
      [Rng] splits, [Engine.branch]) — wall clock or global mutable state
      would break replay;
    - processes the scenario wants the explorer to interleave should be
      spawned with [~name] so ready-queue ties expose them as labelled
      alternatives (unnamed events are still explored, one alternative
      each). *)

type instance = {
  check_step : unit -> string list;
      (** Invariants that must hold at {e every} instant; evaluated at
          every scheduling choice point.  Non-empty = violation. *)
  check_final : unit -> string list;
      (** Oracles evaluated once the run is quiescent (event queue empty
          or [max_time] reached): quiescent-state invariants,
          serializability of the recorded history, scenario-specific
          assertions. *)
  fingerprint : unit -> Fingerprint.t;
      (** Digest of the current state; include
          {!Fingerprint.engine}. *)
}

type t = {
  name : string;  (** stable identifier, usable in counterexample files *)
  descr : string;
  seed : int64;  (** engine seed; part of the scenario's identity *)
  max_time : float;
      (** virtual-time cap per run — a safety net for runs that never go
          quiescent (e.g. retransmission loops kept alive by a bug) *)
  setup : Sim.Engine.t -> instance;
}

val quiet : instance
(** No-op oracles; convenience for partial instances in tests. *)
