(* The built-in scenario catalogue.

   The AVA3 scenarios follow one pattern: build a small cluster on
   constant unit latency (so concurrent activity collides at integer
   virtual times and every collision is a scheduling choice), spawn a
   handful of named update/query/advancement processes, record the
   values every committed transaction observed and wrote, and settle the
   system with a final advancement round.  The oracles are the paper's:
   Invariant.check at every choice point, the quiescent invariants and
   Theorem 6.2 serializability (Serial_check.verify over the recorded
   history) at the end.

   The toy scenarios run the known-broken store in lib/check/toy.ml; the
   explorer must convict the broken variants and clear the fixed one. *)

module SC = Dbsim.Serial_check

(* ---------- recording harness for AVA3 scenarios ---------- *)

type recorder = {
  mutable committed : SC.txn_record list;
  mutable queries : SC.query_record list;
  initial : (SC.key * int) list;
}

let recorder initial = { committed = []; queries = []; initial }

(* Deterministic injective-ish update function: distinct (salt, old)
   pairs give distinct values, so a lost update changes the final state
   and the replay catches it. *)
let transform ~salt old =
  ((Option.value old ~default:0 * 31) + salt) mod 100_003

(* Scenario-level op DSL, mirrored onto Update_exec ops with the RMW
   observations captured for the history. *)
type op =
  | Rmw of int * string * int  (** node, key, salt *)
  | Put of int * string * int
  | Begin_at of int
  | Pause of float

let recorded_update rec_ db ~root ops =
  let observed = Queue.create () in
  let uops =
    List.map
      (function
        | Rmw (n, k, salt) ->
            Ava3.Update_exec.Read_modify_write
              {
                node = n;
                key = k;
                f =
                  (fun old ->
                    let v = transform ~salt old in
                    Queue.push (old, v) observed;
                    v);
              }
        | Put (n, k, v) -> Ava3.Update_exec.Write { node = n; key = k; value = v }
        | Begin_at n -> Ava3.Update_exec.Begin_at n
        | Pause d -> Ava3.Update_exec.Pause d)
      ops
  in
  match Ava3.Cluster.run_update db ~root ~ops:uops with
  | Ava3.Update_exec.Committed c ->
      (* RMWs ran in op-list order, so popping the observation queue in
         the same order re-associates observed/written values. *)
      let t_ops =
        List.filter_map
          (function
            | Rmw (n, k, _) ->
                let old, v = Queue.pop observed in
                Some (SC.Rmw ((n, k), old, v))
            | Put (n, k, v) -> Some (SC.Put ((n, k), v))
            | Begin_at _ | Pause _ -> None)
          ops
      in
      rec_.committed <-
        {
          SC.t_version = c.final_version;
          t_finished = c.finished_at;
          t_commit_at = c.participants;
          t_ops;
        }
        :: rec_.committed
  | Aborted _ | Root_down _ -> ()

let recorded_query rec_ db ~root reads =
  match Ava3.Cluster.run_query db ~root ~reads with
  | (q : _ Ava3.Query_exec.result) ->
      rec_.queries <-
        {
          SC.q_version = q.version;
          q_reads = List.map (fun (n, k, v) -> ((n, k), v)) q.values;
        }
        :: rec_.queries
  | exception (Net.Network.Node_down _ | Net.Network.Rpc_timeout _) -> ()

let history rec_ db ~keys =
  (* The final state of a partition lives at its *current* primary:
     under replication with failover that may not be site [n].  At
     replicas = 0, [home_site] is the identity. *)
  let cs = Ava3.Cluster.state db in
  {
    SC.committed = List.rev rec_.committed;
    queries = List.rev rec_.queries;
    initial = rec_.initial;
    final_visible =
      List.map
        (fun ((n, k) as key) ->
          ( key,
            Vstore.Store.read_le
              (Ava3.Node_state.store
                 (Ava3.Cluster.node db (Ava3.Cluster_state.home_site cs n)))
              k max_int ))
        keys;
  }

(* Drive the system to a settled state: repeat advancement until a round
   completes (a round in progress answers `Busy; a just-healed cluster
   may need a beat).  Runs inside a process at the scenario's epilogue. *)
let settle db ~coordinator =
  let rec go attempts =
    if attempts > 0 then
      match Ava3.Cluster.advance_and_wait db ~coordinator with
      | `Completed _ -> ()
      | `Busy ->
          Sim.Engine.sleep 10.0;
          go (attempts - 1)
  in
  go 8

(* The standard oracle set for an AVA3 scenario: protocol invariants at
   every choice point; at the end, quiescence itself (nothing pending or
   suspended — a stuck advancement or a leaked process is a liveness
   bug), the quiescent invariants, and Theorem 6.2 serializability of
   the recorded history. *)
let ava3_instance db rec_ ~keys =
  {
    Scenario.check_step = (fun () -> Ava3.Cluster.check_invariants db);
    check_final =
      (fun () ->
        let engine = Ava3.Cluster.engine db in
        let pending = Sim.Engine.pending_events engine
        and suspended = Sim.Engine.suspended_count engine in
        let in_flight = pending > 0 || suspended > 0 in
        let stuck =
          if in_flight then
            [
              Printf.sprintf
                "not quiescent at max_time: %d events pending, %d processes \
                 suspended"
                pending suspended;
            ]
          else []
        in
        let quiescent =
          if in_flight then [] else Ava3.Cluster.check_quiescent_invariants db
        in
        stuck
        @ Ava3.Cluster.check_invariants db
        @ quiescent
        @ (SC.verify (history rec_ db ~keys)).SC.errors);
    fingerprint = (fun () -> Fingerprint.cluster_int db);
  }

(* ---------- AVA3 scenarios ---------- *)

(* Two nodes, two racing read-modify-write transactions on the same item,
   a multi-node update, overlapping queries, and one advancement — the
   smallest configuration where update/update, update/query and
   update/advancement races all occur.  Service times and latency are
   integral so the racing processes collide at integer instants. *)
let race2 =
  {
    Scenario.name = "race2";
    descr =
      "2 nodes: racing RMWs on one item, a cross-node update, overlapping \
       queries, one advancement";
    seed = 11L;
    max_time = 300.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("x", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("y", 2) ];
        let keys = [ (0, "x"); (1, "y") ] in
        let rec_ = recorder [ ((0, "x"), 1); ((1, "y"), 2) ] in
        Sim.Engine.schedule engine ~name:"T1" ~delay:1.0 (fun () ->
            recorded_update rec_ db ~root:0 [ Rmw (0, "x", 101); Put (1, "y", 11) ]);
        Sim.Engine.schedule engine ~name:"T2" ~delay:1.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (0, "x", 202) ]);
        Sim.Engine.schedule engine ~name:"Q1" ~delay:1.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (0, "x"); (1, "y") ]);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:2.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule engine ~name:"T3" ~delay:3.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "y", 303) ]);
        Sim.Engine.schedule engine ~name:"T4" ~delay:3.0 (fun () ->
            recorded_update rec_ db ~root:0 [ Rmw (0, "x", 404) ]);
        Sim.Engine.schedule engine ~name:"Q2" ~delay:4.0 (fun () ->
            recorded_query rec_ db ~root:0 [ (1, "y"); (0, "x") ]);
        Sim.Engine.schedule engine ~name:"T5" ~delay:4.0 (fun () ->
            recorded_update rec_ db ~root:1
              [ Rmw (0, "x", 505); Rmw (1, "y", 515) ]);
        Sim.Engine.schedule engine ~name:"ADV2" ~delay:5.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:1));
        Sim.Engine.schedule engine ~name:"Q3" ~delay:5.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (0, "x"); (1, "y") ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:60.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:0 keys);
        ava3_instance db rec_ ~keys)
  }

(* Table 1 of the paper, reduced: three sites, the long transaction T
   spanning all of them, the short S and U at site 1 racing T's writes,
   a long query Q overlapping Phase 2 of the advancement, and short
   queries R and P.  Unlike Dbsim.Table1 (which asserts the exact
   outcomes of the paper's one schedule), the oracles here are generic —
   every enumerated interleaving must be serializable. *)
let table1_3site =
  {
    Scenario.name = "table1-3site";
    descr = "Table 1's 3-site schedule: T spanning 3 sites, S/U races, \
             advancement under a long query";
    seed = 1L;
    max_time = 400.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 0.5;
            write_service_time = 0.5;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:3 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("w", 10) ];
        Ava3.Cluster.load db ~node:1 [ ("x", 20); ("y", 30) ];
        Ava3.Cluster.load db ~node:2 [ ("z", 40) ];
        let keys = [ (0, "w"); (1, "x"); (1, "y"); (2, "z") ] in
        let rec_ =
          recorder
            [ ((0, "w"), 10); ((1, "x"), 20); ((1, "y"), 30); ((2, "z"), 40) ]
        in
        Sim.Engine.schedule engine ~name:"T" ~delay:1.0 (fun () ->
            recorded_update rec_ db ~root:0
              [
                Put (0, "w", 11);
                Begin_at 1;
                Begin_at 2;
                Pause 3.0;
                Put (2, "z", 41);
                Rmw (1, "y", 31);
                Rmw (1, "x", 21);
              ]);
        Sim.Engine.schedule engine ~name:"R" ~delay:1.5 (fun () ->
            recorded_query rec_ db ~root:0 [ (0, "w") ]);
        Sim.Engine.schedule engine ~name:"S" ~delay:2.5 (fun () ->
            recorded_update rec_ db ~root:1 [ Pause 6.0; Rmw (1, "y", 32) ]);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:3.5 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:2));
        Sim.Engine.schedule engine ~name:"U" ~delay:6.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "x", 22); Pause 4.0 ]);
        Sim.Engine.schedule engine ~name:"Q" ~delay:5.0 (fun () ->
            recorded_query rec_ db ~root:1
              [ (1, "x"); (1, "y"); (1, "x"); (1, "y"); (1, "x"); (1, "y") ]);
        Sim.Engine.schedule engine ~name:"P" ~delay:14.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (1, "y") ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:80.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:2 keys);
        ava3_instance db rec_ ~keys)
  }

(* moveToFuture at both trigger sites: an update transaction in flight
   while an advancement switches its nodes' update versions — whether it
   moves forward at data-access time (its later subtransaction arrives
   after the switch) or at commit time (the version mismatch among its
   subtransactions) depends on the schedule, and both paths must leave
   the recorded history serializable. *)
let mtf_race =
  {
    Scenario.name = "mtf-race";
    descr =
      "advancement overtakes an in-flight update: moveToFuture at \
       data-access vs commit time, by schedule";
    seed = 7L;
    max_time = 300.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("a", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("b", 2) ];
        let keys = [ (0, "a"); (1, "b") ] in
        let rec_ = recorder [ ((0, "a"), 1); ((1, "b"), 2) ] in
        Sim.Engine.schedule engine ~name:"Tspan" ~delay:1.0 (fun () ->
            recorded_update rec_ db ~root:0
              [ Put (0, "a", 100); Pause 4.0; Rmw (1, "b", 7) ]);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:2.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:1));
        Sim.Engine.schedule engine ~name:"Q" ~delay:3.0 (fun () ->
            recorded_query rec_ db ~root:0 [ (0, "a"); (1, "b") ]);
        Sim.Engine.schedule engine ~name:"Tlate" ~delay:4.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "b", 8) ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:50.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:1 keys);
        ava3_instance db rec_ ~keys)
  }

(* Version advancement racing a coordinator crash.  The crashing node,
   crash instant and repair delay are themselves choice points
   (Nemesis.choice_plan wired to Engine.branch), so the explorer
   enumerates fault placements jointly with message schedules: the
   advancement must either complete or be resumable by the settle round,
   and the surviving history must stay serializable. *)
let crash_advance =
  {
    Scenario.name = "crash-advance";
    descr =
      "advancement vs coordinator crash: nemesis choices enumerated with \
       the schedule";
    seed = 5L;
    max_time = 600.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 0.5;
            write_service_time = 0.5;
            rpc_timeout = 10.0;
            advancement_retry = 25.0;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("x", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("y", 2) ];
        let keys = [ (0, "x"); (1, "y") ] in
        let rec_ = recorder [ ((0, "x"), 1); ((1, "y"), 2) ] in
        let plan =
          Net.Nemesis.choice_plan
            ~choose:(fun ~label ~arity -> Sim.Engine.branch engine ~label arity)
            ~nodes:2 ~horizon:40.0 ~crashes:1
            ~at_choices:[| 4.0; 6.0; 9.0 |]
            ~duration_choices:[| 12.0 |]
            ()
        in
        Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan;
        Sim.Engine.schedule engine ~name:"ADV" ~delay:5.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule engine ~name:"T1" ~delay:3.0 (fun () ->
            recorded_update rec_ db ~root:0 [ Rmw (0, "x", 31) ]);
        Sim.Engine.schedule engine ~name:"T2" ~delay:7.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "y", 41) ]);
        Sim.Engine.schedule engine ~name:"Q" ~delay:8.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (1, "y"); (0, "x") ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:80.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:0 keys);
        ava3_instance db rec_ ~keys)
  }

(* Group commit vs crash: updates commit through the batching daemon (a
   nonzero force latency and window), and the nemesis crashes a node at a
   choice-point instant — including between a commit's enqueue and the
   batch's disk force.  The usual serializable-history oracle doubles as
   the durability oracle: an update that reported Committed to its client
   must survive the crash (its records were forced before the ack), and
   an update whose records died with the volatile log tail must have
   reported Aborted.  The [-buggy] twin acknowledges waiters at enqueue,
   before the force (Config.gc_ack_early): some schedule crashes the node
   inside the window and loses an acknowledged commit, which the
   final-state replay convicts. *)
let group_commit_crash_variant ~ack_early ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 17L;
    max_time = 600.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
            rpc_timeout = 10.0;
            advancement_retry = 25.0;
            disk_force_latency = 1.0;
            group_commit_window = 3.0;
            gc_ack_early = ack_early;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("p", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("r", 2) ];
        let keys = [ (0, "p"); (1, "r") ] in
        let rec_ = recorder [ ((0, "p"), 1); ((1, "r"), 2) ] in
        let plan =
          Net.Nemesis.choice_plan
            ~choose:(fun ~label ~arity -> Sim.Engine.branch engine ~label arity)
            ~nodes:2 ~horizon:40.0 ~crashes:1
            ~at_choices:[| 3.0; 5.0; 7.0 |]
            ~duration_choices:[| 12.0 |]
            ()
        in
        Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan;
        Sim.Engine.schedule engine ~name:"T1" ~delay:2.0 (fun () ->
            recorded_update rec_ db ~root:0 [ Rmw (0, "p", 601) ]);
        Sim.Engine.schedule engine ~name:"T2" ~delay:4.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "r", 602) ]);
        Sim.Engine.schedule engine ~name:"Q" ~delay:6.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (1, "r"); (0, "p") ]);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:9.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:1));
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:80.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:1 keys);
        ava3_instance db rec_ ~keys)
  }

let group_commit_crash =
  group_commit_crash_variant ~ack_early:false ~name:"group-commit-crash"
    ~descr:
      "group commit vs crash: acks only after the disk force, so no \
       schedule loses an acknowledged commit"

let group_commit_crash_buggy =
  group_commit_crash_variant ~ack_early:true ~name:"group-commit-crash-buggy"
    ~descr:
      "group commit acking at enqueue, before the force: some crash \
       schedule loses an acknowledged commit"

(* Hierarchical rounds under the explorer.  Three sites in an arity-1
   chain (coordinator 0 -> relay 1 -> leaf 2), the smallest tree where a
   site other than the coordinator holds volatile relay state: every
   phase frame for the leaf and every aggregated ack back crosses the
   relay.  [relay-crash] lets the nemesis crash any of the three sites
   mid-round — including the relay, whose frame state dies with it — and
   requires coordinator retransmission plus the stalled-round rule to
   rebuild the tree and finish the round with the usual oracles clean.
   The [-buggy] twin runs fault-free with [Config.relay_ack_early]: the
   relay acknowledges upward as soon as its own share is durable,
   before its subtree is covered, so the coordinator can freeze a
   version the leaf is still allowed to write.  A paused update rooted
   at the leaf keeps an old-version write in flight across the round;
   some schedule commits it into the frozen version after a query has
   already read that version, and the final-state replay convicts. *)
let relay_round_variant ~ack_early ~crash ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 23L;
    max_time = 600.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
            rpc_timeout = 10.0;
            advancement_retry = 25.0;
            tree_arity = 1;
            relay_ack_early = ack_early;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:3 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("a", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("b", 2) ];
        Ava3.Cluster.load db ~node:2 [ ("c", 3) ];
        let keys = [ (0, "a"); (1, "b"); (2, "c") ] in
        let rec_ =
          recorder [ ((0, "a"), 1); ((1, "b"), 2); ((2, "c"), 3) ]
        in
        if crash then begin
          let plan =
            Net.Nemesis.choice_plan
              ~choose:(fun ~label ~arity ->
                Sim.Engine.branch engine ~label arity)
              ~nodes:3 ~horizon:40.0 ~crashes:1
              ~at_choices:[| 5.0; 7.0; 9.0 |]
              ~duration_choices:[| 12.0 |]
              ()
          in
          Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan
        end;
        (* The leaf update opens before the round and commits inside it:
           the Pause spans the advance-u frame's trip down the chain. *)
        Sim.Engine.schedule engine ~name:"T1" ~delay:2.0 (fun () ->
            recorded_update rec_ db ~root:2
              [ Rmw (2, "c", 7); Pause 6.0 ]);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:4.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule engine ~name:"T2" ~delay:6.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "b", 11) ]);
        Sim.Engine.schedule engine ~name:"Q" ~delay:8.0 (fun () ->
            recorded_query rec_ db ~root:0 [ (0, "a"); (2, "c") ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:80.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:0 keys);
        ava3_instance db rec_ ~keys)
  }

let relay_crash =
  relay_round_variant ~ack_early:false ~crash:true ~name:"relay-crash"
    ~descr:
      "hierarchical round vs relay crash: retransmission rebuilds the \
       volatile tree state on every schedule"

let relay_ack_early_buggy =
  relay_round_variant ~ack_early:true ~crash:false
    ~name:"relay-ack-early-buggy"
    ~descr:
      "relay acking before its subtree is covered: some schedule commits \
       an update into a version already frozen and read"

(* Primary-backup replication under the explorer.  Two partitions, one
   backup each (sites 0,1 primaries; 2,3 backups), updates and a
   cross-partition double-read query (each read routed independently, so
   one lands on a backup when it is eligible), an advancement mid-traffic,
   and a nemesis crash whose victim and instant are choice points —
   including each primary, which forces a backup promotion mid-round and,
   later, the deposed primary's rejoin-and-resync.  [backup-promotion]
   must be clean on every schedule: the catch-up gate means no
   acknowledged commit can be lost by promotion, and version-pinned
   routing means a backup read is indistinguishable from a primary read.
   The [-buggy] twin sets {!Ava3.Config.t.replica_ack_early}: the backup
   acknowledges a shipped batch on receipt and applies it only after a
   delay, so its ack no longer certifies possession.  Some schedule then
   crashes the primary inside that window and promotes a backup that
   never appended the acknowledged records (a lost acknowledged commit),
   or routes a pinned read to a backup whose advertised query version has
   outrun its applied data (a stale or torn read); either way the oracles
   convict. *)
let replica_variant ~ack_early ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 29L;
    max_time = 600.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
            rpc_timeout = 10.0;
            advancement_retry = 25.0;
            replicas = 1;
            replica_catchup_timeout = 8.0;
            replica_ack_early = ack_early;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("x", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("y", 2) ];
        let keys = [ (0, "x"); (1, "y") ] in
        let rec_ = recorder [ ((0, "x"), 1); ((1, "y"), 2) ] in
        let plan =
          Net.Nemesis.choice_plan
            ~choose:(fun ~label ~arity -> Sim.Engine.branch engine ~label arity)
            ~nodes:4 ~horizon:40.0 ~crashes:1
            ~at_choices:[| 3.0; 5.0; 8.0 |]
            ~duration_choices:[| 15.0 |]
            ()
        in
        Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan;
        Sim.Engine.schedule engine ~name:"T1" ~delay:1.0 (fun () ->
            recorded_update rec_ db ~root:0 [ Rmw (0, "x", 701) ]);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:4.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule engine ~name:"T2" ~delay:5.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "y", 702) ]);
        (* Reads the remote partition twice: the round-robin router sends
           the two through different replicas whenever the backup is
           eligible, so disagreement between the copies at one pin is
           directly observable as a torn query. *)
        Sim.Engine.schedule engine ~name:"Q" ~delay:6.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (0, "x"); (0, "x") ]);
        Sim.Engine.schedule engine ~name:"Q2" ~delay:7.0 (fun () ->
            recorded_query rec_ db ~root:0 [ (1, "y"); (1, "y") ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:80.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:0 keys);
        ava3_instance db rec_ ~keys)
  }

let backup_promotion =
  replica_variant ~ack_early:false ~name:"backup-promotion"
    ~descr:
      "primary-backup replication vs mid-round primary crash: promotion, \
       rejoin and pinned backup reads clean on every schedule"

let replica_ack_early_buggy =
  replica_variant ~ack_early:true ~name:"replica-ack-early-buggy"
    ~descr:
      "backup acking a shipped batch before applying it: some schedule \
       loses an acknowledged commit at promotion or serves a stale \
       pinned read"

(* Secondary index vs in-flight updates and moveToFuture.  Every select
   runs with [`Both_check]: the index probe and the full scan execute
   back to back at the serving node with no yield between them, both at
   the select's pinned version, so on a correct index they can never
   disagree — on any schedule.  The [-buggy] twin sets
   {!Ava3.Config.t.index_skip_visibility}: probes skip the visibility
   filter and serve each candidate's newest slot instead of the version
   at the pin.  At quiescence the two coincide (nothing newer than q
   exists), so the quiescent index↔base invariant stays clean; only a
   racing write — an update's in-place slot install or an advancement's
   moveToFuture landing mid-scan — separates them, and some schedule
   puts one inside the select's window. *)
let index_mtf_variant ~skip ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 13L;
    max_time = 300.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
            index_skip_visibility = skip;
          }
        in
        let extract v = Printf.sprintf "a%03d" (((v mod 1000) + 1000) mod 1000) in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~index:extract ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("x", 100) ];
        Ava3.Cluster.load db ~node:1 [ ("y", 200) ];
        let keys = [ (0, "x"); (1, "y") ] in
        let rec_ = recorder [ ((0, "x"), 100); ((1, "y"), 200) ] in
        let index_violations = ref [] in
        let select ~root =
          match
            Ava3.Cluster.run_select db ~root ~plan:`Both_check
              ~ranges:[ (0, "a000", "a999"); (1, "a000", "a999") ]
          with
          | (q : _ Ava3.Query_exec.result) ->
              (* A select's rows are point observations at its pin, so they
                 join the recorded history like any query's reads. *)
              rec_.queries <-
                {
                  SC.q_version = q.version;
                  q_reads = List.map (fun (n, k, v) -> ((n, k), v)) q.values;
                }
                :: rec_.queries
          | exception
              Ava3.Query_exec.Index_mismatch { node; version; indexed; full_scan }
            ->
              index_violations :=
                Printf.sprintf
                  "index probe diverged from the full scan at node %d, \
                   version %d: %d vs %d rows"
                  node version indexed full_scan
                :: !index_violations
        in
        Sim.Engine.schedule engine ~name:"T1" ~delay:1.0 (fun () ->
            recorded_update rec_ db ~root:0
              [ Rmw (0, "x", 113); Pause 3.0; Rmw (1, "y", 117) ]);
        Sim.Engine.schedule engine ~name:"SEL1" ~delay:1.0 (fun () ->
            select ~root:0);
        Sim.Engine.schedule engine ~name:"ADV" ~delay:2.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:1));
        Sim.Engine.schedule engine ~name:"T2" ~delay:3.0 (fun () ->
            recorded_update rec_ db ~root:1 [ Rmw (1, "y", 131) ]);
        Sim.Engine.schedule engine ~name:"SEL2" ~delay:4.0 (fun () ->
            select ~root:1);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:60.0 (fun () ->
            settle db ~coordinator:0;
            (* At quiescence even the buggy probe agrees with its pin —
               the twin is only convictable mid-flight. *)
            select ~root:0;
            recorded_query rec_ db ~root:0 keys);
        let inst = ava3_instance db rec_ ~keys in
        {
          inst with
          Scenario.check_final =
            (fun () -> !index_violations @ inst.Scenario.check_final ());
        })
  }

let index_mtf_race =
  index_mtf_variant ~skip:false ~name:"index-mtf-race"
    ~descr:
      "secondary-index selects racing updates, moveToFuture and \
       advancement: probe == full scan on every schedule"

let index_skip_mtf_buggy =
  index_mtf_variant ~skip:true ~name:"index-skip-mtf-buggy"
    ~descr:
      "index probes skipping the visibility filter: some schedule catches \
       a racing write mid-scan and the probe diverges from its pin"

(* Savepoint rollback through the session layer vs lock release.  Three
   session transactions: A opens a savepoint scope, writes x, rolls the
   scope back, then increments y; B increments y then x; C increments x
   inside a scope it keeps.  A holds no lock while waiting (its scope
   lock on x is released before it requests y), so no wait cycle can
   form and every schedule must commit all three — that is the clean
   scenario's extra oracle, on top of the standard invariant and
   serializability set.  The [-buggy] twin sets
   {!Ava3.Config.t.savepoint_leak}: rollback erases the scope's writes
   but forgets to release its locks.  Serializability survives (2PL only
   over-locks) and a transaction's end still releases everything, so the
   leak is invisible to the other oracles — but now A waits for y while
   still holding x, and the schedule where B took y first closes the
   B->x->A->y->B cycle: the deadlock victim stays aborted (retries are
   off) and the all-committed oracle convicts. *)
let savepoint_variant ~leak ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 37L;
    max_time = 300.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
            max_retries = 0 (* a deadlock abort must stay visible *);
            savepoint_leak = leak;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        Ava3.Cluster.load db ~node:0 [ ("x", 1) ];
        Ava3.Cluster.load db ~node:1 [ ("y", 2) ];
        let keys = [ (0, "x"); (1, "y") ] in
        let rec_ = recorder [ ((0, "x"), 1); ((1, "y"), 2) ] in
        let sa = Session.create db ~seed:1L ~coordinators:[ 0 ] in
        let sb = Session.create db ~seed:2L ~coordinators:[ 1 ] in
        let sc = Session.create db ~seed:3L ~coordinators:[ 0 ] in
        let a_committed = ref false
        and b_committed = ref false
        and c_committed = ref false in
        let tracked observed key salt old =
          let v = transform ~salt old in
          Queue.push (key, old, v) observed;
          v
        in
        let record_commit rec_ flag observed
            (cm : (int, unit) Session.commit) =
          flag := true;
          rec_.committed <-
            {
              SC.t_version = cm.final_version;
              t_finished = cm.finished_at;
              t_commit_at = cm.participants;
              t_ops =
                Queue.fold
                  (fun acc (key, old, v) -> SC.Rmw (key, old, v) :: acc)
                  [] observed
                |> List.rev;
            }
            :: rec_.committed
        in
        Sim.Engine.schedule engine ~name:"A" ~delay:1.0 (fun () ->
            let observed = Queue.create () in
            match
              Session.txn sa (fun c ->
                  Queue.clear observed;
                  (match
                     Session.nested c (fun () ->
                         Session.write c ~node:0 "x" 999;
                         raise Session.Rollback)
                   with
                  | Ok () -> assert false (* the scope always raises *)
                  | Error _ -> ());
                  Session.rmw c ~node:1 "y"
                    (tracked observed (1, "y") 801))
            with
            | Session.Committed cm -> record_commit rec_ a_committed observed cm
            | Session.Failed _ -> ());
        Sim.Engine.schedule engine ~name:"B" ~delay:1.0 (fun () ->
            let observed = Queue.create () in
            match
              Session.txn sb (fun c ->
                  Queue.clear observed;
                  Session.rmw c ~node:1 "y" (tracked observed (1, "y") 802);
                  Session.pause c 2.0;
                  Session.rmw c ~node:0 "x" (tracked observed (0, "x") 803))
            with
            | Session.Committed cm -> record_commit rec_ b_committed observed cm
            | Session.Failed _ -> ());
        Sim.Engine.schedule engine ~name:"C" ~delay:2.0 (fun () ->
            let observed = Queue.create () in
            match
              Session.txn sc (fun c ->
                  Queue.clear observed;
                  match
                    Session.nested c (fun () ->
                        Session.rmw c ~node:0 "x"
                          (tracked observed (0, "x") 805))
                  with
                  | Ok () -> ()
                  | Error _ -> ())
            with
            | Session.Committed cm -> record_commit rec_ c_committed observed cm
            | Session.Failed _ -> ());
        Sim.Engine.schedule engine ~name:"ADV" ~delay:3.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule engine ~name:"Q" ~delay:4.0 (fun () ->
            recorded_query rec_ db ~root:1 [ (0, "x"); (1, "y") ]);
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:60.0 (fun () ->
            settle db ~coordinator:0;
            recorded_query rec_ db ~root:0 keys);
        let inst = ava3_instance db rec_ ~keys in
        {
          inst with
          Scenario.check_final =
            (fun () ->
              List.filter_map
                (fun (name, flag) ->
                  if !flag then None
                  else
                    Some
                      (Printf.sprintf
                         "session transaction %s did not commit: a \
                          deadlock-free workload deadlocked (savepoint \
                          rollback kept the scope's locks?)"
                         name))
                [ ("A", a_committed); ("B", b_committed); ("C", c_committed) ]
              @ inst.Scenario.check_final ());
        })
  }

let savepoint_rollback =
  savepoint_variant ~leak:false ~name:"savepoint-rollback"
    ~descr:
      "session savepoint scopes rolling back under contention: scope locks \
       release, so the deadlock-free workload commits on every schedule"

let savepoint_leak_buggy =
  savepoint_variant ~leak:true ~name:"savepoint-leak-buggy"
    ~descr:
      "savepoint rollback forgetting to release the scope's locks: some \
       schedule closes a wait cycle and a deadlock-free workload aborts"

(* One generated DSL program under the third interpreter.  [Session.Dsl.gen]
   is deterministic in its rng, so the program built from seed 77 here is
   the same value the stress driver ([--sessions]) and the E15 harness
   run from the same generator seed — only [choose] differs.  Here every
   [choice] is resolved by {!Session.Dsl.explorer_choose}, i.e. routed
   through {!Sim.Engine.branch} as a first-class exploration decision,
   and the program races an advancement round.  The extra oracle is
   completeness: on every schedule the program must run to the end with
   each transaction committed (within the session retry budget) and no
   query failed — a wedged or silently-dropped program is a bug even
   when the store invariants hold. *)
let session_dsl =
  {
    Scenario.name = "session-dsl";
    descr =
      "a generated Session.Dsl program (same generator seed as stress \
       --sessions / E15) with its choice points explored: every schedule \
       must complete and commit all of it";
    seed = 77L;
    max_time = 400.0;
    setup =
      (fun engine ->
        let config =
          {
            Ava3.Config.default with
            read_service_time = 1.0;
            write_service_time = 1.0;
            max_retries = 2;
            retry_backoff_base = 1.0;
          }
        in
        let db : int Ava3.Cluster.t =
          Ava3.Cluster.create ~engine ~config ~nodes:2 ()
        in
        (* Preload the generator's key namespace so reads and deletes
           touch live items from the first transaction. *)
        for node = 0 to 1 do
          Ava3.Cluster.load db ~node
            (List.init 3 (fun i -> (Session.Dsl.gen_key ~node i, i)))
        done;
        let grng = Sim.Rng.create 77L in
        let pa = Session.Dsl.gen ~rng:grng ~nodes:2 ~keys_per_node:3 ~txns:1 in
        let pb = Session.Dsl.gen ~rng:grng ~nodes:2 ~keys_per_node:3 ~txns:1 in
        let prog =
          Session.Dsl.(
            choice ~label:"dsl-order" [ seq [ pa; pb ]; seq [ pb; pa ] ])
        in
        let s = Session.create db ~seed:5L ~coordinators:[ 0; 1 ] in
        let summary = ref None in
        Sim.Engine.schedule engine ~name:"DSL" ~delay:1.0 (fun () ->
            summary :=
              Some
                (Session.Dsl.run ~choose:(Session.Dsl.explorer_choose s) s
                   prog));
        Sim.Engine.schedule engine ~name:"ADV" ~delay:3.0 (fun () ->
            ignore (Ava3.Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule engine ~name:"epilogue" ~delay:150.0 (fun () ->
            settle db ~coordinator:0);
        let rec_ = recorder [] in
        let inst = ava3_instance db rec_ ~keys:[] in
        {
          inst with
          Scenario.check_final =
            (fun () ->
              (match !summary with
              | None -> [ "the DSL program did not run to completion" ]
              | Some (sum : Session.Dsl.summary) ->
                  (if sum.failed > 0 then
                     [
                       Printf.sprintf
                         "%d DSL transaction(s) failed within the retry \
                          budget"
                         sum.failed;
                     ]
                   else [])
                  @ (if sum.query_failures > 0 then
                       [
                         Printf.sprintf "%d DSL query(ies) failed"
                           sum.query_failures;
                       ]
                     else [])
                  @
                  if sum.committed = 0 then
                    [ "no DSL transaction committed" ]
                  else [])
              @ inst.Scenario.check_final ());
        })
  }

(* ---------- toy scenarios (explorer self-validation) ---------- *)

(* A two-item commit racing a two-item query on the toy store.  In buggy
   mode the commit ignores reader pins, so some interleaving lands the
   install between the query's two reads — a torn snapshot the final
   oracle flags.  The correct mode (pins respected) must be clean on
   every interleaving.  The default schedule is clean in both modes: the
   bug is only reachable by exploration, which is the point. *)
let toy_rw ~buggy ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 3L;
    max_time = 50.0;
    setup =
      (fun engine ->
        let t = Toy.create ~engine ~buggy ~write_time:1.0 () in
        Toy.load t [ ("x", 0); ("y", 0) ];
        let snapshots = ref [] in
        Sim.Engine.schedule engine ~name:"writer" ~delay:1.0 (fun () ->
            Toy.put_all t [ ("x", 1); ("y", 1) ]);
        Sim.Engine.schedule engine ~name:"reader" ~delay:1.0 (fun () ->
            snapshots := Toy.query t ~read_time:1.0 [ "x"; "y" ] :: !snapshots);
        {
          Scenario.check_step = (fun () -> []);
          check_final =
            (fun () ->
              List.concat_map
                (function
                  | [ ("x", Some x); ("y", Some y) ] ->
                      if x = y then []
                      else
                        [
                          Printf.sprintf
                            "torn snapshot: read x=%d y=%d from a store \
                             where x and y only ever change together"
                            x y;
                        ]
                  | _ -> [ "query returned an unexpected shape" ])
                !snapshots);
          fingerprint = (fun () -> Toy.fingerprint t);
        })
  }

let toy_torn =
  toy_rw ~buggy:true ~name:"toy-torn"
    ~descr:
      "toy store, commit ignores reader pins: some schedule tears a query \
       snapshot"

let toy_safe =
  toy_rw ~buggy:false ~name:"toy-safe"
    ~descr:
      "toy store, pins respected: every schedule must yield a consistent \
       snapshot"

(* Two increments of one counter, each written as observe / think /
   install.  Serially the counter ends at 2; the interleaving that lets
   the second writer observe before the first installs loses an update.
   The default schedule is the serial one.  [toy-rmw-safe] is the same
   program with atomic read-modify-writes — clean on every schedule. *)
let toy_lost_update_variant ~atomic ~name ~descr =
  {
    Scenario.name;
    descr;
    seed = 9L;
    max_time = 50.0;
    setup =
      (fun engine ->
        let t = Toy.create ~engine ~buggy:true () in
        Toy.load t [ ("c", 0) ];
        let incr_split think () =
          let v = Option.value ~default:0 (Toy.get t "c") in
          Sim.Engine.sleep think;
          Toy.put_all t [ ("c", v + 1) ]
        in
        let incr_atomic () =
          ignore (Toy.rmw t "c" (fun v -> Option.value ~default:0 v + 1))
        in
        (* w1 observes at t=1 and installs at t=2; w2 starts at t=1.5
           and acts at t=2: the t=2 tie decides whether w2 sees w1's
           install.  In split mode the wrong order loses an update. *)
        Sim.Engine.schedule engine ~name:"w1" ~delay:1.0 (fun () ->
            if atomic then begin
              Sim.Engine.sleep 1.0;
              incr_atomic ()
            end
            else incr_split 1.0 ());
        Sim.Engine.schedule engine ~name:"w2" ~delay:1.5 (fun () ->
            if atomic then begin
              Sim.Engine.sleep 0.5;
              incr_atomic ()
            end
            else begin
              Sim.Engine.sleep 0.5;
              incr_split 0.5 ()
            end);
        {
          Scenario.check_step = (fun () -> []);
          check_final =
            (fun () ->
              match Toy.get t "c" with
              | Some 2 -> []
              | v ->
                  [
                    Printf.sprintf
                      "lost update: counter is %s after two committed \
                       increments (expected 2)"
                      (match v with
                      | None -> "absent"
                      | Some v -> string_of_int v);
                  ]);
          fingerprint = (fun () -> Toy.fingerprint t);
        })
  }

let toy_lost_update =
  toy_lost_update_variant ~atomic:false ~name:"toy-lost-update"
    ~descr:
      "toy store, observe/think/install increments: some schedule loses an \
       update"

let toy_rmw_safe =
  toy_lost_update_variant ~atomic:true ~name:"toy-rmw-safe"
    ~descr:
      "toy store, atomic increments: the counter reaches 2 on every \
       schedule"

let all =
  [
    race2;
    table1_3site;
    mtf_race;
    crash_advance;
    group_commit_crash;
    group_commit_crash_buggy;
    relay_crash;
    relay_ack_early_buggy;
    backup_promotion;
    replica_ack_early_buggy;
    index_mtf_race;
    index_skip_mtf_buggy;
    savepoint_rollback;
    savepoint_leak_buggy;
    session_dsl;
    toy_torn;
    toy_safe;
    toy_lost_update;
    toy_rmw_safe;
  ]

let find name = List.find_opt (fun s -> s.Scenario.name = name) all
