(** The built-in scenario catalogue.

    AVA3 scenarios (oracles: protocol invariants at every choice point;
    quiescence, quiescent invariants and Theorem 6.2 serializability at
    the end):
    - [race2] — 2 nodes, racing RMWs on one item, a cross-node update,
      overlapping queries, one advancement;
    - [table1-3site] — the paper's Table 1 execution shape on 3 sites,
      with generic oracles instead of Table 1's literal outcomes;
    - [mtf-race] — an advancement overtaking an in-flight multi-node
      update, forcing moveToFuture at data-access or commit time
      depending on the schedule;
    - [crash-advance] — advancement racing a coordinator crash, the
      nemesis's node/time choices enumerated with the schedule;
    - [group-commit-crash] (must clear) / [group-commit-crash-buggy]
      (must convict) — commits through the group-commit daemon racing a
      node crash placed by the nemesis, including between a commit's
      enqueue and the batch's disk force.  The buggy twin acknowledges
      before the force ({!Ava3.Config.t.gc_ack_early}), so some schedule
      loses an acknowledged commit;
    - [relay-crash] (must clear) / [relay-ack-early-buggy] (must convict)
      — a hierarchical round on an arity-1 chain (coordinator, relay,
      leaf).  The clean one lets the nemesis crash any site mid-round
      and requires retransmission to rebuild the volatile relay state;
      the buggy twin sets {!Ava3.Config.t.relay_ack_early} so the relay
      acknowledges before its subtree is covered, and some schedule
      commits a leaf update into a version already frozen and read;
    - [backup-promotion] (must clear) / [replica-ack-early-buggy] (must
      convict) — per-partition primary-backup replication with a nemesis
      crash placed by choice points, including each primary mid-round
      (promotion, rejoin, pinned backup reads).  The buggy twin sets
      {!Ava3.Config.t.replica_ack_early} so a backup acknowledges shipped
      records before applying them, and some schedule loses an
      acknowledged commit at promotion or serves a stale pinned read;
    - [index-mtf-race] (must clear) / [index-skip-mtf-buggy] (must
      convict) — secondary-index selects under [`Both_check] racing
      updates, moveToFuture and advancement.  The buggy twin sets
      {!Ava3.Config.t.index_skip_visibility} so probes serve each
      candidate's newest slot instead of the pinned version; at
      quiescence the two coincide, but some schedule catches a racing
      write mid-scan and the probe diverges from the back-to-back full
      scan;
    - [savepoint-rollback] (must clear) / [savepoint-leak-buggy] (must
      convict) — session-layer savepoint scopes ({!Session.nested})
      rolling back under lock contention, arranged so the workload is
      deadlock-free exactly when rollback releases the scope's locks.
      The buggy twin sets {!Ava3.Config.t.savepoint_leak} (rollback
      keeps the locks): serializability survives — 2PL only over-locks —
      but some schedule closes a wait cycle and the
      all-transactions-committed oracle convicts;
    - [session-dsl] (must clear) — a {!Session.Dsl.gen} program (the
      same deterministic generator the stress driver's [--sessions] mode
      and the E15 experiment run) interpreted through a session with
      {!Session.Dsl.explorer_choose}, so the program's [choice] points
      are first-class exploration decisions.  Extra oracle:
      completeness — on every schedule the program finishes with all
      transactions committed and no query failed.

    Toy scenarios (explorer self-validation on a deliberately broken
    store, {!Toy}):
    - [toy-torn] (must convict) / [toy-safe] (must clear) — a pin-ignoring
      vs pin-respecting multi-item commit racing a snapshot query;
    - [toy-lost-update] (must convict) / [toy-rmw-safe] (must clear) —
      split observe/think/install increments vs atomic ones. *)

val race2 : Scenario.t
val table1_3site : Scenario.t
val mtf_race : Scenario.t
val crash_advance : Scenario.t
val group_commit_crash : Scenario.t
val group_commit_crash_buggy : Scenario.t
val relay_crash : Scenario.t
val relay_ack_early_buggy : Scenario.t
val backup_promotion : Scenario.t
val replica_ack_early_buggy : Scenario.t
val index_mtf_race : Scenario.t
val index_skip_mtf_buggy : Scenario.t
val savepoint_rollback : Scenario.t
val savepoint_leak_buggy : Scenario.t
val session_dsl : Scenario.t
val toy_torn : Scenario.t
val toy_safe : Scenario.t
val toy_lost_update : Scenario.t
val toy_rmw_safe : Scenario.t

val all : Scenario.t list
val find : string -> Scenario.t option
