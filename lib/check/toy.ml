(* A miniature single-node "two-version" store modelled on
   lib/baseline/two_version.ml, reduced to the two mechanisms whose
   omission produces classic anomalies:

   - readers pin the items they read; a correct commit waits for pins to
     drain before installing new values (BHR80 interference).  With
     [buggy:true] the commit installs immediately, so a multi-item commit
     can land between two reads of one query — a torn snapshot;
   - writers that read-modify-write are expected to do so atomically (the
     baseline holds an exclusive lock across the cycle).  This store has
     no locks at all, so a scenario that separates the read from the
     write in virtual time exhibits a lost update under the right
     interleaving.

   The point is not to be a good store — it is to be a known-bad one the
   schedule explorer must convict within a bounded number of schedules,
   and whose corrected twin ([buggy:false], atomic RMWs) it must clear. *)

type t = {
  engine : Sim.Engine.t;
  store : (string, int) Hashtbl.t;
  pins : (string, int ref) Hashtbl.t;
  pins_zero : Sim.Condition.t;
  buggy : bool;
  write_time : float;
  mutable commits : int;
  mutable queries : int;
}

let create ~engine ?(buggy = false) ?(write_time = 0.0) () =
  {
    engine;
    store = Hashtbl.create 16;
    pins = Hashtbl.create 16;
    pins_zero = Sim.Condition.create ();
    buggy;
    write_time;
    commits = 0;
    queries = 0;
  }

let load t items = List.iter (fun (k, v) -> Hashtbl.replace t.store k v) items

let get t key = Hashtbl.find_opt t.store key

let pin t key =
  let c =
    match Hashtbl.find_opt t.pins key with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace t.pins key c;
        c
  in
  incr c

let unpin t key =
  match Hashtbl.find_opt t.pins key with
  | None -> ()
  | Some c ->
      decr c;
      if !c <= 0 then begin
        Hashtbl.remove t.pins key;
        Sim.Condition.broadcast t.pins_zero
      end

let await_unpinned t key =
  Sim.Condition.await_until t.pins_zero ~pred:(fun () ->
      not (Hashtbl.mem t.pins key))

(* Commit a batch: per item, a storage delay, then (correct mode only)
   the BHR80 wait for reader pins to drain, then the install.  The
   per-item delay is what stretches a multi-item commit across virtual
   time — without it even the buggy install is atomic in the simulation
   and no interleaving can land inside it. *)
let put_all t items =
  List.iter
    (fun (key, value) ->
      if t.write_time > 0.0 then Sim.Engine.sleep t.write_time;
      if not t.buggy then await_unpinned t key;
      Hashtbl.replace t.store key value)
    items;
  t.commits <- t.commits + 1

let rmw t key f =
  let v = f (get t key) in
  Hashtbl.replace t.store key v;
  t.commits <- t.commits + 1;
  v

(* Pin first, observe after a storage delay, release every pin only once
   all reads finished — the reader side of the BHR80 discipline. *)
let query t ~read_time keys =
  let results =
    List.map
      (fun key ->
        pin t key;
        Sim.Engine.sleep read_time;
        (key, get t key))
      keys
  in
  List.iter (fun key -> unpin t key) keys;
  t.queries <- t.queries + 1;
  results

let fingerprint t =
  let h = ref Fingerprint.empty in
  let items =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.store []
    |> List.sort compare
  in
  h :=
    Fingerprint.list
      (fun h (k, v) -> Fingerprint.int (Fingerprint.string h k) v)
      !h items;
  let pins =
    Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t.pins [] |> List.sort compare
  in
  h :=
    Fingerprint.list
      (fun h (k, c) -> Fingerprint.int (Fingerprint.string h k) c)
      !h pins;
  h := Fingerprint.int !h t.commits;
  h := Fingerprint.int !h t.queries;
  Fingerprint.engine !h t.engine
