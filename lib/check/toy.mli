(** A deliberately simplified — and optionally deliberately broken —
    single-node two-version store, modelled on [lib/baseline/two_version],
    used to validate the explorer itself: the buggy variant's anomalies
    (torn query snapshot, lost update) must be found within a bounded
    schedule count, and the corrected variant must come back clean over
    the same schedules.  Not part of the database proper. *)

type t

val create :
  engine:Sim.Engine.t -> ?buggy:bool -> ?write_time:float -> unit -> t
(** [buggy] (default false) makes {!put_all} install values without
    waiting for reader pins to drain.  [write_time] (default 0) is a
    per-item storage delay inside {!put_all}; a positive value stretches
    a multi-item commit across virtual time, opening the window the
    buggy mode's torn snapshot needs. *)

val load : t -> (string * int) list -> unit
val get : t -> string -> int option

val put_all : t -> (string * int) list -> unit
(** Commit a batch of writes.  Per item: sleep [write_time], then (in
    correct mode) wait until no query pins it, then install.  Must run
    inside a process when [write_time > 0] or in correct mode. *)

val rmw : t -> string -> (int option -> int) -> int
(** Atomic read-modify-write: observe and install in one event, no
    suspension — the corrected counterpart of an observe/sleep/install
    sequence written out by hand. *)

val query : t -> read_time:float -> string list -> (string * int option) list
(** Read the keys in order, [read_time] apart, pinning each before its
    read and releasing all pins at the end.  Must run inside a process. *)

val pin : t -> string -> unit
val unpin : t -> string -> unit

val fingerprint : t -> Fingerprint.t
(** Store contents, pin table, commit/query counters and engine state. *)
