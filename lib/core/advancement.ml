open Cluster_state

let tag = "advance"

(* Catch the node's garbage version up to [target], simulating the scan cost
   of each collection round.  Also the Phase-1 inference rule: a node seeing
   advance-u(newu) with g < newu - 3 may collect everything up to newu - 3. *)
let catch_up_gc cs node ~target =
  while Node_state.alive node && Node_state.g node < target do
    let items = Vstore.Store.item_count (Node_state.store node) in
    if cs.config.Config.gc_item_time > 0.0 && items > 0 then
      Sim.Engine.sleep (float_of_int items *. cs.config.Config.gc_item_time);
    Node_state.collect_garbage node ~newg:(Node_state.g node + 1);
    note_version_change cs
  done

(* In the four-version baseline garbage collection trails one extra round. *)
let gc_lag cs = if cs.config.Config.retain_extra_version then 1 else 0

(* An advancement acknowledgement is a durability promise: the coordinator
   may treat the version switch as done, so the Advance record behind it
   must hit the disk before the ack leaves — otherwise a crash after the
   ack reverts the node's version below what the coordinator saw.  Free
   when the durability model is off; if the node crashes while the force
   is in flight, the completion is simply withheld (the coordinator's
   retransmission covers the recovered node).  [complete] abstracts what an
   acknowledgment is: a direct message to the coordinator in a flat round,
   a contribution to the local relay aggregation in a hierarchical one. *)
let durable_then cs nd complete =
  ignore cs;
  match Node_state.commit_durable nd with
  | () -> complete ()
  | exception Wal.Group_commit.Crashed -> ()

let advance_u_local cs i ~newu ~complete =
  let nd = node cs i in
  if Node_state.u nd <= newu then begin
    catch_up_gc cs nd ~target:(newu - 3 - gc_lag cs);
    if Node_state.u nd < newu then begin
      Node_state.set_u nd newu;
      if tracing cs then emit cs ~tag (Printf.sprintf "node%d: u := %d" i newu);
      note_version_change cs
    end;
    (* Wait for local update subtransactions that started on the previous
       version to finish, then acknowledge. *)
    Node_state.await_no_updates nd ~version:(newu - 1);
    durable_then cs nd (fun () ->
        (* The phase barrier extends to in-sync backups: do not
           acknowledge advance-u until they hold the Advance_update
           record (stragglers are demoted).  This keeps every in-sync
           backup inside the same phase window as the primaries — two
           sites never disagree on both counters — and a backup promoted
           after this ack starts at the new update version. *)
        Replication.phase_gate cs i;
        if Node_state.alive nd then complete ())
  end

let advance_q_local cs i ~newq ~complete =
  let nd = node cs i in
  if Node_state.q nd <= newq then begin
    if Node_state.q nd < newq then begin
      Node_state.set_q nd newq;
      if tracing cs then emit cs ~tag (Printf.sprintf "node%d: q := %d" i newq);
      note_version_change cs
    end;
    (* Four-version baseline: the old query version survives one more round,
       so Phase 2 need not wait for queries still reading it. *)
    if not cs.config.Config.retain_extra_version then
      Node_state.await_no_queries nd ~version:(newq - 1);
    durable_then cs nd (fun () ->
        (* Replica-aware Phase 2: the coordinator takes this ack as licence
           to retire version newq - 1, so every backup a pinned reader may
           still be routed to must hold the whole log up to (and including)
           the Advance_query record first.  A straggler is demoted out of
           the read set rather than allowed to stall the round; if this
           primary crashes while gating, the ack is withheld exactly as if
           the force had failed (retransmission covers the successor). *)
        Replication.phase_gate cs i;
        if Node_state.alive nd then complete ())
  end

let handle_advance_u cs i ~src ~newu =
  advance_u_local cs i ~newu ~complete:(fun () ->
      Net.Network.send cs.net ~src:i ~dst:src (Messages.Ack_advance_u { newu }))

let handle_advance_q cs i ~src ~newq =
  advance_q_local cs i ~newq ~complete:(fun () ->
      Net.Network.send cs.net ~src:i ~dst:src (Messages.Ack_advance_q { newq }))

let handle_garbage_collect cs i ~src ~newg =
  ignore src;
  let nd = node cs i in
  (* Four-version baseline: collection trails one version behind, and must
     wait for the stragglers still querying the version being collected. *)
  let newg =
    if cs.config.Config.retain_extra_version then newg - 1 else newg
  in
  if Node_state.g nd < newg then begin
    if cs.config.Config.retain_extra_version then
      Node_state.await_no_queries nd ~version:newg;
    catch_up_gc cs nd ~target:newg;
    if tracing cs then
      emit cs ~tag (Printf.sprintf "node%d: collected version %d" i newg);
    note_version_change cs;
    (* Ship the Collect records so backup garbage versions converge (no
       barrier — backup reads can never touch a collectable version, see
       {!Replication}). *)
    Replication.after_gc cs i
  end

let all_acked acks = Array.for_all (fun x -> x) acks

(* ---- Hierarchical rounds (Config.tree_arity > 0) -----------------------

   The coordinator no longer broadcasts each phase to all N sites: it sends
   its own site a plain phase message and hands each direct child of a
   relay tree a [Relay] frame covering that child's whole subtree.  Relays
   forward downward first, do their local share, and send one aggregated
   [Relay_ack] upward once their own work is durable and every participant
   child subtree has acknowledged.  The coordinator therefore exchanges
   O(arity) messages per phase instead of O(N), at O(log_arity N) extra
   message depth.

   Soundness notes.  Per-link FIFO delivery plus reusing one tree for both
   phases of a round means no site can see a round's advance-q before its
   advance-u, so q < u is preserved even at fire-and-forget sites.  The
   stalled-round re-initiation rule, coordinator retransmission, and
   abandonment all apply unchanged: relays are volatile, a crashed relay's
   state is rebuilt by the retransmitted frame, and duplicate frames repair
   the tree idempotently (re-forward to unacknowledged subtrees, re-ack
   upward when already complete). *)

(* Tree layout of one round: the coordinator at the root, then the barrier
   participants in ascending site order, then the fire-and-forget tail.
   With [partition_aware] the tail holds the data-empty sites — sound only
   under the confinement contract that writes and transaction/query roots
   stay on data-hosting sites (see {!Config.t}). *)
let tree_layout cs k =
  let n = node_count cs in
  let participant i =
    (not cs.config.Config.partition_aware)
    || Vstore.Store.item_count (Node_state.store (node cs i)) > 0
  in
  let parts = ref [] and rest = ref [] in
  for i = n - 1 downto 0 do
    if i <> k then
      if participant i then parts := i :: !parts else rest := i :: !rest
  done;
  let sites = Array.of_list ((k :: !parts) @ !rest) in
  (sites, 1 + List.length !parts)

let tree_parent cs pos = (pos - 1) / cs.config.Config.tree_arity
let tree_first_child cs pos = (cs.config.Config.tree_arity * pos) + 1

let relay_find cs i ~root ~ver ~kind =
  List.find_opt
    (fun r -> r.r_root = root && r.r_ver = ver && r.r_kind = kind)
    cs.relays.(i)

(* Send [inner] on to this position's children; [skip] masks child slots
   (repair paths resend only to subtrees that have not acknowledged). *)
let relay_forward cs i ~sites ~nparts ~pos ~inner ~skip =
  let n = Array.length sites in
  let first = tree_first_child cs pos in
  for c = 0 to cs.config.Config.tree_arity - 1 do
    let cp = first + c in
    if cp < n && not (skip c) then
      Net.Network.send cs.net ~src:i ~dst:sites.(cp)
        (Messages.Relay { sites; nparts; pos = cp; inner })
  done

let relay_ack_up cs i r =
  r.r_acked <- true;
  let parent = r.r_sites.(tree_parent cs r.r_pos) in
  let inner =
    match r.r_kind with
    | `U -> Messages.Ack_advance_u { newu = r.r_ver }
    | `Q -> Messages.Ack_advance_q { newq = r.r_ver }
  in
  Net.Network.send cs.net ~src:i ~dst:parent
    (Messages.Relay_ack { root = r.r_root; inner })

let relay_maybe_complete cs i r =
  if
    (not r.r_acked) && r.r_self_done
    && (cs.config.Config.relay_ack_early || all_acked r.r_child_acks)
  then relay_ack_up cs i r

(* Launch one phase of a hierarchical round: the coordinator takes its own
   share via a plain self-addressed message (acknowledging itself like any
   participant) and each direct child receives the frame for its subtree.
   Fire-and-forget children (non-participant positions) get the frame too
   at round start so their counters converge, but are never waited on. *)
let send_phase_tree cs k c inner =
  Net.Network.send cs.net ~src:k ~dst:k inner;
  let arity = cs.config.Config.tree_arity in
  for p = 1 to min arity (Array.length c.c_sites - 1) do
    Net.Network.send cs.net ~src:k ~dst:c.c_sites.(p)
      (Messages.Relay { sites = c.c_sites; nparts = c.c_nparts; pos = p; inner })
  done

(* Fan a phase out: through the round's tree when it has one, by the
   paper's flat broadcast otherwise.  Replicated clusters address the
   partition primaries individually — backups are not advancement
   participants (their version counters move by log shipping, in exactly
   the order the primary's did). *)
let send_phase cs k c inner =
  if c.c_nparts > 0 then send_phase_tree cs k c inner
  else if replicated cs then
    for p = 0 to nparts cs - 1 do
      Net.Network.send cs.net ~src:k ~dst:(primary_site cs p) inner
    done
  else Net.Network.broadcast cs.net ~src:k inner

let handle_ack_advance_u cs k ~src ~newu =
  match cs.coords.(k) with
  | Some c when c.c_phase = `Collect_u && c.c_newu = newu && not c.c_abandoned
    ->
      c.c_acks_u.(src) <- true;
      if all_acked c.c_acks_u then begin
        (* Version newu - 1 is now stable everywhere: no update transaction
           will ever write it again. *)
        freeze_version cs (newu - 1);
        c.c_phase <- `Collect_q;
        c.c_phase1_done <- now cs;
        Sim.Metrics.record_phase1_duration cs.metrics ~node:k
          (c.c_phase1_done -. c.c_started);
        let newq = newu - 1 in
        if tracing cs then
          emit cs ~tag
            (Printf.sprintf "node%d: phase 1 complete, advance-q(%d)" k newq);
        send_phase cs k c (Messages.Advance_q { newq })
      end
  | _ -> ()

let handle_ack_advance_q cs k ~src ~newq =
  match cs.coords.(k) with
  | Some c
    when c.c_phase = `Collect_q && c.c_newu = newq + 1 && not c.c_abandoned ->
      c.c_acks_q.(src) <- true;
      if all_acked c.c_acks_q then begin
        cs.coords.(k) <- None;
        Sim.Metrics.record_advancement cs.metrics ~node:k;
        Sim.Metrics.record_phase2_duration cs.metrics ~node:k
          (now cs -. c.c_phase1_done);
        let newg = newq - 1 in
        if tracing cs then
          emit cs ~tag
            (Printf.sprintf "node%d: phase 2 complete, garbage-collect(%d)" k
               newg);
        send_phase cs k c (Messages.Garbage_collect { newg })
      end
  | _ -> ()

(* One relay frame: forward down the tree first — a child subtree must not
   wait on this site's local share, which may suspend on the update/query
   barriers — then do the local work.  Advance phases aggregate
   acknowledgments per (root, version, kind); garbage collection is
   stateless (a lost GC broadcast is repaired by the next round's catch-up
   rule, exactly as in flat rounds). *)
let handle_relay cs i ~sites ~nparts ~pos ~inner =
  let root = sites.(0) in
  match inner with
  | Messages.Garbage_collect { newg } ->
      relay_forward cs i ~sites ~nparts ~pos ~inner ~skip:(fun _ -> false);
      handle_garbage_collect cs i ~src:root ~newg
  | Messages.Advance_u _ | Messages.Advance_q _ -> (
      let kind, ver =
        match inner with
        | Messages.Advance_u { newu } -> (`U, newu)
        | Messages.Advance_q { newq } -> (`Q, newq)
        | _ -> assert false
      in
      match relay_find cs i ~root ~ver ~kind with
      | Some r ->
          (* Duplicate (coordinator retransmission): repair the subtree
             idempotently — re-forward to children that have not
             acknowledged, and re-send the aggregate ack if complete (the
             earlier one may have been lost with a crashed parent). *)
          relay_forward cs i ~sites ~nparts ~pos ~inner ~skip:(fun c ->
              r.r_child_acks.(c));
          if r.r_acked then relay_ack_up cs i r
      | None ->
          if pos >= nparts then begin
            (* Fire-and-forget position: pure fan-out plus local version
               convergence; nothing upward ever waits on this site. *)
            relay_forward cs i ~sites ~nparts ~pos ~inner
              ~skip:(fun _ -> false);
            match inner with
            | Messages.Advance_u { newu } ->
                advance_u_local cs i ~newu ~complete:ignore
            | Messages.Advance_q { newq } ->
                advance_q_local cs i ~newq ~complete:ignore
            | _ -> ()
          end
          else begin
            let first = tree_first_child cs pos in
            let r =
              {
                r_root = root;
                r_ver = ver;
                r_kind = kind;
                r_sites = sites;
                r_nparts = nparts;
                r_pos = pos;
                (* child slots past the tree or at fire-and-forget
                   positions can never ack and start settled *)
                r_child_acks =
                  Array.init cs.config.Config.tree_arity (fun c ->
                      first + c >= nparts);
                r_self_done = false;
                r_acked = false;
              }
            in
            (* Rounds more than two versions back can never complete (their
               coordinator has been superseded); drop their state here so
               the list stays bounded by the handful of live rounds. *)
            cs.relays.(i) <-
              r
              :: List.filter (fun r' -> r'.r_ver + 2 >= ver) cs.relays.(i);
            relay_forward cs i ~sites ~nparts ~pos ~inner
              ~skip:(fun _ -> false);
            let complete () =
              r.r_self_done <- true;
              relay_maybe_complete cs i r
            in
            match inner with
            | Messages.Advance_u { newu } ->
                advance_u_local cs i ~newu ~complete
            | Messages.Advance_q { newq } ->
                advance_q_local cs i ~newq ~complete
            | _ -> ()
          end)
  | _ -> ()

(* Upward aggregated acknowledgment.  At the round's coordinator it settles
   the direct child's subtree in the ordinary site-indexed collection; at
   an inner relay it settles one child slot of the matching relay state.
   An unknown (root, version, kind) is stale — e.g. this relay crashed and
   lost its state — and is dropped; the coordinator's retransmission
   rebuilds the state and the subtree re-acknowledges. *)
let handle_relay_ack cs i ~src ~root ~inner =
  if i = root then
    match inner with
    | Messages.Ack_advance_u { newu } -> handle_ack_advance_u cs i ~src ~newu
    | Messages.Ack_advance_q { newq } -> handle_ack_advance_q cs i ~src ~newq
    | _ -> ()
  else
    let key =
      match inner with
      | Messages.Ack_advance_u { newu } -> Some (`U, newu)
      | Messages.Ack_advance_q { newq } -> Some (`Q, newq)
      | _ -> None
    in
    match key with
    | None -> ()
    | Some (kind, ver) -> (
        match relay_find cs i ~root ~ver ~kind with
        | None -> ()
        | Some r ->
            let first = tree_first_child cs r.r_pos in
            let n = Array.length r.r_sites in
            for c = 0 to cs.config.Config.tree_arity - 1 do
              let cp = first + c in
              if cp < n && r.r_sites.(cp) = src then r.r_child_acks.(c) <- true
            done;
            relay_maybe_complete cs i r)

(* Abandonment (paper §3.2, generalised): a coordinator stops its run when
   a message shows another coordinator is a phase ahead in the same round,
   or that the system has already moved to a later round.  Stale runs would
   otherwise wait forever for acknowledgments that can no longer arrive.
   Relay frames count through their payload: a relayed advance carries the
   same evidence as a broadcast one. *)
let maybe_abandon cs i ~src msg =
  match cs.coords.(i) with
  | Some c when not c.c_abandoned ->
      let obsolete =
        match Messages.payload msg with
        | Messages.Advance_u { newu } -> newu > c.c_newu
        | Messages.Advance_q { newq } ->
            newq > c.c_newu - 1
            || (src <> i && c.c_phase = `Collect_u && newq = c.c_newu - 1)
        | Messages.Garbage_collect { newg } ->
            newg > c.c_newu - 2
            || (src <> i && c.c_phase = `Collect_q && newg = c.c_newu - 2)
        | Messages.Ack_advance_u _ | Messages.Ack_advance_q _
        | Messages.Relay _ | Messages.Relay_ack _ | Messages.Ship _
        | Messages.Ship_ack _ ->
            false
      in
      if obsolete then begin
        c.c_abandoned <- true;
        cs.coords.(i) <- None;
        if tracing cs then
          emit cs ~tag
            (Printf.sprintf
               "node%d: abandons coordination of round %d (node%d is ahead)" i
               c.c_newu src)
      end
  | _ -> ()

let handler cs i ~src msg =
  maybe_abandon cs i ~src msg;
  match msg with
  | Messages.Advance_u { newu } -> handle_advance_u cs i ~src ~newu
  | Messages.Ack_advance_u { newu } -> handle_ack_advance_u cs i ~src ~newu
  | Messages.Advance_q { newq } -> handle_advance_q cs i ~src ~newq
  | Messages.Ack_advance_q { newq } -> handle_ack_advance_q cs i ~src ~newq
  | Messages.Garbage_collect { newg } -> handle_garbage_collect cs i ~src ~newg
  | Messages.Relay { sites; nparts; pos; inner } ->
      handle_relay cs i ~sites ~nparts ~pos ~inner
  | Messages.Relay_ack { root; inner } -> handle_relay_ack cs i ~src ~root ~inner
  | Messages.Ship { part; epoch; from_; records } ->
      Replication.handle_ship cs i ~part ~epoch ~from_ ~records
  | Messages.Ship_ack { part; epoch; upto } ->
      Replication.handle_ship_ack cs i ~src ~part ~epoch ~upto

let install cs =
  for i = 0 to node_count cs - 1 do
    Net.Network.set_handler cs.net ~node:i (fun ~src msg -> handler cs i ~src msg)
  done

(* Coordinator retransmission: handlers are idempotent, so periodically
   re-send the current phase's message to nodes that have not acknowledged.
   Covers crashed-and-recovered participants (the paper assumes messages are
   eventually delivered).  The loop is pinned to [c] by physical equality:
   if the coordinator crashes (volatile round state wiped) and later
   re-initiates the same [newu], the new round spawns its own loop and this
   one must die rather than double-resend. *)
let retransmit cs k c =
  let period = cs.config.Config.advancement_retry in
  let newu = c.c_newu in
  let rec loop () =
    Sim.Engine.sleep period;
    match cs.coords.(k) with
    | Some c' when c' == c && not c.c_abandoned ->
        let resend acks msg =
          if c.c_nparts = 0 then
            Array.iteri
              (fun j acked ->
                if not acked then Net.Network.send cs.net ~src:k ~dst:j msg)
              acks
          else begin
            (* Hierarchical round: re-send down the unacknowledged limbs
               only — the coordinator's own plain message if it has not
               settled, and the frame of each direct participant child
               whose subtree has not aggregated up yet.  The duplicate
               frame repairs deeper losses as it travels (see
               [handle_relay]). *)
            if not acks.(k) then Net.Network.send cs.net ~src:k ~dst:k msg;
            for p = 1 to min cs.config.Config.tree_arity
                             (Array.length c.c_sites - 1) do
              let site = c.c_sites.(p) in
              if p < c.c_nparts && not acks.(site) then
                Net.Network.send cs.net ~src:k ~dst:site
                  (Messages.Relay
                     { sites = c.c_sites; nparts = c.c_nparts; pos = p;
                       inner = msg })
            done
          end
        in
        (match c.c_phase with
        | `Collect_u -> resend c.c_acks_u (Messages.Advance_u { newu })
        | `Collect_q ->
            resend c.c_acks_q (Messages.Advance_q { newq = newu - 1 }));
        loop ()
    | _ -> ()
  in
  Sim.Engine.spawn cs.engine ~name:"advancement-resend" loop

let start_round cs k ~newu =
  let n = node_count cs in
  let arity = cs.config.Config.tree_arity in
  (* Flat-round acknowledgment collection: with replication only the
     partition primaries participate, so every other site's slot starts
     settled (replicas = 0 leaves the array all-false, as before). *)
  let flat_acks () =
    if replicated cs then Array.init n (fun s -> not (is_primary_site cs s))
    else Array.make n false
  in
  let c =
    if arity <= 0 then
      {
        c_newu = newu;
        c_started = now cs;
        c_phase = `Collect_u;
        c_phase1_done = now cs;
        c_acks_u = flat_acks ();
        c_acks_q = flat_acks ();
        c_abandoned = false;
        c_sites = [||];
        c_nparts = 0;
      }
    else begin
      let sites, nparts = tree_layout cs k in
      (* Acknowledgments stay site-indexed, but only the coordinator itself
         and its direct participant children ever report here (each child
         ack covers its whole subtree); every other site starts settled. *)
      let acks () =
        let a = Array.make n true in
        a.(k) <- false;
        for p = 1 to min arity (Array.length sites - 1) do
          if p < nparts then a.(sites.(p)) <- false
        done;
        a
      in
      {
        c_newu = newu;
        c_started = now cs;
        c_phase = `Collect_u;
        c_phase1_done = now cs;
        c_acks_u = acks ();
        c_acks_q = acks ();
        c_abandoned = false;
        c_sites = sites;
        c_nparts = nparts;
      }
    end
  in
  cs.coords.(k) <- Some c;
  if tracing cs then
    emit cs ~tag (Printf.sprintf "node%d: initiates advancement to u=%d" k newu);
  send_phase cs k c (Messages.Advance_u { newu });
  retransmit cs k c

let initiate cs ~coordinator:k =
  (* Replicated clusters: a coordinator id below the partition count names
     the partition, resolved to its current primary — periodic advancement
     keeps working across failovers.  A site that is not currently a
     primary cannot coordinate (it does not even receive phase acks). *)
  let k = if replicated cs && k < nparts cs then primary_site cs k else k in
  if replicated cs && not (is_primary_site cs k) then `Busy
  else
  match cs.coords.(k) with
  | Some _ -> `Busy
  | None when not (Node_state.alive (node cs k)) ->
      (* A crashed node cannot coordinate: its broadcasts would all be
         dropped and the retransmission loop would spin forever. *)
      `Busy
  | None ->
      let nd = node cs k in
      let u = Node_state.u nd and q = Node_state.q nd and g = Node_state.g nd in
      let lag = gc_lag cs in
      let fresh =
        if cs.config.Config.overlap_gc then u = q + 1
        else u - g <= 2 + lag && u = q + 1
      in
      if fresh then begin
        start_round cs k ~newu:(u + 1);
        `Started (u + 1)
      end
      else if u = q + 2 || (u = q + 1 && u = g + 3 + lag) then begin
        (* A previous round stalled (its coordinator crashed, or this node
           missed the garbage-collect broadcast): re-run the whole round
           idempotently with the same newu.  Local state alone cannot tell
           "stalled" from "still in progress", but re-running is safe either
           way — every phase re-waits its counters, so in particular Phase 3
           cannot fire while old-version queries are still live. *)
        start_round cs k ~newu:u;
        `Started u
      end
      else `Busy

(* A node whose version counters the round is answerable for: primaries,
   plus live in-sync backups (an out-of-sync backup catches up on its own
   shipping schedule — possibly never, if it stays partitioned — and must
   not hold "the advancement is done" hostage). *)
let participating cs nd =
  Node_state.alive nd
  && ((not (replicated cs))
     || is_primary_site cs (Node_state.id nd)
     ||
     match backup_at cs (Node_state.id nd) with
     | Some b -> b.b_insync
     | None -> false)

let in_progress cs =
  Array.exists (fun c -> c <> None) cs.coords
  || Array.exists
       (fun nd ->
         ((not (replicated cs)) || participating cs nd)
         && (Node_state.u nd <> Node_state.q nd + 1
            || Node_state.g nd < Node_state.q nd - 1 - gc_lag cs))
       cs.nodes

let await_published cs ~newu =
  Sim.Condition.await_until cs.state_changed ~pred:(fun () ->
      Array.for_all
        (fun nd ->
          (not (participating cs nd)) || Node_state.q nd >= newu - 1)
        cs.nodes)

let await_completion cs ~newu =
  Sim.Condition.await_until cs.state_changed ~pred:(fun () ->
      Array.for_all
        (fun nd ->
          (not (participating cs nd))
          || (Node_state.q nd >= newu - 1
             && Node_state.g nd >= newu - 2 - gc_lag cs))
        cs.nodes)
