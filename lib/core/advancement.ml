open Cluster_state

let tag = "advance"

(* Catch the node's garbage version up to [target], simulating the scan cost
   of each collection round.  Also the Phase-1 inference rule: a node seeing
   advance-u(newu) with g < newu - 3 may collect everything up to newu - 3. *)
let catch_up_gc cs node ~target =
  while Node_state.alive node && Node_state.g node < target do
    let items = Vstore.Store.item_count (Node_state.store node) in
    if cs.config.Config.gc_item_time > 0.0 && items > 0 then
      Sim.Engine.sleep (float_of_int items *. cs.config.Config.gc_item_time);
    Node_state.collect_garbage node ~newg:(Node_state.g node + 1);
    note_version_change cs
  done

(* In the four-version baseline garbage collection trails one extra round. *)
let gc_lag cs = if cs.config.Config.retain_extra_version then 1 else 0

(* An advancement acknowledgement is a durability promise: the coordinator
   may treat the version switch as done, so the Advance record behind it
   must hit the disk before the ack leaves — otherwise a crash after the
   ack reverts the node's version below what the coordinator saw.  Free
   when the durability model is off; if the node crashes while the force
   is in flight, the ack is simply withheld (the coordinator's
   retransmission covers the recovered node). *)
let durable_then_ack cs nd ~dst ack =
  match Node_state.commit_durable nd with
  | () -> Net.Network.send cs.net ~src:(Node_state.id nd) ~dst ack
  | exception Wal.Group_commit.Crashed -> ()

let handle_advance_u cs i ~src ~newu =
  let nd = node cs i in
  if Node_state.u nd <= newu then begin
    catch_up_gc cs nd ~target:(newu - 3 - gc_lag cs);
    if Node_state.u nd < newu then begin
      Node_state.set_u nd newu;
      emit cs ~tag (Printf.sprintf "node%d: u := %d" i newu);
      note_version_change cs
    end;
    (* Wait for local update subtransactions that started on the previous
       version to finish, then acknowledge to this message's coordinator. *)
    Node_state.await_no_updates nd ~version:(newu - 1);
    durable_then_ack cs nd ~dst:src (Messages.Ack_advance_u { newu })
  end

let handle_advance_q cs i ~src ~newq =
  let nd = node cs i in
  if Node_state.q nd <= newq then begin
    if Node_state.q nd < newq then begin
      Node_state.set_q nd newq;
      emit cs ~tag (Printf.sprintf "node%d: q := %d" i newq);
      note_version_change cs
    end;
    (* Four-version baseline: the old query version survives one more round,
       so Phase 2 need not wait for queries still reading it. *)
    if not cs.config.Config.retain_extra_version then
      Node_state.await_no_queries nd ~version:(newq - 1);
    durable_then_ack cs nd ~dst:src (Messages.Ack_advance_q { newq })
  end

let handle_garbage_collect cs i ~src ~newg =
  ignore src;
  let nd = node cs i in
  (* Four-version baseline: collection trails one version behind, and must
     wait for the stragglers still querying the version being collected. *)
  let newg =
    if cs.config.Config.retain_extra_version then newg - 1 else newg
  in
  if Node_state.g nd < newg then begin
    if cs.config.Config.retain_extra_version then
      Node_state.await_no_queries nd ~version:newg;
    catch_up_gc cs nd ~target:newg;
    emit cs ~tag (Printf.sprintf "node%d: collected version %d" i newg);
    note_version_change cs
  end

let all_acked acks = Array.for_all (fun x -> x) acks

let handle_ack_advance_u cs k ~src ~newu =
  match cs.coords.(k) with
  | Some c when c.c_phase = `Collect_u && c.c_newu = newu && not c.c_abandoned
    ->
      c.c_acks_u.(src) <- true;
      if all_acked c.c_acks_u then begin
        (* Version newu - 1 is now stable everywhere: no update transaction
           will ever write it again. *)
        freeze_version cs (newu - 1);
        c.c_phase <- `Collect_q;
        c.c_phase1_done <- now cs;
        Sim.Metrics.record_phase1_duration cs.metrics ~node:k
          (c.c_phase1_done -. c.c_started);
        let newq = newu - 1 in
        emit cs ~tag
          (Printf.sprintf "node%d: phase 1 complete, advance-q(%d)" k newq);
        Net.Network.broadcast cs.net ~src:k (Messages.Advance_q { newq })
      end
  | _ -> ()

let handle_ack_advance_q cs k ~src ~newq =
  match cs.coords.(k) with
  | Some c
    when c.c_phase = `Collect_q && c.c_newu = newq + 1 && not c.c_abandoned ->
      c.c_acks_q.(src) <- true;
      if all_acked c.c_acks_q then begin
        cs.coords.(k) <- None;
        Sim.Metrics.record_advancement cs.metrics ~node:k;
        Sim.Metrics.record_phase2_duration cs.metrics ~node:k
          (now cs -. c.c_phase1_done);
        let newg = newq - 1 in
        emit cs ~tag
          (Printf.sprintf "node%d: phase 2 complete, garbage-collect(%d)" k
             newg);
        Net.Network.broadcast cs.net ~src:k (Messages.Garbage_collect { newg })
      end
  | _ -> ()

(* Abandonment (paper §3.2, generalised): a coordinator stops its run when
   a message shows another coordinator is a phase ahead in the same round,
   or that the system has already moved to a later round.  Stale runs would
   otherwise wait forever for acknowledgments that can no longer arrive. *)
let maybe_abandon cs i ~src msg =
  match cs.coords.(i) with
  | Some c when not c.c_abandoned ->
      let obsolete =
        match msg with
        | Messages.Advance_u { newu } -> newu > c.c_newu
        | Messages.Advance_q { newq } ->
            newq > c.c_newu - 1
            || (src <> i && c.c_phase = `Collect_u && newq = c.c_newu - 1)
        | Messages.Garbage_collect { newg } ->
            newg > c.c_newu - 2
            || (src <> i && c.c_phase = `Collect_q && newg = c.c_newu - 2)
        | Messages.Ack_advance_u _ | Messages.Ack_advance_q _ -> false
      in
      if obsolete then begin
        c.c_abandoned <- true;
        cs.coords.(i) <- None;
        emit cs ~tag
          (Printf.sprintf "node%d: abandons coordination of round %d (node%d is ahead)"
             i c.c_newu src)
      end
  | _ -> ()

let handler cs i ~src msg =
  maybe_abandon cs i ~src msg;
  match msg with
  | Messages.Advance_u { newu } -> handle_advance_u cs i ~src ~newu
  | Messages.Ack_advance_u { newu } -> handle_ack_advance_u cs i ~src ~newu
  | Messages.Advance_q { newq } -> handle_advance_q cs i ~src ~newq
  | Messages.Ack_advance_q { newq } -> handle_ack_advance_q cs i ~src ~newq
  | Messages.Garbage_collect { newg } -> handle_garbage_collect cs i ~src ~newg

let install cs =
  for i = 0 to node_count cs - 1 do
    Net.Network.set_handler cs.net ~node:i (fun ~src msg -> handler cs i ~src msg)
  done

(* Coordinator retransmission: handlers are idempotent, so periodically
   re-send the current phase's message to nodes that have not acknowledged.
   Covers crashed-and-recovered participants (the paper assumes messages are
   eventually delivered).  The loop is pinned to [c] by physical equality:
   if the coordinator crashes (volatile round state wiped) and later
   re-initiates the same [newu], the new round spawns its own loop and this
   one must die rather than double-resend. *)
let retransmit cs k c =
  let period = cs.config.Config.advancement_retry in
  let newu = c.c_newu in
  let rec loop () =
    Sim.Engine.sleep period;
    match cs.coords.(k) with
    | Some c' when c' == c && not c.c_abandoned ->
        let resend acks msg =
          Array.iteri
            (fun j acked ->
              if not acked then Net.Network.send cs.net ~src:k ~dst:j msg)
            acks
        in
        (match c.c_phase with
        | `Collect_u -> resend c.c_acks_u (Messages.Advance_u { newu })
        | `Collect_q ->
            resend c.c_acks_q (Messages.Advance_q { newq = newu - 1 }));
        loop ()
    | _ -> ()
  in
  Sim.Engine.spawn cs.engine ~name:"advancement-resend" loop

let start_round cs k ~newu =
  let n = node_count cs in
  let c =
    {
      c_newu = newu;
      c_started = now cs;
      c_phase = `Collect_u;
      c_phase1_done = now cs;
      c_acks_u = Array.make n false;
      c_acks_q = Array.make n false;
      c_abandoned = false;
    }
  in
  cs.coords.(k) <- Some c;
  emit cs ~tag (Printf.sprintf "node%d: initiates advancement to u=%d" k newu);
  Net.Network.broadcast cs.net ~src:k (Messages.Advance_u { newu });
  retransmit cs k c

let initiate cs ~coordinator:k =
  match cs.coords.(k) with
  | Some _ -> `Busy
  | None when not (Node_state.alive (node cs k)) ->
      (* A crashed node cannot coordinate: its broadcasts would all be
         dropped and the retransmission loop would spin forever. *)
      `Busy
  | None ->
      let nd = node cs k in
      let u = Node_state.u nd and q = Node_state.q nd and g = Node_state.g nd in
      let lag = gc_lag cs in
      let fresh =
        if cs.config.Config.overlap_gc then u = q + 1
        else u - g <= 2 + lag && u = q + 1
      in
      if fresh then begin
        start_round cs k ~newu:(u + 1);
        `Started (u + 1)
      end
      else if u = q + 2 || (u = q + 1 && u = g + 3 + lag) then begin
        (* A previous round stalled (its coordinator crashed, or this node
           missed the garbage-collect broadcast): re-run the whole round
           idempotently with the same newu.  Local state alone cannot tell
           "stalled" from "still in progress", but re-running is safe either
           way — every phase re-waits its counters, so in particular Phase 3
           cannot fire while old-version queries are still live. *)
        start_round cs k ~newu:u;
        `Started u
      end
      else `Busy

let in_progress cs =
  Array.exists (fun c -> c <> None) cs.coords
  || Array.exists
       (fun nd ->
         Node_state.u nd <> Node_state.q nd + 1
         || Node_state.g nd < Node_state.q nd - 1 - gc_lag cs)
       cs.nodes

let await_published cs ~newu =
  Sim.Condition.await_until cs.state_changed ~pred:(fun () ->
      Array.for_all
        (fun nd ->
          (not (Node_state.alive nd)) || Node_state.q nd >= newu - 1)
        cs.nodes)

let await_completion cs ~newu =
  Sim.Condition.await_until cs.state_changed ~pred:(fun () ->
      Array.for_all
        (fun nd ->
          (not (Node_state.alive nd))
          || (Node_state.q nd >= newu - 1
             && Node_state.g nd >= newu - 2 - gc_lag cs))
        cs.nodes)
