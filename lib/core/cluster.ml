type 'v t = 'v Cluster_state.t

let create ~engine ?(config = Config.default) ?latency ?index ~nodes () =
  Config.validate config;
  let cs =
    Cluster_state.create ~engine ~config ~nodes ?latency ?index_extract:index
      ()
  in
  Advancement.install cs;
  cs

let engine (cs : _ t) = cs.Cluster_state.engine
let config (cs : _ t) = cs.Cluster_state.config
let node_count = Cluster_state.node_count
let partitions = Cluster_state.nparts
let node = Cluster_state.node
let network (cs : _ t) = cs.Cluster_state.net
let state cs = cs

let load cs ~node:i items =
  let i = Cluster_state.home_site cs i in
  let txn = Node_state.fresh_txn_id (Cluster_state.node cs i) in
  let preload nd =
    let store = Node_state.store nd in
    (* Write through both the store and the log (as a synthetic committed
       bootstrap transaction), so crash recovery can rebuild the preload.
       Backups append the same records under the same transaction id, so
       every copy's log holds an identical prefix. *)
    let log = Node_state.log nd in
    Wal.Log.append log (Wal.Record.Begin { txn; version = 0 });
    List.iter
      (fun (key, value) ->
        Vstore.Store.write store key 0 value;
        Wal.Log.append log (Wal.Record.Update { txn; key; value = Some value }))
      items;
    Wal.Log.append log (Wal.Record.Commit { txn; final_version = 0 });
    (* The preload is the node's initial disk image — durable by fiat, not
       subject to the group-commit window. *)
    Wal.Log.mark_all_durable log
  in
  preload (Cluster_state.node cs i);
  (* Backups start from the same disk image (loading predates the run;
     shipping it would race the first pinned reads).  Their cursors settle
     at the primary's log length: the prefix is already in place. *)
  if Cluster_state.replicated cs then begin
    let part = Cluster_state.part_of_site cs i in
    let len =
      Wal.Log.length (Node_state.log (Cluster_state.node cs i))
    in
    Array.iter
      (fun b ->
        preload (Cluster_state.node cs b.Cluster_state.b_site);
        Wal.Ship.note_ship b.Cluster_state.b_cursor ~upto:len
          ~at:(Cluster_state.now cs);
        Wal.Ship.note_ack b.Cluster_state.b_cursor ~upto:len)
      (Cluster_state.backups cs part)
  end

let run_query cs ~root ~reads = Query_exec.run cs ~root ~reads
let run_update cs ~root ~ops = Update_exec.run cs ~root ~ops
let run_scan cs ~root ~ranges = Query_exec.run_scan cs ~root ~ranges

let run_select cs ~root ~plan ~ranges =
  Query_exec.run_select cs ~root ~plan ~ranges

let run_join cs ~root ~plan ~build ~probe =
  Query_exec.run_join cs ~root ~plan ~build ~probe
let run_tree_update cs ~plan = Tree_txn.run cs ~plan
let run_tree_query cs ~plan = Tree_query.run cs ~plan

let run_update_with_retry cs ~root ~ops ?(max_attempts = 10) ?(backoff = 5.0) ()
    =
  let rec attempt n =
    match Update_exec.run cs ~root ~ops with
    | Update_exec.Committed _ as outcome -> (outcome, n)
    | Update_exec.Aborted { reason = `Deadlock | `Rpc_timeout _; _ } as outcome
      ->
        (* Both are transient: deadlocks resolve as competitors drain, and a
           timed-out participant may recover (or the partition heal) before
           the next attempt. *)
        if n >= max_attempts then (outcome, n)
        else begin
          Sim.Engine.sleep backoff;
          attempt (n + 1)
        end
    | Update_exec.Aborted _ as outcome -> (outcome, n)
    | Update_exec.Root_down _ as outcome ->
        (* The root itself is gone; retrying against it cannot help — the
           caller must pick another root (or wait for recovery). *)
        (outcome, n)
  in
  attempt 1

let advance cs ~coordinator = Advancement.initiate cs ~coordinator
let advancement_in_progress cs = Advancement.in_progress cs

let advance_and_wait cs ~coordinator =
  match Advancement.initiate cs ~coordinator with
  | `Busy -> `Busy
  | `Started newu ->
      Advancement.await_completion cs ~newu;
      `Completed newu

let start_periodic_advancement cs ~coordinator ~period ~until =
  let rec loop () =
    Sim.Engine.sleep period;
    if Sim.Engine.now cs.Cluster_state.engine <= until then begin
      ignore (Advancement.initiate cs ~coordinator : [ `Started of int | `Busy ]);
      loop ()
    end
  in
  Sim.Engine.spawn cs.Cluster_state.engine ~name:"periodic-advancement" loop

(* §8 limiting mode: run advancements back to back — initiate, wait until
   the new version is readable everywhere, immediately initiate again.
   Pairs naturally with [Config.overlap_gc], which lets a round start while
   the previous round's garbage collection is still draining. *)
let start_continuous_advancement cs ~coordinator ~until =
  let rec loop () =
    if Sim.Engine.now cs.Cluster_state.engine < until then begin
      (match Advancement.initiate cs ~coordinator with
      | `Started newu -> Advancement.await_published cs ~newu
      | `Busy -> Sim.Engine.sleep 1.0);
      loop ()
    end
  in
  Sim.Engine.spawn cs.Cluster_state.engine ~name:"continuous-advancement" loop

let checkpoint cs ~node:i =
  let i = Cluster_state.home_site cs i in
  (* Backups never truncate their own log: it must stay a prefix of the
     primary's.  They shed log by adopting the primary's post-checkpoint
     epoch instead (see {!Replication.on_checkpoint}). *)
  if Cluster_state.replicated cs && not (Cluster_state.is_primary_site cs i)
  then false
  else begin
    let nd = Cluster_state.node cs i in
    let ok = Node_state.try_checkpoint nd in
    if ok then begin
      Cluster_state.emit cs ~tag:"checkpoint"
        (Printf.sprintf "node%d: checkpoint (log reset to %d records)" i
           (Wal.Log.length (Node_state.log nd)));
      Replication.on_checkpoint cs ~site:i
    end;
    ok
  end

(* Periodic quiescent checkpoints: each beat, try to checkpoint any node
   whose log has grown past [min_log]; nodes busy with update transactions
   are skipped and caught on a later beat. *)
let start_periodic_checkpoints cs ~period ~until ?(min_log = 64) () =
  let rec loop () =
    Sim.Engine.sleep period;
    if Sim.Engine.now cs.Cluster_state.engine <= until then begin
      Array.iter
        (fun nd ->
          if
            Node_state.alive nd
            && Wal.Log.length (Node_state.log nd) >= min_log
            && ((not (Cluster_state.replicated cs))
               || Cluster_state.is_primary_site cs (Node_state.id nd))
          then
            if Node_state.try_checkpoint nd then
              Replication.on_checkpoint cs ~site:(Node_state.id nd))
        cs.Cluster_state.nodes;
      loop ()
    end
  in
  Sim.Engine.spawn cs.Cluster_state.engine ~name:"periodic-checkpoints" loop

let crash cs ~node:i =
  let nd = Cluster_state.node cs i in
  Node_state.kill nd;
  (* Coordinator round state is volatile — a crash wipes it.  Marking the
     record abandoned (besides clearing the slot) also stops its
     retransmission loop.  A stalled round left behind is re-initiated by
     any node via the §3.2 path in [Advancement.initiate]. *)
  (match cs.Cluster_state.coords.(i) with
  | Some c ->
      c.Cluster_state.c_abandoned <- true;
      cs.Cluster_state.coords.(i) <- None
  | None -> ());
  (* Relay aggregation state of hierarchical rounds is volatile too: the
     recovered node answers only frames it receives after recovery (the
     coordinator's retransmission re-delivers the current phase). *)
  cs.Cluster_state.relays.(i) <- [];
  Net.Network.set_down cs.Cluster_state.net ~node:i true;
  Cluster_state.emit cs ~tag:"crash" (Printf.sprintf "node%d: crashed" i);
  (* Replication: a crashed backup is demoted; a crashed primary triggers
     backup promotion (WAL-replay recovery of the best surviving copy). *)
  Replication.on_crash cs ~site:i

let recover cs ~node:i =
  if Cluster_state.replicated cs && not (Cluster_state.is_primary_site cs i)
  then
    (* The site is (or, if it was deposed by a failover while down, has
       become) a backup; {!Replication} owns that recovery path. *)
    Replication.recover_as_backup cs ~site:i
  else begin
  let old = Cluster_state.node cs i in
  if Node_state.alive old then invalid_arg "Cluster.recover: node is not down";
  let log = Node_state.log old in
  let bound =
    if cs.Cluster_state.config.Config.overlap_gc then None
    else if cs.Cluster_state.config.Config.retain_extra_version then Some 4
    else Some 3
  in
  let gc_renumber = cs.Cluster_state.config.Config.gc_renumber in
  let store, versions =
    match bound with
    | Some b -> Wal.Recovery.replay log ~bound:b ~gc_renumber ()
    | None -> Wal.Recovery.replay log ~gc_renumber ()
  in
  let fresh =
    Node_state.create_recovered ~engine:cs.Cluster_state.engine ~node_id:i
      ~scheme:cs.Cluster_state.config.Config.scheme
      ~lock_group:cs.Cluster_state.lock_group
      ~shared_counters:cs.Cluster_state.config.Config.shared_transaction_counters
      ~disk_force_latency:cs.Cluster_state.config.Config.disk_force_latency
      ~group_commit_window:cs.Cluster_state.config.Config.group_commit_window
      ~group_commit_batch:cs.Cluster_state.config.Config.group_commit_batch
      ~gc_ack_early:cs.Cluster_state.config.Config.gc_ack_early
      ~metrics:cs.Cluster_state.metrics ~bound ~log ~store
      ~u:versions.Wal.Recovery.update_version
      ~q:versions.Wal.Recovery.query_version
      ~g:versions.Wal.Recovery.collected_version ()
  in
  Cluster_state.attach_index_if_configured cs fresh;
  cs.Cluster_state.nodes.(i) <- fresh;
  Net.Network.set_down cs.Cluster_state.net ~node:i false;
  Cluster_state.emit cs ~tag:"crash"
    (Printf.sprintf "node%d: recovered (u=%d q=%d g=%d)" i
       versions.Wal.Recovery.update_version versions.Wal.Recovery.query_version
       versions.Wal.Recovery.collected_version);
  Cluster_state.note_version_change cs;
  (* A recovered primary resumes shipping where its durable log left off
     (everything shipped before the crash was durable, so the cursors are
     still within the log). *)
  if Cluster_state.replicated cs then
    Replication.poke cs (Cluster_state.part_of_site cs i)
  end

(* Nemesis adapter: crash/recover go through the cluster (volatile state
   wiped, WAL replayed on the way up); partitions and slow links act on the
   network alone. *)
let nemesis_target cs =
  let net = cs.Cluster_state.net in
  {
    Net.Nemesis.nodes = Cluster_state.node_count cs;
    crash = (fun n -> crash cs ~node:n);
    recover = (fun n -> recover cs ~node:n);
    partition = (fun ~src ~dst flag -> Net.Network.set_link_down net ~src ~dst flag);
    slow = (fun ~src ~dst extra -> Net.Network.set_link_extra net ~src ~dst extra);
  }

type stats = {
  commits : int;
  aborts : int;
  queries : int;
  advancements : int;
  mtf_data_access : int;
  mtf_commit_time : int;
  mtf_trivial : int;
  mtf_items_copied : int;
  commit_version_mismatches : int;
  messages : int;
  envelopes : int;
  disk_forces : int;
  records_forced : int;
  lock_waits : int;
  lock_wait_time : float;
  deadlocks : int;
  latch_acquisitions : int;
  max_versions_ever : int;
  backup_reads : int;
  replica_demotions : int;
  replica_promotions : int;
}

let metrics (cs : _ t) = cs.Cluster_state.metrics
let metrics_snapshot (cs : _ t) = Sim.Metrics.snapshot cs.Cluster_state.metrics

let stats cs =
  let sum f = Array.fold_left (fun acc nd -> acc + f nd) 0 cs.Cluster_state.nodes in
  let sumf f =
    Array.fold_left (fun acc nd -> acc +. f nd) 0.0 cs.Cluster_state.nodes
  in
  let m = cs.Cluster_state.metrics in
  {
    commits = Sim.Metrics.total_commits m;
    aborts = Sim.Metrics.total_aborts m;
    queries = Sim.Metrics.total_queries m;
    advancements = Sim.Metrics.total_advancements m;
    mtf_data_access = Sim.Metrics.total_mtf_data_access m;
    mtf_commit_time = Sim.Metrics.total_mtf_commit_time m;
    mtf_trivial = sum (fun nd -> Wal.Scheme.mtf_trivial (Node_state.scheme nd));
    mtf_items_copied =
      sum (fun nd -> Wal.Scheme.mtf_items_copied (Node_state.scheme nd));
    commit_version_mismatches = Sim.Metrics.total_version_mismatches m;
    messages = Net.Network.messages_sent cs.Cluster_state.net;
    envelopes = Net.Network.envelopes_sent cs.Cluster_state.net;
    disk_forces = Sim.Metrics.total_disk_forces m;
    records_forced = Sim.Metrics.total_records_forced m;
    lock_waits = sum (fun nd -> Lockmgr.Lock_table.waits (Node_state.locks nd));
    lock_wait_time =
      sumf (fun nd -> Lockmgr.Lock_table.total_wait_time (Node_state.locks nd));
    deadlocks =
      sum (fun nd -> Lockmgr.Lock_table.deadlocks (Node_state.locks nd));
    latch_acquisitions =
      sum (fun nd -> Lockmgr.Latch.acquisitions (Node_state.counter_latch nd));
    max_versions_ever =
      Array.fold_left
        (fun acc nd ->
          max acc (Vstore.Store.high_water_versions (Node_state.store nd)))
        0 cs.Cluster_state.nodes;
    backup_reads = Replication.backup_reads cs;
    replica_demotions = Replication.demotions cs;
    replica_promotions = Replication.promotions cs;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "commits=%d aborts=%d queries=%d advancements=%d@ mtf(data=%d commit=%d \
     trivial=%d copied=%d) mismatches=%d@ messages=%d envelopes=%d \
     forces=%d(%d recs) lock(waits=%d wait_time=%.1f deadlocks=%d) \
     latches=%d max_versions=%d repl(backup_reads=%d demotions=%d \
     promotions=%d)"
    s.commits s.aborts s.queries s.advancements s.mtf_data_access
    s.mtf_commit_time s.mtf_trivial s.mtf_items_copied
    s.commit_version_mismatches s.messages s.envelopes s.disk_forces
    s.records_forced s.lock_waits s.lock_wait_time s.deadlocks
    s.latch_acquisitions s.max_versions_ever s.backup_reads
    s.replica_demotions s.replica_promotions

let check_invariants cs = Invariant.check cs
let check_quiescent_invariants cs = Invariant.check_quiescent cs

let staleness_of_version cs ~version ~at =
  Cluster_state.staleness_of cs ~version ~at
