(** Public facade of the AVA3 distributed three-version database.

    A cluster is [n] nodes on a simulated network, each running strict 2PL
    for update transactions, the R* tree commit protocol with version
    piggybacking, and the asynchronous three-phase version-advancement
    protocol.  Queries read a consistent (possibly stale) snapshot without
    locks; update transactions never wait for queries or for version
    advancement.

    {b Typical use} (inside a simulation process):

    {[
      let engine = Sim.Engine.create () in
      let db : int Ava3.Cluster.t =
        Ava3.Cluster.create ~engine ~nodes:3 () in
      Ava3.Cluster.load db ~node:0 [ ("x", 1); ("y", 2) ];
      Sim.Engine.spawn engine (fun () ->
        match
          Ava3.Cluster.run_update db ~root:0
            ~ops:[ Write { node = 0; key = "x"; value = 7 } ]
        with
        | Committed _ -> ()
        | Aborted _ -> ());
      Sim.Engine.run engine
    ]} *)

type 'v t

val create :
  engine:Sim.Engine.t ->
  ?config:Config.t ->
  ?latency:Net.Latency.t ->
  ?index:('v -> string) ->
  nodes:int ->
  unit ->
  'v t
(** [index], when given, attaches a {!Vindex.Index} on the extracted
    attribute at every site (primaries and backups), maintained
    synchronously through every store mutation and rebuilt across crash
    recovery, failover, and checkpoint application.  It enables
    {!run_select} and {!run_join} and adds an index↔base consistency check
    to {!check_invariants} / {!check_quiescent_invariants}. *)

val engine : _ t -> Sim.Engine.t
val config : _ t -> Config.t

val node_count : _ t -> int
(** Total sites.  With [Config.replicas = r > 0] this is
    [nodes * (1 + r)]: the [~nodes] given to {!create} count partitions,
    each with a primary (sites [0 .. nodes-1]) plus [r] backups.  The
    execution APIs keep taking partition ids; they resolve to the
    partition's current primary internally. *)

val partitions : _ t -> int
(** Partition count (the [~nodes] of {!create}); equals {!node_count}
    when unreplicated. *)

val node : 'v t -> int -> 'v Node_state.t
val network : 'v t -> 'v Messages.t Net.Network.t

val state : 'v t -> 'v Cluster_state.t
(** Escape hatch to the internals, used by the experiment harness. *)

val load : 'v t -> node:int -> (string * 'v) list -> unit
(** Preload data items at version 0 (initial database population; not a
    transaction). *)

(** {1 Transactions} *)

val run_query :
  'v t -> root:int -> reads:(int * string) list -> 'v Query_exec.result
(** See {!Query_exec.run}. *)

val run_update : 'v t -> root:int -> ops:'v Update_exec.op list -> 'v Update_exec.outcome
(** See {!Update_exec.run}. *)

val run_scan :
  'v t -> root:int -> ranges:(int * string * string) list -> 'v Query_exec.result
(** Lock-free ordered range scans over the query snapshot; see
    {!Query_exec.run_scan}. *)

val run_select :
  'v t ->
  root:int ->
  plan:Query_exec.select_plan ->
  ranges:(int * string * string) list ->
  'v Query_exec.result
(** Predicate range query over the secondary index (attribute ranges, not
    key ranges); see {!Query_exec.run_select}.  Requires [~index] at
    {!create}. *)

val run_join :
  'v t ->
  root:int ->
  plan:Query_exec.select_plan ->
  build:(int list * string * string) ->
  probe:(int list * string * string) ->
  'v Query_exec.join_result
(** Grace hash join of two attribute ranges as one long read-only
    transaction; see {!Query_exec.run_join}.  Requires [~index] at
    {!create}. *)

val run_tree_update : 'v t -> plan:'v Tree_txn.plan -> 'v Tree_txn.outcome
(** Execute an update transaction as a concurrent R*-style subtransaction
    tree; see {!Tree_txn.run}. *)

val run_tree_query : 'v t -> plan:Tree_query.plan -> 'v Query_exec.result
(** Execute a read-only query as a concurrent subquery tree; see
    {!Tree_query.run}. *)

val run_update_with_retry :
  'v t ->
  root:int ->
  ops:'v Update_exec.op list ->
  ?max_attempts:int ->
  ?backoff:float ->
  unit ->
  'v Update_exec.outcome * int
(** Retry deadlock-aborted transactions (fresh transaction id, current
    update version — the paper's restart rule).  Returns the final outcome
    and the number of attempts made.  Default 10 attempts, backoff 5.0. *)

(** {1 Version advancement} *)

val advance : 'v t -> coordinator:int -> [ `Started of int | `Busy ]
val advancement_in_progress : 'v t -> bool

val advance_and_wait : 'v t -> coordinator:int -> [ `Completed of int | `Busy ]
(** Initiate advancement and block until every node finished Phase 3 of the
    round.  Must run inside a process. *)

val start_periodic_advancement :
  'v t -> coordinator:int -> period:float -> until:float -> unit
(** Spawn a background process that initiates advancement every [period]
    time units (skipping beats while one is still running) until virtual
    time [until]. *)

val start_continuous_advancement :
  'v t -> coordinator:int -> until:float -> unit
(** §8 limiting mode: advancements run back to back (each new round starts
    as soon as the previous round's data is readable everywhere).  Combine
    with {!Config.overlap_gc} to let garbage collection trail in the
    background.  In this mode a query's snapshot is stale by at most the
    age of the longest query running when it started. *)

val start_periodic_checkpoints :
  'v t -> period:float -> until:float -> ?min_log:int -> unit -> unit
(** Background process that opportunistically checkpoints quiescent nodes
    whose logs exceed [min_log] records (default 64), bounding recovery
    time and memory. *)

val checkpoint : 'v t -> node:int -> bool
(** Take a quiescent checkpoint at the node, truncating its log; [false] if
    update transactions are active there (nothing happens). *)

(** {1 Failures} *)

val crash : 'v t -> node:int -> unit
(** Take the site down: volatile state (counters, in-flight transactions)
    is lost; messages to and from it are dropped.  With replication,
    crashing a partition's primary promotes its best surviving backup
    (live, in sync, longest log) via WAL-replay recovery — acknowledged
    commits survive; crashing a backup just removes it from the read set
    until it recovers and catches back up. *)

val recover : 'v t -> node:int -> unit
(** Replay the site's log, rebuilding its store and version numbers;
    counters restart at zero.  The site rejoins the network.  With
    replication, a site that is no longer its partition's primary rejoins
    as a backup: a crashed backup resumes from its own log, while a
    deposed primary discards its (possibly divergent) state and resyncs
    in full from the new primary. *)

val nemesis_target : _ t -> Net.Nemesis.target
(** Adapter for {!Net.Nemesis.install}: crashes and recoveries go through
    {!crash}/{!recover} (volatile state wiped, WAL replayed on recovery);
    partitions and slow links act on the network alone. *)

(** {1 Introspection} *)

type stats = {
  commits : int;
  aborts : int;
  queries : int;
  advancements : int;
  mtf_data_access : int;  (** moveToFuture calls triggered by data access *)
  mtf_commit_time : int;  (** moveToFuture calls triggered at commit *)
  mtf_trivial : int;  (** of those, virtual no-ops (No_undo fast path) *)
  mtf_items_copied : int;
  commit_version_mismatches : int;
  messages : int;
  envelopes : int;
      (** Transport events on the wire; < [messages] when RPC coalescing
          packs several legs into one envelope. *)
  disk_forces : int;  (** Completed WAL forces across all nodes. *)
  records_forced : int;
  lock_waits : int;
  lock_wait_time : float;
  deadlocks : int;
  latch_acquisitions : int;
  max_versions_ever : int;
  backup_reads : int;  (** Reads served by backup replicas. *)
  replica_demotions : int;
      (** Backups dropped from the read set (catch-up timeout or crash). *)
  replica_promotions : int;  (** Backups promoted to primary by failover. *)
}

val stats : _ t -> stats
val pp_stats : Format.formatter -> stats -> unit

val metrics : _ t -> Sim.Metrics.t
(** The cluster's live per-node metrics registry (commit/abort/query
    counts with abort-reason breakdown, moveToFuture split, advancement
    phase durations, RPC latency histograms).  {!stats} totals are
    derived from it. *)

val metrics_snapshot : _ t -> Sim.Metrics.snapshot
(** Immutable copy of the registry — safe to ship across domains from a
    {!Sim.Pool.map} worker. *)

val check_invariants : 'v t -> string list
val check_quiescent_invariants : 'v t -> string list

val staleness_of_version : _ t -> version:int -> at:float -> float option
