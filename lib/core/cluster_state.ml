type coord = {
  c_newu : int;
  c_started : float;
  mutable c_phase : [ `Collect_u | `Collect_q ];
  mutable c_phase1_done : float;
  mutable c_acks_u : bool array;
  mutable c_acks_q : bool array;
  mutable c_abandoned : bool;
  c_sites : int array;
  c_nparts : int;
}

type relay = {
  r_root : int;
  r_ver : int;
  r_kind : [ `U | `Q ];
  r_sites : int array;
  r_nparts : int;
  r_pos : int;
  r_child_acks : bool array;
  mutable r_self_done : bool;
  mutable r_acked : bool;
}

type 'v t = {
  engine : Sim.Engine.t;
  config : Config.t;
  net : Messages.t Net.Network.t;
  metrics : Sim.Metrics.t;
  lock_group : Lockmgr.Lock_table.group;
  mutable nodes : 'v Node_state.t array;
  coords : coord option array;
  relays : relay list array;
  frozen_at : (int, float) Hashtbl.t;
  state_changed : Sim.Condition.t;
}

let create ~engine ~config ~nodes ?(latency = Net.Latency.Constant 1.0) () =
  if nodes <= 0 then invalid_arg "Cluster_state.create: need nodes >= 1";
  let bound =
    if config.Config.overlap_gc then None
    else if config.Config.retain_extra_version then Some 4
    else Some 3
  in
  (* One shared deadlock-detection group: transactions hold locks on several
     nodes, so cycles span lock tables. *)
  let lock_group = Lockmgr.Lock_table.new_group () in
  let metrics = Sim.Metrics.create ~nodes in
  let make_node i =
    Node_state.create ~engine ~node_id:i ~scheme:config.Config.scheme
      ~lock_group ~bound ~gc_renumber:config.Config.gc_renumber
      ~shared_counters:config.Config.shared_transaction_counters
      ~disk_force_latency:config.Config.disk_force_latency
      ~group_commit_window:config.Config.group_commit_window
      ~group_commit_batch:config.Config.group_commit_batch
      ~gc_ack_early:config.Config.gc_ack_early ~metrics ()
  in
  let t =
    {
      engine;
      config;
      lock_group;
      net =
        Net.Network.create ~engine ~nodes ~latency
          ~send_occupancy:config.Config.send_occupancy
          ~call_timeout:config.Config.rpc_timeout
          ~batch_window:config.Config.rpc_batch_window ~metrics ();
      metrics;
      nodes = Array.init nodes make_node;
      coords = Array.make nodes None;
      relays = Array.make nodes [];
      frozen_at = Hashtbl.create 16;
      state_changed = Sim.Condition.create ();
    }
  in
  (* Version 0 (the initial data) is stable from the start. *)
  Hashtbl.replace t.frozen_at 0 0.0;
  t

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg "Cluster_state.node: no such node";
  t.nodes.(i)

let node_count t = Array.length t.nodes
let emit t ~tag message = Sim.Engine.emit t.engine ~tag message
let tracing t = Sim.Engine.trace_enabled t.engine
let now t = Sim.Engine.now t.engine

let note_version_change t = Sim.Condition.broadcast t.state_changed

let freeze_version t version =
  if not (Hashtbl.mem t.frozen_at version) then
    Hashtbl.replace t.frozen_at version (Sim.Engine.now t.engine)

let staleness_of t ~version ~at =
  match Hashtbl.find_opt t.frozen_at version with
  | None -> None
  | Some frozen -> Some (at -. frozen)
