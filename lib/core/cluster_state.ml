type coord = {
  c_newu : int;
  c_started : float;
  mutable c_phase : [ `Collect_u | `Collect_q ];
  mutable c_phase1_done : float;
  mutable c_acks_u : bool array;
  mutable c_acks_q : bool array;
  mutable c_abandoned : bool;
  c_sites : int array;
  c_nparts : int;
}

type relay = {
  r_root : int;
  r_ver : int;
  r_kind : [ `U | `Q ];
  r_sites : int array;
  r_nparts : int;
  r_pos : int;
  r_child_acks : bool array;
  mutable r_self_done : bool;
  mutable r_acked : bool;
}

type 'v backup = {
  b_part : int;
  b_site : int;
  b_cursor : Wal.Ship.t;
  mutable b_insync : bool;
  b_pending : (int, (string * 'v option) list) Hashtbl.t;
}

type 'v repl = {
  nparts : int;
  primary_of : int array;
  part_of : int array;
  mutable backups_of : 'v backup array array;
  ship_epoch : int array;
  site_epoch : int array;
  mutable rr : int;
  repl_changed : Sim.Condition.t;
  ship_timer : bool array;
  mutable demotions : int;
  mutable promotions : int;
  mutable backup_reads : int;
}

type 'v t = {
  engine : Sim.Engine.t;
  config : Config.t;
  net : 'v Messages.t Net.Network.t;
  metrics : Sim.Metrics.t;
  lock_group : Lockmgr.Lock_table.group;
  mutable nodes : 'v Node_state.t array;
  coords : coord option array;
  relays : relay list array;
  frozen_at : (int, float) Hashtbl.t;
  state_changed : Sim.Condition.t;
  repl : 'v repl;
  index_extract : ('v -> string) option;
}

let backup_site ~nparts ~replicas ~part ~j = nparts + (part * replicas) + j

let create ~engine ~config ~nodes ?(latency = Net.Latency.Constant 1.0)
    ?index_extract () =
  if nodes <= 0 then invalid_arg "Cluster_state.create: need nodes >= 1";
  let replicas = config.Config.replicas in
  (* [nodes] counts partitions; each partition gets 1 + replicas sites.
     Site layout: partitions first (site p is partition p's initial
     primary), then backup j of partition p at
     [nodes + p * replicas + j].  With replicas = 0 this is exactly the
     old single-copy topology. *)
  let sites = nodes * (1 + replicas) in
  let bound =
    if config.Config.overlap_gc then None
    else if config.Config.retain_extra_version then Some 4
    else Some 3
  in
  (* One shared deadlock-detection group: transactions hold locks on several
     nodes, so cycles span lock tables. *)
  let lock_group = Lockmgr.Lock_table.new_group () in
  let metrics = Sim.Metrics.create ~nodes:sites in
  let make_node i =
    Node_state.create ~engine ~node_id:i ~scheme:config.Config.scheme
      ~lock_group ~bound ~gc_renumber:config.Config.gc_renumber
      ~shared_counters:config.Config.shared_transaction_counters
      ~disk_force_latency:config.Config.disk_force_latency
      ~group_commit_window:config.Config.group_commit_window
      ~group_commit_batch:config.Config.group_commit_batch
      ~gc_ack_early:config.Config.gc_ack_early ~metrics ()
  in
  let repl =
    {
      nparts = nodes;
      primary_of = Array.init nodes (fun p -> p);
      part_of =
        Array.init sites (fun s ->
            if s < nodes then s else (s - nodes) / replicas);
      backups_of =
        Array.init nodes (fun p ->
            Array.init replicas (fun j ->
                {
                  b_part = p;
                  b_site = backup_site ~nparts:nodes ~replicas ~part:p ~j;
                  b_cursor = Wal.Ship.create ();
                  b_insync = true;
                  b_pending = Hashtbl.create 16;
                }));
      ship_epoch = Array.make nodes 0;
      site_epoch = Array.make sites 0;
      rr = 0;
      repl_changed = Sim.Condition.create ();
      ship_timer = Array.make nodes false;
      demotions = 0;
      promotions = 0;
      backup_reads = 0;
    }
  in
  let t =
    {
      engine;
      config;
      lock_group;
      net =
        Net.Network.create ~engine ~nodes:sites ~latency
          ~send_occupancy:config.Config.send_occupancy
          ~call_timeout:config.Config.rpc_timeout
          ~batch_window:config.Config.rpc_batch_window ~metrics ();
      metrics;
      nodes = Array.init sites make_node;
      coords = Array.make sites None;
      relays = Array.make sites [];
      frozen_at = Hashtbl.create 16;
      state_changed = Sim.Condition.create ();
      repl;
      index_extract;
    }
  in
  (* Version 0 (the initial data) is stable from the start. *)
  Hashtbl.replace t.frozen_at 0 0.0;
  (match index_extract with
  | Some extract ->
      Array.iter (fun nd -> Node_state.attach_index nd ~extract) t.nodes
  | None -> ());
  t

(* Re-attach the configured secondary index on a node rebuilt by recovery
   or failover — the index bootstraps from the replayed store contents. *)
let attach_index_if_configured t nd =
  match t.index_extract with
  | Some extract -> Node_state.attach_index nd ~extract
  | None -> ()

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg "Cluster_state.node: no such node";
  t.nodes.(i)

let node_count t = Array.length t.nodes
let nparts t = t.repl.nparts
let replicated t = t.config.Config.replicas > 0

let primary_site t p =
  if p < 0 || p >= t.repl.nparts then
    invalid_arg "Cluster_state.primary_site: no such partition";
  t.repl.primary_of.(p)

let primary t p = node t (primary_site t p)

let part_of_site t s =
  if s < 0 || s >= Array.length t.repl.part_of then
    invalid_arg "Cluster_state.part_of_site: no such site";
  t.repl.part_of.(s)

let is_primary_site t s = t.repl.primary_of.(part_of_site t s) = s

(* Callers of the execution APIs keep addressing partitions; with
   replication a partition id resolves to its current primary site (the
   only site that accepts updates and query pins).  Ids past the partition
   range pass through, so code that already computed a site can reuse the
   same entry points. *)
let home_site t n =
  if t.config.Config.replicas > 0 && n < t.repl.nparts then
    t.repl.primary_of.(n)
  else n

let backups t p = t.repl.backups_of.(p)

let backup_at t s =
  let p = part_of_site t s in
  Array.to_seq t.repl.backups_of.(p) |> Seq.find (fun b -> b.b_site = s)

let note_repl_change t = Sim.Condition.broadcast t.repl.repl_changed
let emit t ~tag message = Sim.Engine.emit t.engine ~tag message
let tracing t = Sim.Engine.trace_enabled t.engine
let now t = Sim.Engine.now t.engine

let note_version_change t = Sim.Condition.broadcast t.state_changed

let freeze_version t version =
  if not (Hashtbl.mem t.frozen_at version) then
    Hashtbl.replace t.frozen_at version (Sim.Engine.now t.engine)

let staleness_of t ~version ~at =
  match Hashtbl.find_opt t.frozen_at version with
  | None -> None
  | Some frozen -> Some (at -. frozen)
