(** Shared state of an AVA3 cluster — internal plumbing.

    This module is the record the protocol components ({!Advancement},
    {!Query_exec}, {!Update_exec}) operate on; applications should use the
    {!Cluster} facade instead. *)

(** Coordinator-side state of one advancement run (paper §3.2). *)
type coord = {
  c_newu : int;
  c_started : float;  (** when this run broadcast its advance-u *)
  mutable c_phase : [ `Collect_u | `Collect_q ];
  mutable c_phase1_done : float;
      (** when the last advance-u ack arrived (meaningful once the phase
          moved to [`Collect_q]) *)
  mutable c_acks_u : bool array;
  mutable c_acks_q : bool array;
  mutable c_abandoned : bool;
  c_sites : int array;
      (** hierarchical rounds: the round's tree layout (see
          {!Messages.t}'s [Relay]); [[||]] for a flat round *)
  c_nparts : int;
      (** hierarchical rounds: how many leading positions of [c_sites] are
          barrier participants; [0] for a flat round *)
}

(** Relay-side state of one hierarchical advancement phase at one site:
    which direct child subtrees have acknowledged and whether the site's
    own local work is durably complete.  Keyed by [(root, version, kind)] —
    racing coordinators can run the same version with different trees, and
    their aggregation must stay separate.  Volatile: wiped by a crash, and
    rebuilt by the coordinator's retransmission after recovery. *)
type relay = {
  r_root : int;
  r_ver : int;
  r_kind : [ `U | `Q ];
  r_sites : int array;
  r_nparts : int;
  r_pos : int;
  r_child_acks : bool array;
      (** indexed by child slot [0 .. arity-1]; slots whose position is
          past the tree or non-participant start [true] *)
  mutable r_self_done : bool;
  mutable r_acked : bool;  (** upward [Relay_ack] already sent *)
}

type 'v t = {
  engine : Sim.Engine.t;
  config : Config.t;
  net : Messages.t Net.Network.t;
  metrics : Sim.Metrics.t;
      (** per-node event counts and latency histograms; every protocol
          component records into this registry, and {!Cluster.stats} is
          derived from it *)
  lock_group : Lockmgr.Lock_table.group;
      (** shared deadlock-detection group spanning all nodes *)
  mutable nodes : 'v Node_state.t array;
  coords : coord option array;  (** per-node active coordination, if any *)
  relays : relay list array;
      (** per-node relay aggregation state of hierarchical rounds (empty
          with flat advancement) *)
  frozen_at : (int, float) Hashtbl.t;
      (** version -> virtual time it became stable (all its update
          transactions finished); feeds the staleness metric of §8 *)
  state_changed : Sim.Condition.t;
      (** broadcast whenever any node's u/q/g changes *)
}

val create :
  engine:Sim.Engine.t ->
  config:Config.t ->
  nodes:int ->
  ?latency:Net.Latency.t ->
  unit ->
  'v t

val node : 'v t -> int -> 'v Node_state.t
val node_count : _ t -> int
val emit : _ t -> tag:string -> string -> unit

val tracing : _ t -> bool
(** Whether the engine trace is recording.  Hot emit sites test this before
    building their message with [Printf.sprintf], so large disabled-trace
    runs (benchmarks, stress, exploration) skip the formatting cost. *)

val now : _ t -> float

val note_version_change : _ t -> unit
(** Wake everyone watching for u/q/g movement. *)

val freeze_version : _ t -> int -> unit
(** Record that [version] is now stable (first recording wins). *)

val staleness_of : _ t -> version:int -> at:float -> float option
(** Age of the snapshot [version] at time [at]: [at - frozen_at version].
    [None] if the version's freeze time is unknown (still being written). *)
