(** Shared state of an AVA3 cluster — internal plumbing.

    This module is the record the protocol components ({!Advancement},
    {!Query_exec}, {!Update_exec}) operate on; applications should use the
    {!Cluster} facade instead. *)

(** Coordinator-side state of one advancement run (paper §3.2). *)
type coord = {
  c_newu : int;
  c_started : float;  (** when this run broadcast its advance-u *)
  mutable c_phase : [ `Collect_u | `Collect_q ];
  mutable c_phase1_done : float;
      (** when the last advance-u ack arrived (meaningful once the phase
          moved to [`Collect_q]) *)
  mutable c_acks_u : bool array;
  mutable c_acks_q : bool array;
  mutable c_abandoned : bool;
  c_sites : int array;
      (** hierarchical rounds: the round's tree layout (see
          {!Messages.t}'s [Relay]); [[||]] for a flat round *)
  c_nparts : int;
      (** hierarchical rounds: how many leading positions of [c_sites] are
          barrier participants; [0] for a flat round *)
}

(** Relay-side state of one hierarchical advancement phase at one site:
    which direct child subtrees have acknowledged and whether the site's
    own local work is durably complete.  Keyed by [(root, version, kind)] —
    racing coordinators can run the same version with different trees, and
    their aggregation must stay separate.  Volatile: wiped by a crash, and
    rebuilt by the coordinator's retransmission after recovery. *)
type relay = {
  r_root : int;
  r_ver : int;
  r_kind : [ `U | `Q ];
  r_sites : int array;
  r_nparts : int;
  r_pos : int;
  r_child_acks : bool array;
      (** indexed by child slot [0 .. arity-1]; slots whose position is
          past the tree or non-participant start [true] *)
  mutable r_self_done : bool;
  mutable r_acked : bool;  (** upward [Relay_ack] already sent *)
}

(** One backup of one partition, as its current primary sees it.  The
    cursor and flags are primary-side volatile state: failover rebuilds
    them.  [b_pending] buffers the writes of shipped-but-uncommitted
    transactions exactly as {!Wal.Recovery.replay} does — a backup applies
    a transaction's writes only at its [Commit] record. *)
type 'v backup = {
  b_part : int;
  b_site : int;
  b_cursor : Wal.Ship.t;
  mutable b_insync : bool;
      (** [false] once demoted (catch-up timeout) or freshly (re)joined;
          an out-of-sync backup keeps receiving ships but serves no reads
          and gates no barrier until it catches back up *)
  b_pending : (int, (string * 'v option) list) Hashtbl.t;
}

(** Replication topology.  With [Config.replicas = 0] this degenerates to
    the identity layout (every site its own partition's primary, no
    backups) and none of it influences execution. *)
type 'v repl = {
  nparts : int;  (** partitions = the [~nodes] given to {!create} *)
  primary_of : int array;  (** partition -> current primary site *)
  part_of : int array;  (** site -> partition *)
  mutable backups_of : 'v backup array array;
      (** partition -> current backups (rewritten by failover) *)
  ship_epoch : int array;
      (** partition -> truncation generation of the current primary's log
          (see {!Messages.t}'s [Ship]) *)
  site_epoch : int array;
      (** site -> generation of the log that site holds; a backup whose
          epoch trails its partition's [ship_epoch] needs a full resync *)
  mutable rr : int;  (** round-robin read-routing counter *)
  repl_changed : Sim.Condition.t;
      (** broadcast on every ship ack, demotion, promotion — what
          catch-up gates wait on *)
  ship_timer : bool array;
      (** per-partition: a coalescing ship flush is already scheduled *)
  mutable demotions : int;
  mutable promotions : int;
  mutable backup_reads : int;
}

type 'v t = {
  engine : Sim.Engine.t;
  config : Config.t;
  net : 'v Messages.t Net.Network.t;
  metrics : Sim.Metrics.t;
      (** per-node event counts and latency histograms; every protocol
          component records into this registry, and {!Cluster.stats} is
          derived from it *)
  lock_group : Lockmgr.Lock_table.group;
      (** shared deadlock-detection group spanning all nodes *)
  mutable nodes : 'v Node_state.t array;
  coords : coord option array;  (** per-node active coordination, if any *)
  relays : relay list array;
      (** per-node relay aggregation state of hierarchical rounds (empty
          with flat advancement) *)
  frozen_at : (int, float) Hashtbl.t;
      (** version -> virtual time it became stable (all its update
          transactions finished); feeds the staleness metric of §8 *)
  state_changed : Sim.Condition.t;
      (** broadcast whenever any node's u/q/g changes *)
  repl : 'v repl;
  index_extract : ('v -> string) option;
      (** when set, every site carries a {!Vindex.Index} on this attribute
          extractor, re-attached across recovery and store swaps *)
}

val create :
  engine:Sim.Engine.t ->
  config:Config.t ->
  nodes:int ->
  ?latency:Net.Latency.t ->
  ?index_extract:('v -> string) ->
  unit ->
  'v t
(** [nodes] counts {e partitions}; with [config.replicas = r > 0] the
    cluster has [nodes * (1 + r)] sites — partition primaries at sites
    [0 .. nodes-1], backup [j] of partition [p] at
    [nodes + p*r + j]. *)

val node : 'v t -> int -> 'v Node_state.t
val node_count : _ t -> int
(** Total sites, including backups. *)

val attach_index_if_configured : 'v t -> 'v Node_state.t -> unit
(** Re-attach the configured secondary index (if any) on a node rebuilt by
    crash recovery or failover; no-op on clusters created without
    [~index_extract]. *)

(** {1 Replication topology} *)

val nparts : _ t -> int
(** Partition count (the [~nodes] of {!create}). *)

val replicated : _ t -> bool
val primary_site : _ t -> int -> int
val primary : 'v t -> int -> 'v Node_state.t
val part_of_site : _ t -> int -> int
val is_primary_site : _ t -> int -> bool

val home_site : _ t -> int -> int
(** Resolve a partition id to its current primary site (identity when
    unreplicated, or for ids past the partition range). *)


val backups : 'v t -> int -> 'v backup array

val backup_at : 'v t -> int -> 'v backup option
(** The backup record whose site this is, if the site currently is one. *)

val note_repl_change : _ t -> unit
val emit : _ t -> tag:string -> string -> unit

val tracing : _ t -> bool
(** Whether the engine trace is recording.  Hot emit sites test this before
    building their message with [Printf.sprintf], so large disabled-trace
    runs (benchmarks, stress, exploration) skip the formatting cost. *)

val now : _ t -> float

val note_version_change : _ t -> unit
(** Wake everyone watching for u/q/g movement. *)

val freeze_version : _ t -> int -> unit
(** Record that [version] is now stable (first recording wins). *)

val staleness_of : _ t -> version:int -> at:float -> float option
(** Age of the snapshot [version] at time [at]: [at - frozen_at version].
    [None] if the version's freeze time is unknown (still being written). *)
