type t = {
  scheme : Wal.Scheme.kind;
  eager_counter_handoff : bool;
  piggyback_version : bool;
  root_only_query_counters : bool;
  shared_transaction_counters : bool;
  abort_on_version_mismatch : bool;
  retain_extra_version : bool;
  overlap_gc : bool;
  read_service_time : float;
  write_service_time : float;
  gc_renumber : bool;
  gc_item_time : float;
  advancement_retry : float;
  rpc_timeout : float;
  disk_force_latency : float;
  group_commit_window : float;
  group_commit_batch : int;
  gc_ack_early : bool;
  rpc_batch_window : float;
  send_occupancy : float;
  tree_arity : int;
  partition_aware : bool;
  relay_ack_early : bool;
  replicas : int;
  replica_catchup_timeout : float;
  replica_ship_window : float;
  replica_ack_early : bool;
  join_partitions : int;
  index_skip_visibility : bool;
  max_retries : int;
  retry_backoff_base : float;
  session_pool_size : int;
  savepoint_leak : bool;
}

let default =
  {
    scheme = Wal.Scheme.No_undo;
    eager_counter_handoff = false;
    piggyback_version = false;
    root_only_query_counters = false;
    shared_transaction_counters = false;
    abort_on_version_mismatch = false;
    retain_extra_version = false;
    overlap_gc = false;
    read_service_time = 0.1;
    write_service_time = 0.2;
    gc_renumber = true;
    gc_item_time = 0.0;
    advancement_retry = 100.0;
    rpc_timeout = infinity;
    disk_force_latency = 0.0;
    group_commit_window = 0.0;
    group_commit_batch = 64;
    gc_ack_early = false;
    rpc_batch_window = 0.0;
    send_occupancy = 0.0;
    tree_arity = 0;
    partition_aware = false;
    relay_ack_early = false;
    replicas = 0;
    replica_catchup_timeout = 25.0;
    replica_ship_window = 0.0;
    replica_ack_early = false;
    join_partitions = 8;
    index_skip_visibility = false;
    max_retries = 5;
    retry_backoff_base = 5.0;
    session_pool_size = 4;
    savepoint_leak = false;
  }

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* A knob that must be a nonnegative finite number of virtual seconds.
   NaN fails every comparison, so the explicit check keeps it from
   slipping through as "not negative". *)
let check_time name v =
  if Float.is_nan v || v < 0.0 || v = infinity then
    invalid "%s must be a finite nonnegative time (got %g)" name v

let validate t =
  if t.tree_arity < 0 then
    invalid "tree_arity must be >= 0 (got %d); 0 means flat broadcast"
      t.tree_arity;
  (* rpc_timeout = infinity is the documented no-timeout default; zero,
     negative, and NaN would time every call out instantly or never
     settle it deterministically. *)
  if Float.is_nan t.rpc_timeout || t.rpc_timeout <= 0.0 then
    invalid "rpc_timeout must be > 0 (got %g); use infinity to disable"
      t.rpc_timeout;
  check_time "send_occupancy" t.send_occupancy;
  check_time "disk_force_latency" t.disk_force_latency;
  check_time "group_commit_window" t.group_commit_window;
  if t.group_commit_batch < 1 then
    invalid "group_commit_batch must be >= 1 (got %d)" t.group_commit_batch;
  check_time "rpc_batch_window" t.rpc_batch_window;
  check_time "read_service_time" t.read_service_time;
  check_time "write_service_time" t.write_service_time;
  check_time "gc_item_time" t.gc_item_time;
  if
    Float.is_nan t.advancement_retry
    || t.advancement_retry <= 0.0
    || t.advancement_retry = infinity
  then
    invalid "advancement_retry must be a finite positive period (got %g)"
      t.advancement_retry;
  if t.partition_aware && t.tree_arity <= 0 then
    invalid "partition_aware requires tree_arity > 0 (hierarchical rounds)";
  if t.replicas < 0 then
    invalid "replicas must be >= 0 (got %d); 0 means single-copy partitions"
      t.replicas;
  if t.replicas > 0 && t.tree_arity > 0 then
    invalid
      "replicas requires tree_arity = 0: replication runs over flat \
       advancement rounds (failover rewrites the round's participant set, \
       which hierarchical relay trees do not support yet)";
  if
    Float.is_nan t.replica_catchup_timeout
    || t.replica_catchup_timeout <= 0.0
    || t.replica_catchup_timeout = infinity
  then
    invalid
      "replica_catchup_timeout must be a finite positive time (got %g); it \
       bounds how long a round or commit waits before demoting a lagging \
       backup"
      t.replica_catchup_timeout;
  check_time "replica_ship_window" t.replica_ship_window;
  if t.replica_ack_early && t.replicas <= 0 then
    invalid "replica_ack_early requires replicas > 0 (there is no backup \
             whose acknowledgment could run early)";
  if t.join_partitions < 1 then
    invalid "join_partitions must be >= 1 (got %d)" t.join_partitions;
  if t.max_retries < 0 then
    invalid "max_retries must be >= 0 (got %d); 0 means no automatic retry"
      t.max_retries;
  (* Base 0 means immediate retries (attempt spacing stays deterministic
     through the seeded jitter); infinity or NaN would make the first
     backoff unschedulable. *)
  check_time "retry_backoff_base" t.retry_backoff_base;
  if t.session_pool_size < 1 then
    invalid "session_pool_size must be >= 1 (got %d)" t.session_pool_size

let durability_active t =
  t.disk_force_latency > 0.0 || t.group_commit_window > 0.0

let pp ppf t =
  Format.fprintf ppf
    "{scheme=%s; eager_handoff=%b; piggyback=%b; root_only_qc=%b; \
     overlap_gc=%b; read=%g; write=%g; gc_item=%g; retry=%g; rpc_timeout=%g; \
     force=%g; gc_window=%g/%d; rpc_window=%g; tree=%d%s; replicas=%d; \
     session=%d@%g/%d%s}"
    (Wal.Scheme.kind_name t.scheme)
    t.eager_counter_handoff t.piggyback_version t.root_only_query_counters
    t.overlap_gc t.read_service_time t.write_service_time t.gc_item_time
    t.advancement_retry t.rpc_timeout t.disk_force_latency
    t.group_commit_window t.group_commit_batch t.rpc_batch_window t.tree_arity
    (if t.partition_aware then "/pa" else "")
    t.replicas t.max_retries t.retry_backoff_base t.session_pool_size
    (if t.savepoint_leak then "/leak" else "")
