(** Protocol configuration for an AVA3 cluster.

    The flags marked "§8"/"§10" enable the paper's optional optimisations;
    the defaults give the base protocol of §3, so ablation experiments can
    toggle one flag at a time. *)

type t = {
  scheme : Wal.Scheme.kind;
      (** Recovery scheme, which determines the moveToFuture implementation
          (§4).  Default [No_undo]. *)
  eager_counter_handoff : bool;
      (** §8: when a subtransaction runs moveToFuture, immediately move its
          update-counter occupancy to the new version so Phase 1 need not
          wait for long-running transactions that have already moved.
          Default [false]. *)
  piggyback_version : bool;
      (** §10: update subtransactions carry the root's current version and
          start at [max carried (u_i)], cutting commit-time moveToFutures.
          Default [false]. *)
  root_only_query_counters : bool;
      (** §10: only a query's root subtransaction maintains the query
          counter.  Default [false]. *)
  shared_transaction_counters : bool;
      (** §10: one transaction counter per version instead of separate query
          and update counters — sound because reads only ever use a version
          after all its updates finished, so the two populations never
          occupy the same version's slot at the same time.  Default
          [false]. *)
  abort_on_version_mismatch : bool;
      (** Baseline mode (not part of AVA3): instead of repairing a version
          mismatch with moveToFuture, abort the transaction — the behaviour
          of the MPL92-style distributed extension whose advancement is
          synchronous with user transactions.  Default [false]. *)
  retain_extra_version : bool;
      (** Baseline mode (not part of AVA3): keep one extra old query version
          (four versions total, as in MPL92/WYC91) so Phase 2 never waits
          for running queries; garbage collection trails one round behind.
          Default [false]. *)
  overlap_gc : bool;
      (** §8 relaxation: a node may start a new advancement once Phases 1–2
          of the previous one finished, letting garbage collection complete
          in the background.  More than three copies may then accumulate
          transiently (the store bound is lifted), but user transactions
          still only touch the latest three.  Default [false]. *)
  read_service_time : float;
      (** Virtual time one data-item read costs (storage access). *)
  write_service_time : float;
      (** Virtual time one data-item write costs. *)
  gc_renumber : bool;
      (** Phase-3 rule for items with no incarnation at the new query
          version: [true] (default) renumbers their old entry per the paper,
          visiting every live item each round; [false] keeps the entry in
          place, bounding GC work by the items actually written (see
          {!Vstore.Store.create} and experiment E8b). *)
  gc_item_time : float;
      (** Virtual time Phase-3 garbage collection spends per stored item. *)
  advancement_retry : float;
      (** Coordinator retransmission period for unacknowledged advancement
          messages (covers participant crashes; the paper only assumes
          eventual delivery). *)
  rpc_timeout : float;
      (** Default timeout (virtual seconds) for subtransaction RPCs; a call
          whose request or reply is lost surfaces as
          [Net.Network.Rpc_timeout] at the caller after this long.  Default
          [infinity] — benign runs without faults never time out; set a
          finite value when crashes or partitions are injected. *)
  disk_force_latency : float;
      (** Virtual time one WAL force costs ({!Wal.Disk}).  Default [0.] —
          the log behaves as synchronously durable and commits pay
          nothing, matching the pre-durability-model simulator. *)
  group_commit_window : float;
      (** Group-commit batching window ({!Wal.Group_commit}): how long the
          first committer of a batch waits for company before the force.
          Default [0.] — each commit forces its own records. *)
  group_commit_batch : int;
      (** Force early once this many committers are queued (only
          meaningful with a nonzero window).  Default [64]. *)
  gc_ack_early : bool;
      (** Fault injection for the model checker: acknowledge group-commit
          waiters as soon as their records are queued, {e before} the
          force ({!Wal.Group_commit.create}'s [ack_early]).  A crash
          between the ack and the force then loses an acknowledged
          commit — the bug the [group-commit-crash-buggy] scenario exists
          to catch.  Never enable outside the checker.  Default
          [false]. *)
  rpc_batch_window : float;
      (** Per-destination message-coalescing window for the network
          ({!Net.Network.create}'s [batch_window]).  Default [0.] — every
          message is its own envelope. *)
  send_occupancy : float;
      (** Sender-side serialization cost per remote message
          ({!Net.Network.create}'s [send_occupancy]): each outbound message
          reserves the source's transmitter that long before departing, so
          an [O(N)] coordinator broadcast pays [O(N)] at the sender.
          Default [0.] — departure is immediate, as in earlier builds. *)
  tree_arity : int;
      (** Hierarchical advancement: fan advance/GC rounds through a relay
          tree of this arity instead of a flat coordinator broadcast, with
          acknowledgments aggregated bottom-up ({!Messages.t}'s [Relay] /
          [Relay_ack]).  Cuts the coordinator's per-round traffic from
          [O(N)] messages to [O(arity)] at depth [O(log_arity N)].  [0]
          (default) keeps the paper's flat rounds — bit-identical to the
          pre-tree protocol. *)
  partition_aware : bool;
      (** With [tree_arity > 0]: exclude sites that host no data items from
          the Phase 1/2 acknowledgment barriers (they still receive every
          advancement message fire-and-forget, so their version counters
          converge).  Sound only under the confinement contract: update
          writes, transaction roots, and query roots never run at data-empty
          sites — excluding a site that can start transactions or queries
          would break the freeze barrier.  Default [false]. *)
  relay_ack_early : bool;
      (** Fault injection for the model checker: a relay acknowledges
          upward as soon as its {e own} local work is durable, before its
          subtree has acknowledged — the coordinator can then freeze a
          version while a descendant still runs updates in it, the bug the
          [relay-ack-early-buggy] scenario convicts.  Never enable outside
          the checker.  Default [false]. *)
  replicas : int;
      (** Per-partition primary–backup replication: each partition (the
          [~nodes] of [Cluster.create]) gets this many backup sites that
          follow the primary by asynchronous WAL shipping and serve
          version-pinned reads once caught up ({!Replication}).  [0]
          (default) is the paper's single-copy system — bit-identical to
          the pre-replication simulator.  Requires [tree_arity = 0]. *)
  replica_catchup_timeout : float;
      (** How long an advancement round's Phase 2 (and a commit's
          replicate-then-ack wait) waits for a backup to acknowledge
          catch-up before demoting it instead of stalling — the
          partition-tolerance escape hatch.  Also the re-ship period for
          repairing batches lost to a partition.  Finite positive;
          default [25.]. *)
  replica_ship_window : float;
      (** Log-ship batching window: how long a primary pools fresh durable
          records before shipping them as one batch per backup (analogous
          to [rpc_batch_window], but at the replication layer, so one
          window covers many commits).  [0.] (default) ships on every
          commit/advancement poke. *)
  replica_ack_early : bool;
      (** Fault injection for the model checker: a backup acknowledges a
          shipped batch — and bumps its visible version counters — on
          receipt, {e before} applying the data records.  Version-pinned
          routing then believes it is caught up and reads miss committed
          writes, the bug the [replica-ack-early-buggy] scenario convicts.
          Never enable outside the checker.  Default [false]. *)
  join_partitions : int;
      (** Bucket count of the grace hash join operator
          ({!Query_exec.run_join}).  Purely an execution-shape knob: the
          join output is sorted, so any partition count produces identical
          results.  Must be [>= 1]; default [8]. *)
  index_skip_visibility : bool;
      (** Fault injection for the model checker: secondary-index probes
          skip the pinned-version visibility check and serve each
          candidate's {e newest} entry instead.  Indistinguishable at
          quiescence — the newest entry is the pinned one once the system
          drains — but a commit or moveToFuture landing between pin and
          probe makes the probe disagree with the full-scan plan at the
          same pinned version, the bug the [index-skip-mtf-buggy] scenario
          convicts.  Never enable outside the checker.  Default [false]. *)
  max_retries : int;
      (** Session layer ({!Session}): how many times [Session.txn] re-runs
          a client function after a retryable failure ([Aborted],
          [Root_down], [Rpc_timeout]) before surfacing the last error.  [0]
          disables automatic retry (one attempt only).  Default [5]. *)
  retry_backoff_base : float;
      (** Session layer: base of the seeded exponential backoff — attempt
          [k] sleeps [retry_backoff_base * 2^k * jitter] virtual seconds
          with jitter drawn from the session's own [Rng] stream in
          [0.5, 1.5).  [0.] retries immediately.  Default [5.]. *)
  session_pool_size : int;
      (** Session layer: logical connections a session pools; each holds a
          pinned coordinator node, and [Session.txn] checks one out per
          attempt (round-robin over the cluster, skipping sites that
          rejected with [Root_down]).  Must be [>= 1]; default [4]. *)
  savepoint_leak : bool;
      (** Fault injection for the model checker: a savepoint rollback
          restores the write-set but {e forgets to release} the locks first
          acquired inside the rolled-back scope ({!Subtxn.rollback_to}).
          Serializability survives (2PL only over-locks) but workloads that
          are deadlock-free under clean rollback now deadlock and abort —
          the bug the [savepoint-leak-buggy] scenario convicts.  Never
          enable outside the checker.  Default [false]. *)
}

val default : t

exception Invalid of string
(** Raised by {!validate} with a human-readable description of the first
    nonsensical knob found. *)

val validate : t -> unit
(** Reject nonsensical knob combinations before they cause silent
    misbehavior deep in a run: negative [tree_arity], [rpc_timeout <= 0]
    (or NaN — [infinity] is the documented "no timeout"), negative or
    non-finite [send_occupancy] / [disk_force_latency] /
    [group_commit_window] / [rpc_batch_window] / service and GC times,
    [group_commit_batch < 1], a non-positive or infinite
    [advancement_retry], and [partition_aware] without a relay tree.
    Raises {!Invalid}; returns unit on a sane config.  Called by
    [Cluster.create], so every simulator entry point inherits the
    check; CLI frontends call it early to fail before any setup. *)

val durability_active : t -> bool
(** Whether the simulated disk costs anything ([disk_force_latency > 0] or
    [group_commit_window > 0]).  When [false], a crash must not lose log
    records — the whole log is treated as synchronously durable, exactly
    the semantics every experiment had before the durability model. *)

val pp : Format.formatter -> t -> unit
