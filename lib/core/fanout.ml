(* Concurrent fan-out used by the tree executors: run every thunk as its
   own simulation process and wait for all; results in input order.
   Failures are captured, not raised, so siblings always finish before
   the caller decides what the first error means. *)

let all engine thunks =
  let n = List.length thunks in
  let results = Array.make n None in
  let completed = ref 0 in
  let cv = Sim.Condition.create () in
  List.iteri
    (fun i thunk ->
      Sim.Engine.spawn engine (fun () ->
          let r = try Ok (thunk ()) with e -> Error e in
          results.(i) <- Some r;
          incr completed;
          Sim.Condition.broadcast cv))
    thunks;
  Sim.Condition.await_until cv ~pred:(fun () -> !completed = n);
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)
