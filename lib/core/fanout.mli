(** Concurrent fan-out for the tree executors. *)

val all : Sim.Engine.t -> (unit -> 'a) list -> ('a, exn) result list
(** Run every thunk as its own simulation process and block until all
    have finished; results are in input order.  Failures are captured
    rather than raised, so siblings always run to completion before the
    caller decides — must be called inside a process. *)
