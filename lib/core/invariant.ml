open Cluster_state

(* Cross-node version agreement only binds the synced copies: primaries
   plus in-sync backups.  An out-of-sync backup (demoted, resyncing after
   recovery) lags by design and re-earns membership through catch-up; its
   per-node invariants still hold, because it only ever holds a prefix of
   a valid primary history. *)
let synced cs nd =
  (not (replicated cs))
  || is_primary_site cs (Node_state.id nd)
  ||
  match backup_at cs (Node_state.id nd) with
  | Some b -> b.b_insync
  | None -> false

let check cs =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let nodes = cs.nodes in
  Array.iter
    (fun nd ->
      if Node_state.alive nd then begin
        let i = Node_state.id nd in
        let u = Node_state.u nd and q = Node_state.q nd in
        if not (q < u && u <= q + 2) then
          fail "node%d: q < u <= q+2 violated (q=%d u=%d)" i q u;
        if not cs.config.Config.overlap_gc then begin
          let hw = Vstore.Store.high_water_versions (Node_state.store nd) in
          if hw > 3 then fail "node%d: %d live versions of some item" i hw
        end;
        (* Derived-data consistency: the secondary index must agree with
           the base store at every instant, not just at quiescence — its
           maintenance is synchronous with each store mutation. *)
        match Node_state.index nd with
        | None -> ()
        | Some ix ->
            List.iter
              (fail "node%d: %s" i)
              (Vindex.Index.check ix ~version:(Node_state.q nd))
      end)
    nodes;
  let live =
    Array.to_list nodes
    |> List.filter (fun nd -> Node_state.alive nd && synced cs nd)
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if Node_state.id a < Node_state.id b then begin
            let ia = Node_state.id a and ib = Node_state.id b in
            if
              Node_state.u a <> Node_state.u b
              && Node_state.q a <> Node_state.q b
            then
              fail "nodes %d,%d: both u (%d,%d) and q (%d,%d) differ" ia ib
                (Node_state.u a) (Node_state.u b) (Node_state.q a)
                (Node_state.q b)
          end)
        live)
    live;
  List.rev !violations

let check_quiescent cs =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let live =
    Array.to_list cs.nodes
    |> List.filter (fun nd -> Node_state.alive nd && synced cs nd)
  in
  (match live with
  | [] -> ()
  | first :: rest ->
      let u0 = Node_state.u first and q0 = Node_state.q first in
      if u0 <> q0 + 1 then
        fail "node%d: quiescent but u=%d q=%d (expected u = q+1)"
          (Node_state.id first) u0 q0;
      List.iter
        (fun nd ->
          if Node_state.u nd <> u0 || Node_state.q nd <> q0 then
            fail "node%d: disagrees with node%d on versions (u=%d q=%d)"
              (Node_state.id nd) (Node_state.id first) (Node_state.u nd)
              (Node_state.q nd))
        rest);
  List.iter
    (fun nd ->
      let now_max = Vstore.Store.max_live_versions_now (Node_state.store nd) in
      if now_max > 2 then
        fail "node%d: quiescent but an item has %d live versions"
          (Node_state.id nd) now_max;
      (* Index <-> base consistency at quiesce: structure sound in both
         directions and a full-space probe at the node's query version
         byte-identical to the full ordered scan. *)
      match Node_state.index nd with
      | None -> ()
      | Some ix ->
          List.iter
            (fail "node%d: %s" (Node_state.id nd))
            (Vindex.Index.check ix ~version:(Node_state.q nd)))
    live;
  List.rev !violations
