type 'v t =
  | Advance_u of { newu : int }
  | Ack_advance_u of { newu : int }
  | Advance_q of { newq : int }
  | Ack_advance_q of { newq : int }
  | Garbage_collect of { newg : int }
  | Relay of { sites : int array; nparts : int; pos : int; inner : 'v t }
  | Relay_ack of { root : int; inner : 'v t }
  | Ship of {
      part : int;
      epoch : int;
      from_ : int;
      records : 'v Wal.Record.t list;
    }
  | Ship_ack of { part : int; epoch : int; upto : int }

let rec pp : type v. Format.formatter -> v t -> unit =
 fun ppf -> function
  | Advance_u { newu } -> Format.fprintf ppf "advance-u(%d)" newu
  | Ack_advance_u { newu } -> Format.fprintf ppf "ack-advance-u(%d)" newu
  | Advance_q { newq } -> Format.fprintf ppf "advance-q(%d)" newq
  | Ack_advance_q { newq } -> Format.fprintf ppf "ack-advance-q(%d)" newq
  | Garbage_collect { newg } -> Format.fprintf ppf "garbage-collect(%d)" newg
  | Relay { sites; nparts; pos; inner } ->
      Format.fprintf ppf "relay(root=%d, pos=%d/%d of %d, %a)" sites.(0) pos
        nparts (Array.length sites) pp inner
  | Relay_ack { root; inner } ->
      Format.fprintf ppf "relay-ack(root=%d, %a)" root pp inner
  | Ship { part; epoch; from_; records } ->
      Format.fprintf ppf "ship(part=%d, epoch=%d, from=%d, %d records)" part
        epoch from_ (List.length records)
  | Ship_ack { part; epoch; upto } ->
      Format.fprintf ppf "ship-ack(part=%d, epoch=%d, upto=%d)" part epoch upto

let to_string t = Format.asprintf "%a" pp t

(* The protocol meaning of a message, with relay framing stripped: what the
   abandonment rule and round comparisons care about.  Log-shipping frames
   are not advancement-protocol messages; they pass through unchanged and
   callers match them explicitly. *)
let rec payload = function
  | (Relay { inner; _ } | Relay_ack { inner; _ }) -> payload inner
  | m -> m
