(** Version-advancement protocol messages (paper §3.2).

    These are the only messages AVA3 itself adds to the system; user
    transactions travel over the R*-style RPC path instead.

    With hierarchical advancement ([Config.tree_arity > 0]) the phase
    messages travel wrapped in [Relay] frames down a coordinator-rooted
    relay tree, and acknowledgments travel back up aggregated in
    [Relay_ack] frames; with a flat round (the default) neither wrapper
    ever appears on the wire. *)

type t =
  | Advance_u of { newu : int }
      (** Phase 1: switch new update transactions to version [newu]. *)
  | Ack_advance_u of { newu : int }
      (** Participant confirms: its update version is at least [newu] and
          all its subtransactions that started on [newu - 1] finished. *)
  | Advance_q of { newq : int }
      (** Phase 2: switch new queries to version [newq]. *)
  | Ack_advance_q of { newq : int }
  | Garbage_collect of { newg : int }  (** Phase 3. *)
  | Relay of { sites : int array; nparts : int; pos : int; inner : t }
      (** Tree frame for [inner], addressed to the site at [sites.(pos)].
          [sites] lays the whole round out as an implicit tree rooted at
          the coordinator [sites.(0)]: the children of position [p] are
          positions [arity*p + 1 .. arity*p + arity].  The first [nparts]
          positions are barrier participants; later positions receive
          messages fire-and-forget (version-counter convergence) and never
          acknowledge.  Since positions only grow downward, a
          non-participant's subtree is entirely non-participant. *)
  | Relay_ack of { root : int; inner : t }
      (** Aggregated upward acknowledgment: the sender's entire subtree has
          locally completed (and made durable) the phase that [inner]
          acknowledges.  [root] names the coordinator whose round this is —
          two coordinators can race the same version number with different
          trees, and their acknowledgment flows must not mix. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val payload : t -> t
(** The protocol message inside any nesting of relay frames: what round
    comparisons (abandonment, staleness checks) care about. *)
