(** Version-advancement protocol messages (paper §3.2).

    These are the only messages AVA3 itself adds to the system; user
    transactions travel over the R*-style RPC path instead.

    With hierarchical advancement ([Config.tree_arity > 0]) the phase
    messages travel wrapped in [Relay] frames down a coordinator-rooted
    relay tree, and acknowledgments travel back up aggregated in
    [Relay_ack] frames; with a flat round (the default) neither wrapper
    ever appears on the wire.

    With replication ([Config.replicas > 0]) the [Ship] / [Ship_ack] pair
    carries asynchronous WAL shipping from each partition's primary to its
    backups; the type is parameterized by the stored value ['v] because
    shipped batches embed WAL records. *)

type 'v t =
  | Advance_u of { newu : int }
      (** Phase 1: switch new update transactions to version [newu]. *)
  | Ack_advance_u of { newu : int }
      (** Participant confirms: its update version is at least [newu] and
          all its subtransactions that started on [newu - 1] finished. *)
  | Advance_q of { newq : int }
      (** Phase 2: switch new queries to version [newq]. *)
  | Ack_advance_q of { newq : int }
  | Garbage_collect of { newg : int }  (** Phase 3. *)
  | Relay of { sites : int array; nparts : int; pos : int; inner : 'v t }
      (** Tree frame for [inner], addressed to the site at [sites.(pos)].
          [sites] lays the whole round out as an implicit tree rooted at
          the coordinator [sites.(0)]: the children of position [p] are
          positions [arity*p + 1 .. arity*p + arity].  The first [nparts]
          positions are barrier participants; later positions receive
          messages fire-and-forget (version-counter convergence) and never
          acknowledge.  Since positions only grow downward, a
          non-participant's subtree is entirely non-participant. *)
  | Relay_ack of { root : int; inner : 'v t }
      (** Aggregated upward acknowledgment: the sender's entire subtree has
          locally completed (and made durable) the phase that [inner]
          acknowledges.  [root] names the coordinator whose round this is —
          two coordinators can race the same version number with different
          trees, and their acknowledgment flows must not mix. *)
  | Ship of {
      part : int;
      epoch : int;
      from_ : int;
      records : 'v Wal.Record.t list;
    }
      (** Log-ship batch from partition [part]'s primary: [records] are the
          primary's WAL records with 0-based indexes [from_ ..], already
          durable at the primary.  [epoch] counts the primary log's
          truncation generations (a quiescent checkpoint starts a new
          epoch); a backup adopts a higher epoch only from a [from_ = 0]
          batch, discarding its own log first — full resync.  The epoch
          makes lost or reordered batches across a truncation harmless:
          indexes from different generations can never be confused. *)
  | Ship_ack of { part : int; epoch : int; upto : int }
      (** Backup's cumulative acknowledgment: within [epoch], it has
          appended {e and applied} every shipped record below [upto].
          Carries the backup's whole progress, not one batch's, so lost or
          reordered acks are harmless; acks from a stale epoch are
          ignored. *)

val pp : Format.formatter -> 'v t -> unit
val to_string : 'v t -> string

val payload : 'v t -> 'v t
(** The protocol message inside any nesting of relay frames: what round
    comparisons (abandonment, staleness checks) care about.  [Ship] and
    [Ship_ack] frames pass through unchanged (they are not advancement
    messages). *)
