type 'v t = {
  node_id : int;
  eng : Sim.Engine.t;
  mutable st : 'v Vstore.Store.t;
  lk : Lockmgr.Lock_table.t;
  mutable sch : 'v Wal.Scheme.t;
  wal : 'v Wal.Log.t;
  gcd : 'v Wal.Group_commit.t;
  latch : Lockmgr.Latch.t;
  mutable uv : int;
  mutable qv : int;
  mutable gv : int;
  update_counts : (int, int ref) Hashtbl.t;
  query_counts : (int, int ref) Hashtbl.t;
      (* with shared counters this is the same table as [update_counts] *)
  upd_zero : Sim.Condition.t;
  qry_zero : Sim.Condition.t;
  mutable txn_seq : int;
  mutable is_alive : bool;
  (* Secondary index over [st], when the cluster was created with one.
     [idx_extract] survives store swaps so the index can be rebuilt over
     the replacement (checkpoint apply, recovery). *)
  mutable idx : 'v Vindex.Index.t option;
  mutable idx_extract : ('v -> string) option;
}

let make ~engine ~node_id ~scheme ~lock_group ~shared_counters
    ~disk_force_latency ~group_commit_window ~group_commit_batch ~gc_ack_early
    ~metrics ~st ~wal ~u ~q ~g =
  let update_counts = Hashtbl.create 8 in
  (* §10: reads of a version only begin after its updates finished, so one
     counter table can serve both populations. *)
  let query_counts =
    if shared_counters then update_counts else Hashtbl.create 8
  in
  let disk = Wal.Disk.create ~force_latency:disk_force_latency () in
  let on_force =
    Option.map
      (fun m ~records -> Sim.Metrics.record_disk_force m ~node:node_id ~records)
      metrics
  in
  let gcd =
    Wal.Group_commit.create ~engine ~disk ~log:wal ~window:group_commit_window
      ~max_batch:group_commit_batch ~ack_early:gc_ack_early ?on_force ()
  in
  let t =
    {
      node_id;
      eng = engine;
      st;
      lk = Lockmgr.Lock_table.create ?group:lock_group ();
      sch = Wal.Scheme.create scheme ~store:st ~log:wal;
      wal;
      gcd;
      latch = Lockmgr.Latch.create (Printf.sprintf "node%d.counters" node_id);
      uv = u;
      qv = q;
      gv = g;
      update_counts;
      query_counts;
      upd_zero = Sim.Condition.create ();
      qry_zero = Sim.Condition.create ();
      txn_seq = 0;
      is_alive = true;
      idx = None;
      idx_extract = None;
    }
  in
  (* Counters exist for the current query and update versions. *)
  Hashtbl.replace t.update_counts u (ref 0);
  Hashtbl.replace t.query_counts q (ref 0);
  Hashtbl.replace t.query_counts u (ref 0);
  t

(* Start-up state (paper §3.1): all data at version 0, q = 0, u = 1. *)
let create ~engine ~node_id ~scheme ?lock_group ?(bound = Some 3)
    ?(gc_renumber = true) ?(shared_counters = false)
    ?(disk_force_latency = 0.0) ?(group_commit_window = 0.0)
    ?(group_commit_batch = 64) ?(gc_ack_early = false) ?metrics () =
  let st = Vstore.Store.create ?bound ~gc_renumber () in
  let wal = Wal.Log.create () in
  let t =
    make ~engine ~node_id ~scheme ~lock_group ~shared_counters
      ~disk_force_latency ~group_commit_window ~group_commit_batch
      ~gc_ack_early ~metrics ~st ~wal ~u:1 ~q:0 ~g:(-1)
  in
  Hashtbl.replace t.update_counts 0 (ref 0);
  t

let create_recovered ~engine ~node_id ~scheme ?lock_group
    ?(shared_counters = false) ?(disk_force_latency = 0.0)
    ?(group_commit_window = 0.0) ?(group_commit_batch = 64)
    ?(gc_ack_early = false) ?metrics ~bound ~log ~store ~u ~q ~g () =
  ignore bound;
  make ~engine ~node_id ~scheme ~lock_group ~shared_counters
    ~disk_force_latency ~group_commit_window ~group_commit_batch ~gc_ack_early
    ~metrics ~st:store ~wal:log ~u ~q ~g

let alive t = t.is_alive

(* A crash takes the volatile log tail with it — but only when the
   durability model actually costs something.  With a zero-cost disk the
   whole log is treated as synchronously durable (the pre-model semantics
   every existing experiment was built on). *)
let kill t =
  t.is_alive <- false;
  Wal.Group_commit.crash t.gcd;
  if Wal.Group_commit.active t.gcd then
    ignore (Wal.Log.drop_volatile t.wal : int)

let attach_index t ~extract =
  (match t.idx with Some ix -> Vindex.Index.detach ix | None -> ());
  t.idx_extract <- Some extract;
  t.idx <- Some (Vindex.Index.attach t.st ~extract)

let index t = t.idx

let id t = t.node_id
let store t = t.st
let locks t = t.lk
let scheme t = t.sch
let log t = t.wal
let engine t = t.eng
let group_commit t = t.gcd
let commit_durable t = Wal.Group_commit.sync t.gcd
let u t = t.uv
let q t = t.qv
let g t = t.gv
let counter_latch t = t.latch

let counter tbl version =
  match Hashtbl.find_opt tbl version with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.replace tbl version c;
      c

let update_count t ~version =
  match Hashtbl.find_opt t.update_counts version with
  | None -> 0
  | Some c -> !c

let query_count t ~version =
  match Hashtbl.find_opt t.query_counts version with
  | None -> 0
  | Some c -> !c

let incr_update_count t ~version =
  Lockmgr.Latch.incr_protected t.latch (counter t.update_counts version)

let decr_update_count t ~version =
  let c = counter t.update_counts version in
  Lockmgr.Latch.decr_protected t.latch c;
  if !c < 0 then invalid_arg "Node_state: update counter went negative";
  if !c = 0 then begin
    Sim.Condition.broadcast t.upd_zero;
    if t.query_counts == t.update_counts then
      Sim.Condition.broadcast t.qry_zero
  end

let incr_query_count t ~version =
  Lockmgr.Latch.incr_protected t.latch (counter t.query_counts version)

let decr_query_count t ~version =
  let c = counter t.query_counts version in
  Lockmgr.Latch.decr_protected t.latch c;
  if !c < 0 then invalid_arg "Node_state: query counter went negative";
  if !c = 0 then begin
    Sim.Condition.broadcast t.qry_zero;
    (* With shared counters an update-side waiter may be watching the same
       slot. *)
    if t.query_counts == t.update_counts then
      Sim.Condition.broadcast t.upd_zero
  end

let await_no_updates t ~version =
  Sim.Condition.await_until t.upd_zero ~pred:(fun () ->
      update_count t ~version = 0)

let await_no_queries t ~version =
  Sim.Condition.await_until t.qry_zero ~pred:(fun () ->
      query_count t ~version = 0)

let set_u t version =
  if version > t.uv then begin
    t.uv <- version;
    ignore (counter t.update_counts version : int ref);
    Wal.Log.append t.wal (Wal.Record.Advance_update version)
  end

let set_q t version =
  if version > t.qv then begin
    t.qv <- version;
    ignore (counter t.query_counts version : int ref);
    Wal.Log.append t.wal (Wal.Record.Advance_query version)
  end

let collect_garbage t ~newg =
  if newg > t.gv then begin
    t.gv <- newg;
    let query = newg + 1 in
    Vstore.Store.gc t.st ~collect:newg ~query;
    Wal.Log.append t.wal (Wal.Record.Collect { collect = newg; query });
    (* Phase 3 cleanup: the query counter for the collected version and the
       update counter for the version queries now read are both dead.  With
       the §10 shared table, the [query] slot is the LIVE query counter and
       must stay. *)
    Hashtbl.remove t.query_counts newg;
    if not (t.query_counts == t.update_counts) then
      Hashtbl.remove t.update_counts query
  end

(* {2 Replica apply}

   A backup applies records its primary shipped.  The records are already
   in the backup's own log (appended verbatim on receipt), so these mirror
   {!set_u} / {!set_q} / {!collect_garbage} minus the log append; the
   version-number and counter-slot handling must match exactly, or a
   promoted backup would diverge from a recovered primary. *)

let apply_advance_u t version =
  if version > t.uv then begin
    t.uv <- version;
    ignore (counter t.update_counts version : int ref)
  end

let apply_advance_q t version =
  if version > t.qv then begin
    t.qv <- version;
    ignore (counter t.query_counts version : int ref)
  end

let apply_collect t ~collect ~query =
  if collect > t.gv then begin
    t.gv <- collect;
    Vstore.Store.gc t.st ~collect ~query;
    Hashtbl.remove t.query_counts collect;
    if not (t.query_counts == t.update_counts) then
      Hashtbl.remove t.update_counts query
  end

let replace_store t store ~u ~q ~g =
  t.st <- store;
  t.sch <- Wal.Scheme.create (Wal.Scheme.kind t.sch) ~store ~log:t.wal;
  (* Rebuild the secondary index over the replacement store: the old one
     tracked a store that no longer serves reads. *)
  (match t.idx_extract with Some extract -> attach_index t ~extract | None -> ());
  t.uv <- u;
  t.qv <- q;
  t.gv <- g;
  (* Same slots a freshly recovered node would have; stale slots from the
     pre-checkpoint epoch stay so in-flight reads decrement in balance. *)
  ignore (counter t.update_counts u : int ref);
  ignore (counter t.query_counts q : int ref);
  ignore (counter t.query_counts u : int ref)

let active_update_transactions t =
  Hashtbl.fold (fun _ c acc -> acc + !c) t.update_counts 0

(* Checkpoints are only taken at quiescent points (no active update
   transaction), so truncating the log loses no needed records.  Queries
   don't matter: they write nothing. *)
let try_checkpoint t =
  if active_update_transactions t > 0 then false
  else begin
    Wal.Recovery.checkpoint t.wal ~store:t.st ~u:t.uv ~q:t.qv ~g:t.gv;
    true
  end

let reset_volatile t =
  Hashtbl.iter (fun _ c -> c := 0) t.update_counts;
  Hashtbl.iter (fun _ c -> c := 0) t.query_counts;
  Sim.Condition.broadcast t.upd_zero;
  Sim.Condition.broadcast t.qry_zero

let fresh_txn_id t =
  t.txn_seq <- t.txn_seq + 1;
  (* Globally unique, node-recoverable, and ordered per node. *)
  (t.txn_seq * 1024) + t.node_id

let pp_summary ppf t =
  Format.fprintf ppf "node%d{u=%d q=%d g=%d items=%d}" t.node_id t.uv t.qv
    t.gv
    (Vstore.Store.item_count t.st)
