(** Per-node control state of the AVA3 protocol (paper §3.1).

    Each site keeps three version numbers — [u] (update), [q] (query), [g]
    (garbage) — plus two main-memory transaction counters per active
    version.  Counter updates go through latches only (counted, never
    blocking); the conditions let the advancement protocol await the
    "counter reached zero" stable property without polling.

    The node also owns the substrates: the (three-version-bounded) store,
    the lock table, the WAL, and the recovery scheme. *)

type 'v t

val create :
  engine:Sim.Engine.t ->
  node_id:int ->
  scheme:Wal.Scheme.kind ->
  ?lock_group:Lockmgr.Lock_table.group ->
  ?bound:int option ->
  ?gc_renumber:bool ->
  ?shared_counters:bool ->
  ?disk_force_latency:float ->
  ?group_commit_window:float ->
  ?group_commit_batch:int ->
  ?gc_ack_early:bool ->
  ?metrics:Sim.Metrics.t ->
  unit ->
  'v t
(** A fresh node in the paper's start-up state: all data at version 0,
    [q = 0], [u = 1], [g = -1], all counters zero.  [bound] is the store's
    live-version cap ([Some 3] by default — pass [None] to disable the
    runtime check).

    [disk_force_latency], [group_commit_window] and [group_commit_batch]
    (defaults [0.], [0.], [64]) configure the node's {!Wal.Disk} and
    {!Wal.Group_commit}; with the defaults, {!commit_durable} is free and
    a crash loses no log records.  [gc_ack_early] (default [false]) is the
    checker's deliberately broken ack-before-force mode (see
    {!Config.t.gc_ack_early}).  Completed forces are recorded into
    [metrics] when given. *)

val id : _ t -> int
val store : 'v t -> 'v Vstore.Store.t

val attach_index : 'v t -> extract:('v -> string) -> unit
(** Build (or rebuild) the node's secondary index over its current store
    and remember [extract], so subsequent store swaps ({!replace_store})
    re-attach automatically.  Called by [Cluster] when the cluster is
    created with [~index]. *)

val index : 'v t -> 'v Vindex.Index.t option
(** The node's secondary index, when one is attached. *)

val locks : _ t -> Lockmgr.Lock_table.t
val scheme : 'v t -> 'v Wal.Scheme.t
val log : 'v t -> 'v Wal.Log.t
val engine : _ t -> Sim.Engine.t
val group_commit : 'v t -> 'v Wal.Group_commit.t

val commit_durable : _ t -> unit
(** Block (inside a process) until every record currently in this node's
    log is on the simulated disk — the group-commit acknowledgement a
    committing subtransaction waits for before releasing its locks.
    Raises {!Wal.Group_commit.Crashed} if the node dies first.  Free and
    synchronous when the durability model is off. *)

(** {1 Version numbers} *)

val u : _ t -> int
val q : _ t -> int
val g : _ t -> int

val set_u : _ t -> int -> unit
(** Raise the update version number (logged; initialises the new version's
    update counter).  Ignores regressions. *)

val set_q : _ t -> int -> unit
(** Raise the query version number (logged; initialises the new version's
    query counter).  Ignores regressions. *)

val collect_garbage : _ t -> newg:int -> unit
(** Set [g], run the Phase-3 store GC for version [newg] (renumber target
    [newg + 1]), log it, and drop the query counter for [newg] and the
    update counter for [newg + 1]. *)

(** {1 Replica apply}

    A backup site advances its state only by applying records shipped from
    its partition's primary ({!Replication}).  These mirror {!set_u} /
    {!set_q} / {!collect_garbage} {e without} the log append — the record
    is already in the backup's log, appended verbatim on receipt — and
    with identical counter-slot bookkeeping, so a promoted backup is
    indistinguishable from a crash-recovered primary. *)

val apply_advance_u : _ t -> int -> unit
val apply_advance_q : _ t -> int -> unit

val apply_collect : _ t -> collect:int -> query:int -> unit
(** Apply a shipped [Collect] record: run the store GC and drop the dead
    counter slots, exactly as {!collect_garbage} does. *)

val replace_store : 'v t -> 'v Vstore.Store.t -> u:int -> q:int -> g:int -> unit
(** Apply a shipped [Checkpoint] record: swap in the restored store, reset
    the version numbers to the checkpoint's, and re-seed the counter slots
    a fresh node would have.  Stale counter slots are kept so reads still
    in flight on the old epoch decrement in balance. *)

(** {1 Transaction counters} *)

val update_count : _ t -> version:int -> int
val query_count : _ t -> version:int -> int

val incr_update_count : _ t -> version:int -> unit
val decr_update_count : _ t -> version:int -> unit
val incr_query_count : _ t -> version:int -> unit
val decr_query_count : _ t -> version:int -> unit

val await_no_updates : _ t -> version:int -> unit
(** Block until [update_count ~version = 0]; returns immediately if the
    version has no counter (already collected). *)

val await_no_queries : _ t -> version:int -> unit

val counter_latch : _ t -> Lockmgr.Latch.t
(** The latch protecting counters and version numbers — its acquisition
    count is the protocol's total latching work on this node. *)

(** {1 Crash support} *)

val alive : _ t -> bool
(** [false] once {!kill} has run: the node has crashed and this object is an
    orphan kept only so that in-flight transactions fail cleanly. *)

val kill : _ t -> unit
(** Crash the node: mark it dead, fail every committer parked in group
    commit, and — when the durability model is active — discard the log's
    volatile tail, exactly as a power cut would. *)

val create_recovered :
  engine:Sim.Engine.t ->
  node_id:int ->
  scheme:Wal.Scheme.kind ->
  ?lock_group:Lockmgr.Lock_table.group ->
  ?shared_counters:bool ->
  ?disk_force_latency:float ->
  ?group_commit_window:float ->
  ?group_commit_batch:int ->
  ?gc_ack_early:bool ->
  ?metrics:Sim.Metrics.t ->
  bound:int option ->
  log:'v Wal.Log.t ->
  store:'v Vstore.Store.t ->
  u:int ->
  q:int ->
  g:int ->
  unit ->
  'v t
(** Rebuild a node after a crash from its replayed log: the recovered store
    and version numbers survive, the counters restart at zero (the paper's
    rule — all in-flight transactions died with the crash). *)

val reset_volatile : _ t -> unit
(** Simulate loss of main memory: zero every counter (in-flight transactions
    are aborted separately by the caller). *)

val active_update_transactions : _ t -> int
(** Update subtransactions currently counted at this node (any version). *)

val try_checkpoint : _ t -> bool
(** Take a quiescent checkpoint: truncate the log to a single checkpoint
    record capturing the store and version numbers.  Returns [false]
    (doing nothing) if any update transaction is active — its log records
    must not be lost. *)

val fresh_txn_id : _ t -> int
(** Node-local transaction id allocator (ids are globally unique across a
    cluster because they embed the node id). *)

val pp_summary : Format.formatter -> _ t -> unit
