open Cluster_state

type 'v result = {
  txn_id : int;
  version : int;
  values : (int * string * 'v option) list;
  started_at : float;
  finished_at : float;
  staleness : float option;
}

type 'v t = {
  cs : 'v Cluster_state.t;
  root : int;
  root_node : 'v Node_state.t;
  txn_id : int;
  started_at : float;
  version : int;
  kind : string;
  child_counters : bool;
  touched : (int, unit) Hashtbl.t;
  (* Set once the query released its counters: a request still in flight
     at that point (its caller timed out) must not register fresh
     counters no cleanup pass will ever see. *)
  closed : bool ref;
  mutable child_nodes : 'v Node_state.t list;
}

let start cs ~root ~kind =
  (* The root pin must live at a primary: only primary query counters gate
     Phase 2, so a pin at a backup would not hold garbage collection off.
     Non-root reads may still be served by backups (see
     {!Replication.route_read}) — safely, because this root pin is what
     keeps the snapshot alive cluster-wide. *)
  let root = home_site cs root in
  let root_node = node cs root in
  if not (Node_state.alive root_node) then raise (Net.Network.Node_down root);
  let txn_id = Node_state.fresh_txn_id root_node in
  let started_at = now cs in
  (* §3.3 step 1, atomic: pin the version and announce ourselves.  The
     counter is what prevents garbage collection of this snapshot anywhere
     in the system while we run. *)
  let v = Node_state.q root_node in
  Node_state.incr_query_count root_node ~version:v;
  let kind =
    match kind with
    | `Read -> ""
    | `Scan -> "scan "
    | `Select -> "select "
    | `Join -> "join "
  in
  if tracing cs then
    emit cs ~tag:"query"
      (Printf.sprintf "Q%d: %sstarts at node%d with version %d" txn_id kind root
         v);
  {
    cs;
    root;
    root_node;
    txn_id;
    started_at;
    version = v;
    kind;
    child_counters = not cs.config.Config.root_only_query_counters;
    touched = Hashtbl.create 4;
    closed = ref false;
    child_nodes = [];
  }

let version t = t.version
let root_node t = t.root_node
let txn_id t = t.txn_id

(* First visit to a child node (flat executors): catch its query version
   up (§3.3 step 2 — advancement has begun but this node has not heard
   yet) and register in its counter, deferring the release to [finish].
   No-op once the query closed or on repeat visits. *)
let visit t n =
  let nd = node t.cs n in
  if (not !(t.closed)) && not (Hashtbl.mem t.touched n) then begin
    Hashtbl.replace t.touched n ();
    (* The catch-up write is a log append; only primaries may append
       (a backup's log must stay a prefix of its primary's).  A backup is
       only ever visited when its applied q already covers the pin
       (routing eligibility), so the branch is dead there anyway. *)
    if t.version > Node_state.q nd && is_primary_site t.cs (Node_state.id nd)
    then begin
      Node_state.set_q nd t.version;
      note_version_change t.cs
    end;
    if t.child_counters then begin
      Node_state.incr_query_count nd ~version:t.version;
      t.child_nodes <- nd :: t.child_nodes
    end
  end;
  nd

(* Tree-style visit: the subquery holds its own counter for the duration
   of its subtree and releases it itself via [leave_subquery].  Returns
   whether a counter was actually taken, so a dispatch that lost the
   race with [finish] (the caller timed out and closed the query) never
   pairs a decrement with an increment that did not happen. *)
let enter_subquery t n =
  let n = home_site t.cs n in
  let nd = node t.cs n in
  if not (Node_state.alive nd) then raise (Net.Network.Node_down n);
  if !(t.closed) then (nd, false)
  else begin
    if t.version > Node_state.q nd then begin
      Node_state.set_q nd t.version;
      note_version_change t.cs
    end;
    if t.child_counters then begin
      Node_state.incr_query_count nd ~version:t.version;
      (nd, true)
    end
    else (nd, false)
  end

let leave_subquery t nd ~taken =
  if taken then Node_state.decr_query_count nd ~version:t.version

(* Counter bookkeeping runs on direct references, not network calls: if
   the root's node dies mid-query, the decrements must still reach the
   child nodes, or their leaked counters would block Phase 2 forever.
   Children decrement before the root: the root's counter is the one
   whose drain unblocks Phase 2, and it must be last to go. *)
let finish t =
  t.closed := true;
  if t.child_counters then
    List.iter
      (fun nd -> Node_state.decr_query_count nd ~version:t.version)
      t.child_nodes;
  Node_state.decr_query_count t.root_node ~version:t.version

let complete t ~values =
  finish t;
  Sim.Metrics.record_query t.cs.metrics ~node:t.root;
  if tracing t.cs then
    emit t.cs ~tag:"query" (Printf.sprintf "Q%d: %scompleted" t.txn_id t.kind);
  {
    txn_id = t.txn_id;
    version = t.version;
    values;
    started_at = t.started_at;
    finished_at = now t.cs;
    staleness = staleness_of t.cs ~version:t.version ~at:t.started_at;
  }

let on_error t e =
  (* A touched node died mid-query: release what we can and re-raise. *)
  (try finish t with _ -> ());
  raise e
