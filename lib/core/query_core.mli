(** Shared scaffolding of read-only transactions — the runtime under
    {!Query_exec.run}, {!Query_exec.run_scan} and {!Tree_query}.

    A [Query_core.t] owns the query lifecycle the three paths used to
    duplicate: the version pin with the root counter increment (§3.3
    step 1), child-node catch-up ([set_q]) and counter registration
    guarded by the [closed] flag, and the ordered counter release —
    children first, root last — on both the success and crash paths.
    The drivers keep only their read shape: flat reads, flat range
    scans, or a concurrent subquery tree. *)

type 'v result = {
  txn_id : int;
  version : int;  (** [V(Q)] — the snapshot the query read *)
  values : (int * string * 'v option) list;
      (** (node, key, value) per read, in request order *)
  started_at : float;
  finished_at : float;
  staleness : float option;
      (** age of the snapshot at query start: start time minus the time
          version [V(Q)] stopped changing *)
}

type 'v t

val start :
  'v Cluster_state.t ->
  root:int ->
  kind:[ `Read | `Scan | `Select | `Join ] ->
  'v t
(** Pin [V(Q) = q_root], increment the root's query counter (§3.3
    step 1, atomic) and emit the start trace.  Raises
    [Net.Network.Node_down] if the root node is down.  [kind] only
    flavours the trace lines. *)

val version : _ t -> int
val root_node : 'v t -> 'v Node_state.t
val txn_id : _ t -> int

val visit : 'v t -> int -> 'v Node_state.t
(** Flat-executor visit of child node [n] (run inside the RPC at [n]):
    on first visit, catch the node's query version up and register in
    its counter, deferring the release to the query's own [finish].
    No-op after the query closed — a request whose caller already timed
    out must not take counters no cleanup pass will ever see. *)

val enter_subquery : 'v t -> int -> 'v Node_state.t * bool
(** Tree-style visit: take the node's counter for the duration of one
    subquery, returning whether one was actually taken ([false] after
    the query closed, or when per-child counters are off).  Raises
    [Net.Network.Node_down] if the node is down. *)

val leave_subquery : 'v t -> 'v Node_state.t -> taken:bool -> unit
(** Release the counter taken by {!enter_subquery}, if any.  Call
    before propagating child errors, so the subquery's own counter is
    safely released first. *)

val finish : 'v t -> unit
(** Close the query and release its counters in order — children first,
    root last (the root's drain is what unblocks Phase 2, so it must be
    the final one to go).  Runs on direct references, not network
    calls: the decrements must reach child nodes even if the root's
    node has died. *)

val complete : 'v t -> values:(int * string * 'v option) list -> 'v result
(** Success path: {!finish}, count the query against the root node,
    emit the completion trace, build the result. *)

val on_error : 'v t -> exn -> 'a
(** Crash path: release what counters we can ({!finish}, errors
    swallowed) and re-raise [e]. *)
