open Cluster_state

type 'v result = 'v Query_core.result = {
  txn_id : int;
  version : int;
  values : (int * string * 'v option) list;
  started_at : float;
  finished_at : float;
  staleness : float option;
}

(* Both flat paths are drivers over {!Query_core}: it owns the version
   pin, the closed guard, counter registration and the ordered release;
   only the read shape (point reads vs range scans) lives here.

   Replication: the root pin lives at the root partition's primary
   ({!Query_core.start}); reads of other partitions are routed through
   {!Replication.route_read}, which load-balances across the primary and
   every caught-up backup that can serve the pinned version. *)

let run cs ~root ~reads =
  let q = Query_core.start cs ~root ~kind:`Read in
  let root_site = Node_state.id (Query_core.root_node q) in
  let v = Query_core.version q in
  let read_service = cs.config.Config.read_service_time in
  let read_local nd key =
    Sim.Engine.sleep read_service;
    Vstore.Store.read_le (Node_state.store nd) key v
  in
  let read_one (n, key) =
    if n = root then (n, key, read_local (Query_core.root_node q) key)
    else
      let site =
        if replicated cs && n < nparts cs then
          Replication.route_read cs ~src:root_site ~part:n ~pin:v
        else n
      in
      let value =
        Net.Network.call cs.net ~src:root_site ~dst:site (fun () ->
            read_local (Query_core.visit q site) key)
      in
      (n, key, value)
  in
  match List.map read_one reads with
  | values -> Query_core.complete q ~values
  | exception e -> Query_core.on_error q e

(* {2 Predicate selects and joins over the secondary index}

   Both new query kinds are ordinary read-only transactions: they pin a
   version at the root, register counters on every partition they touch,
   and release in order — exactly the {!Query_core} lifecycle of point
   reads and key-range scans.  The fan-out unit is a per-partition
   attribute-range probe instead of a key lookup. *)

type select_plan = [ `Index | `Full_scan | `Both_check ]

exception
  Index_mismatch of {
    node : int;
    version : int;
    indexed : int;
    full_scan : int;
  }

let require_index nd =
  match Node_state.index nd with
  | Some ix -> ix
  | None ->
      invalid_arg
        "Query_exec: node has no secondary index (pass ~index to \
         Cluster.create)"

(* One attribute-range select at the serving node.  Returns the result
   rows plus, under [`Both_check], the full-scan reference computed
   back-to-back at the same pinned version (no yield between the two
   plans, so any difference is the index's fault, not a race).

   Cost model: one probe charge up front (mirroring [run]/[run_scan]),
   then one read-service per row the chosen access path touches — result
   rows for the index plan, {e every item visible at the pin} for the
   full-scan plan.  That asymmetry is the point of the index: an
   analytical predicate selecting few rows pays O(matches) instead of
   O(items).  [`Both_check] charges as the index plan; its reference scan
   is oracle overhead, not workload. *)
let select_local cs ~(plan : select_plan) nd ~lo ~hi v =
  let read_service = cs.config.Config.read_service_time in
  let skip = cs.config.Config.index_skip_visibility in
  Sim.Engine.sleep read_service;
  let ix = require_index nd in
  match plan with
  | `Index ->
      let rows = Vindex.Index.probe ~skip_visibility:skip ix ~lo ~hi v in
      Sim.Engine.sleep (read_service *. float_of_int (List.length rows));
      (rows, None)
  | `Full_scan ->
      let visited = Vstore.Store.scan_all (Node_state.store nd) v in
      Sim.Engine.sleep (read_service *. float_of_int (List.length visited));
      let rows =
        List.filter
          (fun (_, value) ->
            let a = Vindex.Index.extract ix value in
            lo <= a && a <= hi)
          visited
      in
      (rows, None)
  | `Both_check ->
      let rows = Vindex.Index.probe ~skip_visibility:skip ix ~lo ~hi v in
      let reference = Vindex.Index.full_scan ix ~lo ~hi v in
      Sim.Engine.sleep (read_service *. float_of_int (List.length rows));
      (rows, Some reference)

(* Fetch one partition's rows for an attribute range, routed like every
   other read (backups may serve it when caught up to the pin), and fail
   the whole query on an index/full-scan divergence. *)
let select_part cs q ~root ~root_site ~plan v (n, lo, hi) =
  let rows, reference =
    if n = root then select_local cs ~plan (Query_core.root_node q) ~lo ~hi v
    else
      let site =
        if replicated cs && n < nparts cs then
          Replication.route_read cs ~src:root_site ~part:n ~pin:v
        else n
      in
      Net.Network.call cs.net ~src:root_site ~dst:site (fun () ->
          select_local cs ~plan (Query_core.visit q site) ~lo ~hi v)
  in
  (match reference with
  | Some reference when rows <> reference ->
      raise
        (Index_mismatch
           {
             node = n;
             version = v;
             indexed = List.length rows;
             full_scan = List.length reference;
           })
  | _ -> ());
  rows

let run_select cs ~root ~(plan : select_plan) ~ranges =
  let q = Query_core.start cs ~root ~kind:`Select in
  let root_site = Node_state.id (Query_core.root_node q) in
  let v = Query_core.version q in
  let select_one (n, lo, hi) =
    select_part cs q ~root ~root_site ~plan v (n, lo, hi)
    |> List.map (fun (key, value) -> (n, key, Some value))
  in
  match List.concat_map select_one ranges with
  | values -> Query_core.complete q ~values
  | exception e -> Query_core.on_error q e

type 'v join_row = int * string * 'v

type 'v join_result = {
  join : 'v Query_core.result;
      (** the underlying read-only transaction; [values] holds every build
          then probe row the join consumed, in fan-out order *)
  pairs : ('v join_row * 'v join_row) list;
      (** matched (build, probe) pairs, sorted by (build, probe) row id *)
}

let row_compare (an, ak, _) (bn, bk, _) =
  match Int.compare an bn with 0 -> String.compare ak bk | c -> c

let pair_compare (a, b) (c, d) =
  match row_compare a c with 0 -> row_compare b d | order -> order

(* Grace hash join of two attribute ranges, executed as one long read-only
   transaction: both sides' per-partition rows are fetched under a single
   pin (the paper's motivating decision-support query), then joined at the
   root on the indexed attribute.  The join operator itself charges one
   read-service per input row; its sorted output makes the result
   independent of [join_partitions] and of the access-path plan whenever
   the inputs match. *)
let run_join cs ~root ~(plan : select_plan) ~build:(bparts, blo, bhi)
    ~probe:(pparts, plo, phi) =
  let q = Query_core.start cs ~root ~kind:`Join in
  let root_site = Node_state.id (Query_core.root_node q) in
  let v = Query_core.version q in
  let side (parts, lo, hi) =
    List.concat_map
      (fun n ->
        select_part cs q ~root ~root_site ~plan v (n, lo, hi)
        |> List.map (fun (key, value) -> (n, key, value)))
      parts
  in
  match
    let build_rows = side (bparts, blo, bhi) in
    let probe_rows = side (pparts, plo, phi) in
    Sim.Engine.sleep
      (cs.config.Config.read_service_time
      *. float_of_int (List.length build_rows + List.length probe_rows));
    let ix = require_index (Query_core.root_node q) in
    let key_of (_, _, value) = Vindex.Index.extract ix value in
    Vindex.Join.hash_join ~partitions:cs.config.Config.join_partitions
      ~compare:pair_compare ~build:build_rows ~probe:probe_rows
      ~build_key:key_of ~probe_key:key_of
    |> fun pairs -> (build_rows, probe_rows, pairs)
  with
  | build_rows, probe_rows, pairs ->
      let values =
        List.map (fun (n, key, value) -> (n, key, Some value)) build_rows
        @ List.map (fun (n, key, value) -> (n, key, Some value)) probe_rows
      in
      { join = Query_core.complete q ~values; pairs }
  | exception e -> Query_core.on_error q e

let run_scan cs ~root ~ranges =
  let q = Query_core.start cs ~root ~kind:`Scan in
  let root_site = Node_state.id (Query_core.root_node q) in
  let v = Query_core.version q in
  let read_service = cs.config.Config.read_service_time in
  let scan_local nd ~lo ~hi =
    (* Charge one read for the probe up front — mirroring [run], which
       sleeps before the read — then one per item returned. *)
    Sim.Engine.sleep read_service;
    let results = Vstore.Store.range (Node_state.store nd) ~lo ~hi v in
    Sim.Engine.sleep (read_service *. float_of_int (List.length results));
    results
  in
  let scan_one (n, lo, hi) =
    let values =
      if n = root then scan_local (Query_core.root_node q) ~lo ~hi
      else
        let site =
          if replicated cs && n < nparts cs then
            Replication.route_read cs ~src:root_site ~part:n ~pin:v
          else n
        in
        Net.Network.call cs.net ~src:root_site ~dst:site (fun () ->
            scan_local (Query_core.visit q site) ~lo ~hi)
    in
    List.map (fun (key, value) -> (n, key, Some value)) values
  in
  match List.concat_map scan_one ranges with
  | values -> Query_core.complete q ~values
  | exception e -> Query_core.on_error q e
