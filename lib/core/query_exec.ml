open Cluster_state

type 'v result = 'v Query_core.result = {
  txn_id : int;
  version : int;
  values : (int * string * 'v option) list;
  started_at : float;
  finished_at : float;
  staleness : float option;
}

(* Both flat paths are drivers over {!Query_core}: it owns the version
   pin, the closed guard, counter registration and the ordered release;
   only the read shape (point reads vs range scans) lives here.

   Replication: the root pin lives at the root partition's primary
   ({!Query_core.start}); reads of other partitions are routed through
   {!Replication.route_read}, which load-balances across the primary and
   every caught-up backup that can serve the pinned version. *)

let run cs ~root ~reads =
  let q = Query_core.start cs ~root ~kind:`Read in
  let root_site = Node_state.id (Query_core.root_node q) in
  let v = Query_core.version q in
  let read_service = cs.config.Config.read_service_time in
  let read_local nd key =
    Sim.Engine.sleep read_service;
    Vstore.Store.read_le (Node_state.store nd) key v
  in
  let read_one (n, key) =
    if n = root then (n, key, read_local (Query_core.root_node q) key)
    else
      let site =
        if replicated cs && n < nparts cs then
          Replication.route_read cs ~src:root_site ~part:n ~pin:v
        else n
      in
      let value =
        Net.Network.call cs.net ~src:root_site ~dst:site (fun () ->
            read_local (Query_core.visit q site) key)
      in
      (n, key, value)
  in
  match List.map read_one reads with
  | values -> Query_core.complete q ~values
  | exception e -> Query_core.on_error q e

let run_scan cs ~root ~ranges =
  let q = Query_core.start cs ~root ~kind:`Scan in
  let root_site = Node_state.id (Query_core.root_node q) in
  let v = Query_core.version q in
  let read_service = cs.config.Config.read_service_time in
  let scan_local nd ~lo ~hi =
    (* Charge one read for the probe up front — mirroring [run], which
       sleeps before the read — then one per item returned. *)
    Sim.Engine.sleep read_service;
    let results = Vstore.Store.range (Node_state.store nd) ~lo ~hi v in
    Sim.Engine.sleep (read_service *. float_of_int (List.length results));
    results
  in
  let scan_one (n, lo, hi) =
    let values =
      if n = root then scan_local (Query_core.root_node q) ~lo ~hi
      else
        let site =
          if replicated cs && n < nparts cs then
            Replication.route_read cs ~src:root_site ~part:n ~pin:v
          else n
        in
        Net.Network.call cs.net ~src:root_site ~dst:site (fun () ->
            scan_local (Query_core.visit q site) ~lo ~hi)
    in
    List.map (fun (key, value) -> (n, key, Some value)) values
  in
  match List.concat_map scan_one ranges with
  | values -> Query_core.complete q ~values
  | exception e -> Query_core.on_error q e
