open Cluster_state

type 'v result = {
  txn_id : int;
  version : int;
  values : (int * string * 'v option) list;
  started_at : float;
  finished_at : float;
  staleness : float option;
}

let run cs ~root ~reads =
  let root_node = node cs root in
  if not (Node_state.alive root_node) then
    raise (Net.Network.Node_down root);
  let txn_id = Node_state.fresh_txn_id root_node in
  let started_at = now cs in
  (* §3.3 step 1, atomic: pin the version and announce ourselves.  The
     counter is what prevents garbage collection of this snapshot anywhere
     in the system while we run. *)
  let v = Node_state.q root_node in
  Node_state.incr_query_count root_node ~version:v;
  emit cs ~tag:"query"
    (Printf.sprintf "Q%d: starts at node%d with version %d" txn_id root v);
  let child_counters = cs.config.Config.root_only_query_counters = false in
  let touched = Hashtbl.create 4 in
  let child_nodes : 'a Node_state.t list ref = ref [] in
  (* Set once the query released its counters: a request still in flight at
     that point (its caller timed out) must not register fresh counters no
     cleanup pass will ever see. *)
  let closed = ref false in
  let read_service = cs.config.Config.read_service_time in
  let read_local nd key =
    Sim.Engine.sleep read_service;
    Vstore.Store.read_le (Node_state.store nd) key v
  in
  let read_one (n, key) =
    if n = root then (n, key, read_local root_node key)
    else
      let value =
        Net.Network.call cs.net ~src:root ~dst:n (fun () ->
            let nd = node cs n in
            if (not !closed) && not (Hashtbl.mem touched n) then begin
              Hashtbl.replace touched n ();
              (* §3.3 step 2: the child's version is ahead of the node's
                 query version — advancement has begun but this node has
                 not heard yet; it catches up now. *)
              if v > Node_state.q nd then begin
                Node_state.set_q nd v;
                note_version_change cs
              end;
              if child_counters then begin
                Node_state.incr_query_count nd ~version:v;
                child_nodes := nd :: !child_nodes
              end
            end;
            read_local nd key)
      in
      (n, key, value)
  in
  (* Counter bookkeeping runs on direct references, not network calls: if
     the root's node dies mid-query, the decrements must still reach the
     child nodes, or their leaked counters would block Phase 2 forever.
     Children decrement before the root: the root's counter is the one
     whose drain unblocks Phase 2, and it must be last to go. *)
  let finish () =
    closed := true;
    if child_counters then
      List.iter
        (fun nd -> Node_state.decr_query_count nd ~version:v)
        !child_nodes;
    Node_state.decr_query_count root_node ~version:v
  in
  match List.map read_one reads with
  | values ->
      finish ();
      cs.queries_completed <- cs.queries_completed + 1;
      emit cs ~tag:"query" (Printf.sprintf "Q%d: completed" txn_id);
      {
        txn_id;
        version = v;
        values;
        started_at;
        finished_at = now cs;
        staleness = staleness_of cs ~version:v ~at:started_at;
      }
  | exception e ->
      (* A touched node died mid-query: release what we can and re-raise. *)
      (try finish () with _ -> ());
      raise e

let run_scan cs ~root ~ranges =
  let root_node = node cs root in
  if not (Node_state.alive root_node) then raise (Net.Network.Node_down root);
  let txn_id = Node_state.fresh_txn_id root_node in
  let started_at = now cs in
  let v = Node_state.q root_node in
  Node_state.incr_query_count root_node ~version:v;
  emit cs ~tag:"query"
    (Printf.sprintf "Q%d: scan starts at node%d with version %d" txn_id root v);
  let child_counters = not cs.config.Config.root_only_query_counters in
  let touched = Hashtbl.create 4 in
  let child_nodes : 'a Node_state.t list ref = ref [] in
  let closed = ref false in
  let scan_local nd ~lo ~hi =
    let results = Vstore.Store.range (Node_state.store nd) ~lo ~hi v in
    (* Charge one read per item returned (plus one for the probe). *)
    Sim.Engine.sleep
      (cs.config.Config.read_service_time *. float_of_int (1 + List.length results));
    results
  in
  let scan_one (n, lo, hi) =
    let values =
      if n = root then scan_local root_node ~lo ~hi
      else
        Net.Network.call cs.net ~src:root ~dst:n (fun () ->
            let nd = node cs n in
            if (not !closed) && not (Hashtbl.mem touched n) then begin
              Hashtbl.replace touched n ();
              if v > Node_state.q nd then begin
                Node_state.set_q nd v;
                note_version_change cs
              end;
              if child_counters then begin
                Node_state.incr_query_count nd ~version:v;
                child_nodes := nd :: !child_nodes
              end
            end;
            scan_local nd ~lo ~hi)
    in
    List.map (fun (key, value) -> (n, key, Some value)) values
  in
  let finish () =
    closed := true;
    if child_counters then
      List.iter (fun nd -> Node_state.decr_query_count nd ~version:v) !child_nodes;
    Node_state.decr_query_count root_node ~version:v
  in
  match List.concat_map scan_one ranges with
  | values ->
      finish ();
      cs.queries_completed <- cs.queries_completed + 1;
      emit cs ~tag:"query" (Printf.sprintf "Q%d: scan completed" txn_id);
      {
        txn_id;
        version = v;
        values;
        started_at;
        finished_at = now cs;
        staleness = staleness_of cs ~version:v ~at:started_at;
      }
  | exception e ->
      (try finish () with _ -> ());
      raise e
