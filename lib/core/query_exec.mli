(** Read-only transaction (query) execution (paper §3.3).

    Queries acquire no locks and write nothing to the data they read; the
    only mutation they perform is a latched increment/decrement of the query
    counters.  The root subquery pins the query version [V(Q) = q_root]; all
    subqueries read the maximum existing version of each item not exceeding
    [V(Q)].  A subquery arriving at a node whose query version lags behind
    [V(Q)] triggers that node's query-version advancement locally. *)

type 'v result = 'v Query_core.result = {
  txn_id : int;
  version : int;  (** [V(Q)] — the snapshot the query read *)
  values : (int * string * 'v option) list;
      (** (node, key, value) per read, in request order *)
  started_at : float;
  finished_at : float;
  staleness : float option;
      (** age of the snapshot at query start: start time minus the time
          version [V(Q)] stopped changing *)
}

val run : 'v Cluster_state.t -> root:int -> reads:(int * string) list -> 'v result
(** Execute a query rooted at [root] reading the given (node, key) pairs in
    order.  Must be called inside a simulation process.  Raises
    [Net.Network.Node_down] if a touched node is down (queries at dead nodes
    simply fail; they hold no state needing cleanup beyond counters, which
    this function releases). *)

val run_scan :
  'v Cluster_state.t ->
  root:int ->
  ranges:(int * string * string) list ->
  'v result
(** Like {!run}, but each element is a lock-free ordered range scan
    [(node, lo, hi)] over the query's snapshot; results arrive as
    (node, key, Some value) per matching item, in key order per range.
    The motivating decision-support queries (account histories, audits) are
    scans — queries read a consistent snapshot, so no predicate locking is
    needed. *)
