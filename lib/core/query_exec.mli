(** Read-only transaction (query) execution (paper §3.3).

    Queries acquire no locks and write nothing to the data they read; the
    only mutation they perform is a latched increment/decrement of the query
    counters.  The root subquery pins the query version [V(Q) = q_root]; all
    subqueries read the maximum existing version of each item not exceeding
    [V(Q)].  A subquery arriving at a node whose query version lags behind
    [V(Q)] triggers that node's query-version advancement locally. *)

type 'v result = 'v Query_core.result = {
  txn_id : int;
  version : int;  (** [V(Q)] — the snapshot the query read *)
  values : (int * string * 'v option) list;
      (** (node, key, value) per read, in request order *)
  started_at : float;
  finished_at : float;
  staleness : float option;
      (** age of the snapshot at query start: start time minus the time
          version [V(Q)] stopped changing *)
}

val run : 'v Cluster_state.t -> root:int -> reads:(int * string) list -> 'v result
(** Execute a query rooted at [root] reading the given (node, key) pairs in
    order.  Must be called inside a simulation process.  Raises
    [Net.Network.Node_down] if a touched node is down (queries at dead nodes
    simply fail; they hold no state needing cleanup beyond counters, which
    this function releases). *)

val run_scan :
  'v Cluster_state.t ->
  root:int ->
  ranges:(int * string * string) list ->
  'v result
(** Like {!run}, but each element is a lock-free ordered range scan
    [(node, lo, hi)] over the query's snapshot; results arrive as
    (node, key, Some value) per matching item, in key order per range.
    The motivating decision-support queries (account histories, audits) are
    scans — queries read a consistent snapshot, so no predicate locking is
    needed. *)

(** {1 Predicate selects and joins (secondary index)} *)

type select_plan =
  [ `Index  (** probe the {!Vindex.Index}: O(matching rows) per partition *)
  | `Full_scan
    (** visit every item visible at the pin and filter: O(items) —
        the reference plan, byte-identical in results *)
  | `Both_check
    (** equivalence oracle: run both plans back-to-back at the same pinned
        version and raise {!Index_mismatch} if they differ (charged as the
        index plan) *) ]

exception
  Index_mismatch of {
    node : int;
    version : int;
    indexed : int;  (** rows the index probe returned *)
    full_scan : int;  (** rows the reference full scan returned *)
  }
(** Raised (after counter release) by [`Both_check] when an index probe
    disagrees with the full-scan plan at the same pinned version — never on
    a correct index, by the {!Vindex.Index} visibility contract. *)

val run_select :
  'v Cluster_state.t ->
  root:int ->
  plan:select_plan ->
  ranges:(int * string * string) list ->
  'v result
(** Predicate range query: each element [(node, lo, hi)] selects the rows
    of that partition whose {e extracted attribute} lies in [\[lo, hi\]],
    as of the query's pinned version; results arrive as
    (node, key, Some value), ascending by key per range.  Requires the
    cluster to carry a secondary index ([Cluster.create ~index]). *)

type 'v join_row = int * string * 'v

type 'v join_result = {
  join : 'v Query_core.result;
      (** the underlying read-only transaction; [values] holds every build
          then probe row the join consumed, in fan-out order *)
  pairs : ('v join_row * 'v join_row) list;
      (** matched (build, probe) pairs, sorted by (build, probe) row id *)
}

val run_join :
  'v Cluster_state.t ->
  root:int ->
  plan:select_plan ->
  build:(int list * string * string) ->
  probe:(int list * string * string) ->
  'v join_result
(** Grace hash join of two attribute ranges — each side a (partitions,
    attr-lo, attr-hi) fan-out — executed as one long read-only transaction
    under a single pinned version and joined at the root on the indexed
    attribute.  The sorted output is independent of
    {!Config.t.join_partitions} and, whenever the per-side inputs match, of
    the access-path [plan]. *)
