open Cluster_state

let tag = "repl"
let active cs = replicated cs

let store_bound cs =
  if cs.config.Config.overlap_gc then None
  else if cs.config.Config.retain_extra_version then Some 4
  else Some 3

let replay cs log =
  let gc_renumber = cs.config.Config.gc_renumber in
  match store_bound cs with
  | Some b -> Wal.Recovery.replay log ~bound:b ~gc_renumber ()
  | None -> Wal.Recovery.replay log ~gc_renumber ()

let recovered_node cs ~site ~log ~store ~(versions : Wal.Recovery.versions) =
  let nd =
    Node_state.create_recovered ~engine:cs.engine ~node_id:site
      ~scheme:cs.config.Config.scheme ~lock_group:cs.lock_group
      ~shared_counters:cs.config.Config.shared_transaction_counters
      ~disk_force_latency:cs.config.Config.disk_force_latency
      ~group_commit_window:cs.config.Config.group_commit_window
      ~group_commit_batch:cs.config.Config.group_commit_batch
      ~gc_ack_early:cs.config.Config.gc_ack_early ~metrics:cs.metrics
      ~bound:(store_bound cs) ~log ~store
      ~u:versions.Wal.Recovery.update_version
      ~q:versions.Wal.Recovery.query_version
      ~g:versions.Wal.Recovery.collected_version ()
  in
  attach_index_if_configured cs nd;
  nd

let fresh_node cs ~site =
  let nd =
    Node_state.create ~engine:cs.engine ~node_id:site
      ~scheme:cs.config.Config.scheme ~lock_group:cs.lock_group
      ~bound:(store_bound cs) ~gc_renumber:cs.config.Config.gc_renumber
      ~shared_counters:cs.config.Config.shared_transaction_counters
      ~disk_force_latency:cs.config.Config.disk_force_latency
      ~group_commit_window:cs.config.Config.group_commit_window
      ~group_commit_batch:cs.config.Config.group_commit_batch
      ~gc_ack_early:cs.config.Config.gc_ack_early ~metrics:cs.metrics ()
  in
  attach_index_if_configured cs nd;
  nd

(* ---- Backup side: append shipped records and apply them incrementally.

   The apply rules are {!Wal.Recovery.replay} restated over a live node:
   a transaction's writes are buffered in [b_pending] and hit the store
   only at its [Commit] record, version records move the visible u/q/g,
   and a [Checkpoint] swaps in a restored store.  Keeping the two in
   lockstep is what makes a promoted backup indistinguishable from a
   crash-recovered primary. *)

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let apply_record cs b nd r =
  match r with
  | Wal.Record.Begin { txn; _ } -> Hashtbl.replace b.b_pending txn []
  | Wal.Record.Update { txn; key; value } ->
      let writes = Option.value (Hashtbl.find_opt b.b_pending txn) ~default:[] in
      Hashtbl.replace b.b_pending txn ((key, value) :: writes)
  | Wal.Record.Commit { txn; final_version } ->
      (match Hashtbl.find_opt b.b_pending txn with
      | None -> ()
      | Some writes ->
          List.iter
            (fun (key, value) ->
              match value with
              | Some v -> Vstore.Store.write (Node_state.store nd) key final_version v
              | None -> Vstore.Store.delete (Node_state.store nd) key final_version)
            (List.rev writes);
          Hashtbl.remove b.b_pending txn)
  | Wal.Record.Rollback { txn; keep } -> (
      match Hashtbl.find_opt b.b_pending txn with
      | None -> ()
      | Some writes ->
          Hashtbl.replace b.b_pending txn
            (drop (List.length writes - keep) writes))
  | Wal.Record.Abort { txn } -> Hashtbl.remove b.b_pending txn
  | Wal.Record.Advance_update v ->
      Node_state.apply_advance_u nd v;
      note_version_change cs
  | Wal.Record.Advance_query v ->
      Node_state.apply_advance_q nd v;
      note_version_change cs
  | Wal.Record.Collect { collect; query } ->
      Node_state.apply_collect nd ~collect ~query;
      note_version_change cs
  | Wal.Record.Checkpoint { items; u; q; g } ->
      let store =
        match store_bound cs with
        | Some bound ->
            Vstore.Store.restore ~bound ~gc_renumber:cs.config.Config.gc_renumber
              (Vstore.Store.snapshot_of_items items)
        | None ->
            Vstore.Store.restore ~gc_renumber:cs.config.Config.gc_renumber
              (Vstore.Store.snapshot_of_items items)
      in
      Node_state.replace_store nd store ~u ~q ~g;
      Hashtbl.reset b.b_pending;
      note_version_change cs

let send_ack cs b =
  let nd = node cs b.b_site in
  Net.Network.send cs.net ~src:b.b_site ~dst:(primary_site cs b.b_part)
    (Messages.Ship_ack
       {
         part = b.b_part;
         epoch = cs.repl.site_epoch.(b.b_site);
         upto = Wal.Log.length (Node_state.log nd);
       })

let apply_batch cs b nd records =
  List.iter
    (fun r ->
      Wal.Log.append (Node_state.log nd) r;
      apply_record cs b nd r)
    records;
  (* The backup's disk image is the shipped prefix itself: an ack promises
     the records survive this backup's crash, so they are durable by fiat
     (the primary already paid the force before shipping them). *)
  Wal.Log.mark_all_durable (Node_state.log nd)

(* The deliberately broken twin ([Config.replica_ack_early]): acknowledge
   — and bump the visible version counters that version-pinned routing
   trusts — on receipt, then apply the data records only after a delay.
   Reads routed here during the window miss committed writes. *)
let receive_ack_early cs b nd fresh =
  List.iter
    (fun r ->
      match r with
      | Wal.Record.Advance_update v -> Node_state.apply_advance_u nd v
      | Wal.Record.Advance_query v -> Node_state.apply_advance_q nd v
      | _ -> ())
    fresh;
  note_version_change cs;
  let claimed = Wal.Log.length (Node_state.log nd) + List.length fresh in
  Net.Network.send cs.net ~src:b.b_site ~dst:(primary_site cs b.b_part)
    (Messages.Ship_ack
       { part = b.b_part; epoch = cs.repl.site_epoch.(b.b_site); upto = claimed });
  Sim.Engine.sleep 2.0;
  if Node_state.alive nd && node cs b.b_site == nd then apply_batch cs b nd fresh

let receive cs b nd fresh =
  if fresh <> [] && cs.config.Config.replica_ack_early then
    receive_ack_early cs b nd fresh
  else begin
    apply_batch cs b nd fresh;
    send_ack cs b
  end

let handle_ship cs site ~part ~epoch ~from_ ~records =
  let nd = node cs site in
  if Node_state.alive nd then
    match backup_at cs site with
    | None -> () (* the site's role changed while the batch was in flight *)
    | Some b ->
        if b.b_part <> part then ()
        else begin
          let se = cs.repl.site_epoch.(site) in
          if epoch > se then begin
            (* New log generation (checkpoint truncation or failover).
               Only a from-zero batch can carry us across; a mid-epoch
               batch is useless without its prefix and is dropped (repair
               re-ships from zero).  Whatever this replica holds from the
               old generation need not be a prefix of the new log —
               promotion keeps only the longest in-sync copy, so records
               applied here may exist nowhere in the surviving history.
               A store built from them cannot be patched record-by-record;
               start the replica over from nothing. *)
            if from_ = 0 then begin
              cs.nodes.(site) <- fresh_node cs ~site;
              Hashtbl.reset b.b_pending;
              cs.repl.site_epoch.(site) <- epoch;
              receive cs b (node cs site) records
            end
          end
          else if epoch = se then begin
            let len = Wal.Log.length (Node_state.log nd) in
            if from_ <= len then receive cs b nd (drop (len - from_) records)
            else
              (* Gap: an earlier batch was lost.  Re-advertise real
                 progress so the primary's repair rewinds sooner. *)
              send_ack cs b
          end
          (* epoch < se: a straggler from a discarded generation — drop. *)
        end

(* ---- Primary side: shipping. *)

(* Loss repair: if the backup has not acknowledged up to what was shipped
   for a whole catch-up-timeout since the last ship, assume the envelopes
   died (partition, crash in flight) and rewind the cursor to the acked
   mark so the gap goes out again. *)
let maybe_repair cs b =
  if
    Wal.Ship.acked b.b_cursor < Wal.Ship.sent b.b_cursor
    && now cs -. Wal.Ship.last_ship b.b_cursor
       >= cs.config.Config.replica_catchup_timeout
  then Wal.Ship.rewind b.b_cursor ~upto:(Wal.Ship.acked b.b_cursor)

let flush cs p =
  if active cs then begin
    let psite = primary_site cs p in
    let pnode = node cs psite in
    if Node_state.alive pnode then begin
      let log = Node_state.log pnode in
      let horizon =
        Wal.Ship.shippable log
          ~durability_active:(Config.durability_active cs.config)
      in
      let epoch = cs.repl.ship_epoch.(p) in
      Array.iter
        (fun b ->
          if Node_state.alive (node cs b.b_site) then begin
            maybe_repair cs b;
            let from_ = Wal.Ship.sent b.b_cursor in
            if from_ < horizon then begin
              let records = Wal.Log.slice log ~from_ ~upto:horizon in
              Net.Network.send cs.net ~src:psite ~dst:b.b_site
                (Messages.Ship { part = p; epoch; from_; records });
              Wal.Ship.note_ship b.b_cursor ~upto:horizon ~at:(now cs)
            end
          end)
        (backups cs p)
    end
  end

(* Event-driven shipping: commits, advancement phases and GC poke their
   partition after appending (and forcing) records — there is no daemon,
   so a quiescent cluster stays quiescent and [Engine.run] terminates. *)
let poke cs p =
  if active cs && Array.length (backups cs p) > 0 then begin
    let w = cs.config.Config.replica_ship_window in
    if w <= 0.0 then flush cs p
    else if not cs.repl.ship_timer.(p) then begin
      cs.repl.ship_timer.(p) <- true;
      Sim.Engine.schedule cs.engine ~name:"ship-flush" ~delay:w (fun () ->
          cs.repl.ship_timer.(p) <- false;
          flush cs p)
    end
  end

let maybe_resync cs p b =
  if not b.b_insync then begin
    let pnode = node cs (primary_site cs p) in
    let horizon =
      Wal.Ship.shippable (Node_state.log pnode)
        ~durability_active:(Config.durability_active cs.config)
    in
    if Wal.Ship.acked b.b_cursor >= horizon then begin
      b.b_insync <- true;
      if tracing cs then
        emit cs ~tag
          (Printf.sprintf "partition %d: backup site%d caught up, back in sync"
             p b.b_site)
    end
  end

let handle_ship_ack cs site ~src ~part ~epoch ~upto =
  if
    active cs && is_primary_site cs site
    && part_of_site cs site = part
    && epoch = cs.repl.ship_epoch.(part)
  then
    Array.iter
      (fun b ->
        if b.b_site = src && upto <= Wal.Ship.sent b.b_cursor then begin
          let before = Wal.Ship.acked b.b_cursor in
          Wal.Ship.note_ack b.b_cursor ~upto;
          (* A no-progress ack while shipped records are outstanding is
             the backup's gap report: a batch died on the wire (it
             re-advertises its real log length on every unusable ship).
             Rewind to the acknowledged mark and re-ship right away —
             waiting for the quiet-period repair would lose the race
             against steady traffic, which refreshes [last_ship] on every
             flush and so keeps the timeout from ever expiring. *)
          if upto <= before && before < Wal.Ship.sent b.b_cursor then begin
            Wal.Ship.rewind b.b_cursor ~upto:(Wal.Ship.acked b.b_cursor);
            flush cs part
          end;
          maybe_resync cs part b;
          note_repl_change cs
        end)
      (backups cs part)

(* ---- Catch-up gates. *)

let demote cs b ~why =
  if b.b_insync then begin
    b.b_insync <- false;
    cs.repl.demotions <- cs.repl.demotions + 1;
    emit cs ~tag
      (Printf.sprintf "partition %d: backup site%d demoted (%s)" b.b_part
         b.b_site why);
    note_repl_change cs;
    (* Waiters on cluster-wide version agreement no longer count this
       backup; wake them so they re-evaluate. *)
    note_version_change cs
  end

(* Wait until every live in-sync backup of [p] has acknowledged the
   primary-log prefix [tip]; a backup still lagging when the catch-up
   timeout expires is demoted instead of stalling the caller (partition
   tolerance).  Dead backups never gate — the all-dead partition degrades
   to single-copy operation.  [valid] is re-checked at every wake-up: if
   the gating primary crashed (and was perhaps replaced by promotion,
   which resets the survivors' cursors), the wait is moot and must bail
   out without demoting — the laggards it would see belong to the
   successor now. *)
let await_catchup cs p ~tip ~valid =
  let lagging () =
    Array.to_list (backups cs p)
    |> List.filter (fun b ->
           b.b_insync
           && Node_state.alive (node cs b.b_site)
           && Wal.Ship.acked b.b_cursor < tip)
  in
  flush cs p;
  if lagging () <> [] then begin
    let deadline = now cs +. cs.config.Config.replica_catchup_timeout in
    let rec wait () =
      if valid () then
        match lagging () with
        | [] -> ()
        | lag ->
            let remaining = deadline -. now cs in
            if remaining <= 0.0 then
              List.iter (demote cs ~why:"catch-up timeout") lag
            else begin
              ignore
                (Sim.Condition.await_timeout cs.repl.repl_changed
                   ~timeout:remaining
                  : [ `Signaled | `Timeout ]);
              wait ()
            end
    in
    wait ()
  end

let gate cs nd =
  if active cs && Node_state.alive nd then begin
    let s = Node_state.id nd in
    if is_primary_site cs s then begin
      let p = part_of_site cs s in
      if Array.length (backups cs p) > 0 then begin
        let tip =
          Wal.Ship.shippable (Node_state.log nd)
            ~durability_active:(Config.durability_active cs.config)
        in
        let valid () =
          Node_state.alive nd && is_primary_site cs s && node cs s == nd
        in
        await_catchup cs p ~tip ~valid
      end
    end
  end

let commit_gate = gate
let phase_gate cs site = gate cs (node cs site)

(* Outcome of a commit whose primary died while the commit gate waited.
   The commit record is durable on the dead node's disk; whether the
   acknowledgment may still escape depends on where the partition's
   authority went.  No failover: the node is still the primary and will
   recover with its own log — the record survives.  Failover: only the
   promoted successor's log counts, because the deposed primary rejoins
   empty (its unshipped records are discarded), so a record absent there
   is gone for good. *)
let commit_fate cs nd ~txn =
  if not (active cs) then `Own_log
  else begin
    let s = Node_state.id nd in
    let cur = primary_site cs (part_of_site cs s) in
    if cur = s then `Own_log
    else
      let nd' = node cs cur in
      let has =
        List.exists
          (function
            | Wal.Record.Commit { txn = t'; _ } -> t' = txn
            | _ -> false)
          (Wal.Log.records (Node_state.log nd'))
      in
      if has then `Successor nd' else `Lost
  end

(* After Phase 3 appended the Collect record, force it and ship it so the
   backups' garbage versions converge (a query never reads near g, so this
   is pure convergence, not a barrier). *)
let after_gc cs site =
  if active cs && is_primary_site cs site then begin
    let nd = node cs site in
    match Node_state.commit_durable nd with
    | () -> poke cs (part_of_site cs site)
    | exception Wal.Group_commit.Crashed -> ()
  end

(* ---- Version-pinned read routing. *)

(* A backup may serve a read pinned at [pin] only once it has applied
   every record up to the advancement that published [pin] — its applied
   query version is the witness ([Advance_query pin] precedes, in the
   primary's log, every commit the pinned snapshot may still be missing
   ... rather: every commit with final_version <= pin precedes the
   round that retires pin, so applied-q >= pin means the snapshot below
   pin is complete).  Routing round-robins over the primary and the
   eligible backups; the counters stay wherever the read actually runs,
   and the root's own pin (taken at the root partition's primary) is what
   holds garbage collection off globally. *)
let route_read cs ~src ~part ~pin =
  let psite = primary_site cs part in
  if not (active cs) then psite
  else begin
    let eligible b =
      b.b_insync
      && Node_state.alive (node cs b.b_site)
      && Node_state.q (node cs b.b_site) >= pin
      && not (Net.Network.link_is_down cs.net ~src ~dst:b.b_site)
      && not (Net.Network.link_is_down cs.net ~src:b.b_site ~dst:src)
    in
    let cands =
      psite
      :: (Array.to_list (backups cs part)
         |> List.filter eligible
         |> List.map (fun b -> b.b_site))
    in
    match cands with
    | [ only ] -> only
    | _ ->
        let k = List.length cands in
        let site = List.nth cands (cs.repl.rr mod k) in
        cs.repl.rr <- cs.repl.rr + 1;
        if site <> psite then
          cs.repl.backup_reads <- cs.repl.backup_reads + 1;
        site
  end

(* ---- Failover. *)

(* Transfer a mid-flight flat round's expectations from the dead primary
   to its successor: the old site can never acknowledge again, the new
   one now must.  Setting the new slot false before the old one true
   keeps [all_acked] from flickering complete in between (everything here
   is synchronous anyway, but the order costs nothing). *)
let shift_coord_acks cs ~old_site ~new_site =
  Array.iter
    (fun c ->
      match c with
      | Some c when c.c_nparts = 0 && not c.c_abandoned -> (
          match c.c_phase with
          | `Collect_u ->
              c.c_acks_u.(new_site) <- false;
              c.c_acks_u.(old_site) <- true;
              c.c_acks_q.(new_site) <- false;
              c.c_acks_q.(old_site) <- true
          | `Collect_q ->
              c.c_acks_q.(new_site) <- false;
              c.c_acks_q.(old_site) <- true)
      | _ -> ())
    cs.coords

(* Rebuild the in-flight-transaction buffer a recovered backup needs to
   keep applying records mid-transaction: exactly the pending table
   {!Wal.Recovery.replay} would have had after its own log. *)
let rebuild_pending b log =
  Hashtbl.reset b.b_pending;
  List.iter
    (fun r ->
      match r with
      | Wal.Record.Begin { txn; _ } -> Hashtbl.replace b.b_pending txn []
      | Wal.Record.Update { txn; key; value } ->
          let writes =
            Option.value (Hashtbl.find_opt b.b_pending txn) ~default:[]
          in
          Hashtbl.replace b.b_pending txn ((key, value) :: writes)
      | Wal.Record.Commit { txn; _ } | Wal.Record.Abort { txn } ->
          Hashtbl.remove b.b_pending txn
      | Wal.Record.Rollback { txn; keep } -> (
          match Hashtbl.find_opt b.b_pending txn with
          | None -> ()
          | Some writes ->
              Hashtbl.replace b.b_pending txn
                (drop (List.length writes - keep) writes))
      | Wal.Record.Advance_update _ | Wal.Record.Advance_query _
      | Wal.Record.Collect _ ->
          ()
      | Wal.Record.Checkpoint _ -> Hashtbl.reset b.b_pending)
    (Wal.Log.records log)

(* Promotion: WAL-replay recovery of the chosen backup's own log, exactly
   the path a crashed primary takes — counters restart at zero, in-flight
   subtransactions die and are rejected, the store is rebuilt from the
   log.  Candidate: the live in-sync backup with the longest log (it holds
   every record any in-sync backup acknowledged, so no gate-acknowledged
   commit is lost); ties break to the lowest site id. *)
let promote cs ~part ~old_site =
  let cands =
    Array.to_list (backups cs part)
    |> List.filter (fun b ->
           b.b_insync && Node_state.alive (node cs b.b_site))
  in
  match cands with
  | [] -> `No_backup
  | first :: rest ->
      let len b = Wal.Log.length (Node_state.log (node cs b.b_site)) in
      let best =
        List.fold_left
          (fun a b ->
            if len b > len a || (len b = len a && b.b_site < a.b_site) then b
            else a)
          first rest
      in
      let new_site = best.b_site in
      let log = Node_state.log (node cs new_site) in
      let store, versions = replay cs log in
      cs.nodes.(new_site) <- recovered_node cs ~site:new_site ~log ~store ~versions;
      cs.repl.primary_of.(part) <- new_site;
      cs.repl.backups_of.(part) <-
        Array.of_list
          (List.filter
             (fun b -> b.b_site <> new_site)
             (Array.to_list (backups cs part)));
      (* The promoted log shares a prefix with, but then diverges from,
         every copy the old epoch produced — a crashed backup or demoted
         straggler may even hold records the new primary never had.
         Splicing by record index would silently skip the new history, so
         failover starts a fresh epoch (exactly like a checkpoint
         truncation): stale copies become unmistakable and every backup
         rebuilds from the from-zero re-ship instead. *)
      let e = cs.repl.ship_epoch.(part) + 1 in
      cs.repl.ship_epoch.(part) <- e;
      cs.repl.site_epoch.(new_site) <- e;
      cs.repl.promotions <- cs.repl.promotions + 1;
      (* The cursors were the dead primary's view; start over from zero. *)
      Array.iter (fun b -> Wal.Ship.reset b.b_cursor) (backups cs part);
      shift_coord_acks cs ~old_site ~new_site;
      emit cs ~tag
        (Printf.sprintf
           "partition %d: site%d promoted to primary (was site%d; u=%d q=%d \
            g=%d)"
           part new_site old_site versions.Wal.Recovery.update_version
           versions.Wal.Recovery.query_version
           versions.Wal.Recovery.collected_version);
      note_version_change cs;
      note_repl_change cs;
      poke cs part;
      `Promoted new_site

(* Crash hook, run by [Cluster.crash] after the node is killed and marked
   down.  A crashed backup just leaves the read set; a crashed primary
   triggers promotion (or degrades the partition to "down until recovery"
   when no backup can serve). *)
let on_crash cs ~site =
  if active cs then
    match backup_at cs site with
    | Some b -> demote cs b ~why:"crashed"
    | None ->
        if is_primary_site cs site then begin
          let part = part_of_site cs site in
          match promote cs ~part ~old_site:site with
          | `Promoted _ -> ()
          | `No_backup ->
              emit cs ~tag
                (Printf.sprintf
                   "partition %d: primary site%d down, no backup eligible"
                   part site)
        end

(* Recovery hook for a site that is not (or no longer) its partition's
   primary.  A crashed backup rebuilds from its own log — every record it
   ever held was acknowledged, hence durable by fiat, so nothing is lost —
   and re-earns in-sync status through catch-up.  A deposed primary may
   hold durable records that were never shipped and exist in no current
   log; its state is unsalvageable, so it rejoins empty and full-resyncs
   (epoch -1 forces adoption of the first from-zero ship). *)
let recover_as_backup cs ~site =
  let old = node cs site in
  if Node_state.alive old then
    invalid_arg "Replication.recover_as_backup: node is not down";
  let part = part_of_site cs site in
  (match backup_at cs site with
  | Some b when cs.repl.site_epoch.(site) = cs.repl.ship_epoch.(part) ->
      (* Same generation: the current primary shipped every record this
         log holds, so it is a prefix of that primary's log and safe to
         rebuild from directly. *)
      let log = Node_state.log old in
      let store, versions = replay cs log in
      cs.nodes.(site) <- recovered_node cs ~site ~log ~store ~versions;
      rebuild_pending b log;
      b.b_insync <- false;
      Wal.Ship.rewind b.b_cursor ~upto:(Wal.Log.length log)
  | Some b ->
      (* The partition failed over (or checkpointed) while this backup was
         down: its log belongs to a dead generation and may hold records
         that exist nowhere in the surviving history.  Replaying them would
         fork the replica, so rejoin empty and adopt the next from-zero
         ship. *)
      cs.nodes.(site) <- fresh_node cs ~site;
      Hashtbl.reset b.b_pending;
      b.b_insync <- false;
      cs.repl.site_epoch.(site) <- -1;
      Wal.Ship.reset b.b_cursor
  | None ->
      cs.nodes.(site) <- fresh_node cs ~site;
      cs.repl.site_epoch.(site) <- -1;
      cs.repl.backups_of.(part) <-
        Array.append cs.repl.backups_of.(part)
          [|
            {
              b_part = part;
              b_site = site;
              b_cursor = Wal.Ship.create ();
              b_insync = false;
              b_pending = Hashtbl.create 16;
            };
          |]);
  Net.Network.set_down cs.net ~node:site false;
  emit cs ~tag
    (Printf.sprintf "partition %d: site%d rejoins as backup (resyncing)" part
       site);
  note_version_change cs;
  poke cs part

(* A quiescent checkpoint truncated the primary's log: its record indexes
   restart, so the partition moves to a fresh epoch and every backup gets
   a full resync from the (self-contained) post-checkpoint log. *)
let on_checkpoint cs ~site =
  if active cs && is_primary_site cs site then begin
    let p = part_of_site cs site in
    if Array.length (backups cs p) > 0 then begin
      cs.repl.ship_epoch.(p) <- cs.repl.ship_epoch.(p) + 1;
      cs.repl.site_epoch.(site) <- cs.repl.ship_epoch.(p);
      Array.iter (fun b -> Wal.Ship.reset b.b_cursor) (backups cs p);
      poke cs p
    end
  end

let backup_reads cs = cs.repl.backup_reads
let demotions cs = cs.repl.demotions
let promotions cs = cs.repl.promotions
