(** Per-partition primary–backup replication (asynchronous WAL shipping).

    With [Config.replicas = r > 0] every partition has a primary plus [r]
    backup sites.  All updates run at primaries; each primary ships its
    WAL to its backups in [Ship] batches (event-driven — commits,
    advancement phases and GC poke the shipper; [replica_ship_window]
    coalesces pokes).  A backup appends the shipped records to its own log
    and applies them incrementally with exactly {!Wal.Recovery.replay}'s
    rules, so its store tracks the primary's committed state and its log
    is always a prefix of the primary's (per epoch).

    {b Version-pinned reads}: a backup serves a read pinned at version [v]
    only once its applied query version has reached [v]
    ({!route_read}).  {b Advancement}: Phase 2 cannot retire the past
    version until every live in-sync backup has acknowledged the
    primary-log prefix ending at the phase's own record; a straggler is
    demoted (out of the read set) rather than allowed to stall the round.
    {b Commit}: the same gate runs at commit time, which is what makes
    promotion lossless for acknowledged commits.  {b Failover}: when a
    primary crashes, the live in-sync backup with the longest log replays
    it — the ordinary crash-recovery path — and takes over.

    With [replicas = 0] every function here is a no-op (or the identity,
    for {!route_read}) and the cluster behaves bit-identically to the
    unreplicated code. *)

val active : _ Cluster_state.t -> bool

(** {1 Shipping} *)

val flush : _ Cluster_state.t -> int -> unit
(** [flush cs p] ships partition [p]'s unshipped durable log suffix to
    each live backup now (and rewinds cursors whose ships appear lost —
    unacknowledged for a full [replica_catchup_timeout]). *)

val poke : _ Cluster_state.t -> int -> unit
(** Request a ship for partition [p]: immediate with
    [replica_ship_window = 0], else coalesced into one flush per
    window. *)

val handle_ship :
  'v Cluster_state.t ->
  int ->
  part:int ->
  epoch:int ->
  from_:int ->
  records:'v Wal.Record.t list ->
  unit
(** Backup-side ingest of a [Ship] batch (see {!Messages.t} for the epoch
    discipline).  Appends the unseen suffix, applies it, and answers with
    a cumulative [Ship_ack]. *)

val handle_ship_ack :
  _ Cluster_state.t -> int -> src:int -> part:int -> epoch:int -> upto:int -> unit
(** Primary-side ingest of a [Ship_ack]: advances the backup's cursor,
    re-promotes a demoted backup that has caught back up to the ship
    horizon, and wakes any catch-up gate. *)

(** {1 Catch-up gates} *)

val commit_gate : 'v Cluster_state.t -> 'v Node_state.t -> unit
(** Run at a primary after a subtransaction's commit record is durable:
    wait until every live in-sync backup has acknowledged up to the
    current durable log tip, demoting stragglers at
    [replica_catchup_timeout].  Guarantees that any backup still eligible
    for promotion holds this commit. *)

val commit_fate :
  'v Cluster_state.t ->
  'v Node_state.t ->
  txn:int ->
  [ `Own_log | `Successor of 'v Node_state.t | `Lost ]
(** After {!commit_gate} returned with [nd] dead: whether transaction
    [txn]'s commit record survives in the partition's authoritative copy.
    [`Own_log]: no failover happened — the dead node is still the primary
    and recovers with its own durable log.  [`Successor nd']: the
    partition failed over and the promoted primary [nd'] holds the
    record (the caller should gate again at [nd'] before acknowledging).
    [`Lost]: the successor does not hold it, and the deposed primary
    rejoins empty — the commit is gone and no acknowledgment may
    escape. *)

val phase_gate : _ Cluster_state.t -> int -> unit
(** Same gate, run at site [i] before it acknowledges either advancement
    phase.  Phase 1: in-sync backups must hold the [Advance_update]
    record before the round proceeds, so no two in-sync copies ever
    disagree on both counters.  Phase 2: backups must hold the
    [Advance_query] record (and all commits before it) before the
    cluster may retire the past version their pinned readers could still
    need. *)

val after_gc : _ Cluster_state.t -> int -> unit
(** After Phase 3 appends the [Collect] record at a primary: force it and
    ship it, so backup garbage versions converge. *)

(** {1 Read routing} *)

val route_read : _ Cluster_state.t -> src:int -> part:int -> pin:int -> int
(** The site that should serve a read of partition [part] pinned at
    version [pin], issued from site [src]: round-robin across the primary
    and every live, in-sync, reachable backup whose applied query version
    has reached [pin].  Unreplicated: the partition itself. *)

(** {1 Failover and recovery hooks} *)

val on_crash : _ Cluster_state.t -> site:int -> unit
(** Called by {!Cluster.crash} after the site is killed and marked down.
    Backup: demoted out of the read set.  Primary: the best backup (live,
    in-sync, longest log; ties to the lowest site id) is promoted by WAL
    replay, the partition's topology and mid-flight advancement rounds
    are rewritten to the new primary, and surviving backups resync from
    it. *)

val recover_as_backup : _ Cluster_state.t -> site:int -> unit
(** Called by {!Cluster.recover} for a site that is not its partition's
    current primary.  A crashed backup whose log belongs to the current
    ship epoch replays it and rejoins out-of-sync (re-promoted once it
    catches up).  If the partition failed over or checkpointed while the
    backup was down — its epoch is stale — or if the site is a deposed
    primary, its log may hold records that exist nowhere in the surviving
    history, so it rejoins {e empty} and full-resyncs from the current
    primary. *)

val on_checkpoint : _ Cluster_state.t -> site:int -> unit
(** Called after a primary's quiescent checkpoint truncated its log:
    starts a new ship epoch and full-resyncs the backups. *)

(** {1 Metrics} *)

val backup_reads : _ Cluster_state.t -> int
val demotions : _ Cluster_state.t -> int
val promotions : _ Cluster_state.t -> int
