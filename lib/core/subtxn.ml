open Cluster_state

type abort_reason =
  [ `Deadlock | `Node_down of int | `Rpc_timeout of int | `Version_mismatch ]

exception Txn_abort of abort_reason

type state = Running | Aborting | Finished

type 'v t = {
  txn_id : int;
  txn_state : state ref;
  sub_node : 'v Node_state.t;
  session : 'v Wal.Scheme.session;
  mutable counted : int;
      (* version whose updateCount slot this subtransaction occupies — its
         start version unless the §8 eager hand-off moved it *)
  mutable is_finished : bool;
  mutable is_committed : bool;
      (* commit record durable here — [is_finished] alone cannot tell a
         committed participant from an aborted one, and the session layer's
         idempotence guard needs the distinction *)
  mutable commit_submitted : bool;
      (* store changes and the Commit record are in (point of no return
         locally) but the durability force may still be pending: the window
         in which a coordinator that timed out must wait, not rerun *)
  mutable commit_finalized : bool;
      (* the post-force bookkeeping (counter hand-back, lock release,
         replication settle) ran; duplicate decision deliveries — a
         redriven commit racing the original — must not run it twice *)
  mutable committed_at : float;
      (* local time the commit finalized (locks released, writes visible)
         — the instant serializability oracles order conflicts by, stamped
         here because a coordinator that lost the ack learns of it late *)
  mutable acq_order : string list;
      (* keys in first-acquisition order, newest first; savepoints mark a
         position so rollback can release exactly the scope's fresh locks *)
}

type 'v savepoint = {
  sv_mark : 'v Wal.Scheme.savepoint;
  sv_acq : string list; (* physical tail of [acq_order] at the mark *)
}

let check_alive nd =
  if not (Node_state.alive nd) then
    raise (Txn_abort (`Node_down (Node_state.id nd)))

let check_live t =
  check_alive t.sub_node;
  match !(t.txn_state) with
  | Running -> ()
  | Aborting | Finished ->
      (* Another subtransaction of this transaction already failed; do not
         touch data on behalf of a dead transaction. *)
      raise (Txn_abort `Deadlock)

let start cs ~txn_id ~state ~node:nd ~carried =
  check_alive nd;
  if cs.config.Config.piggyback_version && carried > Node_state.u nd then begin
    Node_state.set_u nd carried;
    note_version_change cs
  end;
  (* §3.4 step 1, atomic: version lookup and counter increment. *)
  let v = Node_state.u nd in
  let session =
    Wal.Scheme.begin_session (Node_state.scheme nd) ~txn:txn_id ~version:v
  in
  Node_state.incr_update_count nd ~version:v;
  if tracing cs then
    emit cs ~tag:"txn"
      (Printf.sprintf "T%d: subtransaction at node%d starts in version %d"
         txn_id (Node_state.id nd) v);
  {
    txn_id;
    txn_state = state;
    sub_node = nd;
    session;
    counted = v;
    is_finished = false;
    is_committed = false;
    commit_submitted = false;
    commit_finalized = false;
    committed_at = nan;
    acq_order = [];
  }

let node t = t.sub_node
let version t = Wal.Scheme.version t.session
let finished t = t.is_finished
let committed t = t.is_committed
let commit_submitted t = t.commit_submitted
let committed_at t = t.committed_at

(* moveToFuture plus the bookkeeping around it.  In the baseline
   synchronous-advancement mode there is no moveToFuture: a transaction
   that would need one is aborted instead. *)
let move_to cs t ~newv ~at_commit =
  if newv > version t then begin
    if cs.config.Config.abort_on_version_mismatch then
      raise (Txn_abort `Version_mismatch);
    Wal.Scheme.move_to_future (Node_state.scheme t.sub_node) t.session
      ~new_version:newv;
    if tracing cs then
      emit cs ~tag:"txn"
        (Printf.sprintf "T%d: moveToFuture(%d) at node%d (%s)" t.txn_id newv
           (Node_state.id t.sub_node)
           (if at_commit then "commit time" else "data access"));
    Sim.Metrics.record_mtf cs.metrics ~node:(Node_state.id t.sub_node)
      ~at_commit;
    if cs.config.Config.eager_counter_handoff then begin
      (* §8: appear to have "started" in the advanced version so Phase 1
         need not wait for us. *)
      Node_state.decr_update_count t.sub_node ~version:t.counted;
      Node_state.incr_update_count t.sub_node ~version:newv;
      t.counted <- newv
    end
  end

let lock cs t key mode =
  ignore cs;
  check_live t;
  let fresh =
    Lockmgr.Lock_table.holds (Node_state.locks t.sub_node) ~owner:t.txn_id ~key
    = None
  in
  match
    Lockmgr.Lock_table.acquire (Node_state.locks t.sub_node) ~owner:t.txn_id
      ~key mode
  with
  | `Granted -> (
      (* The wait may have outlived the transaction (a sibling aborted us
         while we were queued); the abort already released our locks, so
         this fresh grant must not leak. *)
      match !(t.txn_state) with
      | Running -> if fresh then t.acq_order <- key :: t.acq_order
      | Aborting | Finished ->
          Lockmgr.Lock_table.release_all (Node_state.locks t.sub_node)
            ~owner:t.txn_id;
          raise (Txn_abort `Deadlock))
  | `Deadlock -> raise (Txn_abort `Deadlock)

(* Encountering a later version of a locked item means a conflicting
   transaction of the next version already committed; serialize after it by
   moving to the node's current update version (§3.4 steps 2-3). *)
let catch_up cs t key =
  match Vstore.Store.max_version (Node_state.store t.sub_node) key with
  | Some cur when cur > version t ->
      move_to cs t ~newv:(Node_state.u t.sub_node) ~at_commit:false
  | _ -> ()

let read_current t key =
  let scheme = Node_state.scheme t.sub_node in
  match Wal.Scheme.read_own scheme t.session key with
  | Some own -> own
  | None -> Vstore.Store.read_le (Node_state.store t.sub_node) key (version t)

let read cs t key =
  lock cs t key Lockmgr.Lock_table.Shared;
  Sim.Engine.sleep cs.config.Config.read_service_time;
  match Wal.Scheme.read_own (Node_state.scheme t.sub_node) t.session key with
  | Some own -> own
  | None ->
      catch_up cs t key;
      Vstore.Store.read_le (Node_state.store t.sub_node) key (version t)

let write_value cs t key value =
  lock cs t key Lockmgr.Lock_table.Exclusive;
  Sim.Engine.sleep cs.config.Config.write_service_time;
  catch_up cs t key;
  Wal.Scheme.write (Node_state.scheme t.sub_node) t.session key value

let write cs t key value = write_value cs t key (Some value)
let delete cs t key = write_value cs t key None

let read_modify_write cs t key f =
  lock cs t key Lockmgr.Lock_table.Exclusive;
  Sim.Engine.sleep cs.config.Config.read_service_time;
  catch_up cs t key;
  let current = read_current t key in
  Sim.Engine.sleep cs.config.Config.write_service_time;
  Wal.Scheme.write (Node_state.scheme t.sub_node) t.session key (Some (f current))

let savepoint cs t =
  ignore cs;
  check_live t;
  {
    sv_mark = Wal.Scheme.savepoint (Node_state.scheme t.sub_node) t.session;
    sv_acq = t.acq_order;
  }

(* Keys first acquired since the mark: [acq_order] grows by consing, so the
   mark's list is a physical tail of the current one. *)
let scope_keys t sp =
  let rec collect acc l =
    if l == sp.sv_acq then acc
    else match l with [] -> acc | key :: tl -> collect (key :: acc) tl
  in
  collect [] t.acq_order

let rollback_to cs t sp =
  check_live t;
  Wal.Scheme.rollback_to (Node_state.scheme t.sub_node) t.session sp.sv_mark;
  (* Locks first acquired inside the rolled-back scope are released so the
     items become re-acquirable (pre-scope locks — including those upgraded
     inside the scope — are conservatively kept: a pre-scope read stays
     protected).  The [savepoint_leak] twin forgets this release: the
     rolled-back scope's items stay locked, manufacturing deadlocks the
     clean rollback makes impossible. *)
  if not cs.config.Config.savepoint_leak then
    List.iter
      (fun key ->
        Lockmgr.Lock_table.release_one (Node_state.locks t.sub_node)
          ~owner:t.txn_id ~key)
      (scope_keys t sp);
  t.acq_order <- sp.sv_acq;
  if tracing cs then
    emit cs ~tag:"txn"
      (Printf.sprintf "T%d: savepoint rollback at node%d" t.txn_id
         (Node_state.id t.sub_node))

let prepare cs t =
  ignore cs;
  check_live t;
  Lockmgr.Lock_table.release_shared (Node_state.locks t.sub_node)
    ~owner:t.txn_id;
  version t

(* Participants behind the global version treat the commit message as the
   signal that advancement began (§3.4 step 8), move to the future, then
   commit. *)
let commit cs t ~final_version =
  check_alive t.sub_node;
  if t.is_committed then ()
  else if t.is_finished && not t.commit_submitted then
    (* A stale decision: the coordinator gave this transaction up while
       the commit message was in flight and the subtransaction has already
       rolled back (locks released, workspace gone).  Applying now would
       resurrect its writes without locks — refuse silently; the caller's
       own timeout already decided the outcome. *)
    ()
  else begin
    if not t.commit_submitted then begin
      if version t < final_version then begin
        if Node_state.u t.sub_node < final_version then begin
          Node_state.set_u t.sub_node final_version;
          note_version_change cs
        end;
        move_to cs t ~newv:final_version ~at_commit:true
      end;
      Wal.Scheme.commit (Node_state.scheme t.sub_node) t.session
        ~final_version;
      (* The store changes and the Commit record are in; the subtransaction
         is past the point of no return locally — [abort] must not touch it
         even if the durability wait below fails. *)
      t.commit_submitted <- true;
      t.is_finished <- true
    end;
    (* Group commit: the acknowledgement (and the lock release ordering
       conflicting transactions behind this commit) waits until the Commit
       record is forced.  If the node crashes first, the record may be lost
       with the crash and no ack must escape.  A duplicate delivery — a
       redriven decision racing the original — waits on the same force;
       the finalization below runs exactly once. *)
    (try Node_state.commit_durable t.sub_node
     with Wal.Group_commit.Crashed ->
       raise (Txn_abort (`Node_down (Node_state.id t.sub_node))));
    if t.commit_finalized then ()
    else begin
      t.commit_finalized <- true;
      t.is_committed <- true;
      t.committed_at <- now cs;
      Node_state.decr_update_count t.sub_node ~version:t.counted;
      Lockmgr.Lock_table.release_all (Node_state.locks t.sub_node)
        ~owner:t.txn_id;
  (* Replication: the commit acknowledgment must also cover the backups —
     wait (after releasing locks, so conflicting transactions are not
     serialized behind the ship round-trip) until every live in-sync
     backup holds this commit, demoting stragglers at the timeout.  This
     is what makes failover lossless for acknowledged commits: any backup
     still eligible for promotion has the record. *)
  let rec settle nd =
    Replication.commit_gate cs nd;
    if not (Node_state.alive nd) then
      (* The gate yields, so the primary may have died while we waited.
         The acknowledgment may escape only if the commit survives in the
         partition's authoritative copy — the promoted successor's log,
         or the dead node's own durable log when no failover happened
         (see {!Replication.commit_fate}).  In the successor case, gate
         again there so its backups also come to hold the record before
         the ack escapes; if the record survives nowhere, no ack may
         escape, exactly as if the force had failed. *)
      match Replication.commit_fate cs nd ~txn:t.txn_id with
      | `Own_log -> ()
      | `Successor nd' -> settle nd'
      | `Lost ->
          (* Failover discarded the commit record: the write is gone for
             good, so the session layer's idempotence guard must not treat
             this participant as committed. *)
          t.is_committed <- false;
          raise (Txn_abort (`Node_down (Node_state.id nd)))
      in
      settle t.sub_node
    end
  end

let abort cs t =
  ignore cs;
  if not t.is_finished then begin
    Wal.Scheme.abort (Node_state.scheme t.sub_node) t.session;
    Node_state.decr_update_count t.sub_node ~version:t.counted;
    Lockmgr.Lock_table.release_all (Node_state.locks t.sub_node)
      ~owner:t.txn_id;
    t.is_finished <- true
  end
