(** One update subtransaction at one node — the shared machinery under both
    the flat executor ({!Update_exec}) and the R*-style tree executor
    ({!Tree_txn}).

    A subtransaction owns a durability session, occupies one update-counter
    slot, and carries the moveToFuture bookkeeping (§3.4): a later-version
    data item encountered under lock drags the subtransaction forward; the
    §8 eager hand-off moves its counter occupancy along.

    All operations must run inside a simulation process, executing at the
    subtransaction's node (callers route through the network).  A
    transaction's subtransactions share a {!state} cell: once any of them
    aborts, operations of the others fail fast with {!Txn_abort} instead of
    touching data under a dead transaction. *)

type abort_reason =
  [ `Deadlock | `Node_down of int | `Rpc_timeout of int | `Version_mismatch ]

exception Txn_abort of abort_reason

type state = Running | Aborting | Finished

type 'v t

val start :
  'v Cluster_state.t ->
  txn_id:int ->
  state:state ref ->
  node:'v Node_state.t ->
  carried:int ->
  'v t
(** Begin a subtransaction at the node (§3.4 step 1: version lookup and
    counter increment, atomically).  [carried] is the transaction's highest
    version at dispatch time; with {!Config.piggyback_version} it can raise
    the node's update version. *)

val node : 'v t -> 'v Node_state.t
val version : 'v t -> int
(** Current version [V(T_i)]. *)

val finished : 'v t -> bool

val committed : 'v t -> bool
(** The subtransaction's commit record is durable (and, under replication,
    not discarded by a failover).  Distinguishes a committed participant
    from an aborted one after the transaction failed mid-commit-round —
    the session layer's idempotence guard. *)

val committed_at : 'v t -> float
(** Local time the commit finalized (locks released, writes visible) —
    what serializability oracles order same-version conflicts by; [nan]
    until {!committed}.  Stamped at the participant because a coordinator
    whose ack was lost only learns of the commit later. *)

val commit_submitted : 'v t -> bool
(** The commit decision reached this participant: store changes and the
    Commit record are in, though the durability force may still be pending.
    [commit_submitted] without {!committed} is the in-limbo window a
    coordinator that timed out must wait out (or redrive) rather than
    rerun the transaction — the force completing commits it, the node
    crashing first loses it. *)

val read : 'v Cluster_state.t -> 'v t -> string -> 'v option
val write : 'v Cluster_state.t -> 'v t -> string -> 'v -> unit
val read_modify_write : 'v Cluster_state.t -> 'v t -> string -> ('v option -> 'v) -> unit
val delete : 'v Cluster_state.t -> 'v t -> string -> unit

type 'v savepoint
(** A mark in this subtransaction's write and lock history. *)

val savepoint : 'v Cluster_state.t -> 'v t -> 'v savepoint

val rollback_to : 'v Cluster_state.t -> 'v t -> 'v savepoint -> unit
(** Partial abort: erase every write made since the mark (logging a
    [Rollback] record) and release the locks first acquired since it, so
    the items become re-acquirable by other transactions.  Locks held
    before the mark — including any upgraded inside the scope — are kept:
    strict 2PL still covers everything the surviving write-set and
    pre-scope reads depend on.  Reads made inside the rolled-back scope are
    void (the session layer discards the scope's results with it).  With
    {!Config.savepoint_leak} the lock release is skipped — the deliberately
    broken twin the explorer convicts. *)

val prepare : 'v Cluster_state.t -> 'v t -> int
(** Reach the prepared state: release shared locks, report [V(T_i)] (the
    version piggybacked on the [prepared] message). *)

val commit : 'v Cluster_state.t -> 'v t -> final_version:int -> unit
(** Process the [commit(V(T))] message: if behind, treat it as the signal
    that advancement began, move to the future, then commit, decrement the
    counter and release all locks.  Idempotent: a duplicate delivery (the
    session layer redrives the decision after a timeout) waits for
    durability without reapplying, and a stale delivery to a participant
    that already rolled back is refused silently. *)

val abort : 'v Cluster_state.t -> 'v t -> unit
(** Roll back and release; no-op if already finished (a participant that
    committed before the failure is past the point of no return). *)
