(** One update subtransaction at one node — the shared machinery under both
    the flat executor ({!Update_exec}) and the R*-style tree executor
    ({!Tree_txn}).

    A subtransaction owns a durability session, occupies one update-counter
    slot, and carries the moveToFuture bookkeeping (§3.4): a later-version
    data item encountered under lock drags the subtransaction forward; the
    §8 eager hand-off moves its counter occupancy along.

    All operations must run inside a simulation process, executing at the
    subtransaction's node (callers route through the network).  A
    transaction's subtransactions share a {!state} cell: once any of them
    aborts, operations of the others fail fast with {!Txn_abort} instead of
    touching data under a dead transaction. *)

type abort_reason =
  [ `Deadlock | `Node_down of int | `Rpc_timeout of int | `Version_mismatch ]

exception Txn_abort of abort_reason

type state = Running | Aborting | Finished

type 'v t

val start :
  'v Cluster_state.t ->
  txn_id:int ->
  state:state ref ->
  node:'v Node_state.t ->
  carried:int ->
  'v t
(** Begin a subtransaction at the node (§3.4 step 1: version lookup and
    counter increment, atomically).  [carried] is the transaction's highest
    version at dispatch time; with {!Config.piggyback_version} it can raise
    the node's update version. *)

val node : 'v t -> 'v Node_state.t
val version : 'v t -> int
(** Current version [V(T_i)]. *)

val finished : 'v t -> bool

val read : 'v Cluster_state.t -> 'v t -> string -> 'v option
val write : 'v Cluster_state.t -> 'v t -> string -> 'v -> unit
val read_modify_write : 'v Cluster_state.t -> 'v t -> string -> ('v option -> 'v) -> unit
val delete : 'v Cluster_state.t -> 'v t -> string -> unit

val prepare : 'v Cluster_state.t -> 'v t -> int
(** Reach the prepared state: release shared locks, report [V(T_i)] (the
    version piggybacked on the [prepared] message). *)

val commit : 'v Cluster_state.t -> 'v t -> final_version:int -> unit
(** Process the [commit(V(T))] message: if behind, treat it as the signal
    that advancement began, move to the future, then commit, decrement the
    counter and release all locks. *)

val abort : 'v Cluster_state.t -> 'v t -> unit
(** Roll back and release; no-op if already finished (a participant that
    committed before the failure is past the point of no return). *)
