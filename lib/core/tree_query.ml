open Cluster_state

type plan = {
  at : int;
  keys : string list;
  selects : (string * string) list;
  children : plan list;
}

let reads ?(selects = []) at keys children = { at; keys; selects; children }

let rec plan_nodes plan = plan.at :: List.concat_map plan_nodes plan.children

let validate plan =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg "Tree_query.run: plan visits a node twice"
      else Hashtbl.replace seen n ())
    (plan_nodes plan)

(* The tree driver over {!Query_core}: each subquery takes its node's
   counter for the duration of its subtree (enter/leave), the root's
   pinned counter is released by the core on completion. *)
let run cs ~plan =
  validate plan;
  let root = plan.at in
  let q = Query_core.start cs ~root ~kind:`Read in
  let v = Query_core.version q in
  let read_service = cs.config.Config.read_service_time in
  (* Execute the subquery at [p]; returns its composed results (own reads
     then children's, preorder).  [is_root] marks the pinned root counter,
     which must be released last — by the core, not here. *)
  let rec exec_subquery parent_node (p : plan) ~is_root =
    let body () =
      let nd, taken =
        if is_root then (Query_core.root_node q, false)
        else Query_core.enter_subquery q p.at
      in
      let own =
        List.map
          (fun key ->
            Sim.Engine.sleep read_service;
            (p.at, key, Vstore.Store.read_le (Node_state.store nd) key v))
          p.keys
      in
      (* Index probes ride the same subquery: same pin, same counter, one
         probe charge plus one per returned row (the flat executor's cost
         model). *)
      let probed =
        List.concat_map
          (fun (lo, hi) ->
            Sim.Engine.sleep read_service;
            let ix =
              match Node_state.index nd with
              | Some ix -> ix
              | None ->
                  invalid_arg
                    "Tree_query: plan has selects but the cluster has no \
                     secondary index (pass ~index to Cluster.create)"
            in
            let rows =
              Vindex.Index.probe
                ~skip_visibility:cs.config.Config.index_skip_visibility ix ~lo
                ~hi v
            in
            Sim.Engine.sleep (read_service *. float_of_int (List.length rows));
            List.map (fun (key, value) -> (p.at, key, Some value)) rows)
          p.selects
      in
      let own = own @ probed in
      let child_results =
        Fanout.all cs.engine
          (List.map
             (fun child () -> exec_subquery p.at child ~is_root:false)
             p.children)
      in
      (* Completion (§3.3 step 5): compose, decrement, commit.  Errors from
         children propagate only after our own counter is safely released. *)
      Query_core.leave_subquery q nd ~taken;
      let composed =
        List.concat_map
          (function Ok values -> values | Error e -> raise e)
          child_results
      in
      own @ composed
    in
    if p.at = parent_node then body ()
    else Net.Network.call cs.net ~src:parent_node ~dst:p.at body
  in
  match exec_subquery root plan ~is_root:true with
  | values -> Query_core.complete q ~values
  | exception e -> Query_core.on_error q e
