(** R*-style tree execution of read-only queries (paper §2, §3.3).

    The root subquery pins the query version [V(Q) = q_root] and fans
    subqueries out down a tree; each subquery reads its items at [V(Q)]
    (lock-free), runs its children concurrently, composes their results
    with its own, sends them to its parent and commits — decrementing its
    node's query counter.  The root's counter, released last, is what keeps
    the snapshot safe from garbage collection anywhere in the system.

    Plans must visit each node at most once. *)

type plan = {
  at : int;
  keys : string list;  (** items to read at [at] *)
  selects : (string * string) list;
      (** attribute ranges to probe at [at] through the node's secondary
          index (requires [~index] at [Cluster.create]); results follow
          the point reads, ascending by key per range *)
  children : plan list;
}

val plan_nodes : plan -> int list

val reads : ?selects:(string * string) list -> int -> string list -> plan list -> plan
(** [reads at keys children] — plan constructor; [selects] defaults
    empty. *)

val run : 'v Cluster_state.t -> plan:plan -> 'v Query_exec.result
(** Execute the subquery tree (inside a simulation process); values arrive
    in tree preorder — each node's point reads, then its index-probe rows,
    then its children's.  Raises [Invalid_argument] on duplicate nodes and
    [Net.Network.Node_down] if a touched node is down. *)
