open Cluster_state

type 'v step =
  | Read of string
  | Write of string * 'v
  | Read_modify_write of string * ('v option -> 'v)
  | Delete of string
  | Pause of float

type 'v plan = { at : int; work : 'v step list; children : 'v plan list }

let rec plan_nodes plan =
  plan.at :: List.concat_map plan_nodes plan.children

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (int * string * 'v option) list;
  started_at : float;
  finished_at : float;
}

type 'info txn_outcome = 'info Txn_core.outcome =
  | Committed of 'info
  | Aborted of { txn_id : int; reason : Subtxn.abort_reason }
  | Root_down of { root : int }

type 'v outcome = 'v commit_info txn_outcome

let validate plan =
  let nodes = plan_nodes plan in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg "Tree_txn.run: plan visits a node twice"
      else Hashtbl.replace seen n ())
    nodes

(* The tree driver over {!Txn_core}: subtransactions fan out along plan
   edges and run concurrently; prepared versions travel bottom-up, the
   commit decision flows back down the same edges. *)
let run cs ~plan =
  validate plan;
  let root = plan.at in
  match Txn_core.create cs ~root with
  | None -> Root_down { root }
  | Some t ->
      let reads = ref [] in
      let exec_step sub = function
        | Read key ->
            let v = Subtxn.read cs sub key in
            reads := (Node_state.id (Subtxn.node sub), key, v) :: !reads
        | Write (key, value) -> Subtxn.write cs sub key value
        | Read_modify_write (key, f) -> Subtxn.read_modify_write cs sub key f
        | Delete key -> Subtxn.delete cs sub key
        | Pause d -> Sim.Engine.sleep d
      in
      (* Execute the subtree rooted at [p], whose parent runs at
         [parent_node]; returns the subtree's prepared version — the maximum
         of this subtransaction's version and its children's (the version
         number travelling up with the prepared message). *)
      let rec exec_subtree parent_node (p : 'v plan) ~carried =
        let body () =
          let sub = Txn_core.register t p.at ~carried in
          List.iter (exec_step sub) p.work;
          let own = Subtxn.version sub in
          (* Children are dispatched concurrently, each carrying the version
             their parent had reached (§10 piggybacking uses it). *)
          let child_results =
            Fanout.all cs.engine
              (List.map
                 (fun child () -> exec_subtree p.at child ~carried:own)
                 p.children)
          in
          let child_versions =
            List.map (function Ok v -> v | Error e -> raise e) child_results
          in
          (* Prepared: own work and all children done; release read locks. *)
          let prepared = Subtxn.prepare cs sub in
          List.fold_left max prepared child_versions
        in
        if p.at = parent_node then body ()
        else Net.Network.call cs.net ~src:parent_node ~dst:p.at body
      in
      (* Commit flows down the tree edges. *)
      let rec commit_subtree parent_node (p : 'v plan) ~final_version =
        let body () =
          (match Txn_core.find_sub t p.at with
          | Some sub when not (Subtxn.finished sub) ->
              Subtxn.commit cs sub ~final_version
          | _ -> ());
          let results =
            Fanout.all cs.engine
              (List.map
                 (fun child () -> commit_subtree p.at child ~final_version)
                 p.children)
          in
          List.iter (function Ok () -> () | Error e -> raise e) results
        in
        if p.at = parent_node then body ()
        else Net.Network.call cs.net ~src:parent_node ~dst:p.at body
      in
      Txn_core.protect t (fun () ->
          (* The bottom-up maximum over the tree equals the registry's
             maximum: versions are final once prepared, so the shared
             decision logic sees the same [V(T)] the root received. *)
          let (_ : int) = exec_subtree root plan ~carried:0 in
          let final_version =
            Txn_core.decide_version t (Txn_core.sub_versions t)
          in
          commit_subtree root plan ~final_version;
          Txn_core.finish_commit t ~final_version;
          Committed
            {
              txn_id = Txn_core.txn_id t;
              final_version;
              reads = List.rev !reads;
              started_at = Txn_core.started_at t;
              finished_at = now cs;
            })
