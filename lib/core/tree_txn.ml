open Cluster_state

type 'v step =
  | Read of string
  | Write of string * 'v
  | Read_modify_write of string * ('v option -> 'v)
  | Delete of string
  | Pause of float

type 'v plan = { at : int; work : 'v step list; children : 'v plan list }

let rec plan_nodes plan =
  plan.at :: List.concat_map plan_nodes plan.children

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (int * string * 'v option) list;
  started_at : float;
  finished_at : float;
}

type 'v outcome =
  | Committed of 'v commit_info
  | Aborted of { txn_id : int; reason : Subtxn.abort_reason }

let validate plan =
  let nodes = plan_nodes plan in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg "Tree_txn.run: plan visits a node twice"
      else Hashtbl.replace seen n ())
    nodes

(* Run every thunk as its own process and wait for all; results in input
   order.  Failures are captured, not raised, so siblings always finish
   before the caller decides. *)
let parallel cs thunks =
  let n = List.length thunks in
  let results = Array.make n None in
  let completed = ref 0 in
  let cv = Sim.Condition.create () in
  List.iteri
    (fun i thunk ->
      Sim.Engine.spawn cs.engine (fun () ->
          let r = try Ok (thunk ()) with e -> Error e in
          results.(i) <- Some r;
          incr completed;
          Sim.Condition.broadcast cv))
    thunks;
  Sim.Condition.await_until cv ~pred:(fun () -> !completed = n);
  Array.to_list results
  |> List.map (function Some r -> r | None -> assert false)

let run cs ~plan =
  validate plan;
  let root = plan.at in
  let root_node = node cs root in
  if not (Node_state.alive root_node) then
    Aborted { txn_id = -1; reason = `Node_down root }
  else begin
    let txn_id = Node_state.fresh_txn_id root_node in
    let started_at = now cs in
    let state = ref Subtxn.Running in
    let subs : (int, 'v Subtxn.t) Hashtbl.t = Hashtbl.create 8 in
    let reads = ref [] in
    let exec_step sub = function
      | Read key ->
          let v = Subtxn.read cs sub key in
          reads := (Node_state.id (Subtxn.node sub), key, v) :: !reads
      | Write (key, value) -> Subtxn.write cs sub key value
      | Read_modify_write (key, f) -> Subtxn.read_modify_write cs sub key f
      | Delete key -> Subtxn.delete cs sub key
      | Pause d -> Sim.Engine.sleep d
    in
    (* Execute the subtree rooted at [p], whose parent runs at
       [parent_node]; returns the subtree's prepared version — the maximum
       of this subtransaction's version and its children's (the version
       number travelling up with the prepared message). *)
    let rec exec_subtree parent_node (p : 'v plan) ~carried =
      let body () =
        let sub =
          Subtxn.start cs ~txn_id ~state ~node:(node cs p.at) ~carried
        in
        Hashtbl.replace subs p.at sub;
        (match !state with
        | Subtxn.Running -> ()
        | Subtxn.Aborting | Subtxn.Finished ->
            (* Orphaned dispatch: the transaction aborted (RPC timeout)
               while this request was in flight; [abort_all] will never
               see this subtransaction, so roll it back here or its
               update counter leaks and blocks future Phase 1s. *)
            Subtxn.abort cs sub;
            raise (Subtxn.Txn_abort `Deadlock));
        List.iter (exec_step sub) p.work;
        let own = Subtxn.version sub in
        (* Children are dispatched concurrently, each carrying the version
           their parent had reached (§10 piggybacking uses it). *)
        let child_results =
          parallel cs
            (List.map
               (fun child () -> exec_subtree p.at child ~carried:own)
               p.children)
        in
        let child_versions =
          List.map (function Ok v -> v | Error e -> raise e) child_results
        in
        (* Prepared: own work and all children done; release read locks. *)
        let prepared = Subtxn.prepare cs sub in
        List.fold_left max prepared child_versions
      in
      if p.at = parent_node then body ()
      else Net.Network.call cs.net ~src:parent_node ~dst:p.at body
    in
    (* Commit flows down the tree edges. *)
    let rec commit_subtree parent_node (p : 'v plan) ~final_version =
      let body () =
        (match Hashtbl.find_opt subs p.at with
        | Some sub when not (Subtxn.finished sub) ->
            Subtxn.commit cs sub ~final_version
        | _ -> ());
        let results =
          parallel cs
            (List.map
               (fun child () -> commit_subtree p.at child ~final_version)
               p.children)
        in
        List.iter (function Ok () -> () | Error e -> raise e) results
      in
      if p.at = parent_node then body ()
      else Net.Network.call cs.net ~src:parent_node ~dst:p.at body
    in
    let abort_all reason =
      state := Subtxn.Aborting;
      Hashtbl.iter (fun _ sub -> Subtxn.abort cs sub) subs;
      cs.aborts <- cs.aborts + 1;
      emit cs ~tag:"txn"
        (Printf.sprintf "T%d: aborted at root node%d (%s)" txn_id root
           (match reason with
           | `Deadlock -> "deadlock"
           | `Node_down n -> Printf.sprintf "node %d down" n
           | `Rpc_timeout n -> Printf.sprintf "rpc to node %d timed out" n
           | `Version_mismatch -> "version mismatch"));
      Aborted { txn_id; reason }
    in
    try
      let final_version = exec_subtree root plan ~carried:0 in
      (* The root holds the global version V(T); a participant that ran
         behind it repairs itself when the commit message arrives. *)
      let distinct_versions =
        Hashtbl.fold (fun _ sub acc -> Subtxn.version sub :: acc) subs []
      in
      if List.exists (fun v -> v <> final_version) distinct_versions then begin
        cs.commit_version_mismatches <- cs.commit_version_mismatches + 1;
        if cs.config.Config.abort_on_version_mismatch then
          raise (Subtxn.Txn_abort `Version_mismatch)
      end;
      commit_subtree root plan ~final_version;
      state := Subtxn.Finished;
      cs.commits <- cs.commits + 1;
      emit cs ~tag:"txn"
        (Printf.sprintf "T%d: committed in version %d (root node%d)" txn_id
           final_version root);
      Committed
        {
          txn_id;
          final_version;
          reads = List.rev !reads;
          started_at;
          finished_at = now cs;
        }
    with
    | Subtxn.Txn_abort reason -> abort_all reason
    | Net.Network.Node_down n -> abort_all (`Node_down n)
    | Net.Network.Rpc_timeout n -> abort_all (`Rpc_timeout n)
  end
