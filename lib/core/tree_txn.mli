(** R*-style tree execution of update transactions (paper §2).

    This is the paper's actual transaction model: a transaction is submitted
    to one server (the root), executes a root subtransaction, and sends
    children subtransactions to other nodes, which may send their own
    children.  Children run {e concurrently}; when a subtransaction's work
    and all of its descendants are done, it sends [prepared(V(T_i))] to its
    parent — so the transaction's global version is computed bottom-up as
    the maximum over the tree, and the [commit(V(T))] decision flows back
    down, triggering commit-time moveToFutures at participants that ran
    behind.

    Plans must visit each node at most once (the paper's [T_i] is {e the}
    subtransaction of [T] at node [i]); [run] rejects duplicate nodes.

    The flat, root-driven executor ({!Update_exec}) remains the convenient
    API for workloads; this module exists to execute the paper's model
    literally, with genuine intra-transaction parallelism. *)

type 'v step =
  | Read of string
  | Write of string * 'v
  | Read_modify_write of string * ('v option -> 'v)
  | Delete of string
  | Pause of float

type 'v plan = {
  at : int;  (** node this subtransaction runs on *)
  work : 'v step list;  (** executed at [at], in order *)
  children : 'v plan list;  (** dispatched concurrently after [work] *)
}

val plan_nodes : _ plan -> int list
(** All nodes the plan touches (preorder). *)

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (int * string * 'v option) list;
      (** results of [Read] steps as (node, key, value) *)
  started_at : float;
  finished_at : float;
}

(** {!Txn_core.outcome} re-exported so the constructors live here too. *)
type 'info txn_outcome = 'info Txn_core.outcome =
  | Committed of 'info
  | Aborted of { txn_id : int; reason : Subtxn.abort_reason }
  | Root_down of { root : int }
      (** The root node was down at submission: no transaction id was
          allocated, nothing ran anywhere (a rejection, not an abort). *)

type 'v outcome = 'v commit_info txn_outcome

val run : 'v Cluster_state.t -> plan:'v plan -> 'v outcome
(** Execute the tree (inside a simulation process).  Raises
    [Invalid_argument] if the plan visits a node twice. *)
