open Cluster_state

type abort_reason = Subtxn.abort_reason

type 'v t = {
  cs : 'v Cluster_state.t;
  root : int;
  txn_id : int;
  started_at : float;
  state : Subtxn.state ref;
  subs : (int, 'v Subtxn.t) Hashtbl.t;
}

type 'info outcome =
  | Committed of 'info
  | Aborted of { txn_id : int; reason : abort_reason }
  | Root_down of { root : int }

(* Replication: updates run at primaries only.  Callers keep addressing
   partitions (0 .. nparts-1); each partition resolves to its current
   primary site here, so a transaction started after a failover lands on
   the promoted backup transparently. *)
let site_of = home_site

let create cs ~root =
  let root = site_of cs root in
  let root_node = node cs root in
  if not (Node_state.alive root_node) then begin
    (* No transaction id was allocated and nothing ran anywhere: this is
       a rejection, not an abort, and is counted as such. *)
    Sim.Metrics.record_root_down cs.metrics ~node:root;
    None
  end
  else
    Some
      {
        cs;
        root;
        txn_id = Node_state.fresh_txn_id root_node;
        started_at = now cs;
        state = ref Subtxn.Running;
        subs = Hashtbl.create 8;
      }

let txn_id t = t.txn_id
let root t = t.root
let started_at t = t.started_at
let running t = !(t.state) = Subtxn.Running

(* Highest version any subtransaction currently runs in; carried with new
   subtransaction dispatch when the §10 piggybacking is on. *)
let carried t =
  Hashtbl.fold (fun _ s acc -> max acc (Subtxn.version s)) t.subs 0

let register t n ~carried =
  let sub =
    Subtxn.start t.cs ~txn_id:t.txn_id ~state:t.state ~node:(node t.cs n)
      ~carried
  in
  Hashtbl.replace t.subs n sub;
  (match !(t.state) with
  | Subtxn.Running -> ()
  | Subtxn.Aborting | Subtxn.Finished ->
      (* Orphaned dispatch: the transaction aborted (RPC timeout) while
         this request was in flight, so [abort_all] has already run and
         will never see this subtransaction.  Roll it back here or its
         update counter leaks and blocks Phase 1 of every future
         advancement. *)
      Subtxn.abort t.cs sub;
      raise (Subtxn.Txn_abort `Deadlock));
  sub

let sub t n =
  let n = site_of t.cs n in
  match Hashtbl.find_opt t.subs n with
  | Some s -> s
  | None -> register t n ~carried:(carried t)

let find_sub t n = Hashtbl.find_opt t.subs (site_of t.cs n)

let sub_list t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.subs []
  |> List.sort (fun a b ->
         compare (Node_state.id (Subtxn.node a)) (Node_state.id (Subtxn.node b)))

let sub_versions t =
  Hashtbl.fold (fun _ s acc -> Subtxn.version s :: acc) t.subs []

let at_node t n f =
  let n = site_of t.cs n in
  if n = t.root then f (sub t n)
  else Net.Network.call t.cs.net ~src:t.root ~dst:n (fun () -> f (sub t n))

let at_sub_nodes t f =
  List.map
    (fun s ->
      let n = Node_state.id (Subtxn.node s) in
      if n = t.root then f s
      else Net.Network.call t.cs.net ~src:t.root ~dst:n (fun () -> f s))
    (sub_list t)

type 'v savepoint = { sp_subs : (int * 'v Subtxn.savepoint) list }

let savepoint t =
  {
    sp_subs =
      List.map
        (fun s ->
          let n = Node_state.id (Subtxn.node s) in
          (n, at_node t n (fun s -> Subtxn.savepoint t.cs s)))
        (sub_list t);
  }

let rollback_to t sp =
  List.iter
    (fun s ->
      let n = Node_state.id (Subtxn.node s) in
      match List.assoc_opt n sp.sp_subs with
      | Some mark -> at_node t n (fun s -> Subtxn.rollback_to t.cs s mark)
      | None ->
          (* The subtransaction was dispatched inside the scope: its whole
             life is being rolled back, so abort it outright and drop it
             from the registry (a later operation at the node starts
             fresh). *)
          at_node t n (fun s -> Subtxn.abort t.cs s);
          Hashtbl.remove t.subs n)
    (sub_list t);
  Sim.Metrics.record_savepoint_rollback t.cs.metrics ~node:t.root

let release_savepoint _t _sp =
  (* Merging a scope into its parent keeps every write and lock: savepoints
     carry no per-scope resources beyond the marks themselves. *)
  ()

let decide_version t versions =
  let final_version = List.fold_left max 0 versions in
  if List.exists (fun v -> v <> final_version) versions then begin
    Sim.Metrics.record_version_mismatch t.cs.metrics ~node:t.root;
    (* Synchronous-advancement baseline: a mismatch cannot be repaired,
       so the decision is to abort (detected before any participant
       commits). *)
    if t.cs.config.Config.abort_on_version_mismatch then
      raise (Subtxn.Txn_abort `Version_mismatch)
  end;
  final_version

let finish_commit t ~final_version =
  t.state := Subtxn.Finished;
  Sim.Metrics.record_commit t.cs.metrics ~node:t.root;
  if tracing t.cs then
    emit t.cs ~tag:"txn"
      (Printf.sprintf "T%d: committed in version %d (root node%d)" t.txn_id
         final_version t.root)

let pp_reason = function
  | `Deadlock -> "deadlock"
  | `Node_down n -> Printf.sprintf "node %d down" n
  | `Rpc_timeout n -> Printf.sprintf "rpc to node %d timed out" n
  | `Version_mismatch -> "version mismatch"

let abort_all t reason =
  (* Bookkeeping runs on direct references: sessions at nodes that have
     crashed since are orphans and rolling them back is harmless.
     Participants that already committed (possible only when a node dies
     mid-commit-round) are past the point of no return and are left
     alone by Subtxn.abort. *)
  t.state := Subtxn.Aborting;
  List.iter (fun s -> Subtxn.abort t.cs s) (sub_list t);
  Sim.Metrics.record_abort t.cs.metrics ~node:t.root reason;
  if tracing t.cs then
    emit t.cs ~tag:"txn"
      (Printf.sprintf "T%d: aborted at root node%d (%s)" t.txn_id t.root
         (pp_reason reason));
  Aborted { txn_id = t.txn_id; reason }

let protect t body =
  try body () with
  | Subtxn.Txn_abort reason -> abort_all t reason
  | Net.Network.Node_down n -> abort_all t (`Node_down n)
  | Net.Network.Rpc_timeout n -> abort_all t (`Rpc_timeout n)
