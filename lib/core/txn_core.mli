(** Shared lifecycle of a distributed update transaction — the runtime
    under both the flat executor ({!Update_exec}) and the R*-style tree
    executor ({!Tree_txn}).

    A [Txn_core.t] owns what the two drivers used to duplicate: the
    subtransaction registry keyed by node, the carried-version
    computation for §10 piggybacking, the orphaned-dispatch guard, the
    prepared-version maximum with mismatch accounting, the commit
    bookkeeping, and [abort_all] with its reason pretty-printer.  The
    drivers differ only in {e routing}: the flat executor ships each
    operation from the root, the tree executor fans subtransactions out
    along plan edges — both express that with {!at_node}/{!register}
    plus their own traversal, and end by running the shared decision
    logic. *)

type abort_reason = Subtxn.abort_reason

type 'v t

(** Outcome of one update transaction, shared by both executors
    ([Update_exec] and [Tree_txn] re-export it with their own
    [commit_info]).  [Root_down] is the documented sentinel for a
    transaction rejected before it began because its root node was
    down: no transaction id was allocated, nothing ran anywhere, and it
    is counted as a rejection rather than an abort. *)
type 'info outcome =
  | Committed of 'info
  | Aborted of { txn_id : int; reason : abort_reason }
  | Root_down of { root : int }

val create : 'v Cluster_state.t -> root:int -> 'v t option
(** Begin a transaction rooted at [root]: allocate its id, stamp its
    start time, create the shared state cell.  [None] if the root node
    is down (recorded as a root-down rejection in the metrics); callers
    map that to [Root_down]. *)

val txn_id : _ t -> int
val root : _ t -> int
val started_at : _ t -> float

val running : _ t -> bool
(** Whether the shared state cell is still [Running].  A lock denial
    ([Txn_abort `Deadlock] from {!Subtxn}) leaves it [Running] — the
    requester was refused but nothing was rolled back yet, so a savepoint
    rollback can still break the cycle; once {!abort_all} has run it is
    not. The session layer's nested-scope handler keys on this. *)

val carried : 'v t -> int
(** Highest version any registered subtransaction currently runs in —
    the version piggybacked on new dispatch (§10). *)

val register : 'v t -> int -> carried:int -> 'v Subtxn.t
(** Start a subtransaction at node [n] carrying [carried], and enter it
    in the registry.  Runs the orphaned-dispatch guard: if the
    transaction aborted while this dispatch was in flight, the fresh
    subtransaction is rolled back on the spot (its counter must not
    leak) and [Subtxn.Txn_abort] is raised.  Must execute at node [n]
    (callers route through the network). *)

val sub : 'v t -> int -> 'v Subtxn.t
(** The subtransaction at node [n], registering it with the current
    {!carried} version on first use (the flat executor's lazy
    dispatch). *)

val find_sub : 'v t -> int -> 'v Subtxn.t option

val sub_list : 'v t -> 'v Subtxn.t list
(** All registered subtransactions in node-id order. *)

val sub_versions : 'v t -> int list
(** Current [V(T_i)] of every registered subtransaction. *)

val at_node : 'v t -> int -> ('v Subtxn.t -> 'a) -> 'a
(** Run [f] on the node's subtransaction (registering it on first use),
    at the node: directly when it is the root, through an RPC
    otherwise. *)

val at_sub_nodes : 'v t -> ('v Subtxn.t -> 'a) -> 'a list
(** Run [f] on every registered subtransaction at its node, in node-id
    order — the prepare and commit rounds of the flat executor. *)

type 'v savepoint
(** A transaction-wide mark: one {!Subtxn.savepoint} per subtransaction
    registered when it was taken. *)

val savepoint : 'v t -> 'v savepoint
(** Mark every registered subtransaction (routing to each node).  Cheap:
    logs nothing; an untaken rollback leaves behavior bit-identical. *)

val rollback_to : 'v t -> 'v savepoint -> unit
(** Partial abort back to the mark: subtransactions that existed then roll
    back to their marks; ones dispatched since are aborted outright and
    removed from the registry.  The generalization of {!abort_all}'s
    all-or-nothing fan-out (PROTOCOL.md "Savepoints").  An RPC failure
    while rolling back raises and so aborts the whole transaction. *)

val release_savepoint : 'v t -> 'v savepoint -> unit
(** Merge the scope into its parent — keeps all writes and locks (no-op;
    exists so the session layer's scope discipline reads explicitly). *)

val decide_version : 'v t -> int list -> int
(** The transaction's global version [V(T)]: the maximum of the
    prepared versions.  A disagreement among them is counted as a
    version mismatch (the situation the modified 2PC exists for) and,
    in the synchronous-advancement baseline
    ({!Config.abort_on_version_mismatch}), raises [Subtxn.Txn_abort
    `Version_mismatch]. *)

val finish_commit : 'v t -> final_version:int -> unit
(** Mark the transaction finished, count the commit against the root
    node, emit the trace line. *)

val pp_reason : abort_reason -> string

val abort_all : 'v t -> abort_reason -> 'info outcome
(** Roll back every registered subtransaction (node-id order), count the
    abort with its reason against the root node, emit the trace line;
    returns the [Aborted] outcome. *)

val protect : 'v t -> (unit -> 'info outcome) -> 'info outcome
(** Run the driver's body, converting the three transaction-fatal
    exceptions ([Subtxn.Txn_abort], [Net.Network.Node_down],
    [Net.Network.Rpc_timeout]) into {!abort_all}. *)
