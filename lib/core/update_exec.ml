open Cluster_state

type 'v op =
  | Read of { node : int; key : string }
  | Write of { node : int; key : string; value : 'v }
  | Read_modify_write of { node : int; key : string; f : 'v option -> 'v }
  | Delete of { node : int; key : string }
  | Begin_at of int
  | Pause of float

let op_node = function
  | Read { node; _ } | Write { node; _ } | Read_modify_write { node; _ }
  | Delete { node; _ } ->
      Some node
  | Begin_at node -> Some node
  | Pause _ -> None

type abort_reason = Subtxn.abort_reason

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (string * 'v option) list;
  started_at : float;
  finished_at : float;
  participants : (int * float) list;
      (* (node, local commit time): the instant the subtransaction released
         its locks there — what orders same-version conflicts *)
}

type 'info txn_outcome = 'info Txn_core.outcome =
  | Committed of 'info
  | Aborted of { txn_id : int; reason : abort_reason }
  | Root_down of { root : int }

type 'v outcome = 'v commit_info txn_outcome

(* The flat executor: the root drives every operation itself, shipping
   remote ones over the network.  Behaviourally this is an R* transaction
   whose children each execute one batch of work at a time; the concurrent
   tree model lives in {!Tree_txn}.  The lifecycle — registry, orphan
   guard, prepare/commit rounds, abort — is {!Txn_core}'s. *)
let run cs ~root ~ops =
  match Txn_core.create cs ~root with
  | None -> Root_down { root }
  | Some t ->
      let reads = ref [] in
      let exec = function
        | Read { node = n; key } ->
            let v = Txn_core.at_node t n (fun sub -> Subtxn.read cs sub key) in
            reads := (key, v) :: !reads
        | Write { node = n; key; value } ->
            Txn_core.at_node t n (fun sub -> Subtxn.write cs sub key value)
        | Read_modify_write { node = n; key; f } ->
            Txn_core.at_node t n (fun sub -> Subtxn.read_modify_write cs sub key f)
        | Delete { node = n; key } ->
            Txn_core.at_node t n (fun sub -> Subtxn.delete cs sub key)
        | Begin_at n -> Txn_core.at_node t n (fun _sub -> ())
        | Pause d -> Sim.Engine.sleep d
      in
      Txn_core.protect t (fun () ->
          ignore (Txn_core.sub t root : 'v Subtxn.t);
          List.iter exec ops;
          (* Prepare round: each participant releases its shared locks and
             reports the version it reached (the paper's prepared(V(T_i))). *)
          let prepared =
            Txn_core.at_sub_nodes t (fun sub -> Subtxn.prepare cs sub)
          in
          let final_version = Txn_core.decide_version t prepared in
          let participants =
            Txn_core.at_sub_nodes t (fun sub ->
                Subtxn.commit cs sub ~final_version;
                (Node_state.id (Subtxn.node sub), now cs))
          in
          Txn_core.finish_commit t ~final_version;
          Committed
            {
              txn_id = Txn_core.txn_id t;
              final_version;
              reads = List.rev !reads;
              started_at = Txn_core.started_at t;
              finished_at = now cs;
              participants;
            })
