open Cluster_state

type 'v op =
  | Read of { node : int; key : string }
  | Write of { node : int; key : string; value : 'v }
  | Read_modify_write of { node : int; key : string; f : 'v option -> 'v }
  | Delete of { node : int; key : string }
  | Begin_at of int
  | Pause of float

let op_node = function
  | Read { node; _ } | Write { node; _ } | Read_modify_write { node; _ }
  | Delete { node; _ } ->
      Some node
  | Begin_at node -> Some node
  | Pause _ -> None

type abort_reason = Subtxn.abort_reason

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (string * 'v option) list;
  started_at : float;
  finished_at : float;
  participants : (int * float) list;
      (* (node, local commit time): the instant the subtransaction released
         its locks there — what orders same-version conflicts *)
}

type 'v outcome =
  | Committed of 'v commit_info
  | Aborted of { txn_id : int; reason : abort_reason }

(* The flat executor: the root drives every operation itself, shipping
   remote ones over the network.  Behaviourally this is an R* transaction
   whose children each execute one batch of work at a time; the concurrent
   tree model lives in {!Tree_txn}. *)
let run cs ~root ~ops =
  let root_node = node cs root in
  if not (Node_state.alive root_node) then
    Aborted { txn_id = -1; reason = `Node_down root }
  else begin
    let txn_id = Node_state.fresh_txn_id root_node in
    let started_at = now cs in
    let state = ref Subtxn.Running in
    let subs : (int, 'v Subtxn.t) Hashtbl.t = Hashtbl.create 4 in
    let sub_list () =
      Hashtbl.fold (fun _ s acc -> s :: acc) subs []
      |> List.sort (fun a b ->
             compare
               (Node_state.id (Subtxn.node a))
               (Node_state.id (Subtxn.node b)))
    in
    (* Highest version any subtransaction currently runs in; carried with
       new subtransaction dispatch when the §10 piggybacking is on. *)
    let carried () =
      Hashtbl.fold (fun _ s acc -> max acc (Subtxn.version s)) subs 0
    in
    let get_sub n =
      match Hashtbl.find_opt subs n with
      | Some s -> s
      | None ->
          let sub =
            Subtxn.start cs ~txn_id ~state ~node:(node cs n)
              ~carried:(carried ())
          in
          Hashtbl.replace subs n sub;
          (match !state with
          | Subtxn.Running -> ()
          | Subtxn.Aborting | Subtxn.Finished ->
              (* Orphaned dispatch: the transaction aborted (RPC timeout)
                 while this request was in flight, so [abort_all] has
                 already run and will never see this subtransaction.  Roll
                 it back here or its update counter leaks and blocks
                 Phase 1 of every future advancement. *)
              Subtxn.abort cs sub;
              raise (Subtxn.Txn_abort `Deadlock));
          sub
    in
    let at_node n f =
      if n = root then f (get_sub n)
      else Net.Network.call cs.net ~src:root ~dst:n (fun () -> f (get_sub n))
    in
    let reads = ref [] in
    let exec = function
      | Read { node = n; key } ->
          let v = at_node n (fun sub -> Subtxn.read cs sub key) in
          reads := (key, v) :: !reads
      | Write { node = n; key; value } ->
          at_node n (fun sub -> Subtxn.write cs sub key value)
      | Read_modify_write { node = n; key; f } ->
          at_node n (fun sub -> Subtxn.read_modify_write cs sub key f)
      | Delete { node = n; key } -> at_node n (fun sub -> Subtxn.delete cs sub key)
      | Begin_at n -> at_node n (fun _sub -> ())
      | Pause d -> Sim.Engine.sleep d
    in
    let abort_all reason =
      (* Bookkeeping runs on direct references: sessions at nodes that have
         crashed since are orphans and rolling them back is harmless.
         Participants that already committed (possible only when a node
         dies mid-commit-round) are past the point of no return and are
         left alone by Subtxn.abort. *)
      state := Subtxn.Aborting;
      List.iter (fun sub -> Subtxn.abort cs sub) (sub_list ());
      cs.aborts <- cs.aborts + 1;
      emit cs ~tag:"txn"
        (Printf.sprintf "T%d: aborted at root node%d (%s)" txn_id root
           (match reason with
           | `Deadlock -> "deadlock"
           | `Node_down n -> Printf.sprintf "node %d down" n
           | `Rpc_timeout n -> Printf.sprintf "rpc to node %d timed out" n
           | `Version_mismatch -> "version mismatch"));
      Aborted { txn_id; reason }
    in
    let commit () =
      (* Prepare round: each participant releases its shared locks and
         reports the version it reached (the paper's prepared(V(T_i))). *)
      let prepared =
        List.map
          (fun sub ->
            let n = Node_state.id (Subtxn.node sub) in
            if n = root then Subtxn.prepare cs sub
            else
              Net.Network.call cs.net ~src:root ~dst:n (fun () ->
                  Subtxn.prepare cs sub))
          (sub_list ())
      in
      let final_version = List.fold_left max 0 prepared in
      if List.exists (fun v -> v <> final_version) prepared then begin
        cs.commit_version_mismatches <- cs.commit_version_mismatches + 1;
        (* Synchronous-advancement baseline: a mismatch cannot be repaired,
           so the decision is to abort (detected before any participant
           commits). *)
        if cs.config.Config.abort_on_version_mismatch then
          raise (Subtxn.Txn_abort `Version_mismatch)
      end;
      let participants =
        List.map
          (fun sub ->
            let n = Node_state.id (Subtxn.node sub) in
            if n = root then begin
              Subtxn.commit cs sub ~final_version;
              (n, now cs)
            end
            else
              Net.Network.call cs.net ~src:root ~dst:n (fun () ->
                  Subtxn.commit cs sub ~final_version;
                  (n, now cs)))
          (sub_list ())
      in
      state := Subtxn.Finished;
      cs.commits <- cs.commits + 1;
      emit cs ~tag:"txn"
        (Printf.sprintf "T%d: committed in version %d (root node%d)" txn_id
           final_version root);
      Committed
        {
          txn_id;
          final_version;
          reads = List.rev !reads;
          started_at;
          finished_at = now cs;
          participants;
        }
    in
    try
      ignore (get_sub root : 'v Subtxn.t);
      List.iter exec ops;
      commit ()
    with
    | Subtxn.Txn_abort reason -> abort_all reason
    | Net.Network.Node_down n -> abort_all (`Node_down n)
    | Net.Network.Rpc_timeout n -> abort_all (`Rpc_timeout n)
  end
