(** Update transaction execution (paper §3.4).

    Update transactions use strict two-phase locking per node and the
    R*-style tree commit protocol across nodes, with version numbers
    piggybacked on the [prepared] and [commit] messages.  A subtransaction
    that encounters a data item from a later version moves itself forward
    with moveToFuture at data-access time; a version mismatch among
    subtransactions is repaired the same way at commit time. *)

type 'v op =
  | Read of { node : int; key : string }
  | Write of { node : int; key : string; value : 'v }
  | Read_modify_write of { node : int; key : string; f : 'v option -> 'v }
      (** Read under an exclusive lock, then write [f value]. *)
  | Delete of { node : int; key : string }
  | Begin_at of int
      (** Dispatch a subtransaction to the node without touching data — it
          looks up the node's update version and registers in its counter
          (the R* model sends children eagerly; Table 1's T_j arrives at
          node j well before its first data access there). *)
  | Pause of float  (** Local computation time at the root. *)

val op_node : _ op -> int option

type abort_reason = Subtxn.abort_reason

type 'v commit_info = {
  txn_id : int;
  final_version : int;  (** the global version [V(T)] it committed in *)
  reads : (string * 'v option) list;  (** results of [Read] ops in order *)
  started_at : float;
  finished_at : float;
  participants : (int * float) list;
      (** (node, local commit time) per subtransaction — the instant locks
          were released there, which is what orders same-version conflicting
          transactions (used by the serializability checker) *)
}

(** {!Txn_core.outcome} re-exported so the constructors live here too. *)
type 'info txn_outcome = 'info Txn_core.outcome =
  | Committed of 'info
  | Aborted of { txn_id : int; reason : abort_reason }
  | Root_down of { root : int }
      (** The root node was down when the transaction was submitted: no
          transaction id was allocated, nothing ran anywhere.  Counted
          as a rejection, not an abort. *)

type 'v outcome = 'v commit_info txn_outcome

val run : 'v Cluster_state.t -> root:int -> ops:'v op list -> 'v outcome
(** Execute the operation list as one distributed transaction rooted at
    [root].  Must be called inside a simulation process.  On abort, all
    subtransactions are rolled back, their locks released and counters
    decremented; the caller decides whether to retry. *)
