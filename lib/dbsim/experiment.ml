module Update = Ava3.Update_exec
module Driver = Workload.Driver
module Histogram = Workload.Histogram

(* Every run below builds its own engine, RNG, keyspace and store, so the
   sweeps are share-nothing and fan out across domains via [Sim.Pool.map]
   (gated by AVA3_DOMAINS; results come back in input order, so the
   printed tables are identical at any domain count). *)
let pmap = Sim.Pool.map

(* ------------------------------------------------------------------ *)
(* E3 — §6.2 invariants under load                                     *)
(* ------------------------------------------------------------------ *)

type invariants_run = {
  probes : int;
  violations : int;
  max_versions_ever : int;
  advancements : int;
  commits : int;
  queries : int;
}

let invariants ?(seed = 17L) ~nodes ~duration () =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~advancement_period:(duration /. 12.0)
      ~advancement_until:duration ~nodes ()
  in
  let ks = Workload.Keyspace.create ~nodes ~keys_per_node:80 ~theta:0.8 in
  for n = 0 to nodes - 1 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let cluster = Baseline.Ava3_db.cluster db in
  let probes = ref 0 and violations = ref 0 in
  (* Probe the invariants at random instants while the workload runs. *)
  for _ = 1 to 200 do
    let delay = Sim.Rng.float rng duration in
    Sim.Engine.schedule engine ~delay (fun () ->
        incr probes;
        violations :=
          !violations + List.length (Ava3.Cluster.check_invariants cluster))
  done;
  (* Load scales with the cluster so bigger topologies do more work. *)
  let spec =
    {
      Driver.default_spec with
      duration;
      update_rate = 0.12 *. float_of_int nodes;
      query_rate = 0.06 *. float_of_int nodes;
      ops_per_update = (2, 4);
      long_query_period = duration /. 8.0;
      long_query_reads = 40;
    }
  in
  let report =
    Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec
  in
  incr probes;
  violations := !violations + List.length (Ava3.Cluster.check_invariants cluster);
  violations :=
    !violations + List.length (Ava3.Cluster.check_quiescent_invariants cluster);
  let stats = Ava3.Cluster.stats cluster in
  Report.record_metrics ~experiment:"E3-invariants"
    ~label:(Printf.sprintf "nodes=%d" nodes)
    (Ava3.Cluster.metrics_snapshot cluster);
  {
    probes = !probes;
    violations = !violations;
    max_versions_ever = stats.Ava3.Cluster.max_versions_ever;
    advancements = stats.Ava3.Cluster.advancements;
    commits = report.Driver.committed;
    queries = report.Driver.queries_ok;
  }

let print_invariants () =
  let rows =
    pmap
      (fun nodes ->
        let r = invariants ~nodes ~duration:1500.0 () in
        [
          Report.i nodes;
          Report.i r.probes;
          Report.i r.violations;
          Report.i r.max_versions_ever;
          Report.i r.advancements;
          Report.i r.commits;
          Report.i r.queries;
        ])
      [ 1; 3; 5 ]
  in
  Report.print ~title:"E3: §6.2 invariants under random load"
    ~header:
      [ "nodes"; "probes"; "violations"; "max-versions"; "advancements"; "commits"; "queries" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E4 — staleness                                                      *)
(* ------------------------------------------------------------------ *)

type staleness_point = {
  period : float;
  eager : bool;
  mean_staleness : float;
  p95_staleness : float;
  max_staleness : float;
  advancements_done : int;
}

let staleness_one ?(seed = 23L) ~period ~eager () =
  let duration = 2000.0 in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    { Ava3.Config.default with eager_counter_handoff = eager }
  in
  let db =
    Baseline.Ava3_db.create ~engine ~config ~advancement_period:period
      ~advancement_until:duration ~nodes:3 ()
  in
  let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:80 ~theta:0.8 in
  for n = 0 to 2 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Driver.default_spec with
      duration;
      update_rate = 0.2;
      query_rate = 0.25;
      ops_per_update = (2, 4);
    }
  in
  let report =
    Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec
  in
  let h = report.Driver.staleness in
  let stats = Ava3.Cluster.stats (Baseline.Ava3_db.cluster db) in
  Report.record_metrics ~experiment:"E4-staleness"
    ~label:(Printf.sprintf "period=%g eager=%b" period eager)
    (Ava3.Cluster.metrics_snapshot (Baseline.Ava3_db.cluster db));
  {
    period;
    eager;
    mean_staleness = Histogram.mean h;
    p95_staleness = Histogram.percentile h 0.95;
    max_staleness = Histogram.max_value h;
    advancements_done = stats.Ava3.Cluster.advancements;
  }

let staleness_sweep ?(seed = 23L) ?(periods = [ 25.0; 50.0; 100.0; 200.0; 400.0 ])
    ?domains ~eager () =
  pmap ?domains (fun period -> staleness_one ~seed ~period ~eager ()) periods

type staleness_bound = {
  long_txn_duration : float;
  publish_lag_plain : float;
  publish_lag_eager : float;
}

(* Measure the lag between advancement start and queries first seeing the
   new version, with one long update transaction active at advancement
   start.  Figure 1's Phase-1 bound; §8 claims the eager hand-off removes
   it. *)
let publish_lag ~seed ~long_txn_duration ~eager =
  let config =
    {
      Ava3.Config.default with
      eager_counter_handoff = eager;
      write_service_time = 0.0;
    }
  in
  let engine = Sim.Engine.create ~seed () in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
      ~nodes:3 ()
  in
  Ava3.Cluster.load db ~node:0 [ ("a", 0); ("b", 0) ];
  let started = ref nan and published = ref nan in
  Sim.Engine.schedule engine ~delay:5.0 (fun () ->
      ignore
        (Ava3.Cluster.run_update db ~root:0
           ~ops:
             [
               Update.Write { node = 0; key = "a"; value = 1 };
               Update.Pause (long_txn_duration /. 4.0);
               (* Touching b (committed in the new version below) triggers
                  the moveToFuture that the eager hand-off exploits. *)
               Update.Write { node = 0; key = "b"; value = 1 };
               Update.Pause (0.75 *. long_txn_duration);
             ]));
  Sim.Engine.schedule engine ~delay:10.0 (fun () ->
      started := Sim.Engine.now engine;
      ignore (Ava3.Cluster.advance db ~coordinator:2));
  Sim.Engine.schedule engine ~delay:12.0 (fun () ->
      ignore
        (Ava3.Cluster.run_update db ~root:0
           ~ops:[ Update.Write { node = 0; key = "b"; value = 2 } ]));
  (* Poll with tiny queries until one reads version 1. *)
  let probe at =
    if at < 10_000.0 then
      Sim.Engine.schedule engine ~delay:at (fun () ->
          if Float.is_nan !published then begin
            let q = Ava3.Cluster.run_query db ~root:1 ~reads:[] in
            if q.Ava3.Query_exec.version >= 1 then
              published := Sim.Engine.now engine
          end)
  in
  let rec schedule at =
    if at < 200.0 then begin
      probe at;
      schedule (at +. 1.0)
    end
  in
  schedule 11.0;
  Sim.Engine.run engine;
  Report.record_metrics ~experiment:"E4b-publish-lag"
    ~label:(Printf.sprintf "eager=%b" eager)
    (Ava3.Cluster.metrics_snapshot db);
  !published -. !started

let staleness_bound ?(seed = 29L) ?(long_txn_duration = 100.0) () =
  match
    pmap (fun eager -> publish_lag ~seed ~long_txn_duration ~eager) [ false; true ]
  with
  | [ publish_lag_plain; publish_lag_eager ] ->
      { long_txn_duration; publish_lag_plain; publish_lag_eager }
  | _ -> assert false

type continuous_point = {
  query_duration : float;  (* measured mean query duration, network included *)
  cont_mean : float;
  cont_p95 : float;
  cont_max : float;
  rounds : int;
}

(* §8 limiting mode: advancements run back to back (overlapping GC), so a
   query's snapshot is stale by at most roughly the age of the longest query
   running when it started — here, the query duration itself. *)
let continuous_one ?(seed = 47L) ~query_duration () =
  let duration = 1500.0 in
  let read_service = 0.5 in
  let reads_per_query = max 1 (int_of_float (query_duration /. read_service)) in
  let config =
    {
      Ava3.Config.default with
      overlap_gc = true;
      eager_counter_handoff = true;
      read_service_time = read_service;
    }
  in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~config ~advancement_period:0.0 ~nodes:3 ()
  in
  Ava3.Cluster.start_continuous_advancement (Baseline.Ava3_db.cluster db)
    ~coordinator:0 ~until:duration;
  let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:80 ~theta:0.8 in
  for n = 0 to 2 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Driver.default_spec with
      duration;
      update_rate = 0.15;
      query_rate = 0.1;
      ops_per_update = (1, 3);
      reads_per_query = (reads_per_query, reads_per_query);
    }
  in
  let report =
    Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec
  in
  let h = report.Driver.staleness in
  let stats = Ava3.Cluster.stats (Baseline.Ava3_db.cluster db) in
  Report.record_metrics ~experiment:"E4c-continuous"
    ~label:(Printf.sprintf "query_duration=%g" query_duration)
    (Ava3.Cluster.metrics_snapshot (Baseline.Ava3_db.cluster db));
  {
    (* Report the measured query duration — remote reads add network
       latency on top of the nominal storage time. *)
    query_duration = Histogram.mean report.Driver.query_latency;
    cont_mean = Histogram.mean h;
    cont_p95 = Histogram.percentile h 0.95;
    cont_max = Histogram.max_value h;
    rounds = stats.Ava3.Cluster.advancements;
  }

let continuous_staleness ?(seed = 47L) ?(durations = [ 5.0; 20.0; 60.0 ]) ?domains
    () =
  pmap ?domains (fun d -> continuous_one ~seed ~query_duration:d ()) durations

let print_staleness () =
  let render eager =
    let points = staleness_sweep ~eager () in
    List.map
      (fun p ->
        [
          Report.f1 p.period;
          (if p.eager then "yes" else "no");
          Report.f1 p.mean_staleness;
          Report.f1 p.p95_staleness;
          Report.f1 p.max_staleness;
          Report.i p.advancements_done;
        ])
      points
  in
  Report.print ~title:"E4a: query staleness vs advancement period (AVA3, 3 nodes)"
    ~header:[ "period"; "eager"; "mean"; "p95"; "max"; "advancements" ]
    ~rows:(render false @ render true);
  let b = staleness_bound () in
  Report.print
    ~title:
      "E4b: publish lag with one long update transaction (bound: txn \
       duration; §8 optimisation removes it)"
    ~header:[ "long txn"; "lag (base)"; "lag (eager hand-off)" ]
    ~rows:
      [
        [
          Report.f1 b.long_txn_duration;
          Report.f1 b.publish_lag_plain;
          Report.f1 b.publish_lag_eager;
        ];
      ];
  let rows =
    List.map
      (fun p ->
        [
          Report.f1 p.query_duration;
          Report.f1 p.cont_mean;
          Report.f1 p.cont_p95;
          Report.f1 p.cont_max;
          Report.i p.rounds;
        ])
      (continuous_staleness ())
  in
  Report.print
    ~title:
      "E4c: continuous advancement (§8 limit) — staleness bounded by the \
       longest concurrent query"
    ~header:[ "query duration (measured)"; "staleness mean"; "p95"; "max"; "rounds" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E5 — protocol comparison                                            *)
(* ------------------------------------------------------------------ *)

type comparison_row = {
  protocol : string;
  committed : int;
  aborted : int;
  update_p95 : float;
  query_p95 : float;
  long_query_p95 : float;
  staleness_mean : float;
  max_versions : int;
  lock_wait_time : float;
  interference_metric : float;
}

let comparison_spec duration =
  {
    Driver.default_spec with
    duration;
    update_rate = 0.25;
    query_rate = 0.12;
    ops_per_update = (2, 4);
    long_query_period = 120.0;
    long_query_reads = 60;
  }

let comparison ?(seed = 31L) ?(duration = 2000.0) ?domains () =
  let spec = comparison_spec duration in
  let keyspace () = Workload.Keyspace.create ~nodes:3 ~keys_per_node:60 ~theta:0.9 in
  let run_one (type db) (module Db : Workload.Db_intf.DB with type t = db)
      (make : Sim.Engine.t -> db)
      (load : db -> node:int -> (string * int) list -> unit)
      ~interference_of =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let db = make engine in
    let ks = keyspace () in
    for n = 0 to 2 do
      load db ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
    done;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let report = Driver.run (module Db) db ~engine ~rng ~keyspace:ks ~spec in
    (match Db.metrics_snapshot db with
    | Some m -> Report.record_metrics ~experiment:"E5-comparison" ~label:Db.name m
    | None -> ());
    let extra = Db.extra_stats db in
    let get key = Option.value (List.assoc_opt key extra) ~default:0.0 in
    {
      protocol = Db.name;
      committed = report.Driver.committed;
      aborted = report.Driver.aborted;
      update_p95 = Histogram.percentile report.Driver.update_latency 0.95;
      query_p95 = Histogram.percentile report.Driver.query_latency 0.95;
      long_query_p95 = Histogram.percentile report.Driver.long_query_latency 0.95;
      staleness_mean = Histogram.mean report.Driver.staleness;
      max_versions = Db.max_versions_ever db;
      lock_wait_time = get "lock_wait_time";
      interference_metric = interference_of extra;
    }
  in
  (* One thunk per protocol so the five runs fan out across domains. *)
  pmap ?domains
    (fun run -> run ())
    [
      (fun () ->
        run_one
          (module Baseline.Ava3_db)
          (fun engine ->
            Baseline.Ava3_db.create ~engine ~advancement_period:100.0
              ~advancement_until:duration ~nodes:3 ())
          Baseline.Ava3_db.load
          ~interference_of:(fun _ -> 0.0));
      (fun () ->
        run_one
          (module Baseline.S2pl)
          (fun engine -> Baseline.S2pl.create ~engine ~nodes:3 ())
          Baseline.S2pl.load
          ~interference_of:(fun extra ->
            Option.value (List.assoc_opt "lock_wait_time" extra) ~default:0.0));
      (fun () ->
        run_one
          (module Baseline.Two_version)
          (fun engine -> Baseline.Two_version.create ~engine ~nodes:3 ())
          Baseline.Two_version.load
          ~interference_of:(fun extra ->
            Option.value (List.assoc_opt "commit_delay" extra) ~default:0.0));
      (fun () ->
        run_one
          (module Baseline.Mvcc)
          (fun engine -> Baseline.Mvcc.create ~engine ~nodes:3 ())
          Baseline.Mvcc.load
          ~interference_of:(fun _ -> 0.0));
      (fun () ->
        run_one
          (module Baseline.Four_version)
          (fun engine ->
            Baseline.Four_version.create ~engine ~advancement_period:100.0
              ~advancement_until:duration ~nodes:3 ())
          Baseline.Four_version.load
          ~interference_of:(fun extra ->
            Option.value (List.assoc_opt "mismatch_aborts" extra) ~default:0.0));
    ]

let print_comparison () =
  let rows =
    List.map
      (fun r ->
        [
          r.protocol;
          Report.i r.committed;
          Report.i r.aborted;
          Report.f2 r.update_p95;
          Report.f2 r.query_p95;
          Report.f2 r.long_query_p95;
          Report.f1 r.staleness_mean;
          Report.i r.max_versions;
          Report.f1 r.lock_wait_time;
          Report.f1 r.interference_metric;
        ])
      (comparison ())
  in
  Report.print
    ~title:
      "E5: protocols under one mixed workload (3 nodes, Zipf 0.95, long \
       queries every 120)"
    ~header:
      [
        "protocol";
        "commits";
        "aborts";
        "upd p95";
        "qry p95";
        "longq p95";
        "staleness";
        "max-vers";
        "lock-wait";
        "interference";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E6 — moveToFuture                                                   *)
(* ------------------------------------------------------------------ *)

type mtf_row = {
  scheme_name : string;
  piggyback : bool;
  advancement_period : float;
  commits : int;
  mtf_data : int;
  mtf_commit : int;
  mtf_trivial : int;
  items_copied : int;
}

let move_to_future ?(seed = 37L) ?(duration = 2000.0) ?domains () =
  let run ~scheme ~piggyback ~period =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let config =
      { Ava3.Config.default with scheme; piggyback_version = piggyback }
    in
    let db =
      Baseline.Ava3_db.create ~engine ~config ~advancement_period:period
        ~advancement_until:duration ~nodes:3 ()
    in
    let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:80 ~theta:0.9 in
    for n = 0 to 2 do
      Baseline.Ava3_db.load db ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
    done;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let spec =
      {
        Driver.default_spec with
        duration;
        update_rate = 0.3;
        query_rate = 0.05;
        remote_fraction = 0.5;
        ops_per_update = (3, 6);
      }
    in
    let report = Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec in
    let stats = Ava3.Cluster.stats (Baseline.Ava3_db.cluster db) in
    Report.record_metrics ~experiment:"E6-movetofuture"
      ~label:
        (Printf.sprintf "scheme=%s piggyback=%b period=%g"
           (Wal.Scheme.kind_name scheme) piggyback period)
      (Ava3.Cluster.metrics_snapshot (Baseline.Ava3_db.cluster db));
    {
      scheme_name = Wal.Scheme.kind_name scheme;
      piggyback;
      advancement_period = period;
      commits = report.Driver.committed;
      mtf_data = stats.Ava3.Cluster.mtf_data_access;
      mtf_commit = stats.Ava3.Cluster.mtf_commit_time;
      mtf_trivial = stats.Ava3.Cluster.mtf_trivial;
      items_copied = stats.Ava3.Cluster.mtf_items_copied;
    }
  in
  let cells =
    List.concat_map
      (fun period ->
        List.concat_map
          (fun scheme ->
            List.map (fun piggyback -> (scheme, piggyback, period)) [ false; true ])
          [ Wal.Scheme.No_undo; Wal.Scheme.Undo_redo ])
      [ 50.0; 200.0 ]
  in
  pmap ?domains (fun (scheme, piggyback, period) -> run ~scheme ~piggyback ~period) cells

(* Targeted §10 piggyback scenario: the root subtransaction is dragged to
   the new version by a data access, then dispatches a child to a node that
   has not advanced yet.  Piggybacking starts the child directly in the new
   version, eliminating the commit-time moveToFuture. *)
type piggyback_run = { staged : int; commit_mtf_plain : int; commit_mtf_piggyback : int }

let piggyback_targeted ?(seed = 53L) () =
  let run ~piggyback =
    let config =
      {
        Ava3.Config.default with
        piggyback_version = piggyback;
        read_service_time = 0.0;
        write_service_time = 0.0;
      }
    in
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let db : int Ava3.Cluster.t =
      Ava3.Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
        ~nodes:3 ()
    in
    Ava3.Cluster.load db ~node:0 [ ("a", 0); ("c", 0) ];
    Ava3.Cluster.load db ~node:1 [ ("b", 0) ];
    let staged = 20 in
    for s = 0 to staged - 1 do
      let base = 10.0 +. (50.0 *. float_of_int s) in
      (* The straddler: writes at node 0, is dragged to the new version by
         touching [c] (committed there by the transaction below), then
         dispatches its first operation to node 1 — which has not heard
         about the advancement yet. *)
      Sim.Engine.schedule engine ~delay:base (fun () ->
          ignore
            (Ava3.Cluster.run_update db ~root:0
               ~ops:
                 [
                   Update.Write { node = 0; key = "a"; value = s };
                   Update.Pause 10.0;
                   Update.Write { node = 0; key = "c"; value = s };
                   Update.Pause 5.0;
                   Update.Write { node = 1; key = "b"; value = s };
                 ]));
      (* Node 0 hears Phase 1 first (direct message); node 1 lags. *)
      Sim.Engine.schedule engine ~delay:(base +. 2.0) (fun () ->
          let newu = Ava3.Node_state.u (Ava3.Cluster.node db 0) + 1 in
          Net.Network.send (Ava3.Cluster.network db) ~src:2 ~dst:0
            (Ava3.Messages.Advance_u { newu }));
      Sim.Engine.schedule engine ~delay:(base +. 4.0) (fun () ->
          ignore
            (Ava3.Cluster.run_update db ~root:0
               ~ops:[ Update.Write { node = 0; key = "c"; value = s } ]));
      (* Let the round finish properly so versions publish and collect. *)
      Sim.Engine.schedule engine ~delay:(base +. 30.0) (fun () ->
          ignore (Ava3.Cluster.advance db ~coordinator:0))
    done;
    Sim.Engine.run engine;
    let stats = Ava3.Cluster.stats db in
    Report.record_metrics ~experiment:"E6b-piggyback"
      ~label:(Printf.sprintf "piggyback=%b" piggyback)
      (Ava3.Cluster.metrics_snapshot db);
    (staged, stats.Ava3.Cluster.mtf_commit_time)
  in
  match pmap (fun piggyback -> run ~piggyback) [ false; true ] with
  | [ (staged, plain); (_, piggy) ] ->
      { staged; commit_mtf_plain = plain; commit_mtf_piggyback = piggy }
  | _ -> assert false

let print_move_to_future () =
  let rows =
    List.map
      (fun r ->
        [
          r.scheme_name;
          (if r.piggyback then "yes" else "no");
          Report.f1 r.advancement_period;
          Report.i r.commits;
          Report.i r.mtf_data;
          Report.i r.mtf_commit;
          Report.i r.mtf_trivial;
          Report.i r.items_copied;
        ])
      (move_to_future ())
  in
  Report.print
    ~title:
      "E6: moveToFuture frequency and cost (§4, §10 piggyback ablation)"
    ~header:
      [
        "scheme";
        "piggyback";
        "adv period";
        "commits";
        "mtf@data";
        "mtf@commit";
        "trivial";
        "items copied";
      ]
    ~rows;
  let p = piggyback_targeted () in
  Report.print
    ~title:"E6b: §10 piggyback on transactions that straddle an advancement"
    ~header:[ "staged straddlers"; "commit-mtf (plain)"; "commit-mtf (piggyback)" ]
    ~rows:
      [
        [
          Report.i p.staged;
          Report.i p.commit_mtf_plain;
          Report.i p.commit_mtf_piggyback;
        ];
      ]

(* ------------------------------------------------------------------ *)
(* E7 — centralized 3 vs 4 versions; synchronous advancement aborts    *)
(* ------------------------------------------------------------------ *)

type centralized_row = {
  variant : string;
  max_versions : int;
  steady_versions : int;
  advancement_mean_latency : float;
  advancements : int;
}

(* Centralized node with constant long queries; measure how long each
   advancement takes to publish (Phase 2 wait) and how many versions are
   resident.  AVA3 pays the wait with 3 versions; the 4-version scheme
   advances instantly with 4. *)
let centralized_variant ~seed ~retain_extra () =
  let config =
    {
      Ava3.Config.default with
      retain_extra_version = retain_extra;
      read_service_time = 0.5;
    }
  in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let db : int Ava3.Centralized.t = Ava3.Centralized.create ~engine ~config () in
  Ava3.Centralized.load db (List.init 10 (fun i -> (Printf.sprintf "k%d" i, 0)));
  let latencies = Histogram.create () in
  let advancements = ref 0 in
  let steady = ref 0 in
  (* Sample resident versions between advancements (steady state). *)
  for s = 1 to 10 do
    Sim.Engine.schedule engine
      ~delay:((100.0 *. float_of_int s) -. 10.0)
      (fun () ->
        let store = Ava3.Node_state.store (Ava3.Centralized.node db) in
        steady := max !steady (Vstore.Store.max_live_versions_now store))
  done;
  (* Steady stream of 40-unit queries. *)
  for s = 0 to 60 do
    Sim.Engine.schedule engine
      ~delay:(10.0 +. (20.0 *. float_of_int s))
      (fun () ->
        ignore
          (Ava3.Centralized.run_query db
             ~keys:(List.init 80 (fun i -> Printf.sprintf "k%d" (i mod 10)))))
  done;
  (* Updates rewriting every key every round, so each advancement both has
     something to publish and exercises the version bound. *)
  for s = 0 to 150 do
    Sim.Engine.schedule engine
      ~delay:(5.0 +. (8.0 *. float_of_int s))
      (fun () ->
        ignore
          (Ava3.Centralized.run_update db
             ~ops:[ Ava3.Centralized.Write (Printf.sprintf "k%d" (s mod 10), s) ]))
  done;
  (* Advancements every 100 units; measure their completion latency. *)
  for s = 1 to 10 do
    Sim.Engine.schedule engine
      ~delay:(100.0 *. float_of_int s)
      (fun () ->
        let t0 = Sim.Engine.now engine in
        match Ava3.Centralized.advance_and_wait db with
        | `Completed _ ->
            incr advancements;
            Histogram.add latencies (Sim.Engine.now engine -. t0)
        | `Busy -> ())
  done;
  Sim.Engine.run engine;
  let stats = Ava3.Centralized.stats db in
  let variant =
    if retain_extra then "four-version (MPL92-style)" else "ava3 (3 versions)"
  in
  Report.record_metrics ~experiment:"E7-centralized" ~label:variant
    (Ava3.Cluster.metrics_snapshot (Ava3.Centralized.cluster db));
  {
    variant;
    max_versions = stats.Ava3.Cluster.max_versions_ever;
    steady_versions = !steady;
    advancement_mean_latency = Histogram.mean latencies;
    advancements = !advancements;
  }

let centralized ?(seed = 41L) ?domains () =
  pmap ?domains
    (fun retain_extra -> centralized_variant ~seed ~retain_extra ())
    [ false; true ]

type sync_aborts = {
  ava3_aborts_from_advancement : int;
  fourv_mismatch_aborts : int;
  advancements_during_run : int;
}

(* Distributed: frequent advancements under distributed transactions.  The
   synchronous scheme aborts straddlers; AVA3 moves them to the future. *)
let sync_advancement_aborts ?(seed = 43L) () =
  let duration = 1500.0 in
  let spec =
    {
      Driver.default_spec with
      duration;
      update_rate = 0.25;
      query_rate = 0.05;
      remote_fraction = 0.6;
      ops_per_update = (3, 6);
    }
  in
  let ks () = Workload.Keyspace.create ~nodes:3 ~keys_per_node:80 ~theta:0.85 in
  let ava3_run () =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let ava3 =
      Baseline.Ava3_db.create ~engine ~advancement_period:40.0
        ~advancement_until:duration ~nodes:3 ()
    in
    let keyspace = ks () in
    for n = 0 to 2 do
      Baseline.Ava3_db.load ava3 ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys keyspace ~node:n))
    done;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let _ = Driver.run (module Baseline.Ava3_db) ava3 ~engine ~rng ~keyspace ~spec in
    let stats = Ava3.Cluster.stats (Baseline.Ava3_db.cluster ava3) in
    Report.record_metrics ~experiment:"E7b-sync-aborts" ~label:"ava3"
      (Ava3.Cluster.metrics_snapshot (Baseline.Ava3_db.cluster ava3));
    (* AVA3 aborts only come from deadlocks; advancement adds none.  Report
       aborts minus deadlock victims (which exist in both systems). *)
    ( stats.Ava3.Cluster.aborts - stats.Ava3.Cluster.deadlocks,
      stats.Ava3.Cluster.advancements )
  in
  let fourv_run () =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let fourv =
      Baseline.Four_version.create ~engine ~advancement_period:40.0
        ~advancement_until:duration ~nodes:3 ()
    in
    let keyspace = ks () in
    for n = 0 to 2 do
      Baseline.Four_version.load fourv ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys keyspace ~node:n))
    done;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let _ =
      Driver.run (module Baseline.Four_version) fourv ~engine ~rng ~keyspace ~spec
    in
    Report.record_metrics ~experiment:"E7b-sync-aborts" ~label:"four-version-sync"
      (Ava3.Cluster.metrics_snapshot (Baseline.Four_version.cluster fourv));
    Baseline.Four_version.mismatch_aborts fourv
  in
  match
    pmap
      (fun run -> run ())
      [
        (fun () -> `Ava3 (ava3_run ()));
        (fun () -> `Fourv (fourv_run ()));
      ]
  with
  | [ `Ava3 (ava3_aborts, advancements); `Fourv mismatch ] ->
      {
        ava3_aborts_from_advancement = ava3_aborts;
        fourv_mismatch_aborts = mismatch;
        advancements_during_run = advancements;
      }
  | _ -> assert false

let print_centralized () =
  let rows =
    List.map
      (fun r ->
        [
          r.variant;
          Report.i r.max_versions;
          Report.i r.steady_versions;
          Report.f1 r.advancement_mean_latency;
          Report.i r.advancements;
        ])
      (centralized ())
  in
  Report.print
    ~title:"E7a: centralized — versions kept vs advancement latency (§7)"
    ~header:
      [ "variant"; "max versions"; "steady versions"; "adv latency (mean)"; "advancements" ]
    ~rows;
  let s = sync_advancement_aborts () in
  Report.print
    ~title:"E7b: distributed — advancement-induced aborts (§1, §9)"
    ~header:[ "protocol"; "advancement-induced aborts"; "advancements" ]
    ~rows:
      [
        [ "ava3"; Report.i s.ava3_aborts_from_advancement; Report.i s.advancements_during_run ];
        [ "four-version-sync"; Report.i s.fourv_mismatch_aborts; Report.i s.advancements_during_run ];
      ]

(* ------------------------------------------------------------------ *)
(* E8 — optimisation ablations and the version-index GC cost           *)
(* ------------------------------------------------------------------ *)

type ablation_row = {
  ablation : string;
  abl_commits : int;
  abl_messages : int;
  abl_latches : int;
  abl_mtf : int;
  abl_staleness : float;
}

let ablations ?(seed = 59L) ?(duration = 1500.0) ?domains () =
  let run ~name ~config =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let db =
      Baseline.Ava3_db.create ~engine ~config ~advancement_period:75.0
        ~advancement_until:duration ~nodes:3 ()
    in
    let ks = Workload.Keyspace.create ~nodes:3 ~keys_per_node:80 ~theta:0.85 in
    for n = 0 to 2 do
      Baseline.Ava3_db.load db ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
    done;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let spec =
      {
        Driver.default_spec with
        duration;
        update_rate = 0.25;
        query_rate = 0.2;
        ops_per_update = (2, 4);
        remote_fraction = 0.5;
      }
    in
    let report =
      Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec
    in
    let stats = Ava3.Cluster.stats (Baseline.Ava3_db.cluster db) in
    Report.record_metrics ~experiment:"E8-ablations" ~label:name
      (Ava3.Cluster.metrics_snapshot (Baseline.Ava3_db.cluster db));
    {
      ablation = name;
      abl_commits = report.Driver.committed;
      abl_messages = stats.Ava3.Cluster.messages;
      abl_latches = stats.Ava3.Cluster.latch_acquisitions;
      abl_mtf =
        stats.Ava3.Cluster.mtf_data_access + stats.Ava3.Cluster.mtf_commit_time;
      abl_staleness = Histogram.mean report.Driver.staleness;
    }
  in
  let base = Ava3.Config.default in
  pmap ?domains
    (fun (name, config) -> run ~name ~config)
    [
      ("base protocol", base);
      ("+eager hand-off (§8)", { base with eager_counter_handoff = true });
      ("+piggyback (§10)", { base with piggyback_version = true });
      ("+root-only counters (§10)", { base with root_only_query_counters = true });
      ("+shared counters (§10)", { base with shared_transaction_counters = true });
      ("+overlap gc (§8)", { base with overlap_gc = true });
      ( "all optimisations",
        {
          base with
          eager_counter_handoff = true;
          piggyback_version = true;
          root_only_query_counters = true;
          shared_transaction_counters = true;
          overlap_gc = true;
        } );
    ]

type gc_cost_row = {
  gc_rule : string;
  store_items : int;
  gc_rounds : int;
  items_visited : int;  (** total GC work with the version index *)
  full_scan_equivalent : int;  (** items * rounds — the naive cost *)
}

(* Under the paper's renumbering rule, every live item is touched each GC
   round; the read-equivalent in-place rule plus the version index makes GC
   proportional to the items actually written. *)
let gc_cost_one ?(seed = 61L) ~renumber () =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config = { Ava3.Config.default with gc_renumber = renumber } in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~config ~nodes:1 () in
  let items = 5000 in
  Ava3.Cluster.load db ~node:0
    (List.init items (fun i -> (Printf.sprintf "k%d" i, 0)));
  let rounds = ref 0 in
  Sim.Engine.spawn engine (fun () ->
      for round = 1 to 10 do
        (* Touch only 50 of the 5000 items per round. *)
        for i = 0 to 49 do
          ignore
            (Ava3.Cluster.run_update db ~root:0
               ~ops:
                 [
                   Ava3.Update_exec.Write
                     {
                       node = 0;
                       key = Printf.sprintf "k%d" (((round * 50) + i) mod items);
                       value = round;
                     };
                 ])
        done;
        match Ava3.Cluster.advance_and_wait db ~coordinator:0 with
        | `Completed _ -> incr rounds
        | `Busy -> ()
      done);
  Sim.Engine.run engine;
  let store = Ava3.Node_state.store (Ava3.Cluster.node db 0) in
  let gc_rule = if renumber then "renumber (paper)" else "in-place" in
  Report.record_metrics ~experiment:"E8b-gc-cost" ~label:gc_rule
    (Ava3.Cluster.metrics_snapshot db);
  {
    gc_rule;
    store_items = Vstore.Store.item_count store;
    gc_rounds = !rounds;
    items_visited = Vstore.Store.gc_items_visited store;
    full_scan_equivalent = items * !rounds;
  }

let gc_cost ?seed ?domains () =
  pmap ?domains (fun renumber -> gc_cost_one ?seed ~renumber ()) [ true; false ]

let print_ablations () =
  let rows =
    List.map
      (fun r ->
        [
          r.ablation;
          Report.i r.abl_commits;
          Report.i r.abl_messages;
          Report.i r.abl_latches;
          Report.i r.abl_mtf;
          Report.f1 r.abl_staleness;
        ])
      (ablations ())
  in
  Report.print
    ~title:"E8a: optimisation ablations (same workload and seed)"
    ~header:[ "configuration"; "commits"; "messages"; "latches"; "mtf"; "staleness" ]
    ~rows;
  let rows =
    List.map
      (fun g ->
        [
          g.gc_rule;
          Report.i g.store_items;
          Report.i g.gc_rounds;
          Report.i g.items_visited;
          Report.i g.full_scan_equivalent;
        ])
      (gc_cost ())
  in
  Report.print
    ~title:
      "E8b: Phase-3 GC work, version-indexed (50 of 5000 items written per \
       round)"
    ~header:
      [ "gc rule"; "store items"; "gc rounds"; "items visited"; "full-scan equivalent" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E9 — advancement scalability with cluster size                      *)
(* ------------------------------------------------------------------ *)

type scalability_row = {
  sc_nodes : int;
  sc_advancement_latency : float;  (** mean time for a full idle round *)
  sc_messages_per_round : float;
  sc_commits : int;
  sc_staleness : float;
}

(* Version advancement costs 5n messages per round (advance-u/ack,
   advance-q/ack, garbage-collect) and two ack-collection barriers; latency
   should stay near-constant with n while messages grow linearly.  The
   protocol cost is measured on an idle cluster (a loaded one would conflate
   transaction RPC traffic); throughput and staleness come from a loaded
   run of the same size. *)
let scalability ?(seed = 67L) ?domains () =
  let idle_round_cost nodes =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~nodes () in
    Ava3.Cluster.load db ~node:0 [ ("x", 1) ];
    let latencies = Histogram.create () and message_costs = Histogram.create () in
    Sim.Engine.spawn engine (fun () ->
        let net = Ava3.Cluster.network db in
        for round = 0 to 4 do
          (* Keep versions moving so every round has something to publish. *)
          ignore
            (Ava3.Cluster.run_update db ~root:0
               ~ops:[ Ava3.Update_exec.Write { node = 0; key = "x"; value = round } ]);
          let before = Net.Network.messages_sent net in
          let t0 = Sim.Engine.now engine in
          match Ava3.Cluster.advance_and_wait db ~coordinator:(round mod nodes) with
          | `Completed _ ->
              Histogram.add latencies (Sim.Engine.now engine -. t0);
              Histogram.add message_costs
                (float_of_int (Net.Network.messages_sent net - before))
          | `Busy -> ()
        done);
    Sim.Engine.run engine;
    (Histogram.mean latencies, Histogram.mean message_costs)
  in
  let run nodes =
    let duration = 1200.0 in
    let idle_latency, idle_messages = idle_round_cost nodes in
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~nodes () in
    let ks = Workload.Keyspace.create ~nodes ~keys_per_node:40 ~theta:0.8 in
    for n = 0 to nodes - 1 do
      Ava3.Cluster.load db ~node:n
        (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
    done;
    Ava3.Cluster.start_periodic_advancement db ~coordinator:0 ~period:100.0
      ~until:duration;
    let rng = Sim.Rng.split (Sim.Engine.rng engine) in
    let spec =
      {
        Driver.default_spec with
        duration;
        update_rate = 0.08 *. float_of_int nodes;
        query_rate = 0.05 *. float_of_int nodes;
        ops_per_update = (2, 4);
      }
    in
    (* Drive the workload directly on this cluster. *)
    let committed = ref 0 in
    let staleness = Histogram.create () in
    List.iter
      (fun at ->
        Sim.Engine.schedule engine ~delay:at (fun () ->
            let root = Sim.Rng.int rng nodes in
            let lo, hi = spec.Driver.ops_per_update in
            let ops =
              List.init (Sim.Rng.int_in rng lo hi) (fun _ ->
                  let n = Sim.Rng.int rng nodes in
                  Ava3.Update_exec.Write
                    {
                      node = n;
                      key = Workload.Keyspace.draw_at ks rng ~node:n;
                      value = Sim.Rng.int rng 1000;
                    })
            in
            match Ava3.Cluster.run_update_with_retry db ~root ~ops () with
            | Ava3.Update_exec.Committed _, _ -> incr committed
            | (Ava3.Update_exec.Aborted _ | Ava3.Update_exec.Root_down _), _ ->
                ()))
      (List.init
         (int_of_float (spec.Driver.update_rate *. duration))
         (fun i -> float_of_int i /. spec.Driver.update_rate));
    List.iter
      (fun at ->
        Sim.Engine.schedule engine ~delay:at (fun () ->
            let root = Sim.Rng.int rng nodes in
            let q =
              Ava3.Cluster.run_query db ~root
                ~reads:[ (root, Workload.Keyspace.draw_at ks rng ~node:root) ]
            in
            Option.iter (Histogram.add staleness) q.Ava3.Query_exec.staleness))
      (List.init
         (int_of_float (spec.Driver.query_rate *. duration))
         (fun i -> float_of_int i /. spec.Driver.query_rate));
    Sim.Engine.run engine;
    Report.record_metrics ~experiment:"E9-scalability"
      ~label:(Printf.sprintf "nodes=%d" nodes)
      (Ava3.Cluster.metrics_snapshot db);
    {
      sc_nodes = nodes;
      sc_advancement_latency = idle_latency;
      sc_messages_per_round = idle_messages;
      sc_commits = !committed;
      sc_staleness = Histogram.mean staleness;
    }
  in
  pmap ?domains run [ 1; 2; 4; 8; 16 ]

let print_scalability () =
  let rows =
    List.map
      (fun r ->
        [
          Report.i r.sc_nodes;
          Report.f1 r.sc_advancement_latency;
          Report.f1 r.sc_messages_per_round;
          Report.i r.sc_commits;
          Report.f1 r.sc_staleness;
        ])
      (scalability ())
  in
  Report.print
    ~title:
      "E9: advancement cost vs cluster size (per-node load held constant)"
    ~header:
      [ "nodes"; "adv latency (mean)"; "messages/round"; "commits"; "staleness" ]
    ~rows

type tree_vs_flat_row = {
  fanout : int;  (** remote nodes touched per transaction *)
  flat_latency : float;
  tree_latency : float;
}

(* The R* tree model runs children concurrently; the flat executor ships
   operations one at a time.  With f remote nodes and latency L, flat pays
   ~2fL of network time where the tree pays ~2L. *)
let tree_vs_flat ?(seed = 71L) ?domains () =
  let run ~fanout ~use_tree =
    let engine = Sim.Engine.create ~seed ~trace:false () in
    let config =
      { Ava3.Config.default with read_service_time = 0.0; write_service_time = 0.0 }
    in
    let db : int Ava3.Cluster.t =
      Ava3.Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 2.0)
        ~nodes:(fanout + 1) ()
    in
    for n = 0 to fanout do
      Ava3.Cluster.load db ~node:n [ (Printf.sprintf "k%d" n, 0) ]
    done;
    let latencies = Histogram.create () in
    for s = 0 to 19 do
      Sim.Engine.schedule engine ~delay:(float_of_int s *. 100.0) (fun () ->
          let t0 = Sim.Engine.now engine in
          let done_ () = Histogram.add latencies (Sim.Engine.now engine -. t0) in
          if use_tree then begin
            let plan =
              {
                Ava3.Tree_txn.at = 0;
                work = [ Ava3.Tree_txn.Write ("k0", s) ];
                children =
                  List.init fanout (fun i ->
                      {
                        Ava3.Tree_txn.at = i + 1;
                        work = [ Ava3.Tree_txn.Write (Printf.sprintf "k%d" (i + 1), s) ];
                        children = [];
                      });
              }
            in
            match Ava3.Cluster.run_tree_update db ~plan with
            | Ava3.Tree_txn.Committed _ -> done_ ()
            | Ava3.Tree_txn.Aborted _ | Ava3.Tree_txn.Root_down _ -> ()
          end
          else
            match
              Ava3.Cluster.run_update db ~root:0
                ~ops:
                  (Ava3.Update_exec.Write { node = 0; key = "k0"; value = s }
                  :: List.init fanout (fun i ->
                         Ava3.Update_exec.Write
                           { node = i + 1; key = Printf.sprintf "k%d" (i + 1); value = s }))
            with
            | Ava3.Update_exec.Committed _ -> done_ ()
            | Ava3.Update_exec.Aborted _ | Ava3.Update_exec.Root_down _ -> ())
    done;
    Sim.Engine.run engine;
    Report.record_metrics ~experiment:"E8c-tree-vs-flat"
      ~label:(Printf.sprintf "fanout=%d %s" fanout (if use_tree then "tree" else "flat"))
      (Ava3.Cluster.metrics_snapshot db);
    Histogram.mean latencies
  in
  pmap ?domains
    (fun fanout ->
      {
        fanout;
        flat_latency = run ~fanout ~use_tree:false;
        tree_latency = run ~fanout ~use_tree:true;
      })
    [ 1; 2; 4; 8 ]

let print_tree_vs_flat () =
  let rows =
    List.map
      (fun r ->
        [ Report.i r.fanout; Report.f1 r.flat_latency; Report.f1 r.tree_latency ])
      (tree_vs_flat ())
  in
  Report.print
    ~title:
      "E8c: flat vs R*-tree transaction execution (latency 2.0/hop, one \
       write per node)"
    ~header:[ "remote nodes"; "flat latency"; "tree latency" ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E10 — availability and advancement latency under faults             *)
(* ------------------------------------------------------------------ *)

type faults_row = {
  fl_scenario : string;
  fl_commits : int;
  fl_aborts : int;
  fl_timeout_aborts : int;
  fl_queries_ok : int;
  fl_queries_failed : int;
  fl_advancements : int;
  fl_max_adv_gap : float;
  fl_violations : int;
}

(* One cluster under a seeded nemesis.  Faults are drawn from the engine's
   RNG before anything runs, so the schedule (and hence every number in
   the row) is a pure function of [seed] — identical at any AVA3_DOMAINS
   width.  Advancement is driven by a non-blocking initiator that always
   picks the first *alive* node; when a coordinator dies mid-round the
   same beat re-initiates the stalled round via the §3.2 path, so stalls
   are bounded by the initiation period plus the repair time, and queries
   keep reading their snapshots throughout. *)
let faults_one ?(seed = 73L) ~scenario ~crashes ~partitions ~slow_links () =
  let nodes = 3 and horizon = 1000.0 in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    {
      Ava3.Config.default with
      rpc_timeout = 10.0;
      advancement_retry = 30.0;
    }
  in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~config ~nodes () in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  for n = 0 to nodes - 1 do
    Ava3.Cluster.load db ~node:n
      (List.init 20 (fun i -> (Printf.sprintf "n%d-k%d" n i, 0)))
  done;
  (* Fault schedule: all faults heal well before the horizon so the run
     drains; crash windows are disjoint (see Nemesis.random_plan). *)
  let plan =
    Net.Nemesis.random_plan ~rng ~nodes ~horizon:(horizon *. 0.8) ~crashes
      ~partitions ~slow_links ~min_duration:40.0 ~max_duration:80.0
      ~extra_latency:4.0 ()
  in
  Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan;
  let key n = Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng 20) in
  (* Advancement initiator: every beat, the first alive node initiates (or
     re-initiates a stalled round — Advancement.initiate tells the two
     apart from local state). *)
  let first_alive () =
    let rec go k =
      if k >= nodes then None
      else if Ava3.Node_state.alive (Ava3.Cluster.node db k) then Some k
      else go (k + 1)
    in
    go 0
  in
  let adv_period = 50.0 in
  let n_beats = int_of_float (horizon /. adv_period) in
  for b = 1 to n_beats do
    Sim.Engine.schedule engine ~delay:(float_of_int b *. adv_period) (fun () ->
        match first_alive () with
        | Some k -> ignore (Ava3.Cluster.advance db ~coordinator:k)
        | None -> ())
  done;
  (* Updates, with retry on transient aborts (deadlock, timeout).  The
     retry loop is inlined so timed-out *attempts* are counted even when a
     later attempt commits — that is the work the faults cost us. *)
  let commits = ref 0 and aborts = ref 0 and timeout_attempts = ref 0 in
  for u = 0 to int_of_float (horizon /. 8.0) - 1 do
    Sim.Engine.schedule engine ~delay:(float_of_int u *. 8.0) (fun () ->
        let root = Sim.Rng.int rng nodes in
        let ops =
          List.init
            (1 + Sim.Rng.int rng 3)
            (fun _ ->
              let n = Sim.Rng.int rng nodes in
              Ava3.Update_exec.Write
                { node = n; key = key n; value = Sim.Rng.int rng 1000 })
        in
        let rec attempt n =
          match Ava3.Cluster.run_update db ~root ~ops with
          | Ava3.Update_exec.Committed _ -> incr commits
          | Ava3.Update_exec.Aborted { reason; _ } ->
              (match reason with
              | `Rpc_timeout _ -> incr timeout_attempts
              | _ -> ());
              let transient =
                match reason with
                | `Deadlock | `Rpc_timeout _ -> true
                | `Node_down _ | `Version_mismatch -> false
              in
              if transient && n < 5 then begin
                Sim.Engine.sleep 12.0;
                attempt (n + 1)
              end
              else incr aborts
          | Ava3.Update_exec.Root_down _ ->
              (* The submission root itself was down: counted with the
                 aborts, as the pre-sentinel Node_down outcome was. *)
              incr aborts
        in
        attempt 1)
  done;
  (* Queries: never blocked by advancement; they fail only when their root
     is down or a remote read is cut off mid-fault. *)
  let queries_ok = ref 0 and queries_failed = ref 0 in
  for q = 0 to int_of_float (horizon /. 5.0) - 1 do
    Sim.Engine.schedule engine ~delay:(float_of_int q *. 5.0) (fun () ->
        let root = Sim.Rng.int rng nodes in
        let reads =
          List.init
            (1 + Sim.Rng.int rng 3)
            (fun _ ->
              let n = Sim.Rng.int rng nodes in
              (n, key n))
        in
        match Ava3.Cluster.run_query db ~root ~reads with
        | _ -> incr queries_ok
        | exception (Net.Network.Node_down _ | Net.Network.Rpc_timeout _) ->
            incr queries_failed)
  done;
  (* Monitor: continuous invariant probes, plus the largest gap between
     advancement completions (the availability cost of the faults). *)
  let violations = ref 0 in
  let max_gap = ref 0.0 in
  let last_completion = ref 0.0 in
  let last_count = ref 0 in
  let n_probes = int_of_float (horizon /. 10.0) + 4 in
  for p = 0 to n_probes - 1 do
    Sim.Engine.schedule engine ~delay:(float_of_int p *. 10.0) (fun () ->
        violations := !violations + List.length (Ava3.Cluster.check_invariants db);
        let c = (Ava3.Cluster.stats db).Ava3.Cluster.advancements in
        let now = Sim.Engine.now engine in
        if c > !last_count then begin
          last_count := c;
          last_completion := now
        end
        else if now -. !last_completion > !max_gap then
          max_gap := now -. !last_completion)
  done;
  Sim.Engine.run engine;
  violations := !violations + List.length (Ava3.Cluster.check_invariants db);
  let stats = Ava3.Cluster.stats db in
  Report.record_metrics ~experiment:"E10-faults" ~label:scenario
    (Ava3.Cluster.metrics_snapshot db);
  {
    fl_scenario = scenario;
    fl_commits = !commits;
    fl_aborts = !aborts;
    fl_timeout_aborts = !timeout_attempts;
    fl_queries_ok = !queries_ok;
    fl_queries_failed = !queries_failed;
    fl_advancements = stats.Ava3.Cluster.advancements;
    fl_max_adv_gap = !max_gap;
    fl_violations = !violations;
  }

let faults ?seed ?domains () =
  pmap ?domains
    (fun (scenario, crashes, partitions, slow_links) ->
      faults_one ?seed ~scenario ~crashes ~partitions ~slow_links ())
    [
      ("no faults", 0, 0, 0);
      ("crashes", 2, 0, 0);
      ("partitions", 0, 2, 0);
      ("crash+partition+slow", 2, 1, 1);
    ]

let print_faults () =
  let rows =
    List.map
      (fun r ->
        [
          r.fl_scenario;
          Report.i r.fl_commits;
          Report.i r.fl_aborts;
          Report.i r.fl_timeout_aborts;
          Report.i r.fl_queries_ok;
          Report.i r.fl_queries_failed;
          Report.i r.fl_advancements;
          Report.f1 r.fl_max_adv_gap;
          Report.i r.fl_violations;
        ])
      (faults ())
  in
  Report.print
    ~title:
      "E10: availability under faults (3 nodes, rpc timeout 10, advancement \
       beat 50, horizon 1000)"
    ~header:
      [
        "scenario";
        "commits";
        "aborts";
        "timeouts";
        "queries ok";
        "q failed";
        "advancements";
        "max adv gap";
        "violations";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E11 — commit-path batching: group-commit WAL + RPC coalescing       *)
(* ------------------------------------------------------------------ *)

type batching_row = {
  bt_label : string;
  bt_gc_window : float;
  bt_rpc_window : float;
  bt_commits : int;
  bt_throughput : float;
  bt_commit_mean : float;
  bt_commit_p95 : float;
  bt_disk_forces : int;
  bt_records_per_force : float;
  bt_envelopes : int;
  bt_messages : int;
}

(* One run: [workers] clients per node, each committing a fixed count of
   two-site updates on its own private keys (no lock conflicts — the run
   measures the commit path, not contention).  The disk force latency is
   the dominant cost: with the window at 0 every committer queues on the
   serial disk for its own force, with a window one force covers the
   batch.  The work is identical in every row (same seed, same fixed
   transaction count, hence the same logical message count), so forces,
   envelopes and the makespan-derived throughput are directly
   comparable. *)
let batching_one ?(seed = 211L) ~label ~gc_window ~rpc_window () =
  let nodes = 3 and workers = 6 and txns_per_worker = 24 in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    {
      Ava3.Config.default with
      disk_force_latency = 2.0;
      group_commit_window = gc_window;
      rpc_batch_window = rpc_window;
    }
  in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~config ~nodes () in
  for n = 0 to nodes - 1 do
    Ava3.Cluster.load db ~node:n
      (List.concat_map
         (fun w ->
           List.init 4 (fun k -> (Printf.sprintf "n%d-w%d-k%d" n w k, 0)))
         (List.init (2 * workers) Fun.id))
  done;
  let commits = ref 0 in
  let lat = Histogram.create () in
  for n = 0 to nodes - 1 do
    for w = 0 to workers - 1 do
      Sim.Engine.spawn engine
        ~name:(Printf.sprintf "client-n%d-w%d" n w)
        (fun () ->
          let peer = (n + 1) mod nodes in
          let rec loop i =
            if i < txns_per_worker then begin
              if i > 0 then Sim.Engine.sleep 1.0;
              let ops =
                [
                  Update.Write
                    {
                      node = n;
                      key = Printf.sprintf "n%d-w%d-k%d" n w (i mod 4);
                      value = i;
                    };
                  Update.Write
                    {
                      node = peer;
                      key = Printf.sprintf "n%d-w%d-k%d" peer (workers + w) (i mod 4);
                      value = i;
                    };
                ]
              in
              (match Ava3.Cluster.run_update db ~root:n ~ops with
              | Update.Committed info ->
                  incr commits;
                  Histogram.add lat (info.Update.finished_at -. info.Update.started_at)
              | Update.Aborted _ | Update.Root_down _ -> ());
              loop (i + 1)
            end
          in
          loop 0)
    done
  done;
  Sim.Engine.run engine;
  (* The queue drained: [now] is the instant the last commit (plus its
     final network leg) finished — the makespan of the fixed workload. *)
  let makespan = Sim.Engine.now engine in
  let stats = Ava3.Cluster.stats db in
  Report.record_metrics ~experiment:"E11-batching" ~label
    (Ava3.Cluster.metrics_snapshot db);
  {
    bt_label = label;
    bt_gc_window = gc_window;
    bt_rpc_window = rpc_window;
    bt_commits = !commits;
    bt_throughput = float_of_int !commits /. makespan;
    bt_commit_mean = Histogram.mean lat;
    bt_commit_p95 = Histogram.percentile lat 0.95;
    bt_disk_forces = stats.Ava3.Cluster.disk_forces;
    bt_records_per_force =
      (if stats.Ava3.Cluster.disk_forces = 0 then 0.0
       else
         float_of_int stats.Ava3.Cluster.records_forced
         /. float_of_int stats.Ava3.Cluster.disk_forces);
    bt_envelopes = stats.Ava3.Cluster.envelopes;
    bt_messages = stats.Ava3.Cluster.messages;
  }

let batching ?seed ?domains () =
  pmap ?domains
    (fun (label, gc_window, rpc_window) ->
      batching_one ?seed ~label ~gc_window ~rpc_window ())
    [
      ("off", 0.0, 0.0);
      ("w=1", 1.0, 0.25);
      ("w=4", 4.0, 1.0);
      ("w=16", 16.0, 4.0);
    ]

let print_batching () =
  let rows =
    List.map
      (fun r ->
        [
          r.bt_label;
          Report.f1 r.bt_gc_window;
          Report.f2 r.bt_rpc_window;
          Report.i r.bt_commits;
          Report.f2 r.bt_throughput;
          Report.f1 r.bt_commit_mean;
          Report.f1 r.bt_commit_p95;
          Report.i r.bt_disk_forces;
          Report.f1 r.bt_records_per_force;
          Report.i r.bt_envelopes;
          Report.i r.bt_messages;
        ])
      (batching ())
  in
  Report.print
    ~title:
      "E11: commit-path batching (3 nodes, 6 clients/node, 24 txns each, \
       disk force 2.0)"
    ~header:
      [
        "batching";
        "gc win";
        "rpc win";
        "commits";
        "commits/s";
        "lat mean";
        "lat p95";
        "forces";
        "recs/force";
        "envelopes";
        "messages";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E12 — hierarchical advancement at scale                             *)
(* ------------------------------------------------------------------ *)

type hierarchy_row = {
  hr_nodes : int;
  hr_mode : string;
  hr_rounds : int;
  hr_phase1_mean : float;
  hr_phase2_mean : float;
  hr_coord_egress : float;
  hr_commits : int;
  hr_aborts : int;
  hr_mtf : int;
  hr_events_per_sec : float;
}

(* One run: a cluster of [nodes] sites whose data lives on the first
   max(2, nodes/8) of them, driven by a Zipf-skewed (hot-partition),
   storm-bursty update/query mix confined to the data sites.  The
   coordinator is the last site — it hosts no data and runs no
   transactions, so its network egress is purely advancement-protocol
   traffic and divides cleanly by the number of completed rounds.  Rows
   run sequentially in this domain so the wall-clock events/sec figures
   are not distorted by sibling domains. *)
let hierarchy_one ~seed ~nodes ~mode ~tree_arity ~partition_aware =
  let duration = 600.0 in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  (* A per-message transmitter cost is what makes the flat O(N) broadcast
     expensive at the coordinator; without it a 1000-wide fan-out departs
     in zero simulated time and the tree could only lose (it adds hops). *)
  let config =
    {
      Ava3.Config.default with
      tree_arity;
      partition_aware;
      send_occupancy = 0.05;
    }
  in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~config ~nodes () in
  let data_sites = max 2 (nodes / 8) in
  let keys_per_site = 12 in
  let key s i = Printf.sprintf "n%d-k%d" s i in
  for s = 0 to data_sites - 1 do
    Ava3.Cluster.load db ~node:s
      (List.init keys_per_site (fun i -> (key s i, 0)))
  done;
  let coordinator = nodes - 1 in
  Ava3.Cluster.start_periodic_advancement db ~coordinator ~period:60.0
    ~until:duration;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let zipf = Workload.Zipf.create ~n:data_sites ~theta:0.9 in
  let pick_site () = Workload.Zipf.sample zipf rng in
  let pick_key s = key s (Sim.Rng.int rng keys_per_site) in
  List.iter
    (fun at ->
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let root = pick_site () in
          let other = pick_site () in
          (* Write in canonical (site, key) order: with every transaction
             acquiring its two hot-partition locks the same way, the storm
             cannot manufacture lock-order deadlock cycles, and the sweep
             measures advancement behavior rather than retry meltdown. *)
          let w1 = (root, pick_key root) and w2 = (other, pick_key other) in
          let (a, ka), (b, kb) = if w1 <= w2 then (w1, w2) else (w2, w1) in
          let ops =
            [
              Ava3.Update_exec.Write
                { node = a; key = ka; value = Sim.Rng.int rng 1000 };
              Ava3.Update_exec.Write
                { node = b; key = kb; value = Sim.Rng.int rng 1000 };
            ]
          in
          ignore (Ava3.Cluster.run_update_with_retry db ~root ~ops ())))
    (Workload.Driver.arrival_times rng
       ~rate:(0.02 *. float_of_int data_sites)
       ~duration ~storm_factor:3.0 ~storm_period:150.0 ());
  List.iter
    (fun at ->
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let root = pick_site () in
          ignore (Ava3.Cluster.run_query db ~root ~reads:[ (root, pick_key root) ])))
    (Workload.Driver.arrival_times rng
       ~rate:(0.02 *. float_of_int data_sites)
       ~duration ~storm_factor:3.0 ~storm_period:150.0 ());
  let t0 = Unix.gettimeofday () in
  Sim.Engine.run engine;
  let wall = Unix.gettimeofday () -. t0 in
  let snapshot = Ava3.Cluster.metrics_snapshot db in
  Report.record_metrics ~experiment:"E12-hierarchy"
    ~label:(Printf.sprintf "nodes=%d mode=%s" nodes mode)
    snapshot;
  let hist_totals f =
    List.fold_left
      (fun (c, s) (n : Sim.Metrics.node_snapshot) ->
        let h : Sim.Metrics.hist_snapshot = f n in
        (c + h.Sim.Metrics.count, s +. h.Sim.Metrics.sum))
      (0, 0.0) snapshot
  in
  let mean f =
    let c, s = hist_totals f in
    if c = 0 then 0.0 else s /. float_of_int c
  in
  let stats = Ava3.Cluster.stats db in
  let rounds = stats.Ava3.Cluster.advancements in
  let net = Ava3.Cluster.network db in
  let egress = ref 0 in
  for dst = 0 to nodes - 1 do
    egress := !egress + Net.Network.link_count net ~src:coordinator ~dst
  done;
  {
    hr_nodes = nodes;
    hr_mode = mode;
    hr_rounds = rounds;
    hr_phase1_mean = mean (fun n -> n.Sim.Metrics.phase1_duration);
    hr_phase2_mean = mean (fun n -> n.Sim.Metrics.phase2_duration);
    hr_coord_egress =
      (if rounds = 0 then 0.0
       else float_of_int !egress /. float_of_int rounds);
    hr_commits = stats.Ava3.Cluster.commits;
    hr_aborts = stats.Ava3.Cluster.aborts;
    hr_mtf = stats.Ava3.Cluster.mtf_data_access + stats.Ava3.Cluster.mtf_commit_time;
    hr_events_per_sec =
      (if wall <= 0.0 then 0.0
       else float_of_int (Sim.Engine.events_executed engine) /. wall);
  }

let hierarchy ?(seed = 83L) ?(sizes = [ 64; 256; 1024 ]) () =
  let modes =
    [ ("flat", 0, false); ("tree-8", 8, false); ("tree-8+pa", 8, true) ]
  in
  List.concat_map
    (fun nodes ->
      List.map
        (fun (mode, tree_arity, partition_aware) ->
          hierarchy_one ~seed ~nodes ~mode ~tree_arity ~partition_aware)
        modes)
    sizes

let print_hierarchy ?sizes () =
  let rows =
    List.map
      (fun r ->
        [
          Report.i r.hr_nodes;
          r.hr_mode;
          Report.i r.hr_rounds;
          Report.f2 r.hr_phase1_mean;
          Report.f2 r.hr_phase2_mean;
          Report.f1 r.hr_coord_egress;
          Report.i r.hr_commits;
          Report.i r.hr_aborts;
          Report.i r.hr_mtf;
          Printf.sprintf "%.0fk" (r.hr_events_per_sec /. 1000.0);
        ])
      (hierarchy ?sizes ())
  in
  Report.print
    ~title:
      "E12: hierarchical advancement at scale (hot Zipf partitions, arrival \
       storms; data on n/8 sites)"
    ~header:
      [
        "nodes";
        "mode";
        "rounds";
        "phase1 mean";
        "phase2 mean";
        "coord msgs/round";
        "commits";
        "aborts";
        "mtf";
        "events/s";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E13 — replication: pinned backup reads under faults                 *)
(* ------------------------------------------------------------------ *)

type replication_row = {
  rp_replicas : int;
  rp_queries_ok : int;
  rp_queries_failed : int;
  rp_read_tput : float;  (* completed queries per unit virtual time *)
  rp_backup_reads : int;
  rp_stale_mean : float;
  rp_stale_p95 : float;
  rp_stale_max : float;
  rp_commits : int;
  rp_aborts : int;
  rp_demotions : int;
  rp_promotions : int;
  rp_advancements : int;
  rp_violations : int;
}

(* One cluster at a given replica count under the same seeded fault
   schedule: crashes hit the original primary sites (forcing promotion
   when backups exist, partition outage when they don't) and link
   partitions cut primary-to-primary links (backups, living at higher
   site ids, keep their ship links and keep serving pinned reads).
   Queries are closed-loop with cross-partition reads, so each remote
   read exercises the version-pinned router; reply bandwidth at the
   serving site ([send_occupancy]) is the contended resource that extra
   replicas multiply.  Staleness is observed per query: the age of the
   snapshot version the query actually read, at completion time. *)
let replication_one ?(seed = 97L) ~replicas ~horizon () =
  let nparts = 3 in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    {
      Ava3.Config.default with
      replicas;
      replica_catchup_timeout = 12.0;
      rpc_timeout = 15.0;
      advancement_retry = 30.0;
      read_service_time = 0.5;
      write_service_time = 0.5;
      send_occupancy = 0.4;
    }
  in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~nodes:nparts ()
  in
  let cs = Ava3.Cluster.state db in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let keys_per = 12 in
  for n = 0 to nparts - 1 do
    Ava3.Cluster.load db ~node:n
      (List.init keys_per (fun i -> (Printf.sprintf "n%d-k%d" n i, 0)))
  done;
  (* Same fault schedule at every replica count: targets are the site ids
     0 .. nparts-1, i.e. the original primaries. *)
  let plan =
    Net.Nemesis.random_plan ~rng ~nodes:nparts ~horizon:(horizon *. 0.8)
      ~crashes:2 ~partitions:2 ~slow_links:0 ~min_duration:40.0
      ~max_duration:80.0 ()
  in
  Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan;
  let key n = Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng keys_per) in
  (* Advancement initiator over partitions, first one whose current
     primary is alive. *)
  let first_alive () =
    let rec go p =
      if p >= nparts then None
      else if
        Ava3.Node_state.alive
          (Ava3.Cluster.node db (Ava3.Cluster_state.home_site cs p))
      then Some p
      else go (p + 1)
    in
    go 0
  in
  let adv_period = 40.0 in
  for b = 1 to int_of_float (horizon /. adv_period) do
    Sim.Engine.schedule engine ~delay:(float_of_int b *. adv_period) (fun () ->
        match first_alive () with
        | Some p -> ignore (Ava3.Cluster.advance db ~coordinator:p)
        | None -> ())
  done;
  (* Updates: open loop, modest rate, retried on transient aborts. *)
  let commits = ref 0 and aborts = ref 0 in
  for u = 0 to int_of_float (horizon /. 6.0) - 1 do
    Sim.Engine.schedule engine ~delay:(float_of_int u *. 6.0) (fun () ->
        let root = Sim.Rng.int rng nparts in
        let ops =
          List.init
            (1 + Sim.Rng.int rng 2)
            (fun _ ->
              let n = Sim.Rng.int rng nparts in
              Update.Write { node = n; key = key n; value = Sim.Rng.int rng 1000 })
        in
        let rec attempt n =
          match Ava3.Cluster.run_update db ~root ~ops with
          | Update.Committed _ -> incr commits
          | Update.Aborted { reason; _ } ->
              let transient =
                match reason with
                | `Deadlock | `Rpc_timeout _ -> true
                | `Node_down _ | `Version_mismatch -> false
              in
              if transient && n < 5 then begin
                Sim.Engine.sleep 10.0;
                attempt (n + 1)
              end
              else incr aborts
          | Update.Root_down _ -> incr aborts
        in
        attempt 1)
  done;
  (* Queries: closed loop, every read remote so it goes through the
     router.  Throughput is how many complete before the horizon. *)
  let queries_ok = ref 0 and queries_failed = ref 0 in
  let stale = Histogram.create () in
  let n_clients = 9 in
  for c = 0 to n_clients - 1 do
    Sim.Engine.schedule engine ~delay:(0.5 *. float_of_int c) (fun () ->
        while Sim.Engine.now engine < horizon do
          let root = c mod nparts in
          let reads =
            List.init 2 (fun i ->
                let n = (root + 1 + ((c + i) mod (nparts - 1))) mod nparts in
                (n, key n))
          in
          (match Ava3.Cluster.run_query db ~root ~reads with
          | (q : int Ava3.Query_exec.result) ->
              incr queries_ok;
              (match
                 Ava3.Cluster.staleness_of_version db ~version:q.version
                   ~at:(Sim.Engine.now engine)
               with
              | Some age -> Histogram.add stale age
              | None -> ())
          | exception (Net.Network.Node_down _ | Net.Network.Rpc_timeout _) ->
              incr queries_failed);
          Sim.Engine.sleep 1.0
        done)
  done;
  let violations = ref 0 in
  for p = 0 to int_of_float (horizon /. 10.0) do
    Sim.Engine.schedule engine ~delay:(float_of_int p *. 10.0) (fun () ->
        violations := !violations + List.length (Ava3.Cluster.check_invariants db))
  done;
  Sim.Engine.run engine;
  violations := !violations + List.length (Ava3.Cluster.check_invariants db);
  let stats = Ava3.Cluster.stats db in
  Report.record_metrics ~experiment:"E13-replication"
    ~label:(Printf.sprintf "replicas=%d" replicas)
    (Ava3.Cluster.metrics_snapshot db);
  {
    rp_replicas = replicas;
    rp_queries_ok = !queries_ok;
    rp_queries_failed = !queries_failed;
    rp_read_tput = float_of_int !queries_ok /. horizon;
    rp_backup_reads = stats.Ava3.Cluster.backup_reads;
    rp_stale_mean = Histogram.mean stale;
    rp_stale_p95 = Histogram.percentile stale 0.95;
    rp_stale_max = Histogram.max_value stale;
    rp_commits = !commits;
    rp_aborts = !aborts;
    rp_demotions = stats.Ava3.Cluster.replica_demotions;
    rp_promotions = stats.Ava3.Cluster.replica_promotions;
    rp_advancements = stats.Ava3.Cluster.advancements;
    rp_violations = !violations;
  }

let replication ?seed ?(horizon = 1000.0) ?domains () =
  pmap ?domains
    (fun replicas -> replication_one ?seed ~replicas ~horizon ())
    [ 0; 1; 2 ]

let print_replication ?horizon () =
  let rows =
    List.map
      (fun r ->
        [
          Report.i r.rp_replicas;
          Report.i r.rp_queries_ok;
          Report.i r.rp_queries_failed;
          Report.f2 r.rp_read_tput;
          Report.i r.rp_backup_reads;
          Report.f2 r.rp_stale_mean;
          Report.f2 r.rp_stale_p95;
          Report.f1 r.rp_stale_max;
          Report.i r.rp_commits;
          Report.i r.rp_aborts;
          Report.i r.rp_demotions;
          Report.i r.rp_promotions;
          Report.i r.rp_advancements;
          Report.i r.rp_violations;
        ])
      (replication ?horizon ())
  in
  Report.print
    ~title:
      "E13: pinned backup reads under faults (3 partitions, 2 crashes + 2 \
       link partitions, closed-loop cross-partition queries)"
    ~header:
      [
        "replicas";
        "queries ok";
        "q failed";
        "reads/t";
        "backup reads";
        "stale mean";
        "stale p95";
        "stale max";
        "commits";
        "aborts";
        "demotions";
        "promotions";
        "advancements";
        "violations";
      ]
    ~rows

(* ------------------------------------------------------------------ *)
(* E14 — secondary indexes: indexed vs full-scan analytical mix        *)
(* ------------------------------------------------------------------ *)

type analytical_row = {
  an_plan : string;
  an_commits : int;
  an_aborts : int;
  an_queries_ok : int;
  an_scans : int;
  an_joins : int;
  an_scan_mean : float;
  an_scan_p95 : float;
  an_join_mean : float;
  an_join_tput : float;  (* completed joins per 100 time units *)
  an_stale_mean : float;
  an_stale_max : float;
  an_index_updates : int;
  an_index_probes : int;
  an_advancements : int;
  an_violations : int;
}

(* One driver run of the analytical mix (point queries + attribute-range
   scans + hash joins alongside the update stream, periodic advancement
   underneath) against a given access-path plan.  Identical seeds give
   identical generated workloads — arrivals, roots, predicates — across
   plans, and because AVA3 updates never wait for queries or advancement
   the update stream's commit/abort outcome is plan-independent: the
   access path only moves the analytical latency and the staleness (slow
   full scans hold query counters longer, delaying Phase 2).
   [`Both_check] runs both plans back to back at every serving node and
   raises on any divergence, so including it in the sweep makes the whole
   experiment an equivalence oracle. *)
let analytical_one ?(seed = 41L) ~plan ~horizon () =
  let nodes = 3 and keys_per_node = 40 in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let ks = Workload.Keyspace.create ~nodes ~keys_per_node ~theta:0.8 in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let config =
    {
      Ava3.Config.default with
      read_service_time = 0.2;
      write_service_time = 0.3;
    }
  in
  let db =
    Baseline.Ava3_db.create ~engine ~config ~advancement_period:60.0
      ~advancement_until:horizon ~index:Baseline.Ava3_db.default_extract
      ~scan_plan:plan ~nodes ()
  in
  for n = 0 to nodes - 1 do
    Baseline.Ava3_db.load db ~node:n
      (List.mapi
         (fun i k -> (k, (n * keys_per_node) + i))
         (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let spec =
    {
      Workload.Driver.default_spec with
      duration = horizon;
      update_rate = 0.4;
      query_rate = 0.3;
      scan_fraction = 0.3;
      join_fraction = 0.1;
    }
  in
  let report =
    Workload.Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks
      ~spec
  in
  let cluster = Baseline.Ava3_db.cluster db in
  let violations = List.length (Ava3.Cluster.check_invariants cluster) in
  let index_updates = ref 0 and index_probes = ref 0 in
  for i = 0 to Ava3.Cluster.node_count cluster - 1 do
    match Ava3.Node_state.index (Ava3.Cluster.node cluster i) with
    | Some ix ->
        let s = Vindex.Index.stats ix in
        index_updates := !index_updates + s.Vindex.Index.updates;
        index_probes := !index_probes + s.Vindex.Index.probes
    | None -> ()
  done;
  let stats = Ava3.Cluster.stats cluster in
  let plan_name =
    match plan with
    | `Index -> "index"
    | `Full_scan -> "full-scan"
    | `Both_check -> "both-check"
  in
  Report.record_metrics ~experiment:"E14-analytical" ~label:plan_name
    (Ava3.Cluster.metrics_snapshot cluster);
  {
    an_plan = plan_name;
    an_commits = report.Workload.Driver.committed;
    an_aborts = report.Workload.Driver.aborted;
    an_queries_ok = report.Workload.Driver.queries_ok;
    an_scans = report.Workload.Driver.scans_ok;
    an_joins = report.Workload.Driver.joins_ok;
    an_scan_mean = Histogram.mean report.Workload.Driver.scan_latency;
    an_scan_p95 = Histogram.percentile report.Workload.Driver.scan_latency 0.95;
    an_join_mean = Histogram.mean report.Workload.Driver.join_latency;
    an_join_tput =
      float_of_int report.Workload.Driver.joins_ok /. horizon *. 100.0;
    an_stale_mean = Histogram.mean report.Workload.Driver.staleness;
    an_stale_max = Histogram.max_value report.Workload.Driver.staleness;
    an_index_updates = !index_updates;
    an_index_probes = !index_probes;
    an_advancements = stats.Ava3.Cluster.advancements;
    an_violations = violations;
  }

let analytical ?seed ?(horizon = 1500.0) ?domains () =
  pmap ?domains
    (fun plan -> analytical_one ?seed ~plan ~horizon ())
    [ `Index; `Full_scan; `Both_check ]

let print_analytical ?horizon () =
  let rows_data = analytical ?horizon () in
  let rows =
    List.map
      (fun r ->
        [
          r.an_plan;
          Report.i r.an_commits;
          Report.i r.an_aborts;
          Report.i r.an_queries_ok;
          Report.i r.an_scans;
          Report.i r.an_joins;
          Report.f2 r.an_scan_mean;
          Report.f2 r.an_scan_p95;
          Report.f2 r.an_join_mean;
          Report.f2 r.an_join_tput;
          Report.f2 r.an_stale_mean;
          Report.f1 r.an_stale_max;
          Report.i r.an_index_updates;
          Report.i r.an_index_probes;
          Report.i r.an_advancements;
          Report.i r.an_violations;
        ])
      rows_data
  in
  Report.print
    ~title:
      "E14: indexed vs full-scan analytical mix (3 nodes, 30% scans + 10% \
       joins in the query stream, periodic advancement; both-check row is \
       the equivalence oracle)"
    ~header:
      [
        "plan";
        "commits";
        "aborts";
        "queries ok";
        "scans";
        "joins";
        "scan mean";
        "scan p95";
        "join mean";
        "joins/100t";
        "stale mean";
        "stale max";
        "idx updates";
        "idx probes";
        "advancements";
        "violations";
      ]
    ~rows;
  (* The driver generates identical workloads across plans and updates
     never wait for queries, so the update stream's outcome must be
     byte-identical: any drift means the access path leaked into
     transaction semantics. *)
  match rows_data with
  | first :: rest ->
      let same r =
        r.an_commits = first.an_commits
        && r.an_aborts = first.an_aborts
        && r.an_queries_ok = first.an_queries_ok
        && r.an_scans = first.an_scans
        && r.an_joins = first.an_joins
      in
      if List.for_all same rest && List.for_all (fun r -> r.an_violations = 0) rows_data
      then
        print_endline
          "E14: commit/abort/query counters identical across plans; no \
           invariant violations"
      else
        failwith
          "E14 VIOLATION: access-path plan changed transaction outcomes or \
           invariants failed"
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* E15 — session layer: goodput and wasted work vs retry policy        *)
(* ------------------------------------------------------------------ *)

type session_row = {
  sn_policy : string;
  sn_committed : int;
  sn_failed : int;
  sn_attempts : int;
  sn_wasted : int;  (* attempts that did not end in a commit *)
  sn_retries : int;
  sn_backoff : float;
  sn_rollbacks : int;
  sn_queries_ok : int;
  sn_query_failures : int;
  sn_goodput : float;  (* committed transactions per 100 time units *)
  sn_violations : int;
}

(* One retry policy against the session-layer client mix: a few sessions
   each run a seeded [Session.Dsl.gen] program (savepoint scopes,
   expect-abort rollbacks, occasional queries) while a nemesis schedule
   crashes nodes and cuts links underneath and advancement beats keep
   versions moving.  Everything random — the generated programs, the
   fault schedule, the invariant-probe instants — draws from named forks
   of the engine's root stream, so every policy row faces the exact same
   workload and faults; only the retry discipline differs.  Wasted work
   is the attempt surplus: attempts that burned locks, RPCs and log
   traffic without producing a commit. *)
let session_retry_one ?(seed = 59L) ~policy:(name, max_retries, backoff_base)
    ~horizon () =
  let nodes = 3 and keys_per_node = 8 and nsessions = 3 in
  let txns = max 4 (int_of_float (horizon /. 120.0)) in
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    {
      Ava3.Config.default with
      read_service_time = 0.3;
      write_service_time = 0.5;
      rpc_timeout = 20.0;
      advancement_retry = 40.0;
      max_retries;
      retry_backoff_base = backoff_base;
    }
  in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~nodes ()
  in
  for n = 0 to nodes - 1 do
    Ava3.Cluster.load db ~node:n
      (List.init keys_per_node (fun i -> (Session.Dsl.gen_key ~node:n i, i)))
  done;
  let root = Sim.Engine.rng engine in
  let gen_rng = Sim.Rng.fork_named root "e15-gen" in
  let summary = ref Session.Dsl.empty_summary in
  for i = 0 to nsessions - 1 do
    let prog =
      Session.Dsl.gen ~rng:gen_rng ~nodes ~keys_per_node ~txns
    in
    Sim.Engine.schedule engine ~name:(Printf.sprintf "session-%d" i)
      ~delay:(1.0 +. (5.0 *. float_of_int i))
      (fun () ->
        let s = Session.create db ~seed:(Int64.of_int (1000 + i)) in
        summary := Session.Dsl.add_summary !summary (Session.Dsl.run s prog))
  done;
  let plan =
    Net.Nemesis.random_plan
      ~rng:(Sim.Rng.fork_named root "e15-nemesis")
      ~nodes ~horizon:(horizon /. 1.5) ~crashes:2 ~partitions:2 ~slow_links:1
      ~min_duration:20.0 ~max_duration:60.0 ~extra_latency:3.0 ()
  in
  Net.Nemesis.install ~engine (Ava3.Cluster.nemesis_target db) plan;
  (* Advancement beats so retried work lands across several versions. *)
  let beats = int_of_float (horizon /. 45.0) in
  for k = 1 to beats do
    Sim.Engine.schedule engine ~delay:(45.0 *. float_of_int k) (fun () ->
        ignore
          (Ava3.Cluster.advance db ~coordinator:(k mod nodes)
            : [ `Started of int | `Busy ]))
  done;
  let violations = ref 0 in
  let probe_rng = Sim.Rng.fork_named root "e15-probes" in
  for _ = 1 to 10 do
    Sim.Engine.schedule engine ~delay:(Sim.Rng.float probe_rng horizon)
      (fun () ->
        violations :=
          !violations + List.length (Ava3.Cluster.check_invariants db))
  done;
  (* Backoff sleeps and timeout detection extend past the horizon; the
     wall is a livelock check, not a deadline. *)
  Sim.Engine.run ~until:(horizon *. 10.0) engine;
  let stalled = Sim.Engine.pending_events engine > 0 in
  violations := !violations + List.length (Ava3.Cluster.check_invariants db);
  let retries = ref 0 and rollbacks = ref 0 and backoff = ref 0.0 in
  List.iter
    (fun (n : Sim.Metrics.node_snapshot) ->
      retries := !retries + n.session_retries;
      rollbacks := !rollbacks + n.savepoint_rollbacks;
      backoff := !backoff +. n.session_backoff)
    (Ava3.Cluster.metrics_snapshot db);
  Report.record_metrics ~experiment:"E15-sessions" ~label:name
    (Ava3.Cluster.metrics_snapshot db);
  let sum : Session.Dsl.summary = !summary in
  {
    sn_policy = name;
    sn_committed = sum.committed;
    sn_failed = sum.failed;
    sn_attempts = sum.attempts;
    sn_wasted = sum.attempts - sum.committed;
    sn_retries = !retries;
    sn_backoff = !backoff;
    sn_rollbacks = !rollbacks;
    sn_queries_ok = sum.queries;
    sn_query_failures = sum.query_failures;
    sn_goodput = float_of_int sum.committed /. horizon *. 100.0;
    sn_violations = (!violations + if stalled then 1 else 0);
  }

let session_policies =
  [
    ("no-retry", 0, 5.0);
    ("retry-2", 2, 5.0);
    ("retry-5", 5, 5.0);
    ("retry-5-eager", 5, 0.0);
  ]

let session_retry ?seed ?(horizon = 1200.0) ?domains () =
  pmap ?domains
    (fun policy -> session_retry_one ?seed ~policy ~horizon ())
    session_policies

let print_session_retry ?horizon () =
  let rows_data = session_retry ?horizon () in
  let rows =
    List.map
      (fun r ->
        [
          r.sn_policy;
          Report.i r.sn_committed;
          Report.i r.sn_failed;
          Report.i r.sn_attempts;
          Report.i r.sn_wasted;
          Report.i r.sn_retries;
          Report.f1 r.sn_backoff;
          Report.i r.sn_rollbacks;
          Report.i r.sn_queries_ok;
          Report.i r.sn_query_failures;
          Report.f2 r.sn_goodput;
          Report.i r.sn_violations;
        ])
      rows_data
  in
  Report.print
    ~title:
      "E15: session goodput and wasted work vs retry policy (3 sessions of \
       seeded DSL programs, 2 crashes + 2 partitions + 1 slow link, \
       advancement beats; same workload and faults in every row)"
    ~header:
      [
        "policy"; "committed"; "failed"; "attempts"; "wasted"; "retries";
        "backoff"; "sp-rollbacks"; "queries"; "q-failures"; "goodput/100t";
        "violations";
      ]
    ~rows;
  (* Every policy row runs the same generated programs, so the program
     count — committed + failed — must agree across rows, and no row may
     trip an invariant probe or stall the simulation. *)
  match rows_data with
  | first :: rest ->
      let total r = r.sn_committed + r.sn_failed in
      if
        List.for_all (fun r -> total r = total first) rest
        && List.for_all (fun r -> r.sn_violations = 0) rows_data
      then
        print_endline
          "E15: program counts identical across policies; no invariant \
           violations"
      else
        failwith
          "E15 VIOLATION: retry policy changed the program count or an \
           invariant/livelock check failed"
  | [] -> ()
