(** Experiment drivers for the paper's measurable claims (DESIGN.md E3–E7).

    Each function runs a self-contained simulation (deterministic under its
    seed) and returns structured results; [print_*] renders the same data as
    the tables in EXPERIMENTS.md. *)

(** {1 E3 — §6.2 invariants under load} *)

type invariants_run = {
  probes : int;  (** invariant checks performed at random instants *)
  violations : int;
  max_versions_ever : int;
  advancements : int;
  commits : int;
  queries : int;
}

val invariants : ?seed:int64 -> nodes:int -> duration:float -> unit -> invariants_run
val print_invariants : unit -> unit

(** {1 E4 — §8 staleness vs advancement period} *)

type staleness_point = {
  period : float;
  eager : bool;
  mean_staleness : float;
  p95_staleness : float;
  max_staleness : float;
  advancements_done : int;
}

val staleness_sweep :
  ?seed:int64 ->
  ?periods:float list ->
  ?domains:int ->
  eager:bool ->
  unit ->
  staleness_point list
(** Each period runs in its own engine; the sweep fans out over [domains]
    workers (default {!Sim.Pool.default_domains}). *)

type staleness_bound = {
  long_txn_duration : float;
  publish_lag_plain : float;
      (** time from advancement start to queries seeing the new version,
          with a long update transaction running — base protocol *)
  publish_lag_eager : float;  (** same with the §8 eager hand-off *)
}

val staleness_bound : ?seed:int64 -> ?long_txn_duration:float -> unit -> staleness_bound

type continuous_point = {
  query_duration : float;
  cont_mean : float;
  cont_p95 : float;
  cont_max : float;
  rounds : int;  (** back-to-back advancement rounds completed *)
}

val continuous_staleness :
  ?seed:int64 -> ?durations:float list -> ?domains:int -> unit -> continuous_point list
(** §8 limiting mode: with advancements running back to back, a query's
    snapshot is stale by at most (roughly) the age of the longest query
    running when it started. *)

val print_staleness : unit -> unit

(** {1 E5 — protocol comparison on one workload} *)

type comparison_row = {
  protocol : string;
  committed : int;
  aborted : int;
  update_p95 : float;
  query_p95 : float;
  long_query_p95 : float;
  staleness_mean : float;
  max_versions : int;
  lock_wait_time : float;
  interference_metric : float;
      (** protocol-specific: lock wait (S2PL), commit delay (2V), 0 for
          version-based protocols *)
}

val comparison :
  ?seed:int64 -> ?duration:float -> ?domains:int -> unit -> comparison_row list
val print_comparison : unit -> unit

(** {1 E6 — moveToFuture frequency and cost} *)

type mtf_row = {
  scheme_name : string;
  piggyback : bool;
  advancement_period : float;
  commits : int;
  mtf_data : int;
  mtf_commit : int;
  mtf_trivial : int;
  items_copied : int;
}

val move_to_future :
  ?seed:int64 -> ?duration:float -> ?domains:int -> unit -> mtf_row list

type piggyback_run = {
  staged : int;  (** transactions engineered to straddle an advancement *)
  commit_mtf_plain : int;
  commit_mtf_piggyback : int;
}

val piggyback_targeted : ?seed:int64 -> unit -> piggyback_run
val print_move_to_future : unit -> unit

(** {1 E7 — three vs four versions; synchronous advancement aborts} *)

type centralized_row = {
  variant : string;
  max_versions : int;
  steady_versions : int;
      (** resident versions sampled between advancements — AVA3: at most 2,
          four-version scheme: 3 *)
  advancement_mean_latency : float;
      (** time for one advancement to complete under long queries *)
  advancements : int;
}

val centralized : ?seed:int64 -> ?domains:int -> unit -> centralized_row list

type sync_aborts = {
  ava3_aborts_from_advancement : int;
  fourv_mismatch_aborts : int;
  advancements_during_run : int;
}

val sync_advancement_aborts : ?seed:int64 -> unit -> sync_aborts
val print_centralized : unit -> unit

(** {1 E8 — ablations and GC cost} *)

type ablation_row = {
  ablation : string;
  abl_commits : int;
  abl_messages : int;
  abl_latches : int;
  abl_mtf : int;
  abl_staleness : float;
}

val ablations :
  ?seed:int64 -> ?duration:float -> ?domains:int -> unit -> ablation_row list
(** The same workload under each optimisation flag (and all together). *)

type gc_cost_row = {
  gc_rule : string;
  store_items : int;
  gc_rounds : int;
  items_visited : int;
  full_scan_equivalent : int;
}

val gc_cost : ?seed:int64 -> ?domains:int -> unit -> gc_cost_row list
(** Phase-3 garbage-collection work under the paper's renumbering rule and
    the read-equivalent in-place rule, both version-indexed, against the
    naive full-scan cost. *)

val print_ablations : unit -> unit

(** {1 E9 — scalability} *)

type scalability_row = {
  sc_nodes : int;
  sc_advancement_latency : float;
  sc_messages_per_round : float;
  sc_commits : int;
  sc_staleness : float;
}

val scalability : ?seed:int64 -> ?domains:int -> unit -> scalability_row list
(** Advancement latency and message cost as the cluster grows (per-node
    workload held constant): messages grow linearly (5n per round), latency
    stays bounded by in-flight transaction residuals, not by n. *)

val print_scalability : unit -> unit

type tree_vs_flat_row = {
  fanout : int;
  flat_latency : float;
  tree_latency : float;
}

val tree_vs_flat : ?seed:int64 -> ?domains:int -> unit -> tree_vs_flat_row list
(** Transaction latency of the sequential flat executor vs the concurrent
    R*-style tree executor as the number of remote participants grows. *)

val print_tree_vs_flat : unit -> unit

(** {1 E10 — availability under faults} *)

type faults_row = {
  fl_scenario : string;
  fl_commits : int;
  fl_aborts : int;
  fl_timeout_aborts : int;  (** of the aborts, those from RPC timeouts *)
  fl_queries_ok : int;
  fl_queries_failed : int;
  fl_advancements : int;
  fl_max_adv_gap : float;
      (** largest observed gap between advancement completions — the
          availability cost of the fault schedule *)
  fl_violations : int;  (** §6.2 invariant violations across all probes *)
}

val faults : ?seed:int64 -> ?domains:int -> unit -> faults_row list
(** A 3-node cluster under a seeded {!Net.Nemesis} schedule (crashes with
    WAL recovery, partitions, slow links), timeout-based RPC failure
    detection, and continuous invariant probes.  The fault schedule is a
    pure function of the seed, so rows are identical at any domain
    width.  Expected shape: queries never block on advancement,
    advancement stalls stay bounded by the initiation beat plus the
    repair time, and no probe ever reports a violation. *)

val print_faults : unit -> unit

(** {1 E11 — commit-path batching} *)

type batching_row = {
  bt_label : string;
  bt_gc_window : float;  (** group-commit window (0 = one force per commit) *)
  bt_rpc_window : float;  (** per-destination RPC coalescing window *)
  bt_commits : int;
  bt_throughput : float;  (** commits per virtual second *)
  bt_commit_mean : float;
  bt_commit_p95 : float;
  bt_disk_forces : int;
  bt_records_per_force : float;  (** achieved group-commit batch size *)
  bt_envelopes : int;
      (** transport events on the wire; coalescing packs several message
          legs into one *)
  bt_messages : int;  (** logical message legs (constant across rows) *)
}

val batching : ?seed:int64 -> ?domains:int -> unit -> batching_row list
(** A fixed workload (3 nodes, 6 clients/node, 24 two-site updates each)
    with a nonzero disk force latency, swept over batching windows under
    one seed.  Row ["off"] (both windows 0) is the per-commit-force,
    per-message-envelope baseline; every row commits the same
    transactions, so forces, envelopes and the makespan-derived
    throughput compare directly.  A small window dominates the baseline
    on all three; oversized windows keep shrinking the I/O counts but
    trade commit latency for it, dragging closed-loop throughput back
    down. *)

val print_batching : unit -> unit

(** {1 E12 — hierarchical advancement at scale} *)

type hierarchy_row = {
  hr_nodes : int;
  hr_mode : string;  (** ["flat"], ["tree-8"], or ["tree-8+pa"] *)
  hr_rounds : int;  (** advancement rounds completed *)
  hr_phase1_mean : float;
  hr_phase2_mean : float;
  hr_coord_egress : float;
      (** messages the (data-free) coordinator put on the wire per round —
          O(n) flat, O(arity) hierarchical *)
  hr_commits : int;
  hr_aborts : int;
  hr_mtf : int;
  hr_events_per_sec : float;  (** simulator events per wall-clock second *)
}

val hierarchy :
  ?seed:int64 -> ?sizes:int list -> unit -> hierarchy_row list
(** Sweep cluster sizes (default 64/256/1024) under a hot-partition
    (Zipf 0.9 over the n/8 data sites), arrival-storm workload, comparing
    flat advancement against a tree of arity 8 with and without
    partition-aware participant sets.  Rows run sequentially so the
    events/sec column reflects single-domain wall-clock. *)

val print_hierarchy : ?sizes:int list -> unit -> unit

(** {1 E13 — replication: pinned backup reads under faults} *)

type replication_row = {
  rp_replicas : int;
  rp_queries_ok : int;
  rp_queries_failed : int;
  rp_read_tput : float;  (** completed queries per unit virtual time *)
  rp_backup_reads : int;  (** remote reads the router sent to backups *)
  rp_stale_mean : float;
      (** observed staleness: age of each query's snapshot version at
          the query's completion instant *)
  rp_stale_p95 : float;
  rp_stale_max : float;
  rp_commits : int;
  rp_aborts : int;
  rp_demotions : int;
  rp_promotions : int;
  rp_advancements : int;
  rp_violations : int;
}

val replication :
  ?seed:int64 -> ?horizon:float -> ?domains:int -> unit -> replication_row list
(** Replica counts 0/1/2 on 3 partitions under one seeded fault schedule
    (2 primary crashes, 2 link partitions): closed-loop cross-partition
    queries measure read throughput and observed staleness as replicas
    are added; promotions, demotions and invariant probes come along.
    With [replicas = 0] the fault schedule makes whole partitions
    unreadable; backups turn those outages into routed reads. *)

val print_replication : ?horizon:float -> unit -> unit
(** E13 as a table; [horizon] shortens the run for CI smoke. *)

(** {1 E14 — secondary indexes: indexed vs full-scan analytical mix} *)

type analytical_row = {
  an_plan : string;  (** ["index"], ["full-scan"] or ["both-check"] *)
  an_commits : int;
  an_aborts : int;
  an_queries_ok : int;
  an_scans : int;
  an_joins : int;
  an_scan_mean : float;
  an_scan_p95 : float;
  an_join_mean : float;
  an_join_tput : float;  (** completed joins per 100 time units *)
  an_stale_mean : float;
      (** slow full scans hold query counters longer, delaying Phase 2 —
          the access path shows up as snapshot age *)
  an_stale_max : float;
  an_index_updates : int;  (** index maintenance operations, all sites *)
  an_index_probes : int;
  an_advancements : int;
  an_violations : int;
}

val analytical :
  ?seed:int64 -> ?horizon:float -> ?domains:int -> unit -> analytical_row list
(** The same generated analytical mix (updates + point queries + 30%
    attribute-range scans + 10% hash joins, periodic advancement) under
    each access-path plan.  Identical seeds mean identical workloads, and
    because AVA3 updates never wait for queries, the commit/abort
    counters must be identical across plans — the scan/join latency and
    the observed staleness are what the plan moves.  The [both-check] row
    doubles as the equivalence oracle: every select runs the index probe
    and the full scan back to back and raises on divergence. *)

val print_analytical : ?horizon:float -> unit -> unit
(** E14 as a table; [horizon] shortens the run for CI smoke.  Raises
    [Failure] if the update-stream counters drift across plans or any
    invariant check fails. *)

(** {1 E15 — session layer: goodput and wasted work vs retry policy} *)

type session_row = {
  sn_policy : string;
      (** ["no-retry"], ["retry-2"], ["retry-5"] or ["retry-5-eager"]
          (zero backoff) *)
  sn_committed : int;
  sn_failed : int;  (** retry budget exhausted or not retryable *)
  sn_attempts : int;  (** total attempts, retries included *)
  sn_wasted : int;
      (** attempts that did not end in a commit — locks taken, RPCs sent
          and log records written for nothing *)
  sn_retries : int;
  sn_backoff : float;  (** total virtual time slept in backoff *)
  sn_rollbacks : int;  (** savepoint rollbacks, expect-abort scopes included *)
  sn_queries_ok : int;
  sn_query_failures : int;
  sn_goodput : float;  (** committed transactions per 100 time units *)
  sn_violations : int;  (** invariant probe hits plus a stalled-run flag *)
}

val session_retry :
  ?seed:int64 -> ?horizon:float -> ?domains:int -> unit -> session_row list
(** The same seeded session-layer client mix ({!Session.Dsl.gen} programs
    with savepoint scopes and expect-abort rollbacks) under each retry
    policy, against one nemesis fault schedule (2 crashes, 2 partitions,
    1 slow link) with advancement beats underneath.  All randomness comes
    from named forks of the engine's root stream, so every row faces the
    identical workload and faults; only [max_retries] and
    [retry_backoff_base] differ. *)

val print_session_retry : ?horizon:float -> unit -> unit
(** E15 as a table; [horizon] shortens the run for CI smoke.  Raises
    [Failure] if the per-policy program counts drift, an invariant probe
    fires, or a run fails to drain. *)
