module Update = Ava3.Update_exec

type timings = {
  advancement_started : float;
  all_nodes_on_new_u : float;
  long_update_committed : float;
  phase1_complete : float;
  all_nodes_on_new_q : float;
  long_query_completed : float;
  phase2_complete : float;
  gc_complete : float;
  short_update_max_latency : float;
  short_query_max_latency : float;
}

type result = { timings : timings; violations : string list }

let run ?(eager_handoff = false) ?(long_update_duration = 50.0)
    ?(long_query_duration = 100.0) () =
  let read_service = 0.5 in
  let config =
    {
      Ava3.Config.default with
      eager_counter_handoff = eager_handoff;
      read_service_time = read_service;
      write_service_time = 0.0;
    }
  in
  let engine = Sim.Engine.create ~seed:7L () in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
      ~nodes:3 ()
  in
  for n = 0 to 2 do
    Ava3.Cluster.load db ~node:n
      (List.init 10 (fun i -> (Printf.sprintf "n%d-k%d" n i, 0)))
  done;
  let long_update_done = ref infinity in
  let long_query_done = ref infinity in
  let short_update_max = ref 0.0 and short_query_max = ref 0.0 in
  (* The long version-(v+1) update transaction, active when advancement
     starts.  Halfway through it touches an item a version-(v+2)
     transaction has committed, forcing its moveToFuture — with the eager
     hand-off this releases its hold on Phase 1. *)
  Sim.Engine.schedule engine ~delay:5.0 (fun () ->
      (match
         Ava3.Cluster.run_update db ~root:0
           ~ops:
             [
               Update.Write { node = 0; key = "n0-k0"; value = 1 };
               Update.Pause (long_update_duration /. 2.0);
               Update.Write { node = 0; key = "n0-k1"; value = 1 };
               Update.Pause (long_update_duration /. 2.0);
             ]
       with
      | Update.Committed _ -> ()
      | Update.Aborted _ | Update.Root_down _ ->
          failwith "figure1: long update aborted");
      long_update_done := Sim.Engine.now engine);
  (* The long version-v query, active when advancement starts. *)
  Sim.Engine.schedule engine ~delay:6.0 (fun () ->
      let reads =
        List.init
          (int_of_float (long_query_duration /. read_service))
          (fun i -> (1, Printf.sprintf "n1-k%d" (i mod 10)))
      in
      ignore (Ava3.Cluster.run_query db ~root:1 ~reads);
      long_query_done := Sim.Engine.now engine);
  (* Advancement, coordinated by node 2. *)
  Sim.Engine.schedule engine ~delay:10.0 (fun () ->
      match Ava3.Cluster.advance db ~coordinator:2 with
      | `Started _ -> ()
      | `Busy -> failwith "figure1: advancement refused");
  (* A version-(v+2) transaction that commits the item the long update will
     touch later. *)
  Sim.Engine.schedule engine ~delay:12.0 (fun () ->
      ignore
        (Ava3.Cluster.run_update db ~root:0
           ~ops:[ Update.Write { node = 0; key = "n0-k1"; value = 2 } ]));
  (* Short transactions and queries throughout, to verify the advancement
     never delays user work (Theorem 6.3). *)
  for s = 0 to 20 do
    let at = 8.0 +. (6.0 *. float_of_int s) in
    Sim.Engine.schedule engine ~delay:at (fun () ->
        let t0 = Sim.Engine.now engine in
        match
          Ava3.Cluster.run_update db ~root:(s mod 3)
            ~ops:
              [
                Update.Write
                  {
                    node = (s + 1) mod 3;
                    key = Printf.sprintf "n%d-k%d" ((s + 1) mod 3) (2 + (s mod 8));
                    value = s;
                  };
              ]
        with
        | Update.Committed _ ->
            short_update_max := max !short_update_max (Sim.Engine.now engine -. t0)
        | Update.Aborted _ | Update.Root_down _ -> ());
    Sim.Engine.schedule engine ~delay:(at +. 3.0) (fun () ->
        let t0 = Sim.Engine.now engine in
        ignore
          (Ava3.Cluster.run_query db ~root:(s mod 3)
             ~reads:[ (s mod 3, Printf.sprintf "n%d-k%d" (s mod 3) (s mod 10)) ]);
        short_query_max := max !short_query_max (Sim.Engine.now engine -. t0))
  done;
  Sim.Engine.run engine;
  (* Extract phase timings from the protocol trace. *)
  let trace = Sim.Trace.entries (Sim.Engine.trace engine) in
  let last_time pred =
    List.fold_left
      (fun acc e -> if pred e.Sim.Trace.message then e.Sim.Trace.time else acc)
      nan trace
  in
  let first_time pred =
    List.fold_left
      (fun acc e ->
        if Float.is_nan acc && pred e.Sim.Trace.message then e.Sim.Trace.time
        else acc)
      nan trace
  in
  let contains fragment msg =
    let flen = String.length fragment and len = String.length msg in
    let rec scan i =
      i + flen <= len && (String.sub msg i flen = fragment || scan (i + 1))
    in
    scan 0
  in
  let timings =
    {
      advancement_started = first_time (contains "initiates advancement to u=2");
      all_nodes_on_new_u = last_time (contains "u := 2");
      long_update_committed = !long_update_done;
      phase1_complete = first_time (contains "phase 1 complete");
      all_nodes_on_new_q = last_time (contains "q := 1");
      long_query_completed = !long_query_done;
      phase2_complete = first_time (contains "phase 2 complete");
      gc_complete = last_time (contains "collected version 0");
      short_update_max_latency = !short_update_max;
      short_query_max_latency = !short_query_max;
    }
  in
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let slack = 5.0 (* message latencies and ack collection *) in
  if Float.is_nan timings.phase1_complete then fail "phase 1 never completed";
  if Float.is_nan timings.phase2_complete then fail "phase 2 never completed";
  if Float.is_nan timings.gc_complete then fail "garbage collection never ran";
  if not eager_handoff then begin
    (* Figure 1's bound: Phase 1 ends with the longest old update txn. *)
    if timings.phase1_complete < timings.long_update_committed then
      fail "phase 1 completed before the long update transaction";
    if timings.phase1_complete > timings.long_update_committed +. slack then
      fail "phase 1 (%.1f) not bounded by the long update (%.1f)"
        timings.phase1_complete timings.long_update_committed
  end
  else if
    (* §8: with the eager hand-off, Phase 1 no longer waits for the long
       transaction. *)
    timings.phase1_complete >= timings.long_update_committed
  then fail "eager hand-off did not shorten phase 1";
  if timings.phase2_complete < timings.long_query_completed then
    fail "phase 2 completed before the long query";
  if timings.phase2_complete > timings.long_query_completed +. slack then
    fail "phase 2 (%.1f) not bounded by the long query (%.1f)"
      timings.phase2_complete timings.long_query_completed;
  (* Non-interference: short work never waits for the advancement.  Short
     updates can still wait on ordinary locks; generous bound. *)
  if timings.short_query_max_latency > 2.0 then
    fail "a short query took %.2f — queries must never block"
      timings.short_query_max_latency;
  if timings.short_update_max_latency > 10.0 then
    fail "a short update took %.2f — advancement must not delay updates"
      timings.short_update_max_latency;
  List.iter (fun v -> fail "invariant: %s" v) (Ava3.Cluster.check_invariants db);
  { timings; violations = List.rev !violations }

let render result =
  let t = result.timings in
  let t0 = t.advancement_started in
  let scale = 60.0 /. (t.gc_complete -. t0) in
  let bar from_ to_ =
    let offset = int_of_float ((from_ -. t0) *. scale) in
    let len = max 1 (int_of_float ((to_ -. from_) *. scale)) in
    String.make (max 0 offset) ' ' ^ String.make len '#'
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Version advancement time diagram (t0 = %.1f, 1 column = %.2f time \
        units)\n"
       t0 (1.0 /. scale));
  Buffer.add_string buf
    (Printf.sprintf "  Phase 1 (advance-u, wait old updates)  |%s| %.1f .. %.1f\n"
       (bar t0 t.phase1_complete) t0 t.phase1_complete);
  Buffer.add_string buf
    (Printf.sprintf "  Phase 2 (advance-q, wait old queries)  |%s| %.1f .. %.1f\n"
       (bar t.phase1_complete t.phase2_complete)
       t.phase1_complete t.phase2_complete);
  Buffer.add_string buf
    (Printf.sprintf "  Phase 3 (garbage collection)           |%s| %.1f .. %.1f\n"
       (bar t.phase2_complete t.gc_complete)
       t.phase2_complete t.gc_complete);
  Buffer.add_string buf
    (Printf.sprintf "  longest v+1 update transaction ends  %.1f\n"
       t.long_update_committed);
  Buffer.add_string buf
    (Printf.sprintf "  longest v query ends                 %.1f\n"
       t.long_query_completed);
  Buffer.add_string buf
    (Printf.sprintf "  all nodes on new update version      %.1f\n"
       t.all_nodes_on_new_u);
  Buffer.add_string buf
    (Printf.sprintf "  all nodes on new query version       %.1f\n"
       t.all_nodes_on_new_q);
  Buffer.add_string buf
    (Printf.sprintf
       "  short work during advancement: update max %.2f, query max %.2f\n"
       t.short_update_max_latency t.short_query_max_latency);
  Buffer.contents buf
