let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let i v = string_of_int v

let render ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let line row =
    String.concat "  " (List.mapi (fun c cell -> pad cell (List.nth widths c)) row)
    |> rtrim
    |> fun s -> s ^ "\n"
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths) ^ "\n"
  in
  line header ^ rule ^ String.concat "" (List.map line rows)

let print ~title ~header ~rows =
  Printf.printf "\n== %s ==\n%s%!" title (render ~header ~rows)

(* ------------------------------------------------------------------ *)
(* Experiment metrics sink                                             *)
(* ------------------------------------------------------------------ *)

type metrics_record = {
  experiment : string;
  label : string;
  metrics : Sim.Metrics.snapshot;
}

(* Experiments record from inside [Sim.Pool.map] workers, so the sink is
   mutex-protected; arrival order depends on domain scheduling, which is
   why [metrics_records] sorts. *)
let sink_lock = Mutex.create ()
let sink : metrics_record list ref = ref []

let record_metrics ~experiment ~label metrics =
  Mutex.lock sink_lock;
  sink := { experiment; label; metrics } :: !sink;
  Mutex.unlock sink_lock

let metrics_records () =
  Mutex.lock sink_lock;
  let records = !sink in
  Mutex.unlock sink_lock;
  List.stable_sort
    (fun a b ->
      match compare a.experiment b.experiment with
      | 0 -> compare a.label b.label
      | c -> c)
    records

let clear_metrics () =
  Mutex.lock sink_lock;
  sink := [];
  Mutex.unlock sink_lock

let metrics_to_json records =
  let one r =
    Printf.sprintf "{\"experiment\":%S,\"label\":%S,\"nodes\":%s}" r.experiment
      r.label
      (Sim.Metrics.to_json r.metrics)
  in
  "[" ^ String.concat "," (List.map one records) ^ "]"
