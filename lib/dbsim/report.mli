(** Plain-text table rendering for experiment reports. *)

val render : header:string list -> rows:string list list -> string
(** Aligned columns, a rule under the header. *)

val print : title:string -> header:string list -> rows:string list list -> unit
(** Render to stdout with a title banner. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
val i : int -> string

(** {1 Experiment metrics sink}

    Each experiment run records the cluster's per-node
    {!Sim.Metrics.snapshot} here, tagged with the experiment and a
    configuration label.  Recording is safe from any domain (the
    experiments call it from inside [Sim.Pool.map] workers); the bench
    harness drains the sink into BENCH_micro.json.  Records come back
    sorted by (experiment, label), so the dump is identical at any
    AVA3_DOMAINS width. *)

type metrics_record = {
  experiment : string;  (** e.g. ["E10-faults"] *)
  label : string;  (** the configuration within the experiment *)
  metrics : Sim.Metrics.snapshot;
}

val record_metrics :
  experiment:string -> label:string -> Sim.Metrics.snapshot -> unit

val metrics_records : unit -> metrics_record list
(** Everything recorded since start-up (or {!clear_metrics}), sorted. *)

val clear_metrics : unit -> unit

val metrics_to_json : metrics_record list -> string
(** Compact JSON array of
    [{"experiment":..,"label":..,"nodes":<per-node metrics>}] objects,
    the node part as {!Sim.Metrics.to_json} renders it. *)
