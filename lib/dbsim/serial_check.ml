module Update = Ava3.Update_exec

type key = int * string

type op_record =
  | Rmw of key * int option * int  (** observed value, written value *)
  | Put of key * int  (** blind write *)
  | Del of key

type txn_record = {
  t_version : int;
  t_finished : float;
  t_commit_at : (int * float) list;  (** per-node local commit times *)
  t_ops : op_record list;
}

type query_record = { q_version : int; q_reads : (key * int option) list }

type history = {
  committed : txn_record list;
  queries : query_record list;
  initial : (key * int) list;
  final_visible : (key * int option) list;
}

let key_name (n, k) = Printf.sprintf "n%d-%s" n k

(* The deterministic transform RMW transactions apply; salted so different
   ops produce different values. *)
let transform ~salt old = ((Option.value old ~default:0 * 31) + salt) mod 100_003

let recording_run ?(seed = 101L) ?(nodes = 3) ?(transactions = 60)
    ?(queries = 25) ?(advancements = 4) () =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    { Ava3.Config.default with read_service_time = 0.3; write_service_time = 0.5 }
  in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~config ~nodes () in
  let keys_per_node = 6 in
  let all_keys =
    List.concat_map
      (fun n -> List.init keys_per_node (fun i -> (n, Printf.sprintf "k%d" i)))
      (List.init nodes (fun n -> n))
  in
  let initial = List.mapi (fun i key -> (key, i + 1)) all_keys in
  List.iter
    (fun ((n, _) as key, v) ->
      Ava3.Cluster.load db ~node:n [ (snd key, v) ])
    initial;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let committed = ref [] and query_records = ref [] in
  let horizon = 400.0 in
  (* Update transactions: a mix of RMWs (observing reads), blind writes and
     deletes, each recorded through closures so only the committed
     attempt's executions count. *)
  for t = 1 to transactions do
    let delay = Sim.Rng.float rng horizon in
    let picks =
      List.init
        (1 + Sim.Rng.int rng 3)
        (fun j ->
          let n = Sim.Rng.int rng nodes in
          let key = (n, Printf.sprintf "k%d" (Sim.Rng.int rng keys_per_node)) in
          (key, Sim.Rng.int rng 3, (t * 100) + j))
    in
    (* Distinct keys only: repeated RMW of one key in one txn is fine for
       the protocol but would need own-write tracking here. *)
    let seen = Hashtbl.create 4 in
    let picks =
      List.filter
        (fun (key, _, _) ->
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            true
          end)
        picks
    in
    Sim.Engine.schedule engine ~delay (fun () ->
        (* RMW observations are recorded by their closures at execution
           time; blind writes and deletes are appended afterwards — sound
           because each transaction touches distinct keys, so intra-
           transaction op order across keys cannot affect observations. *)
        let cell = ref [] in
        let ops =
          List.map
            (fun (((n, k) as key), kind, salt) ->
              match kind with
              | 0 ->
                  Update.Read_modify_write
                    {
                      node = n;
                      key = k;
                      f =
                        (fun old ->
                          let nv = transform ~salt old in
                          cell := Rmw (key, old, nv) :: !cell;
                          nv);
                    }
              | 1 -> Update.Write { node = n; key = k; value = salt }
              | _ -> Update.Delete { node = n; key = k })
            picks
        in
        match Ava3.Cluster.run_update db ~root:(Sim.Rng.int rng nodes) ~ops with
        | Update.Committed c ->
            let blind =
              List.filter_map
                (fun (key, kind, salt) ->
                  match kind with
                  | 1 -> Some (Put (key, salt))
                  | 2 -> Some (Del key)
                  | _ -> None)
                picks
            in
            committed :=
              {
                t_version = c.Update.final_version;
                t_finished = c.Update.finished_at;
                t_commit_at = c.Update.participants;
                t_ops = List.rev !cell @ blind;
              }
              :: !committed
        | Update.Aborted _ | Update.Root_down _ -> ())
  done;
  (* Queries. *)
  for _ = 1 to queries do
    let delay = Sim.Rng.float rng (horizon +. 50.0) in
    Sim.Engine.schedule engine ~delay (fun () ->
        let reads =
          List.init
            (2 + Sim.Rng.int rng 4)
            (fun _ ->
              let n = Sim.Rng.int rng nodes in
              (n, Printf.sprintf "k%d" (Sim.Rng.int rng keys_per_node)))
        in
        let q = Ava3.Cluster.run_query db ~root:(Sim.Rng.int rng nodes) ~reads in
        query_records :=
          {
            q_version = q.Ava3.Query_exec.version;
            q_reads =
              List.map (fun (n, k, v) -> ((n, k), v)) q.Ava3.Query_exec.values;
          }
          :: !query_records)
  done;
  for a = 1 to advancements do
    Sim.Engine.schedule engine
      ~delay:(float_of_int a *. (horizon /. float_of_int (advancements + 1)))
      (fun () -> ignore (Ava3.Cluster.advance db ~coordinator:(a mod nodes)))
  done;
  Sim.Engine.run engine;
  let final_visible =
    List.map
      (fun ((n, k) as key) ->
        ( key,
          Vstore.Store.read_le
            (Ava3.Node_state.store (Ava3.Cluster.node db n))
            k max_int ))
      all_keys
  in
  {
    committed = !committed;
    queries = !query_records;
    initial;
    final_visible;
  }

type verdict = {
  transactions_checked : int;
  queries_checked : int;
  errors : string list;
}

let verify history =
  let errors = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* The serial order Theorem 6.2 claims: transactions ordered by commit
     version; within a version, conflicting transactions follow their 2PL
     order, which is visible as the order of their local commits at the
     node holding the contended item.  Build those conflict edges and
     topologically sort (ties broken deterministically by root finish
     time). *)
  let txns = Array.of_list history.committed in
  let n_txns = Array.length txns in
  let key_of_op = function Rmw (k, _, _) -> k | Put (k, _) -> k | Del k -> k in
  let commit_at t node =
    Option.value (List.assoc_opt node t.t_commit_at) ~default:t.t_finished
  in
  (* Group transaction indices by touched key. *)
  let by_key : (key, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i t ->
      List.iter
        (fun op ->
          let k = key_of_op op in
          match Hashtbl.find_opt by_key k with
          | Some l -> if not (List.mem i !l) then l := i :: !l
          | None -> Hashtbl.replace by_key k (ref [ i ]))
        t.t_ops)
    txns;
  let succs = Array.make n_txns [] and indeg = Array.make n_txns 0 in
  let add_edge a b =
    if not (List.mem b succs.(a)) then begin
      succs.(a) <- b :: succs.(a);
      indeg.(b) <- indeg.(b) + 1
    end
  in
  Hashtbl.iter
    (fun ((node, _) as _k) l ->
      let chain =
        List.sort
          (fun a b ->
            compare
              (txns.(a).t_version, commit_at txns.(a) node)
              (txns.(b).t_version, commit_at txns.(b) node))
          !l
      in
      let rec link = function
        | a :: (b :: _ as rest) ->
            add_edge a b;
            link rest
        | _ -> ()
      in
      link chain)
    by_key;
  (* Kahn's algorithm with a deterministic priority. *)
  let ready =
    ref
      (List.filter (fun i -> indeg.(i) = 0) (List.init n_txns (fun i -> i)))
  in
  let priority i = (txns.(i).t_version, txns.(i).t_finished, i) in
  let order = ref [] in
  let emitted = ref 0 in
  while !ready <> [] do
    let best =
      List.fold_left
        (fun acc i ->
          match acc with
          | None -> Some i
          | Some j -> if priority i < priority j then Some i else Some j)
        None !ready
    in
    match best with
    | None -> ()
    | Some i ->
        ready := List.filter (fun j -> j <> i) !ready;
        order := txns.(i) :: !order;
        incr emitted;
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then ready := j :: !ready)
          succs.(i)
  done;
  if !emitted <> n_txns then
    fail "conflict graph has a cycle (%d of %d emitted) — not serializable"
      !emitted n_txns;
  let order = List.rev !order in
  let state : (key, int option) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (key, v) -> Hashtbl.replace state key (Some v)) history.initial;
  let lookup key = Option.join (Hashtbl.find_opt state key) in
  let snapshot_at = Hashtbl.create 8 in
  (* Replay, remembering the state after each version's transactions. *)
  let remember v =
    Hashtbl.replace snapshot_at v (Hashtbl.copy state)
  in
  let current_version = ref 0 in
  remember (-1);
  List.iter
    (fun t ->
      if t.t_version > !current_version then begin
        (* All versions in between close with the current state. *)
        for v = !current_version to t.t_version - 1 do
          remember v
        done;
        current_version := t.t_version
      end;
      List.iter
        (fun op ->
          match op with
          | Rmw (key, observed, written) ->
              let expect = lookup key in
              if observed <> expect then
                fail "rmw on %s observed %s, serial replay has %s"
                  (key_name key)
                  (match observed with None -> "-" | Some v -> string_of_int v)
                  (match expect with None -> "-" | Some v -> string_of_int v);
              Hashtbl.replace state key (Some written)
          | Put (key, v) -> Hashtbl.replace state key (Some v)
          | Del key -> Hashtbl.replace state key None)
        t.t_ops)
    order;
  for v = !current_version to !current_version + 2 do
    remember v
  done;
  let max_remembered = !current_version + 2 in
  (* Queries read exactly the replayed prefix of their snapshot version. *)
  List.iter
    (fun q ->
      let snap =
        Hashtbl.find snapshot_at (min q.q_version max_remembered)
      in
      List.iter
        (fun (key, got) ->
          let expect = Option.join (Hashtbl.find_opt snap key) in
          if got <> expect then
            fail "query at v%d read %s = %s, serial replay has %s" q.q_version
              (key_name key)
              (match got with None -> "-" | Some v -> string_of_int v)
              (match expect with None -> "-" | Some v -> string_of_int v))
        q.q_reads)
    history.queries;
  (* Final states agree. *)
  List.iter
    (fun (key, visible) ->
      let expect = lookup key in
      if visible <> expect then
        fail "final state of %s is %s, serial replay has %s" (key_name key)
          (match visible with None -> "-" | Some v -> string_of_int v)
          (match expect with None -> "-" | Some v -> string_of_int v))
    history.final_visible;
  {
    transactions_checked = List.length history.committed;
    queries_checked = List.length history.queries;
    errors = List.rev !errors;
  }

let check ?seed () = verify (recording_run ?seed ())
