(** Serializability checking by history replay.

    Theorem 6.2 says an AVA3 schedule is equivalent to a serial schedule in
    which transactions are ordered by commit version, update transactions of
    a version precede its queries, and conflicting same-version update
    transactions follow their two-phase-locking order.  This module makes
    that theorem executable:

    - {!recording_run} drives a randomized read-modify-write workload with
      interleaved advancements and records, for every {e committed}
      transaction, the values each read observed and each write produced,
      and for every query the snapshot it returned;
    - {!verify} reconstructs the claimed serial order — commit version,
      then commit completion time (which respects the 2PL order of
      conflicting transactions) — replays it on a plain map, and checks
      that every update-transaction read matches the replayed state, every
      query matches the replayed prefix of its snapshot version, and the
      final replayed state equals the store's visible contents.

    Any interleaving bug (lost update, torn snapshot, moveToFuture applied
    to the wrong version) surfaces as a concrete mismatch. *)

type key = int * string
(** (node, item) — items live on exactly one node. *)

type op_record =
  | Rmw of key * int option * int  (** observed value, written value *)
  | Put of key * int  (** blind write *)
  | Del of key

type txn_record = {
  t_version : int;  (** global version the transaction committed in *)
  t_finished : float;
  t_commit_at : (int * float) list;  (** per-node local commit times *)
  t_ops : op_record list;
}

type query_record = { q_version : int; q_reads : (key * int option) list }

type history = {
  committed : txn_record list;
  queries : query_record list;
  initial : (key * int) list;
  final_visible : (key * int option) list;
}
(** The types are concrete so harnesses other than {!recording_run} — in
    particular the schedule explorer in [lib/check], which records a
    history for {e every} enumerated interleaving — can assemble histories
    and put them through {!verify}. *)

type verdict = {
  transactions_checked : int;
  queries_checked : int;
  errors : string list;  (** empty iff the history is serializable *)
}

val recording_run :
  ?seed:int64 ->
  ?nodes:int ->
  ?transactions:int ->
  ?queries:int ->
  ?advancements:int ->
  unit ->
  history

val verify : history -> verdict

val check : ?seed:int64 -> unit -> verdict
(** [recording_run] + [verify] with defaults. *)
