module Update = Ava3.Update_exec
module Query = Ava3.Query_exec

type event = { time : float; site : int option; text : string }

type result = { events : event list; violations : string list }

(* Initial values; updates write recognisable new values. *)
let w0 = 10 and x0 = 20 and y0 = 30 and z0 = 40
let w_t = 11 and x_t = 21 and y_s = 32 and z_t = 41 and x_u = 22

let run ?(scheme = Wal.Scheme.No_undo) () =
  let config =
    {
      Ava3.Config.default with
      scheme;
      read_service_time = 0.05;
      write_service_time = 0.0;
    }
  in
  let engine = Sim.Engine.create ~seed:1L () in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
      ~nodes:3 ()
  in
  (* Sites: i = 0 (w), j = 1 (x, y), k = 2 (z). *)
  Ava3.Cluster.load db ~node:0 [ ("w", w0) ];
  Ava3.Cluster.load db ~node:1 [ ("x", x0); ("y", y0) ];
  Ava3.Cluster.load db ~node:2 [ ("z", z0) ];
  let t_outcome = ref None
  and u_outcome = ref None
  and s_outcome = ref None in
  let r_result = ref None
  and q_result = ref None
  and p_result = ref None
  and final_query = ref None in
  (* T: root at i; writes w, then (via subtransactions announced early)
     z at k, y at j, and finally x at j where it collides with U. *)
  Sim.Engine.schedule engine ~delay:1.0 (fun () ->
      t_outcome :=
        Some
          (Ava3.Cluster.run_update db ~root:0
             ~ops:
               [
                 Update.Write { node = 0; key = "w"; value = w_t };
                 Update.Begin_at 1;
                 Update.Begin_at 2;
                 Update.Pause 3.0;
                 Update.Write { node = 2; key = "z"; value = z_t };
                 Update.Write { node = 1; key = "y"; value = 31 };
                 Update.Write { node = 1; key = "x"; value = x_t };
               ]));
  (* R: query at i, before anything is published. *)
  Sim.Engine.schedule engine ~delay:1.5 (fun () ->
      r_result := Some (Ava3.Cluster.run_query db ~root:0 ~reads:[ (0, "w") ]));
  (* S: starts at j before j advances, touches y only much later. *)
  Sim.Engine.schedule engine ~delay:2.5 (fun () ->
      s_outcome :=
        Some
          (Ava3.Cluster.run_update db ~root:1
             ~ops:
               [
                 Update.Pause 19.5;
                 Update.Write { node = 1; key = "y"; value = y_s };
               ]));
  (* Version advancement initiated by site k. *)
  Sim.Engine.schedule engine ~delay:3.5 (fun () ->
      match Ava3.Cluster.advance db ~coordinator:2 with
      | `Started _ -> ()
      | `Busy -> failwith "table1: advancement refused");
  (* U: arrives at j after j advanced; writes x and holds it a while. *)
  Sim.Engine.schedule engine ~delay:6.0 (fun () ->
      u_outcome :=
        Some
          (Ava3.Cluster.run_update db ~root:1
             ~ops:
               [
                 Update.Write { node = 1; key = "x"; value = x_u };
                 Update.Pause 8.5;
               ]));
  (* Q: starts at j before the query-version switch; long enough to make
     Phase 2 wait for it. *)
  Sim.Engine.schedule engine ~delay:12.0 (fun () ->
      let reads = (1, "x") :: List.init 270 (fun _ -> (1, "y")) in
      q_result := Some (Ava3.Cluster.run_query db ~root:1 ~reads));
  (* P: starts at j moments after the switch. *)
  Sim.Engine.schedule engine ~delay:24.5 (fun () ->
      p_result := Some (Ava3.Cluster.run_query db ~root:1 ~reads:[ (1, "y") ]));
  (* Epilogue: a second advancement publishes everything, then a final
     query checks the end state. *)
  Sim.Engine.schedule engine ~delay:40.0 (fun () ->
      ignore (Ava3.Cluster.advance_and_wait db ~coordinator:0);
      final_query :=
        Some
          (Ava3.Cluster.run_query db ~root:2
             ~reads:[ (0, "w"); (1, "x"); (1, "y"); (2, "z") ]));
  Sim.Engine.run engine;
  (* ---- Checks ---- *)
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let commit_of label r =
    match !r with
    | Some (Update.Committed c) -> Some c
    | Some (Update.Aborted _ | Update.Root_down _) ->
        fail "%s aborted" label;
        None
    | None ->
        fail "%s never finished" label;
        None
  in
  let t_commit = commit_of "T" t_outcome in
  let u_commit = commit_of "U" u_outcome in
  let s_commit = commit_of "S" s_outcome in
  let trace = Sim.Trace.entries (Sim.Engine.trace engine) in
  let trace_has fragment =
    List.exists
      (fun e ->
        let msg = e.Sim.Trace.message in
        let frag_len = String.length fragment and len = String.length msg in
        let rec scan i =
          i + frag_len <= len
          && (String.sub msg i frag_len = fragment || scan (i + 1))
        in
        scan 0)
      trace
  in
  let check_query label r ~version ~values =
    match !r with
    | None -> fail "query %s never finished" label
    | Some (res : int Query.result) ->
        if res.Query.version <> version then
          fail "query %s used version %d, expected %d" label res.Query.version
            version;
        List.iteri
          (fun idx expected ->
            match List.nth_opt res.Query.values idx with
            | Some (_, key, got) ->
                if got <> Some expected then
                  fail "query %s read %s = %s, expected %d" label key
                    (match got with None -> "none" | Some v -> string_of_int v)
                    expected
            | None -> fail "query %s missing read %d" label idx)
          values
  in
  (* (1) R reads the version-0 value of w despite T's in-flight update. *)
  check_query "R" r_result ~version:0 ~values:[ w0 ];
  (* (2) subtransaction start versions: T at i and j in 1, at k in 2. *)
  (match t_commit with
  | Some c ->
      let t = c.Update.txn_id in
      if not (trace_has (Printf.sprintf "T%d: subtransaction at node0 starts in version 1" t))
      then fail "T_i did not start in version 1";
      if not (trace_has (Printf.sprintf "T%d: subtransaction at node1 starts in version 1" t))
      then fail "T_j did not start in version 1";
      if not (trace_has (Printf.sprintf "T%d: subtransaction at node2 starts in version 2" t))
      then fail "T_k did not start in version 2";
      (* (4) moveToFuture at data access on j, at commit time on i. *)
      if not (trace_has (Printf.sprintf "T%d: moveToFuture(2) at node1 (data access)" t))
      then fail "T_j had no data-access moveToFuture";
      if not (trace_has (Printf.sprintf "T%d: moveToFuture(2) at node0 (commit time)" t))
      then fail "T_i had no commit-time moveToFuture";
      if c.Update.final_version <> 2 then
        fail "T committed in version %d, expected 2" c.Update.final_version
  | None -> ());
  (* (3) U and S run entirely in version 2 semantics. *)
  (match u_commit with
  | Some c ->
      if c.Update.final_version <> 2 then fail "U committed in version %d" c.Update.final_version
  | None -> ());
  (match s_commit with
  | Some c ->
      let s = c.Update.txn_id in
      if c.Update.final_version <> 2 then fail "S committed in version %d" c.Update.final_version;
      if not (trace_has (Printf.sprintf "T%d: subtransaction at node1 starts in version 1" s))
      then fail "S_j did not start in version 1";
      if not (trace_has (Printf.sprintf "T%d: moveToFuture(2) at node1 (data access)" s))
      then fail "S had no (trivial) moveToFuture"
  | None -> ());
  (* (6) exactly one commit-time version mismatch (T's). *)
  let stats = Ava3.Cluster.stats db in
  if stats.Ava3.Cluster.commit_version_mismatches <> 1 then
    fail "expected 1 commit version mismatch, saw %d"
      stats.Ava3.Cluster.commit_version_mismatches;
  if stats.Ava3.Cluster.aborts <> 0 then
    fail "expected no aborts, saw %d" stats.Ava3.Cluster.aborts;
  if stats.Ava3.Cluster.lock_waits < 1 then
    fail "expected T_j to wait for U's lock on x";
  (* (7, 8) Q reads snapshot 0; P, moments later, snapshot 1. *)
  check_query "Q" q_result ~version:0 ~values:[ x0; y0 ];
  check_query "P" p_result ~version:1 ~values:[ y0 ];
  (match (!q_result, !p_result) with
  | Some q, Some p ->
      if not (p.Query.finished_at < q.Query.finished_at) then
        fail "P should complete while Q is still running"
  | _ -> ());
  (* (9) the advancement completed and left a clean two-version state. *)
  List.iter (fun v -> fail "invariant: %s" v) (Ava3.Cluster.check_invariants db);
  List.iter
    (fun v -> fail "quiescent: %s" v)
    (Ava3.Cluster.check_quiescent_invariants db);
  for site = 0 to 2 do
    let nd = Ava3.Cluster.node db site in
    if Ava3.Node_state.u nd <> 3 || Ava3.Node_state.q nd <> 2 then
      fail "site %d ended at u=%d q=%d (expected 3/2 after two advancements)"
        site (Ava3.Node_state.u nd) (Ava3.Node_state.q nd)
  done;
  (* (10) after the second advancement every update is visible, with x
     showing T's value (serialized after U). *)
  check_query "final" final_query ~version:2 ~values:[ w_t; x_t; y_s; z_t ];
  (* ---- Event log ---- *)
  let site_of msg =
    let find_site prefix =
      let plen = String.length prefix in
      let len = String.length msg in
      let rec scan i =
        if i + plen + 1 > len then None
        else if String.sub msg i plen = prefix && i + plen < len then
          match msg.[i + plen] with
          | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
          | _ -> scan (i + 1)
        else scan (i + 1)
      in
      scan 0
    in
    find_site "node"
  in
  (* Rename transaction ids to the paper's names. *)
  let names =
    List.filter_map
      (fun x -> x)
      [
        Option.map (fun (c : int Update.commit_info) -> (Printf.sprintf "T%d:" c.Update.txn_id, "T:")) t_commit;
        Option.map (fun (c : int Update.commit_info) -> (Printf.sprintf "T%d:" c.Update.txn_id, "U:")) u_commit;
        Option.map (fun (c : int Update.commit_info) -> (Printf.sprintf "T%d:" c.Update.txn_id, "S:")) s_commit;
        Option.map (fun (r : int Query.result) -> (Printf.sprintf "Q%d:" r.Query.txn_id, "R:")) !r_result;
        Option.map (fun (r : int Query.result) -> (Printf.sprintf "Q%d:" r.Query.txn_id, "Q:")) !q_result;
        Option.map (fun (r : int Query.result) -> (Printf.sprintf "Q%d:" r.Query.txn_id, "P:")) !p_result;
        Option.map (fun (r : int Query.result) -> (Printf.sprintf "Q%d:" r.Query.txn_id, "final check:")) !final_query;
      ]
  in
  let rename msg =
    List.fold_left
      (fun msg (from_, to_) ->
        let flen = String.length from_ and len = String.length msg in
        if len >= flen && String.sub msg 0 flen = from_ then
          to_ ^ String.sub msg flen (len - flen)
        else msg)
      msg names
  in
  let events =
    List.filter_map
      (fun e ->
        if List.mem e.Sim.Trace.tag [ "advance"; "txn"; "query"; "crash" ] then
          Some
            {
              time = e.Sim.Trace.time;
              site = site_of e.Sim.Trace.message;
              text = rename e.Sim.Trace.message;
            }
        else None)
      trace
  in
  { events; violations = List.rev !violations }

let render result =
  let header = [ "TIME"; "SITE i (0)"; "SITE j (1)"; "SITE k (2)" ] in
  let wrap text =
    (* Keep cells readable: truncate very long event texts. *)
    if String.length text > 58 then String.sub text 0 55 ^ "..." else text
  in
  let rows =
    List.map
      (fun e ->
        let cell site = if e.site = Some site then wrap e.text else "" in
        let unplaced = if e.site = None then wrap e.text else "" in
        [
          Printf.sprintf "%6.2f" e.time;
          (if cell 0 = "" && e.site = None then unplaced else cell 0);
          cell 1;
          cell 2;
        ])
      result.events
  in
  Report.render ~header ~rows
