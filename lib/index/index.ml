module Store = Vstore.Store
module Smap = Map.Make (String)
module Sset = Set.Make (String)

(* The index is a sorted map from extracted attribute to the set of primary
   keys that carry that attribute in ANY live version, plus a per-key cache
   of the attributes its live value entries currently carry.  The version
   dimension stays in the base store: a probe re-resolves every candidate
   through [Store.read_le] at the pinned version, so index entries follow
   the same three-slot visibility discipline as base rows without
   duplicating them.  Maintenance is driven by the store's mutation
   listener ({!Store.set_listener}): every mutation path — update
   execution, moveToFuture, GC, prune, WAL replay, replication apply,
   checkpoint restore — funnels through the store's write/delete/
   copy_forward/remove_version/gc/prune_below operations, so consistency
   holds by construction, not by call-site discipline. *)

type stats = { updates : int; probes : int; candidates : int }

type 'v t = {
  base : 'v Store.t;
  extract : 'v -> string;
  mutable postings : Sset.t Smap.t;
      (* attribute -> primary keys with a live value entry carrying it *)
  live : (string, Sset.t) Hashtbl.t;
      (* primary key -> attributes over its live value entries *)
  mutable updates : int;
  mutable probes : int;
  mutable candidates : int;
}

let add_posting t attr pkey =
  let set =
    Option.value (Smap.find_opt attr t.postings) ~default:Sset.empty
  in
  t.postings <- Smap.add attr (Sset.add pkey set) t.postings

let drop_posting t attr pkey =
  match Smap.find_opt attr t.postings with
  | None -> ()
  | Some set ->
      let set = Sset.remove pkey set in
      t.postings <-
        (if Sset.is_empty set then Smap.remove attr t.postings
         else Smap.add attr set t.postings)

(* Recompute the key's live attribute set from the base store (at most
   three live versions, so O(1) per call) and diff it against the cache. *)
let refresh t pkey =
  t.updates <- t.updates + 1;
  let old_attrs =
    Option.value (Hashtbl.find_opt t.live pkey) ~default:Sset.empty
  in
  let now_attrs =
    List.fold_left
      (fun acc v ->
        match Store.read_exact t.base pkey v with
        | Some value -> Sset.add (t.extract value) acc
        | None -> acc (* tombstone *))
      Sset.empty
      (Store.versions_of t.base pkey)
  in
  Sset.iter
    (fun a -> if not (Sset.mem a now_attrs) then drop_posting t a pkey)
    old_attrs;
  Sset.iter
    (fun a -> if not (Sset.mem a old_attrs) then add_posting t a pkey)
    now_attrs;
  if Sset.is_empty now_attrs then Hashtbl.remove t.live pkey
  else Hashtbl.replace t.live pkey now_attrs

let attach base ~extract =
  let t =
    {
      base;
      extract;
      postings = Smap.empty;
      live = Hashtbl.create 256;
      updates = 0;
      probes = 0;
      candidates = 0;
    }
  in
  (* Bootstrap from whatever the store already holds (recovery replay,
     checkpoint restore), then subscribe to everything after. *)
  List.iter
    (fun (pkey, _) -> refresh t pkey)
    (Store.snapshot_items (Store.snapshot base));
  t.updates <- 0;
  Store.set_listener base (Some (refresh t));
  t

let detach t = Store.set_listener t.base None
let base t = t.base
let extract t value = t.extract value

(* Candidate primary keys: union of the postings for attributes in
   [lo, hi].  Complete by construction — any key visible at any version
   with an attribute in range has a live entry carrying it, hence a
   posting. *)
let candidates_in t ~lo ~hi =
  if hi < lo then Sset.empty
  else begin
    let _, lo_set, above = Smap.split lo t.postings in
    let mid, hi_set, _ = Smap.split hi above in
    let acc = match lo_set with Some s -> s | None -> Sset.empty in
    let acc = Smap.fold (fun _ s acc -> Sset.union s acc) mid acc in
    match hi_set with
    | Some s when hi <> lo -> Sset.union s acc
    | _ -> acc
  end

let probe_impl ~skip_visibility t ~lo ~hi version =
  let cands = candidates_in t ~lo ~hi in
  Sset.fold
    (fun pkey acc ->
      let value =
        (* The deliberately broken twin ([Config.index_skip_visibility])
           skips the pinned-version visibility check and serves the newest
           entry instead.  Indistinguishable at quiescence (newest = pinned
           once u = q+1 and the round drained), convicted by the explorer
           the moment a commit or moveToFuture lands between pin and
           probe. *)
        if skip_visibility then Store.read_le t.base pkey max_int
        else Store.read_le t.base pkey version
      in
      match value with
      | Some v ->
          let a = t.extract v in
          if lo <= a && a <= hi then (pkey, v) :: acc else acc
      | None -> acc)
    cands []
  |> List.rev

let probe ?(skip_visibility = false) t ~lo ~hi version =
  t.probes <- t.probes + 1;
  t.candidates <- t.candidates + Sset.cardinal (candidates_in t ~lo ~hi);
  probe_impl ~skip_visibility t ~lo ~hi version

let full_scan t ~lo ~hi version =
  List.filter
    (fun (_, v) ->
      let a = t.extract v in
      lo <= a && a <= hi)
    (Store.scan_all t.base version)

let check t ~version =
  let violations = ref [] in
  let fail fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  (* Structural: the per-key cache matches a recomputation from the base
     store, covers exactly the base's keys with live value entries, and
     agrees with the postings map in both directions. *)
  let base_keys = ref [] in
  Store.iter (fun key _ -> base_keys := key :: !base_keys) t.base;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun pkey ->
      Hashtbl.replace seen pkey ();
      let expect =
        List.fold_left
          (fun acc v ->
            match Store.read_exact t.base pkey v with
            | Some value -> Sset.add (t.extract value) acc
            | None -> acc)
          Sset.empty
          (Store.versions_of t.base pkey)
      in
      let got =
        Option.value (Hashtbl.find_opt t.live pkey) ~default:Sset.empty
      in
      if not (Sset.equal expect got) then
        fail "index: key %S caches attrs {%s}, store has {%s}" pkey
          (String.concat "," (Sset.elements got))
          (String.concat "," (Sset.elements expect)))
    !base_keys;
  Hashtbl.iter
    (fun pkey _ ->
      if not (Hashtbl.mem seen pkey) then
        fail "index: key %S cached but absent from the store" pkey)
    t.live;
  Smap.iter
    (fun attr set ->
      if Sset.is_empty set then fail "index: empty posting for attr %S" attr;
      Sset.iter
        (fun pkey ->
          let cached =
            Option.value (Hashtbl.find_opt t.live pkey) ~default:Sset.empty
          in
          if not (Sset.mem attr cached) then
            fail "index: posting %S -> %S not backed by the key cache" attr
              pkey)
        set)
    t.postings;
  Hashtbl.iter
    (fun pkey attrs ->
      Sset.iter
        (fun attr ->
          let posted =
            Option.value (Smap.find_opt attr t.postings) ~default:Sset.empty
          in
          if not (Sset.mem pkey posted) then
            fail "index: cached attr %S of key %S missing its posting" attr
              pkey)
        attrs)
    t.live;
  (* Observational: a probe over the full attribute space at [version] must
     equal the full ordered scan — the contract every query plan relies
     on. *)
  let indexed =
    match (Smap.min_binding_opt t.postings, Smap.max_binding_opt t.postings) with
    | Some (lo, _), Some (hi, _) ->
        probe_impl ~skip_visibility:false t ~lo ~hi version
    | _ -> []
  in
  let full = Store.scan_all t.base version in
  if indexed <> full then
    fail "index: probe at v=%d returns %d rows, full scan %d" version
      (List.length indexed) (List.length full);
  List.rev !violations

let stats t : stats =
  { updates = t.updates; probes = t.probes; candidates = t.candidates }
let distinct_attributes t = Smap.cardinal t.postings
let indexed_keys t = Hashtbl.length t.live
