(** Version-aware secondary index over a {!Vstore.Store}.

    A sorted map from an extracted attribute of the stored value to the
    primary keys carrying that attribute in any live version.  The version
    dimension is not duplicated: a probe resolves every candidate key
    through [Store.read_le] at the pinned query version and re-checks the
    attribute range, so index reads obey exactly the three-slot visibility
    discipline of the base store.  Maintenance rides the store's mutation
    listener ({!Vstore.Store.set_listener}); every mutation path (update
    execution, moveToFuture, GC, prune, WAL replay, replication apply,
    checkpoint restore) already funnels through the store operations that
    fire it, so index and base cannot diverge — a property {!check}
    verifies and {!Invariant} asserts at every quiescent point.

    Visibility contract: [probe t ~lo ~hi v] is byte-identical to
    [Store.scan_all base v] filtered to values whose extracted attribute
    lies in [\[lo, hi\]] — the full-scan plan ({!full_scan}). *)

type 'v t

val attach : 'v Vstore.Store.t -> extract:('v -> string) -> 'v t
(** Build the index over the store's current contents and install the
    mutation listener.  One index per store (the listener slot is
    single-occupancy). *)

val detach : 'v t -> unit
(** Remove the listener; the index stops tracking the store. *)

val base : 'v t -> 'v Vstore.Store.t
val extract : 'v t -> 'v -> string

val probe :
  ?skip_visibility:bool ->
  'v t ->
  lo:string ->
  hi:string ->
  int ->
  (string * 'v) list
(** [probe t ~lo ~hi v]: every (key, value) visible at version [v] whose
    extracted attribute is in [\[lo, hi\]], ascending by key.
    [skip_visibility] (default [false]) is the deliberately broken twin
    behind {!Config.t.index_skip_visibility}: it serves the newest entry
    instead of the pinned version — indistinguishable at quiescence,
    convicted by the schedule explorer under a racing commit or
    moveToFuture ([index-skip-mtf-buggy]). *)

val full_scan : 'v t -> lo:string -> hi:string -> int -> (string * 'v) list
(** The reference plan: [Store.scan_all] at the version, filtered by the
    attribute range.  O(items); {!probe} must match it byte-for-byte. *)

val check : 'v t -> version:int -> string list
(** Consistency audit, one message per violation (empty = consistent):
    the per-key attribute cache matches a recomputation from the base
    store, postings and cache agree in both directions, and a full-space
    probe at [version] equals the full ordered scan. *)

type stats = { updates : int; probes : int; candidates : int }

val stats : 'v t -> stats
(** [updates] = listener firings since {!attach}; [probes] = calls to
    {!probe}; [candidates] = total candidate keys those probes resolved. *)

val distinct_attributes : 'v t -> int
val indexed_keys : 'v t -> int
