(* Grace hash join: partition both inputs by a hash of the join key, then
   build and probe one in-memory hash table per bucket.  Output is sorted
   with the caller's row comparison, so the result is deterministic and
   independent of the partition count — and of whether the inputs came
   from index probes or full scans, which is what the indexed-vs-full
   equivalence oracle relies on. *)

let sort_rows ~compare rows = List.sort compare rows

let nested_loop ~compare ~build ~probe ~build_key ~probe_key =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun p -> if String.equal (build_key b) (probe_key p) then Some (b, p) else None)
        probe)
    build
  |> sort_rows ~compare

let hash_join ~partitions ~compare ~build ~probe ~build_key ~probe_key =
  let nb = max 1 partitions in
  let bbuck = Array.make nb [] in
  let pbuck = Array.make nb [] in
  let bucket k = Hashtbl.hash k mod nb in
  List.iter
    (fun r ->
      let i = bucket (build_key r) in
      bbuck.(i) <- r :: bbuck.(i))
    build;
  List.iter
    (fun r ->
      let i = bucket (probe_key r) in
      pbuck.(i) <- r :: pbuck.(i))
    probe;
  let out = ref [] in
  for i = 0 to nb - 1 do
    let tbl = Hashtbl.create 64 in
    List.iter (fun r -> Hashtbl.add tbl (build_key r) r) bbuck.(i);
    List.iter
      (fun p ->
        List.iter
          (fun b -> out := (b, p) :: !out)
          (Hashtbl.find_all tbl (probe_key p)))
      pbuck.(i)
  done;
  sort_rows ~compare !out
