(** Grace hash join over in-memory row lists.

    Both operators emit the same rows in the same order (the caller's
    [compare]), so a hash join over index-probe inputs, a hash join over
    full-scan inputs, and the nested-loop reference are byte-identical
    whenever their inputs are — the property the indexed-vs-full-scan
    equivalence oracle checks end to end. *)

val hash_join :
  partitions:int ->
  compare:('a * 'b -> 'a * 'b -> int) ->
  build:'a list ->
  probe:'b list ->
  build_key:('a -> string) ->
  probe_key:('b -> string) ->
  ('a * 'b) list
(** Partition both inputs into [partitions] buckets by hashed join key,
    build a hash table per bucket from the build side, stream the probe
    side through it, and sort the matches with [compare]. *)

val nested_loop :
  compare:('a * 'b -> 'a * 'b -> int) ->
  build:'a list ->
  probe:'b list ->
  build_key:('a -> string) ->
  probe_key:('b -> string) ->
  ('a * 'b) list
(** O(|build| × |probe|) reference implementation with identical output. *)
