type mode = Shared | Exclusive

type outcome = [ `Granted | `Deadlock ]

type waiter = {
  w_owner : int;
  w_mode : mode;
  w_resume : outcome -> unit;
  mutable w_live : bool;
}

type lock = {
  mutable holders : (int * mode) list;
      (* invariant: all Shared, or exactly one Exclusive *)
  mutable queue : waiter list; (* FIFO; upgrades are pushed to the front *)
}

type t = {
  table : (string, lock) Hashtbl.t;
  owned : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  peers : t list ref; (* all tables sharing deadlock detection, incl. self *)
  mutable live_waiters : int;
      (* live queued requests in this table; lets the group-wide cycle
         check skip the (at scale, vast) majority of tables with nobody
         waiting instead of folding over every peer's whole key table *)
  mutable waits : int;
  mutable deadlocks : int;
  mutable total_wait_time : float;
}

type group = t list ref

let new_group () : group = ref []

let create ?group () =
  let peers = match group with Some g -> g | None -> ref [] in
  let t =
    {
      table = Hashtbl.create 1024;
      owned = Hashtbl.create 64;
      peers;
      live_waiters = 0;
      waits = 0;
      deadlocks = 0;
      total_wait_time = 0.0;
    }
  in
  peers := t :: !peers;
  t

let get_lock t key =
  match Hashtbl.find_opt t.table key with
  | Some l -> l
  | None ->
      let l = { holders = []; queue = [] } in
      Hashtbl.replace t.table key l;
      l

let note_owned t ~owner ~key =
  let keys =
    match Hashtbl.find_opt t.owned owner with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace t.owned owner s;
        s
  in
  Hashtbl.replace keys key ()

let holder_mode lock owner =
  List.fold_left
    (fun acc (o, m) ->
      if o <> owner then acc
      else
        match (acc, m) with
        | Some Exclusive, _ | _, Exclusive -> Some Exclusive
        | _ -> Some Shared)
    None lock.holders

let holds t ~owner ~key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some lock -> holder_mode lock owner

let held_keys t ~owner =
  match Hashtbl.find_opt t.owned owner with
  | None -> []
  | Some s -> Hashtbl.fold (fun k () acc -> k :: acc) s []

(* Can [owner] be granted [mode] given current holders?  An upgrade is
   grantable only when the owner is the sole holder. *)
let compatible lock ~owner ~mode =
  match mode with
  | Shared -> List.for_all (fun (o, m) -> o = owner || m = Shared) lock.holders
  | Exclusive -> List.for_all (fun (o, _) -> o = owner) lock.holders

let add_holder lock ~owner ~mode =
  match mode with
  | Exclusive ->
      (* Sole holder (possibly upgrading): replace all owner entries. *)
      lock.holders <-
        (owner, Exclusive) :: List.filter (fun (o, _) -> o <> owner) lock.holders
  | Shared ->
      if holder_mode lock owner = None then
        lock.holders <- (owner, Shared) :: lock.holders

(* Grant queued requests from the front while compatible. *)
let rec try_grant t lock =
  match lock.queue with
  | [] -> ()
  | w :: rest ->
      if not w.w_live then begin
        lock.queue <- rest;
        try_grant t lock
      end
      else if compatible lock ~owner:w.w_owner ~mode:w.w_mode then begin
        lock.queue <- rest;
        w.w_live <- false;
        t.live_waiters <- t.live_waiters - 1;
        add_holder lock ~owner:w.w_owner ~mode:w.w_mode;
        w.w_resume `Granted;
        try_grant t lock
      end

(* Wait-for edges of [owner] within one table: if it has a live queued
   request on some key, it waits for conflicting holders of that key and for
   conflicting live waiters queued ahead of it. *)
let local_wait_for_edges t owner =
  Hashtbl.fold
    (fun _key lock acc ->
      let rec scan ahead = function
        | [] -> acc
        | w :: _ when w.w_live && w.w_owner = owner ->
            let held =
              List.filter_map
                (fun (o, m) ->
                  if o <> owner && (w.w_mode = Exclusive || m = Exclusive)
                  then Some o
                  else None)
                lock.holders
            in
            let queued =
              List.filter_map
                (fun a ->
                  if
                    a.w_live && a.w_owner <> owner
                    && (w.w_mode = Exclusive || a.w_mode = Exclusive)
                  then Some a.w_owner
                  else None)
                (List.rev ahead)
            in
            held @ queued @ acc
        | w :: rest -> scan (w :: ahead) rest
      in
      scan [] lock.queue)
    t.table []

(* A transaction may wait at any node of the group while holding locks at
   others, so edges are the union over all peer tables.  Only tables with a
   live waiter can contribute an edge — skipping the rest keeps the cycle
   check O(contended tables), not O(cluster size), per DFS node. *)
let wait_for_edges t owner =
  List.concat_map
    (fun peer ->
      if peer.live_waiters = 0 then [] else local_wait_for_edges peer owner)
    !(t.peers)

(* Would granting-by-waiting create a cycle through [start]?  DFS over the
   wait-for graph derived from the current group state. *)
let creates_cycle t ~start =
  let visited = Hashtbl.create 16 in
  let rec dfs owner =
    List.exists
      (fun next ->
        next = start
        ||
        if Hashtbl.mem visited next then false
        else begin
          Hashtbl.replace visited next ();
          dfs next
        end)
      (wait_for_edges t owner)
  in
  dfs start

let is_upgrade lock owner mode =
  mode = Exclusive && holder_mode lock owner = Some Shared

let acquire t ~owner ~key mode =
  let lock = get_lock t key in
  match holder_mode lock owner with
  | Some Exclusive ->
      `Granted (* X subsumes both re-requests *)
  | Some Shared when mode = Shared -> `Granted
  | Some Shared | None ->
      if lock.queue = [] && compatible lock ~owner ~mode then begin
        add_holder lock ~owner ~mode;
        note_owned t ~owner ~key;
        `Granted
      end
      else if
        (* Upgrades skip the queue when the owner is the sole holder. *)
        is_upgrade lock owner mode && compatible lock ~owner ~mode
      then begin
        add_holder lock ~owner ~mode;
        note_owned t ~owner ~key;
        `Granted
      end
      else begin
        t.waits <- t.waits + 1;
        let engine = Sim.Engine.current () in
        let started = Sim.Engine.now engine in
        let result =
          Sim.Engine.suspend (fun resume ->
              let w =
                { w_owner = owner; w_mode = mode; w_resume = resume; w_live = true }
              in
              if is_upgrade lock owner mode then lock.queue <- w :: lock.queue
              else lock.queue <- lock.queue @ [ w ];
              t.live_waiters <- t.live_waiters + 1;
              if creates_cycle t ~start:owner then begin
                (* Deny instead of blocking forever: the requester is the
                   transaction closing the cycle. *)
                w.w_live <- false;
                t.live_waiters <- t.live_waiters - 1;
                t.deadlocks <- t.deadlocks + 1;
                resume `Deadlock
              end)
        in
        t.total_wait_time <-
          t.total_wait_time +. (Sim.Engine.now engine -. started);
        (match result with
        | `Granted -> note_owned t ~owner ~key
        | `Deadlock -> ());
        result
      end

let release_key t ~owner ~key ~only_shared =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some lock ->
      let dropped = ref false in
      lock.holders <-
        List.filter
          (fun (o, m) ->
            let drop = o = owner && ((not only_shared) || m = Shared) in
            if drop then dropped := true;
            not drop)
          lock.holders;
      if !dropped then begin
        (match Hashtbl.find_opt t.owned owner with
        | Some keys when holder_mode lock owner = None -> Hashtbl.remove keys key
        | _ -> ());
        try_grant t lock;
        if lock.holders = [] && lock.queue = [] then Hashtbl.remove t.table key
      end

let release_one t ~owner ~key = release_key t ~owner ~key ~only_shared:false

let release_all t ~owner =
  List.iter
    (fun key -> release_key t ~owner ~key ~only_shared:false)
    (held_keys t ~owner);
  Hashtbl.remove t.owned owner

let release_shared t ~owner =
  List.iter
    (fun key -> release_key t ~owner ~key ~only_shared:true)
    (held_keys t ~owner)

let waiting_requests t =
  Hashtbl.fold
    (fun _ lock acc ->
      acc + List.length (List.filter (fun w -> w.w_live) lock.queue))
    t.table 0

let holders_of t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some lock -> lock.holders

let waiters_of t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some lock ->
      List.filter_map
        (fun w -> if w.w_live then Some (w.w_owner, w.w_mode) else None)
        lock.queue

let iter_locked t f =
  Hashtbl.iter
    (fun key lock ->
      if lock.holders <> [] || List.exists (fun w -> w.w_live) lock.queue then
        f key lock.holders
          (List.filter_map
             (fun w -> if w.w_live then Some (w.w_owner, w.w_mode) else None)
             lock.queue))
    t.table

let waits t = t.waits
let deadlocks t = t.deadlocks
let total_wait_time t = t.total_wait_time
let locked_keys t = Hashtbl.length t.table
