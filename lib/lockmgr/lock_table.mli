(** Strict two-phase-locking lock table for one node.

    Update transactions lock every item they access: shared for reads,
    exclusive for writes (paper §2).  Queries never appear here — under AVA3
    they take no locks at all.

    Blocking is cooperative: {!acquire} suspends the calling simulation
    process until the lock is granted.  Deadlocks are detected with a
    wait-for graph built from the table state; when a request would close a
    cycle it is denied with [`Deadlock] and the caller is expected to abort
    and restart its transaction.  Lock upgrades (S held, X requested) are
    honoured and queue ahead of ordinary waiters. *)

type mode = Shared | Exclusive

type outcome = [ `Granted | `Deadlock ]

type t

type group
(** A set of lock tables sharing deadlock detection.  A transaction may hold
    locks on one node while waiting on another; cycle detection must see the
    union of all nodes' wait-for edges (in a real deployment this is a
    distributed deadlock detector; the simulation gives it a global view). *)

val new_group : unit -> group

val create : ?group:group -> unit -> t
(** A table created without a group detects only local deadlocks. *)

val acquire : t -> owner:int -> key:string -> mode -> outcome
(** Block until granted or until the request is refused because it would
    deadlock.  Re-acquiring a mode already held (or acquiring S while
    holding X) succeeds immediately. *)

val holds : t -> owner:int -> key:string -> mode option
(** Strongest mode [owner] currently holds on [key]. *)

val held_keys : t -> owner:int -> string list

val release_all : t -> owner:int -> unit
(** Drop every lock the owner holds (commit/abort time). *)

val release_one : t -> owner:int -> key:string -> unit
(** Drop whatever the owner holds on one key (savepoint rollback: locks
    first acquired inside the rolled-back scope become re-acquirable).
    No-op if the owner holds nothing on [key]. *)

val release_shared : t -> owner:int -> unit
(** Drop only the owner's shared locks — the paper's rule that update
    transactions release read locks when sending [prepared]. *)

(** {1 Statistics} *)

val waiting_requests : t -> int
(** Live queued requests right now. *)

val holders_of : t -> key:string -> (int * mode) list
val waiters_of : t -> key:string -> (int * mode) list

val iter_locked : t -> (string -> (int * mode) list -> (int * mode) list -> unit) -> unit
(** [f key holders waiters] for every key with any holder or live waiter. *)

val waits : t -> int
(** Number of acquire calls that had to block. *)

val deadlocks : t -> int
val total_wait_time : t -> float
(** Summed virtual time spent blocked in {!acquire}. *)

val locked_keys : t -> int
(** Number of keys with at least one holder or waiter. *)
