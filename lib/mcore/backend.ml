(* Real-multicore execution backend: the Txn_core/Query_core protocol
   logic of lib/core, re-hosted on OCaml 5 domains against a real
   shared-memory three-version store.

   What is the same as the DES backend (and checked by lib/mcore's
   Conform harness on deterministic schedules):
   - the three-slot store semantics (Mstore reuses Vstore.Store);
   - §3.4 update flow: latched {read u; bump updateCount[u]} at
     subtransaction begin, catch-up moveToFuture on seeing a later
     version of an accessed item, deferred No_undo workspace applied at
     commit in first-write order, version-max commit decision over all
     participants, commit-time moveToFuture for stragglers, latched
     counter release;
   - §3.3 query flow: latched {read q; bump queryCount[q]} at the root,
     child-site version catch-up plus child counters on first visit,
     children released before the root;
   - advancement: the same three phases with the same targets
     (advance-u to newu with the g >= newu-3 inference rule, advance-q
     to newu-1, collect to newu-2), the same stalled-round re-initiation
     rule, and Node_state.collect_garbage's counter-slot cleanup.

   What is intentionally different: versions and counters live behind
   real spinlock latches (Latch) instead of the DES's accounting latch;
   item write exclusion is a striped try-lock with whole-transaction
   retry instead of a blocking lock table with deadlock detection (a
   transaction that cannot get a lock quickly aborts and retries, so
   there is nothing to deadlock); phase barriers are spin-waits on the
   drained counters instead of simulated acknowledgment messages.  There
   is no simulated network, no nemesis, and no WAL — this backend
   measures the memory-resident hot path in wall-clock time, and the DES
   remains the oracle for everything involving faults or durability. *)

type 'v site = {
  site_id : int;
  store : 'v Mstore.t;
  counters : Latch.t;  (* guards u/q/g and both counter tables *)
  mutable u : int;
  mutable q : int;
  mutable g : int;
  update_counts : (int, int ref) Hashtbl.t;
  query_counts : (int, int ref) Hashtbl.t;
  (* Striped per-item exclusive locks: 0 = free, otherwise the marker of
     the owning transaction.  Collisions between distinct keys on one
     stripe just cause false contention, never unsoundness. *)
  item_locks : int Atomic.t array;
  lock_mask : int;
}

type 'v t = {
  sites : 'v site array;
  advancement : Latch.t;  (* one round at a time, like the DES `Busy rule *)
  txn_seq : int Atomic.t;
  registry_latch : Latch.t;
  mutable registries : Sim.Metrics.t list;
  (* Fault injection for the conformance harness (the mcore analogue of
     Config.gc_ack_early): query begin reads q and bumps the counter
     WITHOUT the latch, with a widened read-modify-write window.  The
     divergence harness must convict this twin.  Never enable outside
     tests. *)
  skip_query_latch : bool;
  race_window : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(buckets = 64) ?(lock_stripes = 1024) ?(gc_renumber = true)
    ?(skip_query_latch = false) ?(race_window = 2000) ~sites () =
  if sites < 1 then invalid_arg "Backend.create: need at least one site";
  let stripes = pow2_at_least (max 1 lock_stripes) 1 in
  let mk_site site_id =
    let update_counts = Hashtbl.create 8 in
    let query_counts = Hashtbl.create 8 in
    (* Start-up state (paper §3.1): data at version 0, q = 0, u = 1,
       counters for the live versions — exactly Node_state.create. *)
    Hashtbl.replace update_counts 0 (ref 0);
    Hashtbl.replace update_counts 1 (ref 0);
    Hashtbl.replace query_counts 0 (ref 0);
    Hashtbl.replace query_counts 1 (ref 0);
    {
      site_id;
      store = Mstore.create ~buckets ~bound:3 ~gc_renumber ();
      counters = Latch.create ();
      u = 1;
      q = 0;
      g = -1;
      update_counts;
      query_counts;
      item_locks = Array.init stripes (fun _ -> Atomic.make 0);
      lock_mask = stripes - 1;
    }
  in
  {
    sites = Array.init sites mk_site;
    advancement = Latch.create ();
    txn_seq = Atomic.make 1;
    registry_latch = Latch.create ();
    registries = [];
    skip_query_latch;
    race_window;
  }

let site_count t = Array.length t.sites
let site t i = t.sites.(i)
let store s = s.store

(* ---- Per-domain metrics ---------------------------------------------- *)

(* Sim.Metrics registries are mutable and single-domain (hist_add is a
   racy read-modify-write).  Each domain therefore records into its own
   private registry through a [worker] handle; [metrics] merges them all
   at quiesce via the node-wise Metrics.merge_into. *)

type 'v worker = {
  b : 'v t;
  m : Sim.Metrics.t;
}

let worker t =
  let m = Sim.Metrics.create ~nodes:(Array.length t.sites) in
  Latch.with_latch t.registry_latch (fun () ->
      t.registries <- m :: t.registries);
  { b = t; m }

let backend w = w.b

let metrics t =
  let merged = Sim.Metrics.create ~nodes:(Array.length t.sites) in
  let regs = Latch.with_latch t.registry_latch (fun () -> t.registries) in
  List.iter (fun r -> Sim.Metrics.merge_into ~into:merged r) regs;
  merged

(* ---- Latched site primitives ----------------------------------------- *)

(* All callers hold [s.counters]. *)
let counter tbl version =
  match Hashtbl.find_opt tbl version with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.replace tbl version c;
      c

let set_u_locked s version =
  if version > s.u then begin
    s.u <- version;
    ignore (counter s.update_counts version : int ref)
  end

let set_q_locked s version =
  if version > s.q then begin
    s.q <- version;
    ignore (counter s.query_counts version : int ref)
  end

(* Node_state.collect_garbage without the WAL record: bump g, run the
   store's Phase-3 rules, drop the two dead counter slots. *)
let collect_garbage_locked s ~newg =
  if newg > s.g then begin
    s.g <- newg;
    let query = newg + 1 in
    Mstore.gc s.store ~collect:newg ~query;
    Hashtbl.remove s.query_counts newg;
    Hashtbl.remove s.update_counts query
  end

let catch_up_gc_locked s ~target =
  while s.g < target do
    collect_garbage_locked s ~newg:(s.g + 1)
  done

let decr_update_count_locked s ~version =
  let c = counter s.update_counts version in
  decr c;
  if !c < 0 then invalid_arg "Mcore: update counter went negative"

let decr_query_count_locked s ~version =
  let c = counter s.query_counts version in
  decr c;
  if !c < 0 then invalid_arg "Mcore: query counter went negative"

let u s = Latch.with_latch s.counters (fun () -> s.u)
let q s = Latch.with_latch s.counters (fun () -> s.q)
let g s = Latch.with_latch s.counters (fun () -> s.g)

let update_count s ~version =
  Latch.with_latch s.counters (fun () ->
      match Hashtbl.find_opt s.update_counts version with
      | None -> 0
      | Some c -> !c)

let query_count s ~version =
  Latch.with_latch s.counters (fun () ->
      match Hashtbl.find_opt s.query_counts version with
      | None -> 0
      | Some c -> !c)

(* ---- Preload ---------------------------------------------------------- *)

let load t ~site items =
  let s = t.sites.(site) in
  List.iter (fun (key, value) -> Mstore.write s.store key 0 value) items

(* ---- Update transactions (§3.4, No_undo flow) ------------------------- *)

type 'v op =
  | Read of string
  | Write of string * 'v
  | Delete of string

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (string * 'v option) list;
  retries : int;
}

type 'v outcome =
  | Committed of 'v commit_info
  | Aborted of { txn_id : int; retries : int }

exception Lock_busy

type 'v sub = {
  sub_site : 'v site;
  mutable version : int;
  mutable counted : int;
  ws : (string, 'v option) Hashtbl.t;
  mutable ws_order : string list; (* reversed, first-write order *)
  mutable held : int list;        (* lock stripes held at this site *)
  mutable settled : bool;         (* counter released (commit or abort) *)
}

let stripe s key = Hashtbl.hash (key, 17) land s.lock_mask

(* Exclusive, non-blocking item lock: spin a bounded number of times,
   then give up — the caller aborts the whole transaction and retries it
   from scratch (the design has no lock waits, hence no deadlocks). *)
let lock_item sub marker key =
  let s = sub.sub_site in
  let idx = stripe s key in
  if not (List.mem idx sub.held) then begin
    let cell = s.item_locks.(idx) in
    let attempts = ref 0 in
    let rec try_take () =
      if Atomic.compare_and_set cell 0 marker then sub.held <- idx :: sub.held
      else begin
        incr attempts;
        if !attempts > 10_000 then raise Lock_busy;
        Domain.cpu_relax ();
        try_take ()
      end
    in
    try_take ()
  end

let release_locks sub =
  let s = sub.sub_site in
  List.iter (fun idx -> Atomic.set s.item_locks.(idx) 0) sub.held;
  sub.held <- []

(* Subtxn.start: latched version read + counter bump. *)
let begin_sub s =
  Latch.with_latch s.counters (fun () ->
      let v = s.u in
      incr (counter s.update_counts v);
      { sub_site = s; version = v; counted = v; ws = Hashtbl.create 8;
        ws_order = []; held = []; settled = false })

(* Subtxn.move_to under No_undo: deferred writes carry no version, so
   promoting the session's version is the whole job. *)
let move_to w sub ~newv ~at_commit =
  if newv > sub.version then begin
    sub.version <- newv;
    Sim.Metrics.record_mtf w.m ~node:sub.sub_site.site_id ~at_commit
  end

(* Subtxn.catch_up: a later version of an accessed item means a
   conflicting transaction of the next version already committed;
   serialize after it by moving to the site's current update version. *)
let catch_up w sub key =
  match Mstore.max_version sub.sub_site.store key with
  | Some cur when cur > sub.version ->
      let newu = Latch.with_latch sub.sub_site.counters (fun () -> sub.sub_site.u) in
      move_to w sub ~newv:newu ~at_commit:false
  | _ -> ()

let ws_put sub key value =
  if not (Hashtbl.mem sub.ws key) then sub.ws_order <- key :: sub.ws_order;
  Hashtbl.replace sub.ws key value

let abort_sub sub =
  if not sub.settled then begin
    sub.settled <- true;
    Latch.with_latch sub.sub_site.counters (fun () ->
        decr_update_count_locked sub.sub_site ~version:sub.counted);
    release_locks sub
  end

(* One attempt at the transaction body; raises Lock_busy to signal a
   whole-transaction retry. *)
let attempt w ~root ~ops ~marker =
  let b = w.b in
  let subs : (int, 'v sub) Hashtbl.t = Hashtbl.create 4 in
  let get_sub i =
    match Hashtbl.find_opt subs i with
    | Some sub -> sub
    | None ->
        let sub = begin_sub b.sites.(i) in
        Hashtbl.replace subs i sub;
        sub
  in
  let reads = ref [] in
  let cleanup () = Hashtbl.iter (fun _ sub -> abort_sub sub) subs in
  match
    (* Txn_core registers the root's subtransaction first: it always
       participates in the commit decision, ops there or not. *)
    ignore (get_sub root : _ sub);
    List.iter
      (fun (i, op) ->
        let sub = get_sub i in
        match op with
        | Read key ->
            lock_item sub marker key;
            (match Hashtbl.find_opt sub.ws key with
            | Some own -> reads := (key, own) :: !reads
            | None ->
                catch_up w sub key;
                reads :=
                  (key, Mstore.read_le sub.sub_site.store key sub.version)
                  :: !reads)
        | Write (key, value) ->
            lock_item sub marker key;
            catch_up w sub key;
            ws_put sub key (Some value)
        | Delete key ->
            lock_item sub marker key;
            catch_up w sub key;
            ws_put sub key None)
      ops;
    (* Prepare round: collect each participant's version (shared-lock
       release is a no-op here — reads hold the same exclusive stripes
       until commit), then the paper's version-max decision. *)
    let subs_sorted =
      Hashtbl.fold (fun _ sub acc -> sub :: acc) subs []
      |> List.sort (fun a b -> compare a.sub_site.site_id b.sub_site.site_id)
    in
    let final_version =
      List.fold_left (fun acc sub -> max acc sub.version) 0 subs_sorted
    in
    if List.exists (fun sub -> sub.version <> final_version) subs_sorted then
      Sim.Metrics.record_version_mismatch w.m ~node:root;
    (* Commit round, in site order like Txn_core.at_sub_nodes. *)
    List.iter
      (fun sub ->
        let s = sub.sub_site in
        if sub.version < final_version then begin
          Latch.with_latch s.counters (fun () ->
              set_u_locked s final_version);
          move_to w sub ~newv:final_version ~at_commit:true
        end;
        List.iter
          (fun key -> Mstore.apply s.store key final_version (Hashtbl.find sub.ws key))
          (List.rev sub.ws_order);
        sub.settled <- true;
        Latch.with_latch s.counters (fun () ->
            decr_update_count_locked s ~version:sub.counted);
        release_locks sub)
      subs_sorted;
    final_version
  with
  | final_version -> Ok (final_version, List.rev !reads)
  | exception Lock_busy ->
      cleanup ();
      Error `Busy
  | exception e ->
      cleanup ();
      raise e

let run_update ?(max_retries = 64) w ~root ~ops =
  let b = w.b in
  let txn_id = Atomic.fetch_and_add b.txn_seq 1 in
  let marker = txn_id in
  let rec go retries =
    match attempt w ~root ~ops ~marker with
    | Ok (final_version, reads) ->
        Sim.Metrics.record_commit w.m ~node:root;
        Committed { txn_id; final_version; reads; retries }
    | Error `Busy when retries < max_retries ->
        (* Contention backoff proportional to how often we failed. *)
        for _ = 1 to (retries + 1) * 64 do
          Domain.cpu_relax ()
        done;
        go (retries + 1)
    | Error `Busy ->
        Sim.Metrics.record_abort w.m ~node:root `Deadlock;
        Aborted { txn_id; retries }
  in
  go 0

(* ---- Queries (§3.3) --------------------------------------------------- *)

type 'v query_result = {
  q_version : int;
  values : (int * string * 'v option) list;
}

(* The begin-step of §3.3 is the latched {v := q; queryCount[v]++} — the
   exact operation the paper insists needs only a latch, not a lock.
   The buggy twin (skip_query_latch) performs the bump as a naked
   read-modify-write with a widened window: on deterministic
   single-domain schedules it is indistinguishable from the real thing,
   and only the concurrent divergence harness can convict it. *)
let query_begin b s =
  if b.skip_query_latch then begin
    let v, c =
      (* Table lookup still latched (an unprotected Hashtbl would be
         structurally unsafe); only the increment itself races. *)
      Latch.with_latch s.counters (fun () -> (s.q, counter s.query_counts s.q))
    in
    let cur = !c in
    for _ = 1 to b.race_window do
      Domain.cpu_relax ()
    done;
    c := cur + 1;
    v
  end
  else
    Latch.with_latch s.counters (fun () ->
        let v = s.q in
        incr (counter s.query_counts v);
        v)

let run_query w ~root ~reads =
  let b = w.b in
  let rs = b.sites.(root) in
  let v = query_begin b rs in
  let visited : (int, 'v site) Hashtbl.t = Hashtbl.create 4 in
  (* Query_core.visit: first touch of a child site catches its query
     version up and registers in its counter; released in [finish]. *)
  let visit i =
    let s = b.sites.(i) in
    if i <> root && not (Hashtbl.mem visited i) then begin
      Hashtbl.replace visited i s;
      Latch.with_latch s.counters (fun () ->
          set_q_locked s v;
          incr (counter s.query_counts v))
    end;
    s
  in
  let values =
    List.map
      (fun (i, key) ->
        let s = visit i in
        (i, key, Mstore.read_le s.store key v))
      reads
  in
  (* Children release before the root, as in Query_core.finish. *)
  Hashtbl.iter
    (fun _ s ->
      Latch.with_latch s.counters (fun () ->
          decr_query_count_locked s ~version:v))
    visited;
  Latch.with_latch rs.counters (fun () ->
      decr_query_count_locked rs ~version:v);
  Sim.Metrics.record_query w.m ~node:root;
  { q_version = v; values }

(* ---- Advancement (§3.2: the three phases) ----------------------------- *)

(* Spin until a latched predicate holds.  Used for the two drain
   barriers; waiters must never hold the latch while spinning or the
   transactions they wait for could not decrement. *)
let await_zero read_count =
  while read_count () <> 0 do
    Domain.cpu_relax ()
  done

let advance w ~coordinator =
  let b = w.b in
  if not (Latch.try_acquire b.advancement) then `Busy
  else
    Fun.protect
      ~finally:(fun () -> Latch.release b.advancement)
      (fun () ->
        let k = b.sites.(coordinator) in
        let cu, cq, cg =
          Latch.with_latch k.counters (fun () -> (k.u, k.q, k.g))
        in
        (* Advancement.initiate's freshness / stalled-round rules. *)
        let newu =
          if cu - cg <= 2 && cu = cq + 1 then Some (cu + 1)
          else if cu = cq + 2 || (cu = cq + 1 && cu = cg + 3) then Some cu
          else None
        in
        match newu with
        | None -> `Busy
        | Some newu ->
            let t0 = Unix.gettimeofday () in
            (* Phase 1: advance-u everywhere (with the g >= newu-3
               inference rule), then wait out the previous version's
               update transactions. *)
            Array.iter
              (fun s ->
                Latch.with_latch s.counters (fun () ->
                    catch_up_gc_locked s ~target:(newu - 3);
                    set_u_locked s newu);
                await_zero (fun () -> update_count s ~version:(newu - 1)))
              b.sites;
            let t1 = Unix.gettimeofday () in
            Sim.Metrics.record_phase1_duration w.m ~node:coordinator (t1 -. t0);
            (* Phase 2: advance-q, wait out the old version's queries. *)
            let newq = newu - 1 in
            Array.iter
              (fun s ->
                Latch.with_latch s.counters (fun () -> set_q_locked s newq);
                await_zero (fun () -> query_count s ~version:(newq - 1)))
              b.sites;
            Sim.Metrics.record_phase2_duration w.m ~node:coordinator
              (Unix.gettimeofday () -. t1);
            Sim.Metrics.record_advancement w.m ~node:coordinator;
            (* Phase 3: collect the version nobody can read anymore. *)
            let newg = newu - 2 in
            Array.iter
              (fun s ->
                Latch.with_latch s.counters (fun () ->
                    catch_up_gc_locked s ~target:newg))
              b.sites;
            `Completed newu)

(* ---- Quiesce checks --------------------------------------------------- *)

(* With no transaction or query in flight, every site must be at rest:
   u = q + 1, g >= u - 3, no counter slot occupied, no item lock held.
   Residue here is how the divergence harness convicts the latch-skipping
   twin: its lost counter increments strand permanently nonzero (or,
   caught earlier, negative) slots. *)
let check_quiescent t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Array.iter
    (fun s ->
      Latch.with_latch s.counters (fun () ->
          if s.u <> s.q + 1 then
            add "site %d: u=%d q=%d (want u = q+1)" s.site_id s.u s.q;
          if s.g < s.u - 3 then
            add "site %d: g=%d lags u=%d by more than 3" s.site_id s.g s.u;
          Hashtbl.iter
            (fun v c ->
              if !c <> 0 then
                add "site %d: updateCount[%d] = %d at quiesce" s.site_id v !c)
            s.update_counts;
          Hashtbl.iter
            (fun v c ->
              if !c <> 0 then
                add "site %d: queryCount[%d] = %d at quiesce" s.site_id v !c)
            s.query_counts);
      Array.iteri
        (fun i cell ->
          if Atomic.get cell <> 0 then
            add "site %d: item lock stripe %d still held" s.site_id i)
        s.item_locks)
    t.sites;
  List.rev !problems

let latch_acquisitions t =
  Array.fold_left
    (fun acc s ->
      acc + Latch.acquisitions s.counters + Mstore.latch_acquisitions s.store)
    0 t.sites
