(** Real-multicore execution backend for the AVA3 protocol.

    Runs the same Txn_core/Query_core protocol logic as the DES — §3.4
    update flow with latched counter bumps, catch-up and commit-time
    moveToFuture, version-max commit decision; §3.3 query flow with the
    latched {v := q; queryCount[v]++} begin step; §3.2 three-phase
    advancement — but on OCaml 5 domains against a real shared-memory
    three-version store ({!Mstore}), measuring wall-clock throughput
    instead of simulated time.

    Not modelled here (the DES remains the oracle for all of it): the
    network, RPC timeouts, crashes/nemesis, the WAL and recovery, and
    the optional §8/§10 protocol variants.  Item write exclusion uses
    striped try-locks with whole-transaction retry, so there are no
    lock waits and no deadlocks.

    Concurrency contract: a {!t} may be shared freely across domains.
    All transaction/query/advancement entry points go through a
    {!worker} handle, which carries the domain's private
    [Sim.Metrics] registry (the registry type is mutably unsafe across
    domains); create one worker per domain and merge with {!metrics} at
    quiesce. *)

type 'v t
type 'v site

val create :
  ?buckets:int ->
  ?lock_stripes:int ->
  ?gc_renumber:bool ->
  ?skip_query_latch:bool ->
  ?race_window:int ->
  sites:int ->
  unit ->
  'v t
(** A backend of [sites] sites, each starting in the paper's §3.1 state
    (all data loadable at version 0, q = 0, u = 1, g = -1) with a
    [bound = 3] store.  [buckets] and [lock_stripes] set the store and
    item-lock striping grain per site.

    [skip_query_latch] is fault injection for the divergence harness
    (the mcore analogue of [Config.gc_ack_early]): the query-begin
    counter bump becomes a naked read-modify-write widened by
    [race_window] spins.  Correct on any single-domain schedule;
    convictable only by concurrent execution.  Never enable outside
    tests. *)

val site_count : _ t -> int
val site : 'v t -> int -> 'v site
val store : 'v site -> 'v Mstore.t

val u : _ site -> int
val q : _ site -> int
val g : _ site -> int
val update_count : _ site -> version:int -> int
val query_count : _ site -> version:int -> int

val load : 'v t -> site:int -> (string * 'v) list -> unit
(** Preload items at version 0.  Call before any concurrent work. *)

(** {1 Per-domain workers} *)

type 'v worker

val worker : 'v t -> 'v worker
(** A handle for one domain: the shared backend plus a private metrics
    registry.  Cheap to create; never share one across domains. *)

val backend : 'v worker -> 'v t

val metrics : _ t -> Sim.Metrics.t
(** All worker registries merged node-wise into a fresh registry.  Only
    meaningful at quiesce (no worker mid-operation). *)

(** {1 Update transactions} *)

type 'v op =
  | Read of string
  | Write of string * 'v
  | Delete of string

type 'v commit_info = {
  txn_id : int;
  final_version : int;
  reads : (string * 'v option) list;
      (** results of [Read] ops, in op order *)
  retries : int;
}

type 'v outcome =
  | Committed of 'v commit_info
  | Aborted of { txn_id : int; retries : int }
      (** item-lock contention persisted past the retry budget *)

val run_update :
  ?max_retries:int -> 'v worker -> root:int -> ops:(int * 'v op) list -> 'v outcome
(** Execute one update transaction: [ops] are (site, op) pairs in
    program order; the root's subtransaction is registered first and
    participates in the version decision even without ops. *)

(** {1 Queries} *)

type 'v query_result = {
  q_version : int;
  values : (int * string * 'v option) list;
}

val run_query :
  'v worker -> root:int -> reads:(int * string) list -> 'v query_result
(** One read-only query: pins the root's query version, visits child
    sites with version catch-up and child counters, releases children
    before the root. *)

(** {1 Advancement} *)

val advance : _ worker -> coordinator:int -> [ `Busy | `Completed of int ]
(** Run one full advancement round synchronously (all three phases,
    with the DES's freshness and stalled-round initiation rules).
    [`Busy] if another round is in flight or the coordinator's local
    state says no round is needed.  The phase barriers spin-wait on the
    drained counters, so callers must not hold resources a transaction
    needs to finish. *)

(** {1 Introspection} *)

val check_quiescent : _ t -> string list
(** With nothing in flight: verify u = q+1, g >= u-3, all counter slots
    zero, and no item lock held, per site.  Returns human-readable
    violations (empty = clean).  This is the residue check that convicts
    the latch-skipping twin after a concurrent run. *)

val latch_acquisitions : _ t -> int
(** Total successful latch acquisitions (counter latches + store bucket
    latches) — the "latches, not locks" statistic. *)
