(* DES-vs-domains conformance harness.

   Both backends implement the same protocol; on a deterministic
   schedule — events executed one at a time, each run to completion —
   they must therefore agree on every observable: commit decisions and
   versions, every value read, advancement outcomes, and the final
   per-site version numbers and store contents.  [check] drives one
   seeded workload through lib/core's simulator and through
   lib/mcore's Backend (single worker, no concurrency) and diffs the
   two observation streams.

   The harness is the oracle link that lets the DES vouch for the
   multicore backend's logic: anything the two disagree on is a bug in
   one of them, found without ever reasoning about interleavings.  The
   concurrency-only failure modes (which sequential conformance cannot
   see, by design) are covered separately by [convict_racy_twin], which
   runs genuinely parallel queries against the latch-skipping twin and
   demands counter residue. *)

(* ---- Workloads --------------------------------------------------------- *)

type event =
  | Update of { root : int; ops : (int * int Backend.op) list }
  | Query of { root : int; reads : (int * string) list }
  | Advance of { coordinator : int }

type workload = {
  seed : int;
  sites : int;
  preload : (int * (string * int) list) list;
  events : event list;
}

(* Everything flows from Sim.Rng, so a workload is a pure function of its
   seed — the two backends are fed literally the same value. *)
let generate ?(events = 40) ~seed () =
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let sites = Sim.Rng.int_in rng 3 5 in
  let keys_per_site = 6 in
  let key s k = Printf.sprintf "n%d-k%d" s k in
  let preload =
    List.init sites (fun s ->
        (s, List.init keys_per_site (fun k -> (key s k, Sim.Rng.int rng 100))))
  in
  let fresh = ref 1000 in
  let random_site () = Sim.Rng.int rng sites in
  let random_key s = key s (Sim.Rng.int rng keys_per_site) in
  let event _ =
    let r = Sim.Rng.int rng 100 in
    if r < 60 then begin
      let root = random_site () in
      let nops = Sim.Rng.int_in rng 1 4 in
      let ops =
        List.init nops (fun _ ->
            let s = random_site () in
            let k = random_key s in
            let kind = Sim.Rng.int rng 10 in
            if kind < 3 then (s, Backend.Read k)
            else if kind < 9 then begin
              incr fresh;
              (s, Backend.Write (k, !fresh))
            end
            else (s, Backend.Delete k))
      in
      Update { root; ops }
    end
    else if r < 85 then begin
      let root = random_site () in
      let nreads = Sim.Rng.int_in rng 1 5 in
      Query
        {
          root;
          reads =
            List.init nreads (fun _ ->
                let s = random_site () in
                (s, random_key s));
        }
    end
    else Advance { coordinator = random_site () }
  in
  { seed; sites; preload; events = List.init events event }

(* ---- Observations ------------------------------------------------------ *)

type observation =
  | Committed of { final_version : int; reads : (string * int option) list }
  | Aborted
  | Queried of { version : int; values : (int * string * int option) list }
  | Advanced of [ `Busy | `Completed of int ]

type site_state = {
  s_u : int;
  s_q : int;
  s_g : int;
  s_items : (string * (int * int option) list) list;
}

type run = {
  observations : observation list;
  final : site_state list;
}

let pp_value = function None -> "-" | Some v -> string_of_int v

let pp_observation = function
  | Committed { final_version; reads } ->
      Printf.sprintf "committed v%d reads[%s]" final_version
        (String.concat "; "
           (List.map (fun (k, v) -> k ^ "=" ^ pp_value v) reads))
  | Aborted -> "aborted"
  | Queried { version; values } ->
      Printf.sprintf "query v%d [%s]" version
        (String.concat "; "
           (List.map
              (fun (s, k, v) -> Printf.sprintf "%d:%s=%s" s k (pp_value v))
              values))
  | Advanced `Busy -> "advance: busy"
  | Advanced (`Completed newu) -> Printf.sprintf "advanced to u=%d" newu

let pp_items items =
  String.concat "; "
    (List.map
       (fun (k, vs) ->
         Printf.sprintf "%s{%s}" k
           (String.concat ","
              (List.map
                 (fun (ver, v) -> Printf.sprintf "%d:%s" ver (pp_value v))
                 vs)))
       items)

(* ---- The DES side ------------------------------------------------------ *)

let des_op site = function
  | Backend.Read key -> Ava3.Update_exec.Read { node = site; key }
  | Backend.Write (key, value) -> Ava3.Update_exec.Write { node = site; key; value }
  | Backend.Delete key -> Ava3.Update_exec.Delete { node = site; key }

let run_des ?(gc_renumber = true) w =
  let engine = Sim.Engine.create ~trace:false () in
  let config = { Ava3.Config.default with gc_renumber } in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~nodes:w.sites ()
  in
  List.iter (fun (site, items) -> Ava3.Cluster.load db ~node:site items) w.preload;
  (* One event at a time, each run to quiescence: the deterministic
     schedule both backends can realise. *)
  let in_process f =
    let result = ref None in
    Sim.Engine.spawn engine (fun () -> result := Some (f ()));
    Sim.Engine.run engine;
    match !result with
    | Some v -> v
    | None -> failwith "Conform.run_des: event did not run to completion"
  in
  let observe = function
    | Update { root; ops } -> (
        let ops = List.map (fun (s, op) -> des_op s op) ops in
        match in_process (fun () -> Ava3.Cluster.run_update db ~root ~ops) with
        | Ava3.Update_exec.Committed ci ->
            Committed { final_version = ci.final_version; reads = ci.reads }
        | Ava3.Update_exec.Aborted _ | Ava3.Update_exec.Root_down _ -> Aborted)
    | Query { root; reads } ->
        let r = in_process (fun () -> Ava3.Cluster.run_query db ~root ~reads) in
        Queried { version = r.version; values = r.values }
    | Advance { coordinator } ->
        Advanced
          (in_process (fun () -> Ava3.Cluster.advance_and_wait db ~coordinator))
  in
  let observations = List.map observe w.events in
  let final =
    List.init w.sites (fun i ->
        let n = Ava3.Cluster.node db i in
        {
          s_u = Ava3.Node_state.u n;
          s_q = Ava3.Node_state.q n;
          s_g = Ava3.Node_state.g n;
          s_items =
            Vstore.Store.snapshot_items
              (Vstore.Store.snapshot (Ava3.Node_state.store n));
        })
  in
  { observations; final }

(* ---- The domains side -------------------------------------------------- *)

let run_mcore ?(gc_renumber = true) ?(skip_query_latch = false) w =
  let b : int Backend.t =
    Backend.create ~gc_renumber ~skip_query_latch ~sites:w.sites ()
  in
  List.iter (fun (site, items) -> Backend.load b ~site items) w.preload;
  let wk = Backend.worker b in
  let observe = function
    | Update { root; ops } -> (
        match Backend.run_update wk ~root ~ops with
        | Backend.Committed ci ->
            Committed { final_version = ci.final_version; reads = ci.reads }
        | Backend.Aborted _ -> Aborted)
    | Query { root; reads } ->
        let r = Backend.run_query wk ~root ~reads in
        Queried { version = r.q_version; values = r.values }
    | Advance { coordinator } -> Advanced (Backend.advance wk ~coordinator)
  in
  let observations = List.map observe w.events in
  let final =
    List.init w.sites (fun i ->
        let s = Backend.site b i in
        {
          s_u = Backend.u s;
          s_q = Backend.q s;
          s_g = Backend.g s;
          s_items = Mstore.snapshot_items (Backend.store s);
        })
  in
  { observations; final }

(* ---- Comparison -------------------------------------------------------- *)

let diff ~des ~mcore =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let nd = List.length des.observations
  and nm = List.length mcore.observations in
  if nd <> nm then add "observation counts differ: des %d, mcore %d" nd nm
  else
    List.iteri
      (fun i (d, m) ->
        if d <> m then
          add "event %d: des {%s} vs mcore {%s}" i (pp_observation d)
            (pp_observation m))
      (List.combine des.observations mcore.observations);
  let fd = List.length des.final and fm = List.length mcore.final in
  if fd <> fm then add "site counts differ: des %d, mcore %d" fd fm
  else
    List.iteri
      (fun i (d, m) ->
        if (d.s_u, d.s_q, d.s_g) <> (m.s_u, m.s_q, m.s_g) then
          add "site %d versions: des (u=%d q=%d g=%d) vs mcore (u=%d q=%d g=%d)"
            i d.s_u d.s_q d.s_g m.s_u m.s_q m.s_g;
        if d.s_items <> m.s_items then
          add "site %d store: des [%s] vs mcore [%s]" i (pp_items d.s_items)
            (pp_items m.s_items))
      (List.combine des.final mcore.final);
  List.rev !problems

type stats = {
  events : int;
  commits : int;
  aborts : int;
  queries : int;
  advances : int;
  busy : int;
}

let stats_of_run r =
  List.fold_left
    (fun acc -> function
      | Committed _ -> { acc with commits = acc.commits + 1 }
      | Aborted -> { acc with aborts = acc.aborts + 1 }
      | Queried _ -> { acc with queries = acc.queries + 1 }
      | Advanced (`Completed _) -> { acc with advances = acc.advances + 1 }
      | Advanced `Busy -> { acc with busy = acc.busy + 1 })
    {
      events = List.length r.observations;
      commits = 0;
      aborts = 0;
      queries = 0;
      advances = 0;
      busy = 0;
    }
    r.observations

let check ?(gc_renumber = true) ?(skip_query_latch = false) ?events ~seed () =
  let w = generate ?events ~seed () in
  let des = run_des ~gc_renumber w in
  let mc = run_mcore ~gc_renumber ~skip_query_latch w in
  match diff ~des ~mcore:mc with
  | [] -> Ok (stats_of_run des)
  | problems -> Error problems

(* ---- Convicting the latch-skipping twin -------------------------------- *)

(* The twin is sequentially indistinguishable from the real backend (and
   [check ~skip_query_latch:true] passing is itself part of the test:
   sequential conformance must NOT convict it).  Under real parallelism
   its naked read-modify-write loses counter increments; since the
   decrements stay latched, a lost increment surfaces either as an
   Invalid_argument the moment some query drives the counter negative,
   or as nonzero/negative residue in [check_quiescent] afterwards.

   All domains hammer the queryCount slot of one site, with the widened
   race window dominating each iteration so that even on a single
   hardware core the OS preempting a domain mid-window (with another
   domain then completing whole queries inside it) loses increments. *)
let convict_racy_twin ?(domains = 4) ?(iters_per_domain = 50_000)
    ?(time_budget = 10.0) () =
  let b : int Backend.t =
    Backend.create ~sites:1 ~skip_query_latch:true ~race_window:2000 ()
  in
  Backend.load b ~site:0 [ ("x", 1) ];
  let convicted = Atomic.make 0 in
  let stop = Atomic.make false in
  let deadline = Unix.gettimeofday () +. time_budget in
  let body () =
    let wk = Backend.worker b in
    (try
       let i = ref 0 in
       while
         (not (Atomic.get stop))
         && !i < iters_per_domain
         && Unix.gettimeofday () < deadline
       do
         incr i;
         ignore (Backend.run_query wk ~root:0 ~reads:[ (0, "x") ]
                 : int Backend.query_result)
       done
     with Invalid_argument _ ->
       (* A decrement saw the counter below zero: increments were lost.
          Caught in the act; no need for the others to keep going. *)
       Atomic.incr convicted;
       Atomic.set stop true)
  in
  let workers = Array.init domains (fun _ -> Domain.spawn body) in
  Array.iter Domain.join workers;
  let residue = Backend.check_quiescent b in
  if Atomic.get convicted > 0 then
    Printf.sprintf "%d domain(s) drove a query counter negative"
      (Atomic.get convicted)
    :: residue
  else residue
