(** DES-vs-domains conformance harness.

    Drives one seeded workload through both execution backends — the
    lib/core discrete-event simulator and the lib/mcore domains backend
    — on a deterministic schedule (events one at a time, each run to
    completion) and diffs every observable: commit decisions, commit
    versions, every value read, advancement outcomes, and the final
    per-site version numbers and store contents.  Divergence means a
    bug in one backend; agreement lets the heavily-tested DES vouch for
    the multicore port's protocol logic.

    Concurrency-only bugs are invisible to sequential conformance by
    design; {!convict_racy_twin} covers that blind spot by running
    genuinely parallel queries against the deliberately broken
    latch-skipping twin and demanding counter residue. *)

(** {1 Workloads} *)

type event =
  | Update of { root : int; ops : (int * int Backend.op) list }
  | Query of { root : int; reads : (int * string) list }
  | Advance of { coordinator : int }

type workload = {
  seed : int;
  sites : int;
  preload : (int * (string * int) list) list;
  events : event list;
}

val generate : ?events:int -> seed:int -> unit -> workload
(** Pure function of [seed] (all randomness from [Sim.Rng]): 3-5 sites,
    6 keys per site preloaded at version 0, then [events] (default 40)
    drawn roughly 60% multi-site updates / 25% queries / 15%
    advancement initiations. *)

(** {1 Running a workload} *)

type observation =
  | Committed of { final_version : int; reads : (string * int option) list }
  | Aborted
  | Queried of { version : int; values : (int * string * int option) list }
  | Advanced of [ `Busy | `Completed of int ]

type site_state = {
  s_u : int;
  s_q : int;
  s_g : int;
  s_items : (string * (int * int option) list) list;
      (** store contents in [Vstore.Store.snapshot_items] format *)
}

type run = {
  observations : observation list;  (** one per event, in order *)
  final : site_state list;  (** one per site, in site order *)
}

val run_des : ?gc_renumber:bool -> workload -> run
val run_mcore : ?gc_renumber:bool -> ?skip_query_latch:bool -> workload -> run

val diff : des:run -> mcore:run -> string list
(** Human-readable divergences, empty when the runs agree. *)

val pp_observation : observation -> string

(** {1 One-call check} *)

type stats = {
  events : int;
  commits : int;
  aborts : int;
  queries : int;
  advances : int;  (** completed advancement rounds *)
  busy : int;  (** advancement initiations refused *)
}

val check :
  ?gc_renumber:bool ->
  ?skip_query_latch:bool ->
  ?events:int ->
  seed:int ->
  unit ->
  (stats, string list) result
(** Generate, run through both backends, diff.  [skip_query_latch]
    applies to the mcore side only — [check ~skip_query_latch:true]
    passing is part of the twin's specification (the bug is invisible
    to any sequential schedule). *)

(** {1 The racy twin} *)

val convict_racy_twin :
  ?domains:int ->
  ?iters_per_domain:int ->
  ?time_budget:float ->
  unit ->
  string list
(** Hammer one site's query counter from several domains with
    [skip_query_latch] enabled and return the evidence of lost counter
    increments (negative-counter exceptions observed, plus
    [Backend.check_quiescent] residue).  An empty list means the twin
    escaped conviction — the calling test should fail. *)
