(* A real spinlock latch for the multicore backend.

   The simulator's Lockmgr.Latch is accounting-only: the DES is
   cooperatively scheduled, so "latched" sections there can never be
   preempted and the latch just counts acquisitions.  On OCaml 5 domains
   the sections genuinely race, so this is a test-and-set spinlock with
   [Domain.cpu_relax] in the wait loop — the paper's latch discipline
   (short critical sections around counter bumps and version reads, held
   for a handful of instructions, never across blocking work). *)

type t = {
  flag : bool Atomic.t;
  acquisitions : int Atomic.t;
}

let create () = { flag = Atomic.make false; acquisitions = Atomic.make 0 }

let rec acquire t =
  if Atomic.compare_and_set t.flag false true then Atomic.incr t.acquisitions
  else begin
    (* Spin on a plain read first so waiters don't hammer the cache line
       with failed CASes. *)
    while Atomic.get t.flag do
      Domain.cpu_relax ()
    done;
    acquire t
  end

let try_acquire t =
  if Atomic.compare_and_set t.flag false true then begin
    Atomic.incr t.acquisitions;
    true
  end
  else false

let release t = Atomic.set t.flag false

let with_latch t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let acquisitions t = Atomic.get t.acquisitions
