(** Test-and-set spinlock latch for the multicore backend.

    The real-concurrency counterpart of the simulator's accounting-only
    [Lockmgr.Latch]: mutual exclusion over genuinely parallel domains,
    meant for the paper's short latched sections (version reads, counter
    bumps) — never held across blocking or long-running work. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Spin (with [Domain.cpu_relax]) until the latch is taken.  Not
    reentrant: acquiring a latch the caller already holds deadlocks. *)

val try_acquire : t -> bool
(** Take the latch iff it is free; never spins. *)

val release : t -> unit

val with_latch : t -> (unit -> 'a) -> 'a
(** [with_latch t f] runs [f] holding the latch, releasing on return or
    exception. *)

val acquisitions : t -> int
(** Lifetime successful acquisitions (the statistic Table 2-style
    experiments report). *)
