(* Domain-safe three-version store: the inline three-slot representation
   from lib/vstore, adapted for shared-memory parallelism by striping
   keys over latched buckets.  Each bucket holds its own Vstore.Store
   (same slot rotation, version index, bound checking, and GC rules as
   the DES store — reusing it wholesale is what keeps the two backends'
   store semantics identical by construction); a latch per bucket makes
   every bucket operation atomic while letting operations on different
   buckets run fully in parallel.

   Item-level write exclusion is the backend's job (per-item locks, as
   in the paper); the bucket latch only protects the store's internal
   structures. *)

type 'v bucket = {
  latch : Latch.t;
  st : 'v Vstore.Store.t;
}

type 'v t = {
  buckets : 'v bucket array;
  mask : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(buckets = 64) ?bound ?gc_renumber () =
  if buckets < 1 then invalid_arg "Mstore.create: need at least one bucket";
  let n = pow2_at_least buckets 1 in
  {
    buckets =
      Array.init n (fun _ ->
          {
            latch = Latch.create ();
            st = Vstore.Store.create ?bound ?gc_renumber ();
          });
    mask = n - 1;
  }

let bucket_count t = Array.length t.buckets
let bucket t key = t.buckets.(Hashtbl.hash key land t.mask)

let read_le t key version =
  let b = bucket t key in
  Latch.with_latch b.latch (fun () -> Vstore.Store.read_le b.st key version)

let max_version t key =
  let b = bucket t key in
  Latch.with_latch b.latch (fun () -> Vstore.Store.max_version b.st key)

let write t key version value =
  let b = bucket t key in
  Latch.with_latch b.latch (fun () -> Vstore.Store.write b.st key version value)

let delete t key version =
  let b = bucket t key in
  Latch.with_latch b.latch (fun () -> Vstore.Store.delete b.st key version)

(* Commit-time apply of one workspace entry: [None] is a deletion
   (tombstone), mirroring Wal.Scheme.apply_to_store. *)
let apply t key version = function
  | Some value -> write t key version value
  | None -> delete t key version

let gc t ~collect ~query =
  Array.iter
    (fun b ->
      Latch.with_latch b.latch (fun () ->
          Vstore.Store.gc b.st ~collect ~query))
    t.buckets

let item_count t =
  Array.fold_left
    (fun acc b ->
      acc + Latch.with_latch b.latch (fun () -> Vstore.Store.item_count b.st))
    0 t.buckets

let high_water_versions t =
  Array.fold_left
    (fun acc b ->
      max acc
        (Latch.with_latch b.latch (fun () ->
             Vstore.Store.high_water_versions b.st)))
    0 t.buckets

(* Whole-store contents in Vstore.Store.snapshot_items format (per item,
   ascending (version, value-or-tombstone) pairs; items sorted by key) —
   directly comparable with a DES node store's snapshot, which is what
   the conformance harness does. *)
let snapshot_items t =
  Array.to_list t.buckets
  |> List.concat_map (fun b ->
         Latch.with_latch b.latch (fun () ->
             Vstore.Store.snapshot_items (Vstore.Store.snapshot b.st)))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let latch_acquisitions t =
  Array.fold_left
    (fun acc b -> acc + Latch.acquisitions b.latch)
    0 t.buckets
