(** Domain-safe three-version store: keys striped over latched buckets,
    each bucket an ordinary [Vstore.Store] (same three-slot inline
    representation, version bound, and GC rules as the DES store).
    Bucket latches make individual operations atomic; item-level write
    exclusion across operations is the caller's job. *)

type 'v t

val create : ?buckets:int -> ?bound:int -> ?gc_renumber:bool -> unit -> 'v t
(** [buckets] (default 64, rounded up to a power of two) sets the
    parallelism grain.  [bound]/[gc_renumber] as in
    {!Vstore.Store.create}. *)

val bucket_count : _ t -> int

val read_le : 'v t -> string -> int -> 'v option
(** The §3 visibility rule: value at the greatest version [<= v]. *)

val max_version : _ t -> string -> int option
val write : 'v t -> string -> int -> 'v -> unit
val delete : 'v t -> string -> int -> unit

val apply : 'v t -> string -> int -> 'v option -> unit
(** Commit-time apply of one workspace entry; [None] tombstones. *)

val gc : _ t -> collect:int -> query:int -> unit
(** Phase-3 collection over every bucket (same renumber/in-place rules
    as {!Vstore.Store.gc}). *)

val item_count : _ t -> int
val high_water_versions : _ t -> int

val snapshot_items : 'v t -> (string * (int * 'v option) list) list
(** Contents as data, sorted by key — the same shape as
    [Vstore.Store.snapshot_items], so a DES node store and an mcore site
    store can be compared with [=]. *)

val latch_acquisitions : _ t -> int
