(* Deterministic fault injection.

   A nemesis run has two halves: a [plan] — a pure value listing every
   fault and its timing, derived from a seeded RNG before the simulation
   starts — and [install], which turns the plan into ordinary engine
   processes.  Keeping the plan first-class makes runs reproducible (same
   seed => same faults, at any domain width, since the plan is fixed before
   any event fires), printable, and testable without running anything. *)

type event =
  | Crash of { node : int; at : float; duration : float }
  | Partition of { a : int; b : int; at : float; duration : float }
  | Slow_link of {
      src : int;
      dst : int;
      at : float;
      duration : float;
      extra : float;
    }

type plan = event list

type target = {
  nodes : int;
  crash : int -> unit;
  recover : int -> unit;
  partition : src:int -> dst:int -> bool -> unit;
  slow : src:int -> dst:int -> float -> unit;
}

let event_start = function
  | Crash { at; _ } | Partition { at; _ } | Slow_link { at; _ } -> at

let sort_plan plan =
  (* Stable, so simultaneous events keep their generation order and the
     schedule stays deterministic. *)
  List.stable_sort
    (fun a b -> compare (event_start a) (event_start b))
    plan

let describe plan =
  sort_plan plan
  |> List.map (function
       | Crash { node; at; duration } ->
           Printf.sprintf "t=%.1f crash node%d for %.1f" at node duration
       | Partition { a; b; at; duration } ->
           Printf.sprintf "t=%.1f partition node%d<->node%d for %.1f" at a b
             duration
       | Slow_link { src; dst; at; duration; extra } ->
           Printf.sprintf "t=%.1f slow link node%d->node%d by +%.1f for %.1f"
             at src dst extra duration)

let validate ~nodes plan =
  let check_node n =
    if n < 0 || n >= nodes then invalid_arg "Nemesis: event names no such node"
  in
  List.iter
    (fun ev ->
      (match ev with
      | Crash { node; _ } -> check_node node
      | Partition { a; b; _ } ->
          check_node a;
          check_node b;
          if a = b then invalid_arg "Nemesis: partition of a node with itself"
      | Slow_link { src; dst; extra; _ } ->
          check_node src;
          check_node dst;
          if extra < 0.0 then invalid_arg "Nemesis: negative extra latency");
      match ev with
      | Crash { at; duration; _ }
      | Partition { at; duration; _ }
      | Slow_link { at; duration; _ } ->
          if at < 0.0 || duration <= 0.0 then
            invalid_arg "Nemesis: events need at >= 0 and duration > 0")
    plan

(* Random plan with a liveness guarantee: crash windows are disjoint (at
   most one node down at any instant) and every fault heals before
   [horizon].  Version advancement needs acknowledgments from *all* nodes,
   so overlapping crashes merely stretch the stall; disjoint ones keep each
   round's obstruction bounded by a single repair. *)
let random_plan ~rng ~nodes ~horizon ?(crashes = 2) ?(partitions = 1)
    ?(slow_links = 1) ?(min_duration = 20.0) ?(max_duration = 60.0)
    ?(extra_latency = 5.0) () =
  if nodes < 2 then invalid_arg "Nemesis.random_plan: need at least two nodes";
  if horizon <= 0.0 then invalid_arg "Nemesis.random_plan: need horizon > 0";
  let duration () =
    min_duration +. Sim.Rng.float rng (max_duration -. min_duration)
  in
  let plan = ref [] in
  (* Crashes: slice the horizon into [crashes] equal slots and place one
     crash window strictly inside each, so no two overlap. *)
  let slot = horizon /. float_of_int (max 1 crashes) in
  for i = 0 to crashes - 1 do
    let d = min (duration ()) (slot /. 2.0) in
    let lo = (float_of_int i *. slot) +. (slot /. 8.0) in
    let hi = (float_of_int (i + 1) *. slot) -. d in
    if hi > lo then
      let at = lo +. Sim.Rng.float rng (hi -. lo) in
      let node = Sim.Rng.int rng nodes in
      plan := Crash { node; at; duration = d } :: !plan
  done;
  let place mk count =
    for _ = 1 to count do
      let d = duration () in
      let hi = horizon -. d in
      if hi > 0.0 then begin
        let at = Sim.Rng.float rng hi in
        let a = Sim.Rng.int rng nodes in
        let b = (a + 1 + Sim.Rng.int rng (nodes - 1)) mod nodes in
        plan := mk ~a ~b ~at ~d :: !plan
      end
    done
  in
  place (fun ~a ~b ~at ~d -> Partition { a; b; at; duration = d }) partitions;
  place
    (fun ~a ~b ~at ~d ->
      Slow_link { src = a; dst = b; at; duration = d; extra = extra_latency })
    slow_links;
  sort_plan (List.rev !plan)

(* Enumerable plan: every decision a random plan would draw from an RNG —
   which node a fault hits, when it starts, how long it lasts, which link a
   partition cuts — is instead a labelled discrete choice answered by
   [choose].  Wired to [Sim.Engine.branch], a model checker can enumerate
   the whole fault space of a scenario instead of sampling one plan per
   seed.  Every fault heals before [horizon] (durations are clamped), the
   same liveness guarantee [random_plan] gives. *)
let choice_plan ~choose ~nodes ~horizon ?(crashes = 1) ?(partitions = 0)
    ?(slow_links = 0) ?at_choices ?duration_choices ?(extra_latency = 5.0) () =
  if nodes < 2 then invalid_arg "Nemesis.choice_plan: need at least two nodes";
  if horizon <= 0.0 then invalid_arg "Nemesis.choice_plan: need horizon > 0";
  let at_choices =
    match at_choices with
    | Some a when Array.length a > 0 -> a
    | Some _ -> invalid_arg "Nemesis.choice_plan: empty at_choices"
    | None ->
        Array.map (fun f -> f *. horizon) [| 0.15; 0.35; 0.55; 0.75 |]
  in
  let duration_choices =
    match duration_choices with
    | Some d when Array.length d > 0 -> d
    | Some _ -> invalid_arg "Nemesis.choice_plan: empty duration_choices"
    | None -> Array.map (fun f -> f *. horizon) [| 0.15; 0.3 |]
  in
  let pick label arr =
    let idx = choose ~label ~arity:(Array.length arr) in
    if idx < 0 || idx >= Array.length arr then arr.(0) else arr.(idx)
  in
  let pick_node label =
    let idx = choose ~label ~arity:nodes in
    if idx < 0 || idx >= nodes then 0 else idx
  in
  let timing label =
    let at = pick (label ^ "-at") at_choices in
    let d = pick (label ^ "-duration") duration_choices in
    (* Heal strictly before the horizon so the end state is fault-free. *)
    let d = if at +. d >= horizon then horizon -. at -. (horizon /. 100.0) else d in
    (at, max d (horizon /. 100.0))
  in
  let plan = ref [] in
  for i = 1 to crashes do
    let label = Printf.sprintf "nemesis-crash%d" i in
    let node = pick_node (label ^ "-node") in
    let at, duration = timing label in
    plan := Crash { node; at; duration } :: !plan
  done;
  let pick_pair label =
    let a = pick_node (label ^ "-a") in
    let off = choose ~label:(label ^ "-b") ~arity:(nodes - 1) in
    let off = if off < 0 || off >= nodes - 1 then 0 else off in
    (a, (a + 1 + off) mod nodes)
  in
  for i = 1 to partitions do
    let label = Printf.sprintf "nemesis-partition%d" i in
    let a, b = pick_pair label in
    let at, duration = timing label in
    plan := Partition { a; b; at; duration } :: !plan
  done;
  for i = 1 to slow_links do
    let label = Printf.sprintf "nemesis-slow%d" i in
    let src, dst = pick_pair label in
    let at, duration = timing label in
    plan := Slow_link { src; dst; at; duration; extra = extra_latency } :: !plan
  done;
  sort_plan (List.rev !plan)

let install ~engine target plan =
  validate ~nodes:target.nodes plan;
  List.iter
    (fun ev ->
      match ev with
      | Crash { node; at; duration } ->
          Sim.Engine.schedule engine ~delay:at (fun () ->
              Sim.Engine.emit engine ~tag:"nemesis"
                (Printf.sprintf "crash node%d" node);
              target.crash node;
              Sim.Engine.sleep duration;
              Sim.Engine.emit engine ~tag:"nemesis"
                (Printf.sprintf "recover node%d" node);
              target.recover node)
      | Partition { a; b; at; duration } ->
          Sim.Engine.schedule engine ~delay:at (fun () ->
              Sim.Engine.emit engine ~tag:"nemesis"
                (Printf.sprintf "partition node%d<->node%d" a b);
              target.partition ~src:a ~dst:b true;
              target.partition ~src:b ~dst:a true;
              Sim.Engine.sleep duration;
              Sim.Engine.emit engine ~tag:"nemesis"
                (Printf.sprintf "heal node%d<->node%d" a b);
              target.partition ~src:a ~dst:b false;
              target.partition ~src:b ~dst:a false)
      | Slow_link { src; dst; at; duration; extra } ->
          Sim.Engine.schedule engine ~delay:at (fun () ->
              Sim.Engine.emit engine ~tag:"nemesis"
                (Printf.sprintf "slow node%d->node%d (+%g)" src dst extra);
              target.slow ~src ~dst extra;
              Sim.Engine.sleep duration;
              Sim.Engine.emit engine ~tag:"nemesis"
                (Printf.sprintf "restore node%d->node%d" src dst);
              target.slow ~src ~dst 0.0))
    plan

let network_target (net : _ Network.t) =
  {
    nodes = Network.node_count net;
    crash = (fun n -> Network.set_down net ~node:n true);
    recover = (fun n -> Network.set_down net ~node:n false);
    partition = (fun ~src ~dst flag -> Network.set_link_down net ~src ~dst flag);
    slow = (fun ~src ~dst extra -> Network.set_link_extra net ~src ~dst extra);
  }
