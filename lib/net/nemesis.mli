(** Deterministic fault injection ("nemesis").

    A nemesis run separates {e what goes wrong} from {e how it is applied}:

    - a {!plan} is a pure value listing faults and their timing, typically
      drawn from a seeded RNG with {!random_plan} before the simulation
      starts — same seed, same plan, at any [AVA3_DOMAINS] width;
    - {!install} turns the plan into ordinary engine processes that drive a
      {!target} — a record of callbacks supplied by the system under test
      (e.g. [Cluster.crash]/[Cluster.recover], which replay the WAL on the
      way back up).

    Faults always heal themselves: a crash is followed by a recovery after
    [duration], a partition by a heal, a slow link by a restore. *)

type event =
  | Crash of { node : int; at : float; duration : float }
      (** Node fails at [at], losing volatile state; recovers (WAL replay,
          rejoin) [duration] later. *)
  | Partition of { a : int; b : int; at : float; duration : float }
      (** Both directions of the [a]-[b] link are cut, then healed. *)
  | Slow_link of {
      src : int;
      dst : int;
      at : float;
      duration : float;
      extra : float;
    }
      (** The directed link carries [extra] additional latency per message
          while active. *)

type plan = event list

type target = {
  nodes : int;
  crash : int -> unit;
  recover : int -> unit;
  partition : src:int -> dst:int -> bool -> unit;
  slow : src:int -> dst:int -> float -> unit;
}
(** Callbacks the nemesis drives.  [partition ~src ~dst flag] cuts
    ([true]) or heals ([false]) one directed link; [slow ~src ~dst extra]
    sets the link's extra latency ([0.] restores it). *)

val random_plan :
  rng:Sim.Rng.t ->
  nodes:int ->
  horizon:float ->
  ?crashes:int ->
  ?partitions:int ->
  ?slow_links:int ->
  ?min_duration:float ->
  ?max_duration:float ->
  ?extra_latency:float ->
  unit ->
  plan
(** Draw a random fault schedule over [0, horizon).  Crash windows are
    pairwise disjoint (at most one node down at a time — advancement needs
    acks from all nodes, so disjoint repairs keep every stall bounded) and
    every fault heals before [horizon].  Defaults: 2 crashes, 1 partition,
    1 slow link, durations in [20, 60], +5.0 extra latency. *)

val choice_plan :
  choose:(label:string -> arity:int -> int) ->
  nodes:int ->
  horizon:float ->
  ?crashes:int ->
  ?partitions:int ->
  ?slow_links:int ->
  ?at_choices:float array ->
  ?duration_choices:float array ->
  ?extra_latency:float ->
  unit ->
  plan
(** Build a plan from labelled discrete choices instead of RNG draws: the
    faulty node, the start time (one of [at_choices], default quarter
    points of the horizon) and the duration (one of [duration_choices])
    of every fault are each a [choose ~label ~arity] decision.  Wire
    [choose] to [Sim.Engine.branch] and a model checker enumerates the
    whole fault space of a scenario; answer [0] everywhere and you get
    the plan's deterministic default.  Durations are clamped so every
    fault heals strictly before [horizon].  Defaults: 1 crash, no
    partitions, no slow links. *)

val install : engine:Sim.Engine.t -> target -> plan -> unit
(** Schedule the plan's events on the engine.  Call before
    [Sim.Engine.run]; raises [Invalid_argument] on malformed plans
    (unknown node, non-positive duration, self-partition). *)

val network_target : _ Network.t -> target
(** A target that manipulates only the network: crash/recover toggle
    {!Network.set_down} without touching node state.  Systems with real
    per-node state (WAL replay on recovery) should build their own target
    instead. *)

val describe : plan -> string list
(** Human-readable schedule, one line per event, in time order. *)
