exception Node_down of int
exception Rpc_timeout of int

type 'm t = {
  engine : Sim.Engine.t;
  nodes : int;
  latency : Latency.t;
  self_latency : float;
  send_occupancy : float;
  (* Sender serialization: earliest time each node's transmitter is free. *)
  send_clock : float array;
  call_timeout : float;
  batch_window : float;
  metrics : Sim.Metrics.t option;
  rng : Sim.Rng.t;
  handlers : (src:int -> 'm -> unit) option array;
  down : bool array;
  link_down : bool array array;
  (* Nemesis-injected extra one-way latency per (src,dst) link. *)
  link_extra : float array array;
  (* FIFO enforcement: earliest admissible delivery time per (src,dst). *)
  link_clock : float array array;
  link_sent : int array array;
  (* Coalescing: payloads queued per (src,dst) awaiting the window flush. *)
  batch : (unit -> unit) Queue.t array array;
  batch_armed : bool array array;
  mutable sent : int;
  mutable dropped : int;
  mutable envelopes : int;
}

let create ~engine ~nodes ?(latency = Latency.Constant 1.0) ?(self_latency = 0.0)
    ?(send_occupancy = 0.0) ?(call_timeout = infinity) ?(batch_window = 0.0)
    ?metrics () =
  if nodes <= 0 then invalid_arg "Network.create: need at least one node";
  if batch_window < 0.0 then invalid_arg "Network.create: negative batch window";
  if send_occupancy < 0.0 then
    invalid_arg "Network.create: negative send occupancy";
  {
    engine;
    nodes;
    latency;
    self_latency;
    send_occupancy;
    send_clock = Array.make nodes 0.0;
    call_timeout;
    batch_window;
    metrics;
    rng = Sim.Rng.split (Sim.Engine.rng engine);
    handlers = Array.make nodes None;
    down = Array.make nodes false;
    link_down = Array.make_matrix nodes nodes false;
    link_extra = Array.make_matrix nodes nodes 0.0;
    link_clock = Array.make_matrix nodes nodes 0.0;
    link_sent = Array.make_matrix nodes nodes 0;
    batch = Array.init nodes (fun _ -> Array.init nodes (fun _ -> Queue.create ()));
    batch_armed = Array.make_matrix nodes nodes false;
    sent = 0;
    dropped = 0;
    envelopes = 0;
  }

let engine t = t.engine
let node_count t = t.nodes

let check_node t node =
  if node < 0 || node >= t.nodes then invalid_arg "Network: no such node"

let set_handler t ~node handler =
  check_node t node;
  t.handlers.(node) <- Some handler

let set_down t ~node flag =
  check_node t node;
  t.down.(node) <- flag

let is_down t ~node =
  check_node t node;
  t.down.(node)

let set_link_down t ~src ~dst flag =
  check_node t src;
  check_node t dst;
  t.link_down.(src).(dst) <- flag

let link_is_down t ~src ~dst = t.down.(src) || t.down.(dst) || t.link_down.(src).(dst)

let set_link_extra t ~src ~dst extra =
  check_node t src;
  check_node t dst;
  if extra < 0.0 then invalid_arg "Network.set_link_extra: negative latency";
  t.link_extra.(src).(dst) <- extra

let messages_sent t = t.sent
let messages_dropped t = t.dropped
let envelopes_sent t = t.envelopes

let link_count t ~src ~dst =
  check_node t src;
  check_node t dst;
  t.link_sent.(src).(dst)

(* Latency for one message on link src->dst, respecting per-link FIFO:
   delivery time is clamped to be no earlier than the previous delivery on
   the same link. *)
let delivery_delay t ~src ~dst =
  let raw =
    (if src = dst then t.self_latency else Latency.sample t.latency t.rng)
    +. t.link_extra.(src).(dst)
  in
  let now = Sim.Engine.now t.engine in
  (* Sender serialization: with a nonzero occupancy, each remote message
     reserves the source's transmitter for [send_occupancy] before it can
     depart, so a wide fan-out pays O(n) at the sender instead of being
     free.  Local (self) messages skip the transmitter.  The default 0.0
     leaves departure at [now] — behavior identical to an occupancy-free
     network. *)
  let depart =
    if t.send_occupancy > 0.0 && src <> dst then begin
      let free = t.send_clock.(src) in
      let d = (if free > now then free else now) +. t.send_occupancy in
      t.send_clock.(src) <- d;
      d
    end
    else now
  in
  let at = depart +. raw in
  let at = if at < t.link_clock.(src).(dst) then t.link_clock.(src).(dst) else at in
  t.link_clock.(src).(dst) <- at;
  at -. now

let count_envelope t ~src =
  t.envelopes <- t.envelopes + 1;
  match t.metrics with
  | Some m -> Sim.Metrics.record_envelope m ~node:src
  | None -> ()

(* Ship everything queued on (src,dst) as one envelope: one latency sample,
   one arrival instant, the payloads scheduled in FIFO order at it.  Each
   payload still runs as its own process — handlers may block (lock waits,
   counter waits), and a blocking payload must not stall the rest of the
   envelope.  A link cut (or source crash) since the payloads were queued
   drops the whole envelope — the messages were sitting in src's send
   buffer. *)
let flush_batch t ~src ~dst =
  t.batch_armed.(src).(dst) <- false;
  let q = t.batch.(src).(dst) in
  let n = Queue.length q in
  if n > 0 then begin
    let payloads = List.of_seq (Queue.to_seq q) in
    Queue.clear q;
    if t.down.(src) || t.link_down.(src).(dst) then t.dropped <- t.dropped + n
    else begin
      count_envelope t ~src;
      let delay = delivery_delay t ~src ~dst in
      List.iter
        (fun payload -> Sim.Engine.schedule t.engine ~delay payload)
        payloads
    end
  end

(* The transport: every request, reply, and one-way message leg goes
   through here.  [payload] runs at the destination after the link latency;
   it carries its own arrival-time checks (destination down, caller
   settled).  With a zero window each payload is its own envelope,
   scheduled exactly as an unbatched network would — same RNG draws, same
   event order.  With a window, payloads to one destination pool until the
   window closes and share a single envelope. *)
let transmit t ~src ~dst payload =
  if t.batch_window <= 0.0 then begin
    count_envelope t ~src;
    let delay = delivery_delay t ~src ~dst in
    Sim.Engine.schedule t.engine ~delay payload
  end
  else begin
    Queue.add payload t.batch.(src).(dst);
    if not t.batch_armed.(src).(dst) then begin
      t.batch_armed.(src).(dst) <- true;
      Sim.Engine.schedule t.engine ~delay:t.batch_window (fun () ->
          flush_batch t ~src ~dst)
    end
  end

let deliver t ~src ~dst msg =
  if t.down.(dst) then t.dropped <- t.dropped + 1
  else
    match t.handlers.(dst) with
    | None -> invalid_arg "Network: destination has no handler"
    | Some handler -> handler ~src msg

let send t ~src ~dst msg =
  check_node t src;
  check_node t dst;
  t.sent <- t.sent + 1;
  t.link_sent.(src).(dst) <- t.link_sent.(src).(dst) + 1;
  if t.down.(src) || t.link_down.(src).(dst) then t.dropped <- t.dropped + 1
  else transmit t ~src ~dst (fun () -> deliver t ~src ~dst msg)

(* Inlined [send] loop: the per-destination node checks and row lookups are
   hoisted out, but counters, drop decisions, and latency-RNG draw order are
   exactly those of [send] applied to destinations 0..n-1. *)
let broadcast t ~src msg =
  check_node t src;
  let src_down = t.down.(src) in
  let link_down_row = t.link_down.(src) in
  let link_sent_row = t.link_sent.(src) in
  t.sent <- t.sent + t.nodes;
  for dst = 0 to t.nodes - 1 do
    link_sent_row.(dst) <- link_sent_row.(dst) + 1;
    if src_down || link_down_row.(dst) then t.dropped <- t.dropped + 1
    else transmit t ~src ~dst (fun () -> deliver t ~src ~dst msg)
  done

(* RPC with timeout-based failure detection.  The caller has no oracle: a
   down destination, a cut link, or a crash mid-flight all look the same —
   silence — and surface only as [Rpc_timeout] once [timeout] simulated
   time has elapsed.  Legs that cannot be delivered (down node, cut link)
   are counted in [messages_dropped], mirroring [send].

   The timeout clock starts at the call, not at the batch flush: a request
   parked in a coalescing window is already "in flight" from the caller's
   point of view, so a window that outlasts the timeout (or a partition
   that eats the queued envelope) surfaces as an ordinary [Rpc_timeout].

   The timeout event fires even when the caller's own node has crashed:
   the suspended process is a zombie whose unwinding (e.g. 2PC abort
   cleanup) must still run to release remote locks.  Only a *successful
   reply* is withheld from a crashed caller — that is the message a dead
   node can no longer receive. *)
let call ?timeout t ~src ~dst thunk =
  check_node t src;
  check_node t dst;
  let timeout = match timeout with Some x -> x | None -> t.call_timeout in
  t.sent <- t.sent + 1;
  t.link_sent.(src).(dst) <- t.link_sent.(src).(dst) + 1;
  if t.down.(src) then begin
    (* Symmetric with [send]: a dead node cannot originate traffic. *)
    t.dropped <- t.dropped + 1;
    raise (Node_down src)
  end;
  let request_ok = not t.link_down.(src).(dst) in
  if not request_ok then t.dropped <- t.dropped + 1;
  (match t.metrics with
  | Some m -> Sim.Metrics.record_rpc_call m ~node:src
  | None -> ());
  let issued_at = Sim.Engine.now t.engine in
  let outcome =
    Sim.Engine.suspend (fun resume ->
        let settled = ref false in
        let settle result =
          if not !settled then begin
            settled := true;
            resume result
          end
        in
        (if request_ok then
           transmit t ~src ~dst (fun () ->
               if t.down.(dst) then
                 (* Request lost in the crash; the thunk never runs. *)
                 t.dropped <- t.dropped + 1
               else begin
                 (* The thunk runs at the destination; failures travel
                    back to the caller instead of crashing the engine. *)
                 let result = try Ok (thunk ()) with e -> Error e in
                 t.sent <- t.sent + 1;
                 t.link_sent.(dst).(src) <- t.link_sent.(dst).(src) + 1;
                 if t.link_down.(dst).(src) then t.dropped <- t.dropped + 1
                 else
                   transmit t ~src:dst ~dst:src (fun () ->
                       if t.down.(src) || !settled then
                         (* Caller crashed or already timed out: the reply
                            reaches a dead mailbox. *)
                         t.dropped <- t.dropped + 1
                       else begin
                         (* A reply settled the call: record its round trip
                            (the callee's own exception still counts as a
                            completed RPC — only silence is a timeout). *)
                         (match t.metrics with
                         | Some m ->
                             Sim.Metrics.record_rpc_latency m ~node:src
                               (Sim.Engine.now t.engine -. issued_at)
                         | None -> ());
                         settle result
                       end)
               end));
        if timeout < infinity then
          Sim.Engine.schedule t.engine ~delay:timeout (fun () ->
              if not !settled then begin
                (match t.metrics with
                | Some m -> Sim.Metrics.record_rpc_timeout m ~node:src
                | None -> ());
                settle (Error (Rpc_timeout dst))
              end))
  in
  match outcome with Ok v -> v | Error e -> raise e
