(** Simulated message-passing network between [n] nodes.

    Delivery is reliable and, per (source, destination) link, FIFO: a later
    send never overtakes an earlier one.  Each delivered message runs the
    destination's handler in a fresh simulation process, so handlers may
    block (acquire locks, await conditions) without stalling the network.

    Nodes can be marked down, in which case messages addressed to them are
    counted as dropped; upper layers decide what a crash means for state. *)

type 'm t

val create :
  engine:Sim.Engine.t ->
  nodes:int ->
  ?latency:Latency.t ->
  ?self_latency:float ->
  ?send_occupancy:float ->
  ?call_timeout:float ->
  ?batch_window:float ->
  ?metrics:Sim.Metrics.t ->
  unit ->
  'm t
(** [latency] defaults to [Constant 1.0]; [self_latency] (messages a node
    sends to itself) defaults to [0.].  [call_timeout] is the default
    timeout for {!call} (simulated seconds); it defaults to [infinity],
    i.e. callers wait forever unless they pass an explicit [?timeout].

    [send_occupancy] (default [0.]) models sender-side serialization:
    each remote message reserves the source node's transmitter for that
    long before departing, so a node fanning out to [n] destinations pays
    [n *. send_occupancy] at the sender — the cost that makes O(n)
    coordinator broadcasts slow in real clusters and that hierarchical
    (tree) dissemination avoids.  Self-messages bypass the transmitter.
    At the default [0.] departure is immediate and behavior (including
    RNG draws and event order) is identical to earlier builds.

    [batch_window] (default [0.]) enables per-destination message
    coalescing: every message leg (one-way send, RPC request, RPC reply)
    queued on one (source, destination) link within the window rides a
    single {e envelope} — one latency sample, one delivery event, payloads
    applied in FIFO order on arrival.  The first message of a batch arms
    the window timer; a link cut or source crash before the flush drops
    the whole envelope.  RPC timeouts still run from {e call} time, not
    flush time.  With the default window of [0.] every message is its own
    envelope and the network behaves exactly as an unbatched build —
    same latency draws, same event ordering.

    When [metrics] is given, every {!call} is recorded against the
    calling node: one [rpc_call] per issued call, the round-trip time
    into the latency histogram when a reply settles it (the callee's
    exception travelling back still counts as a completed RPC), and one
    [rpc_timeout] when the timeout settles it instead.  Envelopes are
    recorded against their source node. *)

val engine : _ t -> Sim.Engine.t
val node_count : _ t -> int

val set_handler : 'm t -> node:int -> (src:int -> 'm -> unit) -> unit
(** Install the message handler for [node], replacing any previous one.
    Messages delivered to a node with no handler raise [Invalid_argument]. *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Asynchronous send; the caller continues immediately. *)

val broadcast : 'm t -> src:int -> 'm -> unit
(** Send to every node, including [src] itself (the paper's advancement
    messages go "to every node, including itself"). *)

val call : ?timeout:float -> _ t -> src:int -> dst:int -> (unit -> 'r) -> 'r
(** Remote procedure call: after one network latency the thunk runs at the
    destination (in its own process); after another latency the caller
    resumes with the result.  The caller must be inside a process.

    Failure detection is timeout-based — there is no oracle.  If the
    request or reply leg is lost (destination down when the request lands,
    link cut in either direction, caller down when the reply lands) the
    caller hears nothing and [Rpc_timeout dst] is raised after [timeout]
    simulated seconds ([?timeout] overrides the network's [call_timeout];
    with an infinite timeout a lost call suspends the caller forever).
    Lost legs are counted in {!messages_dropped}.  The only synchronous
    error is [Node_down src], raised when the {e caller's own} node is
    marked down at send time — local knowledge, mirroring {!send}.

    The timeout fires even if the caller's node crashes mid-call, so that
    the suspended process can unwind and release any remote resources it
    holds; a successful reply, by contrast, is never delivered to a
    crashed or already-timed-out caller. *)

exception Node_down of int

exception Rpc_timeout of int
(** [Rpc_timeout dst] — a {!call} to [dst] got no reply within the
    timeout.  The callee may or may not have executed the request. *)

val set_down : _ t -> node:int -> bool -> unit
val is_down : _ t -> node:int -> bool

val set_link_down : _ t -> src:int -> dst:int -> bool -> unit
(** Partition a single directed link: sends on it are dropped; {!call}s
    that would use it (either direction) raise [Node_down].  Node state is
    untouched — this models a network partition rather than a crash. *)

val link_is_down : _ t -> src:int -> dst:int -> bool

val set_link_extra : _ t -> src:int -> dst:int -> float -> unit
(** Add [extra] one-way latency to every subsequent message on the
    directed link (0. restores normal speed).  Used by the nemesis to
    model slow links without cutting them. *)

(** {1 Statistics} *)

val messages_sent : _ t -> int
val messages_dropped : _ t -> int

val envelopes_sent : _ t -> int
(** Transport events actually put on the wire.  Equal to the number of
    delivered message legs when [batch_window = 0]; strictly smaller when
    coalescing packs several legs into one envelope. *)

val link_count : _ t -> src:int -> dst:int -> int
