module Cluster = Ava3.Cluster
module Cluster_state = Ava3.Cluster_state
module Config = Ava3.Config
module Txn_core = Ava3.Txn_core
module Subtxn = Ava3.Subtxn
module Query_exec = Ava3.Query_exec

type 'v t = {
  db : 'v Cluster.t;
  cs : 'v Cluster_state.t;
  session_rng : Sim.Rng.t;
  conns : int array;  (* logical connection -> pinned coordinator partition *)
  mutable next_conn : int;
}

let create ?pool ?coordinators ~seed db =
  let cs = Cluster.state db in
  let config = Cluster.config db in
  let pool =
    match pool with Some p -> p | None -> config.Config.session_pool_size
  in
  if pool < 1 then invalid_arg "Session.create: pool must be >= 1";
  let coords =
    match coordinators with
    | Some [] -> invalid_arg "Session.create: empty coordinator list"
    | Some l -> Array.of_list l
    | None -> Array.init (Cluster_state.nparts cs) Fun.id
  in
  {
    db;
    cs;
    (* Forked by name from the seed's origin: equal seeds give equal
       jitter streams no matter how many draws anything else made. *)
    session_rng = Sim.Rng.fork_named (Sim.Rng.create seed) "session";
    conns = Array.init pool (fun i -> coords.(i mod Array.length coords));
    next_conn = 0;
  }

let cluster t = t.db
let rng t = t.session_rng

(* Round-robin connection checkout: each attempt (including retries after
   [Root_down]) lands on the next pooled coordinator, so a dead site is
   skipped by construction once per pool cycle. *)
let next_root t =
  let root = t.conns.(t.next_conn mod Array.length t.conns) in
  t.next_conn <- t.next_conn + 1;
  root

type 'v ctx = {
  session : 'v t;
  txn : 'v Txn_core.t;
  reads : (string * 'v option) list ref;  (* newest first *)
}

exception Rollback

let read c ~node key =
  let v =
    Txn_core.at_node c.txn node (fun sub -> Subtxn.read c.session.cs sub key)
  in
  c.reads := (key, v) :: !(c.reads);
  v

let write c ~node key value =
  Txn_core.at_node c.txn node (fun sub ->
      Subtxn.write c.session.cs sub key value)

let rmw c ~node key f =
  Txn_core.at_node c.txn node (fun sub ->
      Subtxn.read_modify_write c.session.cs sub key f)

let delete c ~node key =
  Txn_core.at_node c.txn node (fun sub -> Subtxn.delete c.session.cs sub key)

let pause _c d = Sim.Engine.sleep d

let nested c f =
  let sp = Txn_core.savepoint c.txn in
  let saved_reads = !(c.reads) in
  match f () with
  | v ->
      Txn_core.release_savepoint c.txn sp;
      Ok v
  | exception Rollback ->
      Txn_core.rollback_to c.txn sp;
      (* Reads made inside the scope are void (see Subtxn.rollback_to);
         drop them from the transaction's observation list too. *)
      c.reads := saved_reads;
      Error `Rolled_back
  | exception Subtxn.Txn_abort `Deadlock when Txn_core.running c.txn ->
      (* The denial refused our request but rolled nothing back, so
         releasing the scope's locks can break the cycle; hand the
         decision (rerun the scope, or give up the attempt) to the
         caller. *)
      Txn_core.rollback_to c.txn sp;
      c.reads := saved_reads;
      Error `Deadlock

type failure = Aborted of Txn_core.abort_reason | Root_down of int

type ('v, 'a) commit = {
  value : 'a;
  txn_id : int;
  final_version : int;
  attempts : int;
  reads : (string * 'v option) list;
  finished_at : float;
  participants : (int * float) list;
}

type ('v, 'a) outcome =
  | Committed of ('v, 'a) commit
  | Failed of {
      attempts : int;
      last : failure;
      durable : (int * float) list;
      version : int;
    }

(* Phase 2, driven to completion by the session.  Once the version
   decision is taken, aborting a participant is no longer an option: the
   decision is redriven ([Subtxn.commit] is idempotent, and refuses stale
   deliveries to a participant that rolled back) until every participant's
   commit record is durable or its node has died and lost it — a dead
   node's unforced records are gone and recovery presumes abort, so an
   uncommitted participant seen down is never redriven (its in-memory
   state does not survive the crash).  Rerunning the client function is
   safe only when NO participant committed and none can still resolve. *)
let drive_commit s t ~final_version =
  let cs = s.cs in
  let subs = Txn_core.sub_list t in
  let lost = ref [] in
  let last = ref (`Rpc_timeout (Txn_core.root t)) in
  let participants = ref [] in
  let note_participant sub =
    let n = Ava3.Node_state.id (Subtxn.node sub) in
    if not (List.mem_assoc n !participants) then
      participants := (n, Subtxn.committed_at sub) :: !participants
  in
  let pending () =
    List.filter
      (fun sub -> (not (Subtxn.committed sub)) && not (List.memq sub !lost))
      subs
  in
  let observe sub =
    if not (Ava3.Node_state.alive (Subtxn.node sub)) then begin
      lost := sub :: !lost;
      last := `Node_down (Ava3.Node_state.id (Subtxn.node sub))
    end
  in
  let max_rounds = 40 in
  let rec go round =
    List.iter observe (pending ());
    match pending () with
    | [] -> ()
    | _ when round >= max_rounds -> ()
    | ps ->
        List.iter
          (fun sub ->
            if (not (Subtxn.committed sub)) && not (List.memq sub !lost)
            then begin
              let n = Ava3.Node_state.id (Subtxn.node sub) in
              match
                Txn_core.at_node t n (fun sub ->
                    Subtxn.commit cs sub ~final_version)
              with
              | () -> if Subtxn.committed sub then note_participant sub
              | exception Net.Network.Rpc_timeout m -> last := `Rpc_timeout m
              | exception Net.Network.Node_down m ->
                  last := `Node_down m;
                  if m = n then lost := sub :: !lost
              | exception Subtxn.Txn_abort r -> (
                  last := r;
                  match r with
                  | `Node_down m when m = n -> lost := sub :: !lost
                  | _ -> ())
            end)
          ps;
        if pending () <> [] then begin
          Sim.Engine.sleep 2.0;
          go (round + 1)
        end
  in
  go 0;
  List.iter note_participant (List.filter Subtxn.committed subs);
  (* An unresolved participant — decision in, force pending, node alive —
     can still become durable on its own, so it is never grounds to rerun. *)
  let unresolved sub =
    Subtxn.commit_submitted sub
    && (not (Subtxn.committed sub))
    && Ava3.Node_state.alive (Subtxn.node sub)
  in
  if List.for_all Subtxn.committed subs then `All (List.rev !participants)
  else if List.exists Subtxn.committed subs || List.exists unresolved subs
  then `Partial (List.rev !participants, !last)
  else `None !last

(* One attempt: the Update_exec.run lifecycle driven interactively by the
   client function, except that the commit fan-out runs outside
   [Txn_core.protect] — after the decision, failures are redriven rather
   than turned into aborts.  [`Failed (failure, durable, version,
   retryable)] carries the retry verdict so [txn] stays policy-only. *)
let attempt s ~root f =
  match Txn_core.create s.cs ~root with
  | None -> `Failed (Root_down root, [], 0, true)
  | Some t -> (
      let c = { session = s; txn = t; reads = ref [] } in
      let value = ref None in
      let final_version = ref 0 in
      let client_gave_up = ref false in
      let out =
        Txn_core.protect t (fun () ->
            ignore (Txn_core.sub t root : _ Subtxn.t);
            (match f c with
            | v -> value := Some v
            | exception Rollback ->
                (* Rollback outside any scope: the client abandoned the
                   transaction itself.  Abort (recorded deadlock-class)
                   and never retry — rerunning would just abandon again. *)
                client_gave_up := true;
                raise (Subtxn.Txn_abort `Deadlock));
            let prepared =
              Txn_core.at_sub_nodes t (fun sub -> Subtxn.prepare s.cs sub)
            in
            final_version := Txn_core.decide_version t prepared;
            Txn_core.Committed ())
      in
      match out with
      | Txn_core.Root_down _ -> assert false (* create already checked *)
      | Txn_core.Aborted { reason; _ } ->
          (* Pre-decision failure: [abort_all] rolled every participant
             back and stale commit messages cannot exist yet, so a rerun
             is clean. *)
          `Failed (Aborted reason, [], 0, not !client_gave_up)
      | Txn_core.Committed () -> (
          let fv = !final_version in
          match drive_commit s t ~final_version:fv with
          | `All participants ->
              Txn_core.finish_commit t ~final_version:fv;
              `Committed
                ( Option.get !value,
                  Txn_core.txn_id t,
                  fv,
                  List.rev !(c.reads),
                  Cluster_state.now s.cs,
                  participants )
          | `Partial (durable, reason) ->
              (* Some participants are past the point of no return while
                 others died with their records unforced — the model's
                 acknowledged atomicity edge (a node dying mid-commit
                 round).  Never retryable: a rerun would double-apply the
                 durable part.  [durable] tells the caller exactly which
                 homes hold the writes. *)
              ignore (Txn_core.abort_all t reason : unit Txn_core.outcome);
              `Failed (Aborted reason, durable, fv, false)
          | `None reason ->
              (* No participant committed and none still can: stale
                 deliveries are refused at the participant, so a rerun
                 cannot double-apply anything. *)
              ignore (Txn_core.abort_all t reason : unit Txn_core.outcome);
              `Failed (Aborted reason, [], fv, true)))

let backoff_of s ~config k =
  let jitter = 0.5 +. Sim.Rng.float s.session_rng 1.0 in
  config.Config.retry_backoff_base *. Float.pow 2.0 (float_of_int k) *. jitter

(* Generic over the failure payload ['f]: [txn] threads the durable
   participant list through it, queries just use {!failure}. *)
let retry_loop s ?retries
    (run : root:int -> [ `Ok of 'a | `Failed of 'f * bool ]) =
  let config = Cluster.config s.db in
  let budget =
    match retries with Some r -> r | None -> config.Config.max_retries
  in
  let rec go k =
    let root = next_root s in
    match run ~root with
    | `Ok v -> `Ok (v, k + 1)
    | `Failed (last, retryable) ->
        if retryable && k < budget then begin
          let backoff = backoff_of s ~config k in
          Sim.Metrics.record_session_retry s.cs.Cluster_state.metrics
            ~node:root ~backoff;
          if backoff > 0.0 then Sim.Engine.sleep backoff;
          go (k + 1)
        end
        else `Failed (last, k + 1)
  in
  go 0

let txn ?retries s f =
  match
    retry_loop s ?retries (fun ~root ->
        match attempt s ~root f with
        | `Committed c -> `Ok c
        | `Failed (last, durable, version, retryable) ->
            `Failed ((last, durable, version), retryable))
  with
  | `Ok ((value, txn_id, final_version, reads, finished_at, participants), attempts)
    ->
      Committed
        { value; txn_id; final_version; attempts; reads; finished_at; participants }
  | `Failed ((last, durable, version), attempts) ->
      Failed { attempts; last; durable; version }

(* Read-only queries hold no locks and clean up their counters on the way
   out, so every failure is retryable. *)
let query_retry s run =
  match
    retry_loop s (fun ~root ->
        match run ~root with
        | v -> `Ok v
        | exception Net.Network.Node_down n ->
            `Failed (Aborted (`Node_down n), true)
        | exception Net.Network.Rpc_timeout n ->
            `Failed (Aborted (`Rpc_timeout n), true))
  with
  | `Ok (v, _) -> Ok v
  | `Failed (last, _) -> Error last

let query s ~reads =
  query_retry s (fun ~root -> Cluster.run_query s.db ~root ~reads)

let select s ~plan ~ranges =
  query_retry s (fun ~root -> Cluster.run_select s.db ~root ~plan ~ranges)

let join s ~plan ~build ~probe =
  query_retry s (fun ~root -> Cluster.run_join s.db ~root ~plan ~build ~probe)

module Dsl = struct
  (* The combinator names below shadow the session entry points, so keep
     handles to the real ones for the interpreter. *)
  let session_txn = txn
  let session_query = query
  let session_select = select
  let session_join = join
  let session_pause = pause

  type 'v step =
    | S_read of int * string
    | S_write of int * string * 'v
    | S_rmw of int * string * ('v option -> 'v)
    | S_delete of int * string
    | S_pause of float
    | S_scope of 'v step list
    | S_expect_abort of 'v step list

  let sread ~node key = S_read (node, key)
  let swrite ~node key v = S_write (node, key, v)
  let srmw ~node key f = S_rmw (node, key, f)
  let sdelete ~node key = S_delete (node, key)
  let spause d = S_pause d
  let scope steps = S_scope steps
  let expect_abort steps = S_expect_abort steps

  type 'v prog =
    | P_txn of 'v step list
    | P_query of (int * string) list
    | P_select of Query_exec.select_plan * (int * string * string) list
    | P_join of
        Query_exec.select_plan
        * (int list * string * string)
        * (int list * string * string)
    | P_seq of 'v prog list
    | P_loop of int * 'v prog
    | P_choice of string * 'v prog list
    | P_pause of float

  let txn steps = P_txn steps
  let query reads = P_query reads
  let select ~plan ~ranges = P_select (plan, ranges)
  let join ~plan ~build ~probe = P_join (plan, build, probe)
  let seq progs = P_seq progs
  let loop n prog = P_loop (n, prog)
  let choice ~label progs = P_choice (label, progs)
  let pause d = P_pause d

  type summary = {
    committed : int;
    failed : int;
    attempts : int;
    queries : int;
    query_failures : int;
    rolled_back : int;
  }

  let empty_summary =
    {
      committed = 0;
      failed = 0;
      attempts = 0;
      queries = 0;
      query_failures = 0;
      rolled_back = 0;
    }

  let add_summary a b =
    {
      committed = a.committed + b.committed;
      failed = a.failed + b.failed;
      attempts = a.attempts + b.attempts;
      queries = a.queries + b.queries;
      query_failures = a.query_failures + b.query_failures;
      rolled_back = a.rolled_back + b.rolled_back;
    }

  let seeded_choose rng ~label n =
    ignore label;
    Sim.Rng.int rng n

  let explorer_choose s ~label n =
    Sim.Engine.branch s.cs.Cluster_state.engine ~label n

  (* [rolled] counts expect_abort rollbacks across every attempt of the
     enclosing transaction, retries included: it measures work done, not
     transactions finished. *)
  let rec exec_step s c rolled = function
    | S_read (node, key) -> ignore (read c ~node key : _ option)
    | S_write (node, key, v) -> write c ~node key v
    | S_rmw (node, key, f) -> rmw c ~node key f
    | S_delete (node, key) -> delete c ~node key
    | S_pause d -> session_pause c d
    | S_scope steps -> (
        match
          nested c (fun () -> List.iter (exec_step s c rolled) steps)
        with
        | Ok () -> ()
        | Error `Rolled_back -> () (* unreachable: no Rollback raised *)
        | Error `Deadlock ->
            (* The scope was rolled back, but the DSL's policy is to give
               the whole attempt back to the session retry loop rather
               than rerun the scope inside a half-done transaction. *)
            raise (Subtxn.Txn_abort `Deadlock))
    | S_expect_abort steps -> (
        match
          nested c (fun () ->
              List.iter (exec_step s c rolled) steps;
              raise Rollback)
        with
        | Ok _ -> assert false (* the scope always raises *)
        | Error `Rolled_back -> incr rolled
        | Error `Deadlock -> raise (Subtxn.Txn_abort `Deadlock))

  let run ?choose s prog =
    let choose =
      match choose with Some f -> f | None -> seeded_choose s.session_rng
    in
    let rec go sum = function
      | P_txn steps ->
          let rolled = ref 0 in
          let sum =
            match
              session_txn s (fun c -> List.iter (exec_step s c rolled) steps)
            with
            | Committed { attempts; _ } ->
                {
                  sum with
                  committed = sum.committed + 1;
                  attempts = sum.attempts + attempts;
                }
            | Failed { attempts; _ } ->
                {
                  sum with
                  failed = sum.failed + 1;
                  attempts = sum.attempts + attempts;
                }
          in
          { sum with rolled_back = sum.rolled_back + !rolled }
      | P_query reads -> (
          match session_query s ~reads with
          | Ok _ -> { sum with queries = sum.queries + 1 }
          | Error _ -> { sum with query_failures = sum.query_failures + 1 })
      | P_select (plan, ranges) -> (
          match session_select s ~plan ~ranges with
          | Ok _ -> { sum with queries = sum.queries + 1 }
          | Error _ -> { sum with query_failures = sum.query_failures + 1 })
      | P_join (plan, build, probe) -> (
          match session_join s ~plan ~build ~probe with
          | Ok _ -> { sum with queries = sum.queries + 1 }
          | Error _ -> { sum with query_failures = sum.query_failures + 1 })
      | P_seq progs -> List.fold_left go sum progs
      | P_loop (n, prog) ->
          let acc = ref sum in
          for _ = 1 to n do
            acc := go !acc prog
          done;
          !acc
      | P_choice (label, progs) ->
          let n = List.length progs in
          if n = 0 then sum else go sum (List.nth progs (choose ~label n))
      | P_pause d ->
          Sim.Engine.sleep d;
          sum
    in
    go empty_summary prog

  let gen_key ~node i = Printf.sprintf "k%d_%d" node i

  let gen ~rng ~nodes ~keys_per_node ~txns =
    let key () =
      let node = Sim.Rng.int rng nodes in
      (node, gen_key ~node (Sim.Rng.int rng keys_per_node))
    in
    let incr_f = function None -> 1 | Some v -> v + 1 in
    let plain_step () =
      let node, k = key () in
      let roll = Sim.Rng.int rng 100 in
      if roll < 40 then srmw ~node k incr_f
      else if roll < 65 then sread ~node k
      else if roll < 85 then swrite ~node k (Sim.Rng.int rng 1000)
      else if roll < 95 then sdelete ~node k
      else spause (Sim.Rng.float rng 0.5)
    in
    let step () =
      let roll = Sim.Rng.int rng 100 in
      if roll < 25 then
        scope (List.init (1 + Sim.Rng.int rng 3) (fun _ -> plain_step ()))
      else if roll < 37 then
        expect_abort
          (List.init (1 + Sim.Rng.int rng 3) (fun _ -> plain_step ()))
      else plain_step ()
    in
    let one_txn () = txn (List.init (2 + Sim.Rng.int rng 5) (fun _ -> step ())) in
    let progs =
      List.concat
        (List.init txns (fun i ->
             let t = one_txn () in
             let extras =
               if i mod 5 = 4 then
                 let node, k = key () in
                 [ query [ (node, k) ] ]
               else if Sim.Rng.chance rng 0.15 then
                 [ pause (Sim.Rng.float rng 2.0) ]
               else []
             in
             t :: extras))
    in
    seq progs
end
