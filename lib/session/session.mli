(** Client session layer: pooled coordinators, savepoint-scoped nested
    transactions, and seeded automatic retry on top of {!Ava3.Txn_core}.

    A session is what application code holds instead of a raw cluster
    handle.  It pools [Config.session_pool_size] logical connections, each
    pinned to a coordinator partition (round-robin over the cluster), and
    runs client functions as update transactions:

    {[
      let s = Session.create db ~seed:42L in
      match
        Session.txn s (fun c ->
            let bal = Session.read c ~node:0 "acct" in
            Session.write c ~node:0 "acct" (credit bal);
            bal)
      with
      | Committed { value; attempts; _ } -> ...
      | Failed { last; attempts; _ } -> ...
    ]}

    Failures classified as retryable — [Aborted] (deadlock, RPC timeout,
    node down, version mismatch under the abort baseline) and [Root_down]
    — are retried up to [Config.max_retries] times with seeded exponential
    backoff: attempt [k] sleeps [retry_backoff_base * 2^k * jitter] virtual
    seconds, jitter uniform in [0.5, 1.5) from the session's own
    {!Sim.Rng} stream, so a run is reproducible from [(seed, workload)]
    and adding a session never perturbs other components' streams.

    {b Idempotence guard.}  A commit round that fails after the version
    was decided is not blindly retried: once the decision is taken, the
    session {e redrives} it — {!Ava3.Subtxn.commit} is idempotent, waits
    out a pending durability force, and refuses stale deliveries to a
    participant that already rolled back — until every participant's
    commit record is durable (the acked-then-timed-out outcome is then
    reported as [Committed]; retrying would double-apply it) or a
    participant's node has died with its records unforced.  Only a
    transaction with {e no} durable participant and no participant still
    in the decision-in/force-pending window is rerun from the client
    function.  The remaining edge — some participants durable, the rest
    lost in a crash — is the model's acknowledged atomicity hole for a
    node dying mid-commit-round: it surfaces as [Failed] without retry,
    with the durable participants listed so an oracle can account for
    the writes that did land.

    All entry points must run inside a simulation process
    ({!Sim.Engine.spawn}). *)

type 'v t
(** A session over an ['v Ava3.Cluster.t]. *)

val create :
  ?pool:int -> ?coordinators:int list -> seed:int64 -> 'v Ava3.Cluster.t -> 'v t
(** [create db ~seed] opens a session.  [?pool] overrides
    [Config.session_pool_size]; [?coordinators] pins the logical
    connections to the given partitions instead of round-robin over all of
    them.  [seed] feeds the session's private jitter/choice stream
    (forked by name, so equal seeds give equal streams regardless of
    draw order elsewhere). *)

val cluster : 'v t -> 'v Ava3.Cluster.t
val rng : _ t -> Sim.Rng.t
(** The session's private random stream — the one backoff jitter and the
    {!Dsl} seeded interpreter draw from. *)

(** {1 Transactions} *)

type 'v ctx
(** Handle to the in-flight transaction, passed to the client function.
    Valid only for the duration of that call. *)

exception Rollback
(** Raised by client code inside {!nested} to abandon the innermost scope:
    the scope's writes are erased and its locks released, and [nested]
    returns [Error `Rolled_back].  Raised outside any scope it aborts the
    whole transaction attempt (recorded as a deadlock-class abort) and is
    not retried — the client abandoned the transaction on purpose. *)

val read : 'v ctx -> node:int -> string -> 'v option
val write : 'v ctx -> node:int -> string -> 'v -> unit
val rmw : 'v ctx -> node:int -> string -> ('v option -> 'v) -> unit
val delete : 'v ctx -> node:int -> string -> unit
val pause : _ ctx -> float -> unit

val nested :
  'v ctx -> (unit -> 'a) -> ('a, [ `Rolled_back | `Deadlock ]) result
(** [nested c f] runs [f] as a savepoint-scoped inner transaction,
    flattened into the enclosing one (the paper's subtransactions nest by
    node, not by program structure, so program-level nesting maps to
    savepoints — PROTOCOL.md "Savepoints").  On normal return the scope is
    released (merged into the parent).  On {!Rollback} the scope is rolled
    back and [Error `Rolled_back] returned.  On a deadlock denial whose
    transaction is still live, the scope is rolled back — releasing its
    locks, which may break the cycle — and [Error `Deadlock] returned; the
    caller decides whether to rerun the scope or raise.  Any other
    failure (node down, RPC timeout, sibling abort) propagates and aborts
    the whole attempt.  Scopes nest arbitrarily. *)

type failure =
  | Aborted of Ava3.Txn_core.abort_reason
  | Root_down of int  (** the coordinator partition that was down *)

type ('v, 'a) commit = {
  value : 'a;  (** the client function's return value *)
  txn_id : int;
  final_version : int;  (** [V(T)] *)
  attempts : int;  (** 1 = committed first try *)
  reads : (string * 'v option) list;  (** in request order *)
  finished_at : float;
  participants : (int * float) list;
      (** (node, local commit time) per participant, as in
          {!Ava3.Update_exec.commit_info} — what serializability oracles
          order same-version conflicts by.  May be incomplete when the
          outcome was recovered by the idempotence guard (the failed
          commit round did not report every participant's time). *)
}

type ('v, 'a) outcome =
  | Committed of ('v, 'a) commit
  | Failed of {
      attempts : int;
      last : failure;  (** the final attempt's error *)
      durable : (int * float) list;
          (** participants of the final attempt whose commit records are
              durable despite the failure — non-empty only in the
              crash-partial edge (see the idempotence guard above), where
              the listed homes hold the transaction's writes for good *)
      version : int;
          (** the decided [V(T)] of the final attempt, [0] if it failed
              before the decision; meaningful alongside [durable] *)
    }
      (** retry budget exhausted (or the failure was not retryable) *)

val txn : ?retries:int -> 'v t -> ('v ctx -> 'a) -> ('v, 'a) outcome
(** Run [f] as an update transaction on the next pooled connection,
    retrying per the session discipline above.  [?retries] overrides
    [Config.max_retries] for this call ([Some 0] = one attempt); the
    override draws no extra random numbers, so a run with [~retries:0]
    is byte-equal to one under a [max_retries = 0] config. *)

(** {1 Read-only queries}

    Routed through the same pooled coordinators with the same retry
    discipline (queries hold no locks, so every failure is retryable). *)

val query :
  'v t -> reads:(int * string) list -> ('v Ava3.Query_exec.result, failure) result

val select :
  'v t ->
  plan:Ava3.Query_exec.select_plan ->
  ranges:(int * string * string) list ->
  ('v Ava3.Query_exec.result, failure) result

val join :
  'v t ->
  plan:Ava3.Query_exec.select_plan ->
  build:int list * string * string ->
  probe:int list * string * string ->
  ('v Ava3.Query_exec.join_result, failure) result

(** {1 Scenario DSL}

    One program, three harnesses: the same ['v prog] value runs under the
    stress driver ([stress.exe --sessions]), the DES experiment harness
    (EXPERIMENTS.md E15) and the model checker ([check.exe]) — only the
    [choose] function differs (seeded for the first two, explorer-branch
    for the checker), so a counterexample schedule found by exploration
    replays the exact program the other harnesses measured. *)
module Dsl : sig
  (** One step inside an update transaction. *)
  type 'v step

  val sread : node:int -> string -> 'v step
  val swrite : node:int -> string -> 'v -> 'v step
  val srmw : node:int -> string -> ('v option -> 'v) -> 'v step
  val sdelete : node:int -> string -> 'v step
  val spause : float -> 'v step

  val scope : 'v step list -> 'v step
  (** Savepoint-scoped inner transaction ({!nested}): kept on success;
      a deadlock denial inside rolls the scope back and then re-raises, so
      the enclosing attempt aborts and the session retry takes over. *)

  val expect_abort : 'v step list -> 'v step
  (** Like {!scope}, but the scope always ends with {!Rollback}: its
      writes must leave no trace.  Exercises the rollback path on purpose
      (the DSL twin of a business-rule violation handler). *)

  (** A program: a tree of transactions, queries and control flow. *)
  type 'v prog

  val txn : 'v step list -> 'v prog
  val query : (int * string) list -> 'v prog
  val select :
    plan:Ava3.Query_exec.select_plan ->
    ranges:(int * string * string) list ->
    'v prog
  val join :
    plan:Ava3.Query_exec.select_plan ->
    build:int list * string * string ->
    probe:int list * string * string ->
    'v prog
  val seq : 'v prog list -> 'v prog
  val loop : int -> 'v prog -> 'v prog
  val choice : label:string -> 'v prog list -> 'v prog
  (** Resolved by the interpreter's [choose] function: seeded pick under
      stress/DES, {!Sim.Engine.branch} decision under the checker. *)

  val pause : float -> 'v prog

  type summary = {
    committed : int;
    failed : int;
    attempts : int;  (** total attempts across all transactions *)
    queries : int;  (** read-only programs that completed *)
    query_failures : int;
    rolled_back : int;  (** [expect_abort] scopes that rolled back *)
  }

  val empty_summary : summary
  val add_summary : summary -> summary -> summary

  val run :
    ?choose:(label:string -> int -> int) -> 'v t -> 'v prog -> summary
  (** Interpret the program through the session.  [choose] resolves every
      {!choice} (default: seeded from the session's {!rng}); pass
      {!explorer_choose} under the model checker. *)

  val seeded_choose : Sim.Rng.t -> label:string -> int -> int
  val explorer_choose : _ t -> label:string -> int -> int
  (** Routes each choice through {!Sim.Engine.branch}, making it a
      first-class exploration decision the checker enumerates. *)

  val gen :
    rng:Sim.Rng.t -> nodes:int -> keys_per_node:int -> txns:int -> int prog
  (** Seeded random program over the standard integer-counter workload:
      [txns] transactions of 2–6 steps (reads, increments, writes,
      deletes) over [nodes * keys_per_node] items named ["k<node>_<i>"],
      about a quarter wrapped in savepoint scopes and an eighth in
      [expect_abort] scopes, separated by occasional pauses and queries.
      Equal seeds generate equal programs. *)

  val gen_key : node:int -> int -> string
  (** ["k<node>_<i>"] — the key namespace {!gen} draws from, exposed so
      oracles can enumerate it. *)
end
