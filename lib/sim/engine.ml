(* An event is a closure plus the name of the process it belongs to (when
   known).  The label is what makes scheduling choices meaningful to an
   external chooser: events of one named process are program-ordered, so
   permuting them is never a real choice, while events of distinct
   processes racing at the same virtual time are. *)
type ev = { fn : unit -> unit; label : string option }

type choice_point =
  | Tie of { labels : string option array }
  | Branch of { label : string; arity : int }

type chooser = choice_point -> int

type t = {
  mutable clock : float;
  queue : ev Heap.t;
  mutable seq : int;
  root_rng : Rng.t;
  trace_rec : Trace.t;
  mutable running : bool;
  mutable suspended : int;
  mutable current_name : string option;
      (* name of the process whose code is executing right now; threaded
         into trace entries so per-process events are attributable *)
  mutable chooser : chooser option;
      (* when installed, ready-queue ties and Engine.branch calls are
         resolved by this callback instead of insertion order — the hook
         the model checker (lib/check) drives schedule exploration with *)
}

exception Not_in_process
exception Deadlocked of string

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Sleep : float -> unit Effect.t
  | Current_engine : t Effect.t

let create ?(seed = 0x5EEDL) ?(trace = true) ?trace_capacity () =
  {
    clock = 0.0;
    queue = Heap.create ~dummy:{ fn = (fun () -> ()); label = None } ();
    seq = 0;
    root_rng = Rng.create seed;
    trace_rec = Trace.create ~enabled:trace ?capacity:trace_capacity ();
    running = false;
    suspended = 0;
    current_name = None;
    chooser = None;
  }

let now t = t.clock
let rng t = t.root_rng
let trace t = t.trace_rec
let current_process t = t.current_name

let set_chooser t chooser = t.chooser <- chooser

let branch t ~label arity =
  if arity <= 0 then invalid_arg "Engine.branch: arity must be positive";
  match t.chooser with
  | None -> 0
  | Some choose ->
      let c = choose (Branch { label; arity }) in
      if c < 0 || c >= arity then 0 else c

let emit t ~tag message =
  Trace.emit t.trace_rec ~time:t.clock ?process:t.current_name ~tag message

let schedule_at t ~time ?label fn =
  t.seq <- t.seq + 1;
  Heap.push t.queue ~time ~seq:t.seq { fn; label }

(* Execute one segment of a (possibly named) process: the name is active
   while its code runs, so trace entries emitted by the process carry it;
   it is restored on suspension, completion, or escape. *)
let run_named t name f =
  match name with
  | None -> f ()
  | Some _ ->
      let saved = t.current_name in
      t.current_name <- name;
      Fun.protect ~finally:(fun () -> t.current_name <- saved) f

(* Run [fn] as a process: a deep handler interprets the suspension effects.
   The handler stays installed across resumptions, so a process suspended in
   a Condition resumes under the same engine.  [name] is re-established
   around every resumption segment. *)
let run_process t ?name fn =
  let open Effect.Deep in
  run_named t name (fun () ->
      match_with fn ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend register ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      t.suspended <- t.suspended + 1;
                      register (fun v ->
                          t.suspended <- t.suspended - 1;
                          schedule_at t ~time:t.clock ?label:name (fun () ->
                              run_named t name (fun () -> continue k v))))
              | Sleep delay ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      let delay = if delay < 0.0 then 0.0 else delay in
                      schedule_at t ~time:(t.clock +. delay) ?label:name
                        (fun () -> run_named t name (fun () -> continue k ())))
              | Current_engine ->
                  Some (fun (k : (a, _) continuation) -> continue k t)
              | _ -> None);
        })

let spawn t ?name fn =
  (match name with
  | Some n -> Trace.emit t.trace_rec ~time:t.clock ~process:n ~tag:"spawn" n
  | None -> ());
  schedule_at t ~time:t.clock ?label:name (fun () -> run_process t ?name fn)

let schedule t ?name ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) ?label:name (fun () ->
      run_process t ?name fn)

let stop t = t.running <- false

let suspended_count t = t.suspended
let pending_events t = Heap.size t.queue

let pending_summary t =
  let acc = ref [] in
  Heap.iter t.queue (fun time _seq ev -> acc := (time, ev.label) :: !acc);
  List.sort compare !acc

(* Next event to execute.  Without a chooser this is a plain heap pop
   (zero overhead on the normal path).  With one, every event at the
   minimal virtual time is drained, grouped into scheduling alternatives —
   one group per named process (its events stay in program order), one per
   anonymous event — and the chooser picks which group's first event runs;
   the rest go back on the heap with their original sequence numbers, so
   the unchosen alternatives keep their relative order and remain
   candidates at the next iteration. *)
let pop_event t =
  match t.chooser with
  | None -> Heap.pop t.queue
  | Some choose -> (
      match Heap.peek_time t.queue with
      | None -> None
      | Some tmin -> (
          let rec drain acc =
            match Heap.peek_time t.queue with
            | Some tm when tm = tmin -> (
                match Heap.pop t.queue with
                | Some e -> drain (e :: acc)
                | None -> acc)
            | _ -> acc
          in
          let batch = List.rev (drain []) in
          match batch with
          | [] -> None
          | [ e ] -> Some e
          | batch ->
              let seen = Hashtbl.create 8 in
              let candidates =
                List.filter
                  (fun (_, _, ev) ->
                    match ev.label with
                    | None -> true
                    | Some l ->
                        if Hashtbl.mem seen l then false
                        else begin
                          Hashtbl.add seen l ();
                          true
                        end)
                  batch
              in
              let chosen =
                match candidates with
                | [ _ ] -> List.hd batch
                | _ ->
                    let labels =
                      Array.of_list
                        (List.map (fun (_, _, ev) -> ev.label) candidates)
                    in
                    let idx = choose (Tie { labels }) in
                    let idx =
                      if idx < 0 || idx >= Array.length labels then 0 else idx
                    in
                    List.nth candidates idx
              in
              let _, chosen_seq, _ = chosen in
              List.iter
                (fun (time, seq, ev) ->
                  if seq <> chosen_seq then Heap.push t.queue ~time ~seq ev)
                batch;
              Some chosen))

let run ?until t =
  let limit = match until with None -> infinity | Some u -> u in
  t.running <- true;
  let rec loop () =
    if not t.running then ()
    else
      match Heap.peek_time t.queue with
      | None -> ()
      | Some time when time > limit -> t.clock <- limit
      | Some _ -> (
          match pop_event t with
          | None -> ()
          | Some (time, _, ev) ->
              t.clock <- time;
              ev.fn ();
              loop ())
  in
  loop ();
  t.running <- false

(* Effect-performing helpers; valid only inside a process. *)

let not_in_process () = raise Not_in_process

let current () =
  try Effect.perform Current_engine with Effect.Unhandled _ -> not_in_process ()

let sleep delay =
  try Effect.perform (Sleep delay) with Effect.Unhandled _ -> not_in_process ()

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> not_in_process ()

let yield () = sleep 0.0
