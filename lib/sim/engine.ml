(* An event is a closure plus the name of the process it belongs to (when
   known).  The label is what makes scheduling choices meaningful to an
   external chooser: events of one named process are program-ordered, so
   permuting them is never a real choice, while events of distinct
   processes racing at the same virtual time are. *)
type ev = { fn : unit -> unit; label : string option }

type choice_point =
  | Tie of { labels : string option array }
  | Branch of { label : string; arity : int }

type chooser = choice_point -> int

type t = {
  mutable clock : float;
  queue : ev Heap.t;
  mutable seq : int;
  root_rng : Rng.t;
  trace_rec : Trace.t;
  mutable running : bool;
  mutable suspended : int;
  mutable executed : int;
      (* events popped and run since creation; divided by wall-clock time
         this is the simulator's events/sec throughput (bench engine) *)
  mutable current_name : string option;
      (* name of the process whose code is executing right now; threaded
         into trace entries so per-process events are attributable *)
  mutable chooser : chooser option;
      (* when installed, ready-queue ties and Engine.branch calls are
         resolved by this callback instead of insertion order — the hook
         the model checker (lib/check) drives schedule exploration with *)
}

exception Not_in_process
exception Deadlocked of string

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Sleep : float -> unit Effect.t
  | Current_engine : t Effect.t

let create ?(seed = 0x5EEDL) ?(trace = true) ?trace_capacity () =
  {
    clock = 0.0;
    queue = Heap.create ~dummy:{ fn = (fun () -> ()); label = None } ();
    seq = 0;
    root_rng = Rng.create seed;
    trace_rec = Trace.create ~enabled:trace ?capacity:trace_capacity ();
    running = false;
    suspended = 0;
    executed = 0;
    current_name = None;
    chooser = None;
  }

let now t = t.clock
let rng t = t.root_rng
let trace t = t.trace_rec
let trace_enabled t = Trace.enabled t.trace_rec
let current_process t = t.current_name

let set_chooser t chooser = t.chooser <- chooser

let branch t ~label arity =
  if arity <= 0 then invalid_arg "Engine.branch: arity must be positive";
  match t.chooser with
  | None -> 0
  | Some choose ->
      let c = choose (Branch { label; arity }) in
      if c < 0 || c >= arity then 0 else c

let emit t ~tag message =
  Trace.emit t.trace_rec ~time:t.clock ?process:t.current_name ~tag message

let schedule_at t ~time ?label fn =
  t.seq <- t.seq + 1;
  Heap.push t.queue ~time ~seq:t.seq { fn; label }

(* Execute one segment of a (possibly named) process: the name is active
   while its code runs, so trace entries emitted by the process carry it;
   it is restored on suspension, completion, or escape. *)
let run_named t name f =
  match name with
  | None -> f ()
  | Some _ ->
      let saved = t.current_name in
      t.current_name <- name;
      Fun.protect ~finally:(fun () -> t.current_name <- saved) f

(* Run [fn] as a process: a deep handler interprets the suspension effects.
   The handler stays installed across resumptions, so a process suspended in
   a Condition resumes under the same engine.  [name] is re-established
   around every resumption segment. *)
let run_process t ?name fn =
  let open Effect.Deep in
  run_named t name (fun () ->
      match_with fn ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend register ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      t.suspended <- t.suspended + 1;
                      register (fun v ->
                          t.suspended <- t.suspended - 1;
                          schedule_at t ~time:t.clock ?label:name (fun () ->
                              run_named t name (fun () -> continue k v))))
              | Sleep delay ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      let delay = if delay < 0.0 then 0.0 else delay in
                      schedule_at t ~time:(t.clock +. delay) ?label:name
                        (fun () -> run_named t name (fun () -> continue k ())))
              | Current_engine ->
                  Some (fun (k : (a, _) continuation) -> continue k t)
              | _ -> None);
        })

let spawn t ?name fn =
  (match name with
  | Some n -> Trace.emit t.trace_rec ~time:t.clock ~process:n ~tag:"spawn" n
  | None -> ());
  schedule_at t ~time:t.clock ?label:name (fun () -> run_process t ?name fn)

let schedule t ?name ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) ?label:name (fun () ->
      run_process t ?name fn)

let stop t = t.running <- false

let suspended_count t = t.suspended
let pending_events t = Heap.size t.queue
let events_executed t = t.executed

let pending_summary t =
  let acc = ref [] in
  Heap.iter t.queue (fun time _seq ev -> acc := (time, ev.label) :: !acc);
  List.sort compare !acc

(* Chooser-mode pop, called with the minimal virtual time [tmin] already
   read off the heap.  When exactly one event sits at [tmin] there is no
   scheduling alternative, so it runs directly (the common case even under
   exploration).  Otherwise every event at [tmin] is drained, grouped into
   scheduling alternatives — one group per named process (its events stay
   in program order), one per anonymous event — and the chooser picks which
   group's first event runs; the rest go back on the heap with their
   original sequence numbers, so the unchosen alternatives keep their
   relative order and remain candidates at the next iteration. *)
let pop_event_choosing t choose tmin =
  match Heap.pop t.queue with
  | None -> None
  | Some ((_, _, ev1) as first) ->
      if Heap.is_empty t.queue || Heap.min_time t.queue <> tmin then Some ev1
      else begin
        let rec drain acc =
          if (not (Heap.is_empty t.queue)) && Heap.min_time t.queue = tmin then
            match Heap.pop t.queue with
            | Some e -> drain (e :: acc)
            | None -> acc
          else acc
        in
        let batch = first :: List.rev (drain []) in
        let seen = Hashtbl.create 8 in
        let candidates =
          List.filter
            (fun (_, _, ev) ->
              match ev.label with
              | None -> true
              | Some l ->
                  if Hashtbl.mem seen l then false
                  else begin
                    Hashtbl.add seen l ();
                    true
                  end)
            batch
        in
        let chosen =
          match candidates with
          | [ _ ] -> List.hd batch
          | _ ->
              let labels =
                Array.of_list (List.map (fun (_, _, ev) -> ev.label) candidates)
              in
              let idx = choose (Tie { labels }) in
              let idx =
                if idx < 0 || idx >= Array.length labels then 0 else idx
              in
              List.nth candidates idx
        in
        let _, chosen_seq, chosen_ev = chosen in
        List.iter
          (fun (time, seq, ev) ->
            if seq <> chosen_seq then Heap.push t.queue ~time ~seq ev)
          batch;
        Some chosen_ev
      end

let run ?until t =
  let limit = match until with None -> infinity | Some u -> u in
  t.running <- true;
  let rec loop () =
    if not t.running || Heap.is_empty t.queue then ()
    else
      let time = Heap.min_time t.queue in
      if time > limit then t.clock <- limit
      else
        match t.chooser with
        | None ->
            (* hot path: no chooser installed — straight off the heap with
               no option or tuple allocation per event *)
            let ev = Heap.pop_unsafe t.queue in
            t.clock <- time;
            t.executed <- t.executed + 1;
            ev.fn ();
            loop ()
        | Some choose -> (
            match pop_event_choosing t choose time with
            | None -> ()
            | Some ev ->
                t.clock <- time;
                t.executed <- t.executed + 1;
                ev.fn ();
                loop ())
  in
  loop ();
  t.running <- false

(* Effect-performing helpers; valid only inside a process. *)

let not_in_process () = raise Not_in_process

let current () =
  try Effect.perform Current_engine with Effect.Unhandled _ -> not_in_process ()

let sleep delay =
  try Effect.perform (Sleep delay) with Effect.Unhandled _ -> not_in_process ()

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> not_in_process ()

let yield () = sleep 0.0
