type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  mutable seq : int;
  root_rng : Rng.t;
  trace_rec : Trace.t;
  mutable running : bool;
  mutable suspended : int;
  mutable current_name : string option;
      (* name of the process whose code is executing right now; threaded
         into trace entries so per-process events are attributable *)
}

exception Not_in_process
exception Deadlocked of string

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Sleep : float -> unit Effect.t
  | Current_engine : t Effect.t

let create ?(seed = 0x5EEDL) ?(trace = true) () =
  {
    clock = 0.0;
    queue = Heap.create ~dummy:(fun () -> ()) ();
    seq = 0;
    root_rng = Rng.create seed;
    trace_rec = Trace.create ~enabled:trace ();
    running = false;
    suspended = 0;
    current_name = None;
  }

let now t = t.clock
let rng t = t.root_rng
let trace t = t.trace_rec
let current_process t = t.current_name

let emit t ~tag message =
  Trace.emit t.trace_rec ~time:t.clock ?process:t.current_name ~tag message

let schedule_at t ~time fn =
  t.seq <- t.seq + 1;
  Heap.push t.queue ~time ~seq:t.seq fn

(* Execute one segment of a (possibly named) process: the name is active
   while its code runs, so trace entries emitted by the process carry it;
   it is restored on suspension, completion, or escape. *)
let run_named t name f =
  match name with
  | None -> f ()
  | Some _ ->
      let saved = t.current_name in
      t.current_name <- name;
      Fun.protect ~finally:(fun () -> t.current_name <- saved) f

(* Run [fn] as a process: a deep handler interprets the suspension effects.
   The handler stays installed across resumptions, so a process suspended in
   a Condition resumes under the same engine.  [name] is re-established
   around every resumption segment. *)
let run_process t ?name fn =
  let open Effect.Deep in
  run_named t name (fun () ->
      match_with fn ()
        {
          retc = (fun () -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend register ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      t.suspended <- t.suspended + 1;
                      register (fun v ->
                          t.suspended <- t.suspended - 1;
                          schedule_at t ~time:t.clock (fun () ->
                              run_named t name (fun () -> continue k v))))
              | Sleep delay ->
                  Some
                    (fun (k : (a, _) continuation) ->
                      let delay = if delay < 0.0 then 0.0 else delay in
                      schedule_at t ~time:(t.clock +. delay) (fun () ->
                          run_named t name (fun () -> continue k ())))
              | Current_engine ->
                  Some (fun (k : (a, _) continuation) -> continue k t)
              | _ -> None);
        })

let spawn t ?name fn =
  (match name with
  | Some n -> Trace.emit t.trace_rec ~time:t.clock ~process:n ~tag:"spawn" n
  | None -> ());
  schedule_at t ~time:t.clock (fun () -> run_process t ?name fn)

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) (fun () -> run_process t fn)

let stop t = t.running <- false

let suspended_count t = t.suspended
let pending_events t = Heap.size t.queue

let run ?until t =
  let limit = match until with None -> infinity | Some u -> u in
  t.running <- true;
  let rec loop () =
    if not t.running then ()
    else
      match Heap.peek_time t.queue with
      | None -> ()
      | Some time when time > limit -> t.clock <- limit
      | Some _ -> (
          match Heap.pop t.queue with
          | None -> ()
          | Some (time, _, fn) ->
              t.clock <- time;
              fn ();
              loop ())
  in
  loop ();
  t.running <- false

(* Effect-performing helpers; valid only inside a process. *)

let not_in_process () = raise Not_in_process

let current () =
  try Effect.perform Current_engine with Effect.Unhandled _ -> not_in_process ()

let sleep delay =
  try Effect.perform (Sleep delay) with Effect.Unhandled _ -> not_in_process ()

let suspend register =
  try Effect.perform (Suspend register)
  with Effect.Unhandled _ -> not_in_process ()

let yield () = sleep 0.0
