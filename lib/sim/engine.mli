(** Deterministic discrete-event simulation engine.

    Processes are ordinary OCaml functions run under an effect handler, so
    protocol code is written in direct, blocking style ([Engine.sleep],
    [Condition.await], lock acquisition) while the engine interleaves
    processes on a virtual clock.  Runs are fully deterministic: events are
    ordered by [(time, insertion sequence)] and all randomness flows through
    the engine's seeded {!Rng}.

    Functions documented as usable "inside a process" perform effects and
    must be called from code (transitively) started by {!spawn} or
    {!schedule}; calling them elsewhere raises [Not_in_process]. *)

type t

(** {1 Scheduling choice points}

    A fully deterministic engine orders simultaneous events by insertion
    sequence.  That tie-break (and any {!branch} call) can instead be
    delegated to an external {e chooser} — the hook the model checker in
    [lib/check] uses to enumerate alternative schedules.  A [Tie] offers
    the distinct scheduling alternatives among the events ready at the
    current instant: one per named process (a process's own events stay in
    program order — permuting them is never a real choice, which is the
    commutative-step reduction), plus one per anonymous event.  A [Branch]
    is a labelled n-way decision requested explicitly through {!branch}
    (e.g. enumerated nemesis faults). *)

type choice_point =
  | Tie of { labels : string option array }
      (** Ready-queue tie: pick the index of the alternative to run.  Each
          label is the name of the process owning that alternative (or
          [None] for an anonymous event). *)
  | Branch of { label : string; arity : int }
      (** Explicit decision: pick a value in [\[0, arity)]. *)

type chooser = choice_point -> int

exception Not_in_process
(** Raised when an effectful operation ([sleep], [suspend], [current]) is
    performed outside any simulation process. *)

exception Deadlocked of string
(** Raised by {!run} when [run_until_quiescent] detects that processes are
    still suspended but no future event can wake them. *)

val create : ?seed:int64 -> ?trace:bool -> ?trace_capacity:int -> unit -> t
(** Fresh engine with virtual time 0.  [trace] enables event recording
    (default true); [trace_capacity] bounds the trace to the most recent
    entries (default unbounded) — see {!Trace.create}.  Exploration
    harnesses that create millions of engines should disable or bound the
    trace so dead runs do not accumulate event memory. *)

val set_chooser : t -> chooser option -> unit
(** Install (or remove, with [None]) the scheduling chooser.  While
    installed, every ready-queue tie among ≥ 2 alternatives and every
    {!branch} call is routed through it.  Out-of-range answers fall back
    to alternative 0.  With no chooser the engine behaves exactly as
    before: ties resolve by insertion sequence, branches take 0. *)

val branch : t -> label:string -> int -> int
(** [branch t ~label arity] is a controlled n-way decision: the installed
    chooser picks a value in [\[0, arity)]; without a chooser the result
    is [0].  Usable anywhere (not only inside a process).  Components with
    genuinely nondeterministic decisions (which node a fault hits, when a
    retry fires) route them through here so a model checker can enumerate
    them; [label] identifies the decision in recorded choice traces. *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream.  Components should usually take a
    {!Rng.split} of it. *)

val trace : t -> Trace.t

val trace_enabled : t -> bool
(** Whether the trace is recording.  Hot emit sites that build their
    message with [Printf.sprintf] should test this first so disabled-trace
    runs skip the formatting entirely. *)

val emit : t -> tag:string -> string -> unit
(** Record a trace entry stamped with the current virtual time. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current time (it runs when the engine next
    reaches the event queue, after the caller yields).  When [name] is
    given and tracing is on, a ["spawn"]-tagged entry is recorded and
    every trace entry emitted while the process runs (across suspensions)
    carries the name in its [process] field. *)

val current_process : t -> string option
(** Name of the process whose code is currently executing, if it was
    spawned with [~name]. *)

val schedule : t -> ?name:string -> delay:float -> (unit -> unit) -> unit
(** Start a new process after [delay] units of virtual time.  [name] acts
    as in {!spawn} (minus the spawn trace entry) and additionally labels
    the start event for the scheduling chooser. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty or virtual time would exceed
    [until].  An exception escaping a process aborts the run. *)

val stop : t -> unit
(** Make {!run} return after the current event completes. *)

val suspended_count : t -> int
(** Number of processes currently suspended on a {!suspend}. *)

val pending_events : t -> int

val events_executed : t -> int
(** Total events popped and executed by {!run} since creation.  Divided by
    the wall-clock time a run took, this is the simulator's events/sec —
    the throughput metric [bench engine] tracks across revisions. *)

val pending_summary : t -> (float * string option) list
(** The (time, process label) of every pending event, sorted.  A
    canonical summary of in-flight work for state fingerprinting: two
    states whose data agree but whose event queues differ (almost
    always) differ here.  Event payloads are closures and cannot be
    compared, so same-time same-label events with different effects do
    summarize identically — fingerprint users accept that imprecision. *)

(** {1 Operations usable inside a process} *)

val current : unit -> t
(** The engine running the calling process. *)

val sleep : float -> unit
(** Advance this process's virtual time by the given delay. *)

val yield : unit -> unit
(** Let other processes scheduled for the same instant run first. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and calls
    [register resume].  The process continues with value [v] when some other
    event calls [resume v].  [resume] must be called at most once. *)
