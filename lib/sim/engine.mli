(** Deterministic discrete-event simulation engine.

    Processes are ordinary OCaml functions run under an effect handler, so
    protocol code is written in direct, blocking style ([Engine.sleep],
    [Condition.await], lock acquisition) while the engine interleaves
    processes on a virtual clock.  Runs are fully deterministic: events are
    ordered by [(time, insertion sequence)] and all randomness flows through
    the engine's seeded {!Rng}.

    Functions documented as usable "inside a process" perform effects and
    must be called from code (transitively) started by {!spawn} or
    {!schedule}; calling them elsewhere raises [Not_in_process]. *)

type t

exception Not_in_process
(** Raised when an effectful operation ([sleep], [suspend], [current]) is
    performed outside any simulation process. *)

exception Deadlocked of string
(** Raised by {!run} when [run_until_quiescent] detects that processes are
    still suspended but no future event can wake them. *)

val create : ?seed:int64 -> ?trace:bool -> unit -> t
(** Fresh engine with virtual time 0.  [trace] enables event recording
    (default true). *)

val now : t -> float
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream.  Components should usually take a
    {!Rng.split} of it. *)

val trace : t -> Trace.t

val emit : t -> tag:string -> string -> unit
(** Record a trace entry stamped with the current virtual time. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current time (it runs when the engine next
    reaches the event queue, after the caller yields).  When [name] is
    given and tracing is on, a ["spawn"]-tagged entry is recorded and
    every trace entry emitted while the process runs (across suspensions)
    carries the name in its [process] field. *)

val current_process : t -> string option
(** Name of the process whose code is currently executing, if it was
    spawned with [~name]. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Start a new process after [delay] units of virtual time. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue is empty or virtual time would exceed
    [until].  An exception escaping a process aborts the run. *)

val stop : t -> unit
(** Make {!run} return after the current event completes. *)

val suspended_count : t -> int
(** Number of processes currently suspended on a {!suspend}. *)

val pending_events : t -> int

(** {1 Operations usable inside a process} *)

val current : unit -> t
(** The engine running the calling process. *)

val sleep : float -> unit
(** Advance this process's virtual time by the given delay. *)

val yield : unit -> unit
(** Let other processes scheduled for the same instant run first. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and calls
    [register resume].  The process continues with value [v] when some other
    event calls [resume v].  [resume] must be called at most once. *)
