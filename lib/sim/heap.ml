type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  vacant : 'a entry;
      (* written into every slot the heap no longer owns, so popped events
         (and the closures they carry) become collectable immediately
         instead of living until the slot is overwritten by a later push *)
}

let create ~dummy () =
  { data = [||]; len = 0; vacant = { time = nan; seq = -1; payload = dummy } }

let is_empty t = t.len = 0
let size t = t.len

let iter t f =
  for i = 0 to t.len - 1 do
    let e = t.data.(i) in
    f e.time e.seq e.payload
  done

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let fresh = Array.make new_cap t.vacant in
  Array.blit t.data 0 fresh 0 t.len;
  t.data <- fresh

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  if Array.length t.data = 0 then t.data <- Array.make 16 t.vacant;
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* Sift up. *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      t.data.(t.len) <- t.vacant;
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end
    else t.data.(0) <- t.vacant;
    Some (top.time, top.seq, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.data.(0).time

let slot_is_vacant t i =
  i >= Array.length t.data || t.data.(i) == t.vacant
