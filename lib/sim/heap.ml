(* 4-ary min-heap keyed by (time, seq), stored as three parallel arrays:
   an unboxed float array for times, an int array for sequence numbers,
   and a payload array.  Compared to the binary record-based heap this
   replaces, a push/pop touches no per-entry record (no allocation, no
   pointer chase per compare), sift-up/down shift entries into the hole
   instead of swapping, and the 4-way branching halves the tree depth.

   (time, seq) is a strict total order — seq is unique per engine — so
   neither the arity nor the layout can change pop order: the sequence
   of popped entries is identical to the old heap's. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
      (* written into every payload slot the heap no longer owns, so popped
         events (and the closures they carry) become collectable immediately
         instead of living until the slot is overwritten by a later push *)
}

let create ~dummy () =
  { times = [||]; seqs = [||]; data = [||]; len = 0; dummy }

let is_empty t = t.len = 0
let size t = t.len

let iter t f =
  for i = 0 to t.len - 1 do
    f t.times.(i) t.seqs.(i) t.data.(i)
  done

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let times = Array.make new_cap nan in
  let seqs = Array.make new_cap (-1) in
  let data = Array.make new_cap t.dummy in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.data 0 data 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.data <- data

let push t ~time ~seq payload =
  if t.len = Array.length t.data then grow t;
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pt = t.times.(parent) in
    if time < pt || (time = pt && seq < t.seqs.(parent)) then begin
      t.times.(!i) <- pt;
      t.seqs.(!i) <- t.seqs.(parent);
      t.data.(!i) <- t.data.(parent);
      i := parent
    end
    else continue := false
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.data.(!i) <- payload

(* Place (time, seq, payload) — the displaced last entry — into the hole
   at the root, shifting the smallest child up at each level. *)
let sift_down t time seq payload =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let base = (!i * 4) + 1 in
    if base >= t.len then continue := false
    else begin
      let last = min (base + 3) (t.len - 1) in
      let s = ref base in
      for c = base + 1 to last do
        let ct = t.times.(c) and st = t.times.(!s) in
        if ct < st || (ct = st && t.seqs.(c) < t.seqs.(!s)) then s := c
      done;
      let st = t.times.(!s) in
      if st < time || (st = time && t.seqs.(!s) < seq) then begin
        t.times.(!i) <- st;
        t.seqs.(!i) <- t.seqs.(!s);
        t.data.(!i) <- t.data.(!s);
        i := !s
      end
      else continue := false
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.data.(!i) <- payload

let remove_min t =
  t.len <- t.len - 1;
  let n = t.len in
  if n > 0 then begin
    let lt = t.times.(n) and ls = t.seqs.(n) and lp = t.data.(n) in
    t.data.(n) <- t.dummy;
    sift_down t lt ls lp
  end
  else t.data.(0) <- t.dummy

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) and seq = t.seqs.(0) and payload = t.data.(0) in
    remove_min t;
    Some (time, seq, payload)
  end

let min_time t = t.times.(0)

let pop_unsafe t =
  let payload = t.data.(0) in
  remove_min t;
  payload

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let slot_is_vacant t i =
  i >= Array.length t.data || t.data.(i) == t.dummy
