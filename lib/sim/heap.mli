(** Minimal binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties between events scheduled for the same
    simulated instant, giving the engine a deterministic FIFO order.

    Vacated slots are overwritten with a dummy entry so popped payloads
    (typically closures) become garbage-collectable immediately; a
    long-running simulation would otherwise retain every dead event closure
    until its array slot happened to be reused. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] is a throwaway payload used to scrub slots the heap no longer
    owns; it is never returned by {!pop}. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val iter : 'a t -> (float -> int -> 'a -> unit) -> unit
(** Visit every live entry as [(time, seq, payload)], in internal heap
    order (not sorted); callers needing a canonical order must sort. *)

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val peek_time : 'a t -> float option
(** Time key of the minimum element without removing it. *)

val slot_is_vacant : 'a t -> int -> bool
(** [slot_is_vacant t i] is true when backing slot [i] holds no live entry
    (it is past the array, or was scrubbed after a pop).  Exposed so tests
    can assert the no-leak property; not useful to ordinary clients. *)
