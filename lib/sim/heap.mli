(** 4-ary min-heap keyed by [(time, sequence)], on parallel arrays.

    The sequence number breaks ties between events scheduled for the same
    simulated instant, giving the engine a deterministic FIFO order; since
    [(time, seq)] is a strict total order, the heap's arity and layout
    cannot affect pop order.

    Vacated payload slots are overwritten with the dummy so popped payloads
    (typically closures) become garbage-collectable immediately; a
    long-running simulation would otherwise retain every dead event closure
    until its array slot happened to be reused. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] is a throwaway payload used to scrub slots the heap no longer
    owns; it is never returned by {!pop}. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val iter : 'a t -> (float -> int -> 'a -> unit) -> unit
(** Visit every live entry as [(time, seq, payload)], in internal heap
    order (not sorted); callers needing a canonical order must sort. *)

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element, or [None] if empty. *)

val pop_unsafe : 'a t -> 'a
(** Remove the minimum element and return its payload without allocating.
    The heap must be non-empty (check {!is_empty}; read the key off
    {!min_time} first if needed) — calling this on an empty heap is a
    programming error. *)

val peek_time : 'a t -> float option
(** Time key of the minimum element without removing it. *)

val min_time : 'a t -> float
(** Time key of the minimum element, without the option allocation of
    {!peek_time}.  The heap must be non-empty. *)

val slot_is_vacant : 'a t -> int -> bool
(** [slot_is_vacant t i] is true when backing payload slot [i] holds no
    live entry (it is past the array, or was scrubbed after a pop).
    Vacancy is judged by physical equality with the dummy, so it is only
    meaningful for boxed payload types (the engine's event records).
    Exposed so tests can assert the no-leak property. *)
