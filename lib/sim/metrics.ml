(* Log2-bucketed histogram.  Bucket 0 is reserved for exact zeros;
   bucket i >= 1 covers (2^(i-18), 2^(i-17)] with the frexp exponent
   clamped to [-16, 25], so the array has 1 + 42 slots.  Negative values
   (a backend reporting a slightly negative elapsed time, e.g. clock
   skew) are underflow: they are tallied in [h_neg] — never in the
   exact-zero bucket — while still contributing to count/sum/min/max. *)

let exp_min = -16
let exp_max = 25
let bucket_count = 1 + (exp_max - exp_min + 1)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_neg : int;
  slots : int array;
}

let hist_create () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_neg = 0;
    slots = Array.make bucket_count 0;
  }

let hist_add h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if v < 0.0 then
    (* Underflow: counted on its own so a negative sample can never
       masquerade as an exact-zero-latency one. *)
    h.h_neg <- h.h_neg + 1
  else begin
    let idx =
      if v = 0.0 then 0
      else
        (* frexp exponent read straight off the IEEE bits: for a normal v the
           biased exponent is bits[62:52] and frexp's e is (biased - 1022), so
           this avoids frexp's float-pair allocation on the hot record path.
           Subnormals give e = -1022 here instead of their true exponent, but
           both clamp to [exp_min] identically. *)
        let e =
          (Int64.to_int (Int64.shift_right_logical (Int64.bits_of_float v) 52)
          land 0x7ff)
          - 1022
        in
        1 + max 0 (min (exp_max - exp_min) (e - exp_min))
    in
    h.slots.(idx) <- h.slots.(idx) + 1
  end

(* Inclusive upper bound of bucket [i]: frexp puts v in (2^(e-1), 2^e]. *)
let bucket_le i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1 + exp_min)

type node_metrics = {
  mutable commits : int;
  mutable aborts_deadlock : int;
  mutable aborts_node_down : int;
  mutable aborts_rpc_timeout : int;
  mutable aborts_version_mismatch : int;
  mutable root_down_rejections : int;
  mutable queries : int;
  mutable mtf_data_access : int;
  mutable mtf_commit_time : int;
  mutable version_mismatches : int;
  mutable advancements : int;
  phase1_duration : hist;
  phase2_duration : hist;
  mutable rpc_calls : int;
  mutable rpc_timeouts : int;
  rpc_latency : hist;
  mutable envelopes : int;
  mutable disk_forces : int;
  mutable records_forced : int;
  mutable savepoint_rollbacks : int;
  mutable session_retries : int;
  mutable session_backoff : float;
}

type t = node_metrics array

let create ~nodes =
  if nodes <= 0 then invalid_arg "Metrics.create: need at least one node";
  Array.init nodes (fun _ ->
      {
        commits = 0;
        aborts_deadlock = 0;
        aborts_node_down = 0;
        aborts_rpc_timeout = 0;
        aborts_version_mismatch = 0;
        root_down_rejections = 0;
        queries = 0;
        mtf_data_access = 0;
        mtf_commit_time = 0;
        version_mismatches = 0;
        advancements = 0;
        phase1_duration = hist_create ();
        phase2_duration = hist_create ();
        rpc_calls = 0;
        rpc_timeouts = 0;
        rpc_latency = hist_create ();
        envelopes = 0;
        disk_forces = 0;
        records_forced = 0;
        savepoint_rollbacks = 0;
        session_retries = 0;
        session_backoff = 0.0;
      })

let node_count t = Array.length t

let at t node =
  if node < 0 || node >= Array.length t then
    invalid_arg "Metrics: no such node";
  t.(node)

let record_commit t ~node =
  let m = at t node in
  m.commits <- m.commits + 1

let record_abort t ~node reason =
  let m = at t node in
  match reason with
  | `Deadlock -> m.aborts_deadlock <- m.aborts_deadlock + 1
  | `Node_down _ -> m.aborts_node_down <- m.aborts_node_down + 1
  | `Rpc_timeout _ -> m.aborts_rpc_timeout <- m.aborts_rpc_timeout + 1
  | `Version_mismatch ->
      m.aborts_version_mismatch <- m.aborts_version_mismatch + 1

let record_root_down t ~node =
  let m = at t node in
  m.root_down_rejections <- m.root_down_rejections + 1

let record_query t ~node =
  let m = at t node in
  m.queries <- m.queries + 1

let record_mtf t ~node ~at_commit =
  let m = at t node in
  if at_commit then m.mtf_commit_time <- m.mtf_commit_time + 1
  else m.mtf_data_access <- m.mtf_data_access + 1

let record_version_mismatch t ~node =
  let m = at t node in
  m.version_mismatches <- m.version_mismatches + 1

let record_phase1_duration t ~node d = hist_add (at t node).phase1_duration d
let record_phase2_duration t ~node d = hist_add (at t node).phase2_duration d

let record_advancement t ~node =
  let m = at t node in
  m.advancements <- m.advancements + 1

let record_rpc_call t ~node =
  let m = at t node in
  m.rpc_calls <- m.rpc_calls + 1

let record_rpc_latency t ~node d = hist_add (at t node).rpc_latency d

let record_rpc_timeout t ~node =
  let m = at t node in
  m.rpc_timeouts <- m.rpc_timeouts + 1

let record_envelope t ~node =
  let m = at t node in
  m.envelopes <- m.envelopes + 1

let record_disk_force t ~node ~records =
  let m = at t node in
  m.disk_forces <- m.disk_forces + 1;
  m.records_forced <- m.records_forced + records

let record_savepoint_rollback t ~node =
  let m = at t node in
  m.savepoint_rollbacks <- m.savepoint_rollbacks + 1

let record_session_retry t ~node ~backoff =
  let m = at t node in
  m.session_retries <- m.session_retries + 1;
  m.session_backoff <- m.session_backoff +. backoff

let hist_merge_into ~into:a b =
  a.h_count <- a.h_count + b.h_count;
  a.h_sum <- a.h_sum +. b.h_sum;
  if b.h_min < a.h_min then a.h_min <- b.h_min;
  if b.h_max > a.h_max then a.h_max <- b.h_max;
  a.h_neg <- a.h_neg + b.h_neg;
  Array.iteri (fun i c -> a.slots.(i) <- a.slots.(i) + c) b.slots

let merge_into ~into src =
  if Array.length into <> Array.length src then
    invalid_arg "Metrics.merge_into: node counts differ";
  Array.iteri
    (fun i (s : node_metrics) ->
      let d = into.(i) in
      d.commits <- d.commits + s.commits;
      d.aborts_deadlock <- d.aborts_deadlock + s.aborts_deadlock;
      d.aborts_node_down <- d.aborts_node_down + s.aborts_node_down;
      d.aborts_rpc_timeout <- d.aborts_rpc_timeout + s.aborts_rpc_timeout;
      d.aborts_version_mismatch <-
        d.aborts_version_mismatch + s.aborts_version_mismatch;
      d.root_down_rejections <-
        d.root_down_rejections + s.root_down_rejections;
      d.queries <- d.queries + s.queries;
      d.mtf_data_access <- d.mtf_data_access + s.mtf_data_access;
      d.mtf_commit_time <- d.mtf_commit_time + s.mtf_commit_time;
      d.version_mismatches <- d.version_mismatches + s.version_mismatches;
      d.advancements <- d.advancements + s.advancements;
      hist_merge_into ~into:d.phase1_duration s.phase1_duration;
      hist_merge_into ~into:d.phase2_duration s.phase2_duration;
      d.rpc_calls <- d.rpc_calls + s.rpc_calls;
      d.rpc_timeouts <- d.rpc_timeouts + s.rpc_timeouts;
      hist_merge_into ~into:d.rpc_latency s.rpc_latency;
      d.envelopes <- d.envelopes + s.envelopes;
      d.disk_forces <- d.disk_forces + s.disk_forces;
      d.records_forced <- d.records_forced + s.records_forced;
      d.savepoint_rollbacks <- d.savepoint_rollbacks + s.savepoint_rollbacks;
      d.session_retries <- d.session_retries + s.session_retries;
      d.session_backoff <- d.session_backoff +. s.session_backoff)
    src

let sum f t = Array.fold_left (fun acc m -> acc + f m) 0 t

let node_aborts m =
  m.aborts_deadlock + m.aborts_node_down + m.aborts_rpc_timeout
  + m.aborts_version_mismatch

let total_commits t = sum (fun m -> m.commits) t
let total_aborts t = sum node_aborts t
let total_root_down t = sum (fun m -> m.root_down_rejections) t
let total_queries t = sum (fun m -> m.queries) t
let total_mtf_data_access t = sum (fun m -> m.mtf_data_access) t
let total_mtf_commit_time t = sum (fun m -> m.mtf_commit_time) t
let total_version_mismatches t = sum (fun m -> m.version_mismatches) t
let total_advancements t = sum (fun m -> m.advancements) t
let total_rpc_calls t = sum (fun m -> m.rpc_calls) t
let total_rpc_timeouts t = sum (fun m -> m.rpc_timeouts) t
let total_envelopes t = sum (fun m -> m.envelopes) t
let total_disk_forces t = sum (fun m -> m.disk_forces) t
let total_records_forced t = sum (fun m -> m.records_forced) t
let total_savepoint_rollbacks t = sum (fun m -> m.savepoint_rollbacks) t
let total_session_retries t = sum (fun m -> m.session_retries) t

let total_session_backoff t =
  Array.fold_left (fun acc m -> acc +. m.session_backoff) 0.0 t

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  neg : int;
  buckets : (float * int) list;
}

type node_snapshot = {
  node : int;
  commits : int;
  aborts_deadlock : int;
  aborts_node_down : int;
  aborts_rpc_timeout : int;
  aborts_version_mismatch : int;
  root_down_rejections : int;
  queries : int;
  mtf_data_access : int;
  mtf_commit_time : int;
  version_mismatches : int;
  advancements : int;
  phase1_duration : hist_snapshot;
  phase2_duration : hist_snapshot;
  rpc_calls : int;
  rpc_timeouts : int;
  rpc_latency : hist_snapshot;
  envelopes : int;
  disk_forces : int;
  records_forced : int;
  savepoint_rollbacks : int;
  session_retries : int;
  session_backoff : float;
}

type snapshot = node_snapshot list

let hist_snapshot h =
  {
    count = h.h_count;
    sum = h.h_sum;
    min = (if h.h_count = 0 then 0.0 else h.h_min);
    max = (if h.h_count = 0 then 0.0 else h.h_max);
    neg = h.h_neg;
    buckets =
      Array.to_list h.slots
      |> List.mapi (fun i c -> (bucket_le i, c))
      |> List.filter (fun (_, c) -> c > 0);
  }

let snapshot t =
  Array.to_list t
  |> List.mapi (fun node (m : node_metrics) ->
         {
           node;
           commits = m.commits;
           aborts_deadlock = m.aborts_deadlock;
           aborts_node_down = m.aborts_node_down;
           aborts_rpc_timeout = m.aborts_rpc_timeout;
           aborts_version_mismatch = m.aborts_version_mismatch;
           root_down_rejections = m.root_down_rejections;
           queries = m.queries;
           mtf_data_access = m.mtf_data_access;
           mtf_commit_time = m.mtf_commit_time;
           version_mismatches = m.version_mismatches;
           advancements = m.advancements;
           phase1_duration = hist_snapshot m.phase1_duration;
           phase2_duration = hist_snapshot m.phase2_duration;
           rpc_calls = m.rpc_calls;
           rpc_timeouts = m.rpc_timeouts;
           rpc_latency = hist_snapshot m.rpc_latency;
           envelopes = m.envelopes;
           disk_forces = m.disk_forces;
           records_forced = m.records_forced;
           savepoint_rollbacks = m.savepoint_rollbacks;
           session_retries = m.session_retries;
           session_backoff = m.session_backoff;
         })

let aborts_total (ns : node_snapshot) =
  ns.aborts_deadlock + ns.aborts_node_down + ns.aborts_rpc_timeout
  + ns.aborts_version_mismatch

(* JSON rendering: %.12g is lossless for every value we emit (counts,
   sums of simulated times, power-of-two bounds) and never prints the
   inf/nan forms JSON forbids, since inputs are finite. *)
let jf x = Printf.sprintf "%.12g" x

let hist_json b (h : hist_snapshot) =
  Buffer.add_string b
    (Printf.sprintf
       {|{"count":%d,"sum":%s,"min":%s,"max":%s,"neg":%d,"buckets":[|}
       h.count (jf h.sum) (jf h.min) (jf h.max) h.neg);
  List.iteri
    (fun i (le, c) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf {|{"le":%s,"count":%d}|} (jf le) c))
    h.buckets;
  Buffer.add_string b "]}"

let node_json b (ns : node_snapshot) =
  Buffer.add_string b
    (Printf.sprintf
       {|{"node":%d,"commits":%d,"aborts":{"deadlock":%d,"node_down":%d,"rpc_timeout":%d,"version_mismatch":%d,"total":%d},"root_down_rejections":%d,"queries":%d,"mtf":{"data_access":%d,"commit_time":%d},"version_mismatches":%d,"advancements":%d,"phase1_duration":|}
       ns.node ns.commits ns.aborts_deadlock ns.aborts_node_down
       ns.aborts_rpc_timeout ns.aborts_version_mismatch (aborts_total ns)
       ns.root_down_rejections ns.queries ns.mtf_data_access
       ns.mtf_commit_time ns.version_mismatches ns.advancements);
  hist_json b ns.phase1_duration;
  Buffer.add_string b {|,"phase2_duration":|};
  hist_json b ns.phase2_duration;
  Buffer.add_string b
    (Printf.sprintf {|,"rpc":{"calls":%d,"timeouts":%d,"latency":|}
       ns.rpc_calls ns.rpc_timeouts);
  hist_json b ns.rpc_latency;
  Buffer.add_string b
    (Printf.sprintf
       {|},"envelopes":%d,"wal":{"forces":%d,"records_forced":%d},"session":{"savepoint_rollbacks":%d,"retries":%d,"backoff_time":%s}}|}
       ns.envelopes ns.disk_forces ns.records_forced ns.savepoint_rollbacks
       ns.session_retries (jf ns.session_backoff))

let to_json (s : snapshot) =
  let b = Buffer.create 1024 in
  Buffer.add_char b '[';
  List.iteri
    (fun i ns ->
      if i > 0 then Buffer.add_char b ',';
      node_json b ns)
    s;
  Buffer.add_char b ']';
  Buffer.contents b
