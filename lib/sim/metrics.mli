(** Per-node metrics registry.

    One registry serves a whole simulated cluster: every protocol-level
    event (commit, abort with reason, query completion, moveToFuture
    repair, advancement phase, RPC) is attributed to a node index at
    record time.  The registry is mutable and single-domain; experiment
    sweeps that fan out over domains must extract an immutable
    {!snapshot} inside the worker and ship that back.

    Durations and latencies go into log2-bucketed histograms: bucket 0
    holds exact zeros, bucket [i >= 1] holds values in
    [(2^(i-18), 2^(i-17)]] with the exponent clamped to [[-16, 25]].
    True extremes are preserved in [min]/[max] even when clamped.
    Negative samples are underflow: they are tallied separately (the
    [neg] field of {!hist_snapshot}) and never land in the exact-zero
    bucket, though they still contribute to count/sum/min/max. *)

type t

val create : nodes:int -> t
(** A registry for node indices [0 .. nodes-1].  Recording against an
    out-of-range node raises [Invalid_argument]. *)

val node_count : t -> int

(** {1 Recording} *)

val record_commit : t -> node:int -> unit

val record_abort :
  t ->
  node:int ->
  [ `Deadlock | `Node_down of int | `Rpc_timeout of int | `Version_mismatch ] ->
  unit
(** One aborted transaction, attributed to its root node, broken down by
    reason.  The payload of [`Node_down]/[`Rpc_timeout] (the failed peer)
    is not retained — only the reason class. *)

val record_root_down : t -> node:int -> unit
(** A transaction rejected before it began because its root node was
    down.  Counted separately from aborts: no transaction id was
    allocated and nothing was rolled back. *)

val record_query : t -> node:int -> unit
val record_mtf : t -> node:int -> at_commit:bool -> unit
val record_version_mismatch : t -> node:int -> unit

val record_phase1_duration : t -> node:int -> float -> unit
(** Advancement Phase 1 (advance-u broadcast to last ack) at the
    coordinating node. *)

val record_phase2_duration : t -> node:int -> float -> unit
val record_advancement : t -> node:int -> unit
(** One advancement round completed, attributed to its coordinator. *)

val record_rpc_call : t -> node:int -> unit
(** An RPC issued with [node] as the calling side. *)

val record_rpc_latency : t -> node:int -> float -> unit
(** Round-trip time of an RPC that completed with a reply (successful or
    carrying the callee's exception). *)

val record_rpc_timeout : t -> node:int -> unit
(** An RPC that was settled by its timeout rather than a reply. *)

val record_envelope : t -> node:int -> unit
(** One transport envelope put on the wire by [node].  Without RPC
    coalescing every logical message is its own envelope; a coalescing
    network packs a whole batch window into one. *)

val record_disk_force : t -> node:int -> records:int -> unit
(** One completed WAL force at [node], covering [records] log records.
    Group commit amortizes many commits over one force, so
    [records/forces] is the achieved batch size. *)

val record_savepoint_rollback : t -> node:int -> unit
(** One transaction-wide savepoint rollback (partial abort), attributed
    to the transaction's root node. *)

val record_session_retry : t -> node:int -> backoff:float -> unit
(** One session-layer retry of a failed transaction, attributed to the
    session's coordinator node; [backoff] is the virtual time slept
    before the new attempt. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every counter and histogram of [src]
    into [into], node by node.  Raises [Invalid_argument] if the node
    counts differ.  This is how per-domain registries are combined at
    quiesce: each domain records into its own private registry (the
    registry is mutable and single-domain; see above) and the merged
    totals are taken once all domains have joined.  [src] is not
    modified. *)

(** {1 Totals} *)

val total_commits : t -> int
val total_aborts : t -> int
(** Sum over all reasons; excludes {!record_root_down} rejections. *)

val total_root_down : t -> int
val total_queries : t -> int
val total_mtf_data_access : t -> int
val total_mtf_commit_time : t -> int
val total_version_mismatches : t -> int
val total_advancements : t -> int
val total_rpc_calls : t -> int
val total_rpc_timeouts : t -> int
val total_envelopes : t -> int
val total_disk_forces : t -> int
val total_records_forced : t -> int
val total_savepoint_rollbacks : t -> int
val total_session_retries : t -> int
val total_session_backoff : t -> float

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** 0. when [count = 0] *)
  max : float;  (** 0. when [count = 0] *)
  neg : int;
      (** negative (underflow) samples; counted in [count]/[sum]/
          [min]/[max] but filed in no bucket *)
  buckets : (float * int) list;
      (** (inclusive upper bound, count) for non-empty buckets,
          ascending; bound 0. is the exact-zero bucket *)
}

type node_snapshot = {
  node : int;
  commits : int;
  aborts_deadlock : int;
  aborts_node_down : int;
  aborts_rpc_timeout : int;
  aborts_version_mismatch : int;
  root_down_rejections : int;
  queries : int;
  mtf_data_access : int;
  mtf_commit_time : int;
  version_mismatches : int;
  advancements : int;
  phase1_duration : hist_snapshot;
  phase2_duration : hist_snapshot;
  rpc_calls : int;
  rpc_timeouts : int;
  rpc_latency : hist_snapshot;
  envelopes : int;
  disk_forces : int;
  records_forced : int;
  savepoint_rollbacks : int;
  session_retries : int;
  session_backoff : float;
}

type snapshot = node_snapshot list
(** Plain immutable data: safe to return from a worker domain. *)

val snapshot : t -> snapshot

val aborts_total : node_snapshot -> int

val to_json : snapshot -> string
(** Compact JSON array, one object per node:
    [{"node":0,"commits":..,"aborts":{"deadlock":..,"node_down":..,
    "rpc_timeout":..,"version_mismatch":..,"total":..},
    "root_down_rejections":..,"queries":..,
    "mtf":{"data_access":..,"commit_time":..},"version_mismatches":..,
    "advancements":..,"phase1_duration":H,"phase2_duration":H,
    "rpc":{"calls":..,"timeouts":..,"latency":H},"envelopes":..,
    "wal":{"forces":..,"records_forced":..},
    "session":{"savepoint_rollbacks":..,"retries":..,"backoff_time":..}}]
    where H is
    [{"count":..,"sum":..,"min":..,"max":..,"neg":..,
    "buckets":[{"le":..,"count":..},...]}]. *)
