let env_domains () =
  match Sys.getenv_opt "AVA3_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let default_domains () =
  match env_domains () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count ())

(* Per-domain flag marking pool workers; a nested [map] sees it and runs
   sequentially instead of spawning domains from inside a domain. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let inside_pool () = Domain.DLS.get in_worker

(* Lifetime count of helper domains this pool has ever spawned.  Tests
   use it to prove the sequential fallback really is sequential: a
   nested or width-1 [map] must leave it untouched. *)
let spawned = Atomic.make 0

let domains_spawned () = Atomic.get spawned

(* The fallback is a distinct, named path rather than an inline
   [List.map] so the no-spawn guarantee is explicit: nothing on this
   path can reach [Domain.spawn]. *)
let sequential f xs = List.map f xs

let map ?domains f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let width =
    let requested =
      match domains with Some d -> d | None -> default_domains ()
    in
    min requested n
  in
  if width <= 1 || inside_pool () then sequential f xs
  else begin
    let results : ('b, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    (* Work-stealing by atomic index: each worker repeatedly claims the
       next unclaimed element.  Every slot is written by exactly one
       worker, and [Domain.join] publishes the writes to the caller. *)
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set in_worker true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_worker false)
        (fun () ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              results.(i) <-
                Some
                  (try Ok (f items.(i))
                   with e -> Error (e, Printexc.get_raw_backtrace ()));
              loop ()
            end
          in
          loop ())
    in
    let helpers =
      Array.init (width - 1) (fun _ ->
          Atomic.incr spawned;
          Domain.spawn worker)
    in
    (* The calling domain is the pool's first worker. *)
    worker ();
    Array.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index < n was claimed *))
  end
