(** Domain-based work pool for embarrassingly parallel sweeps.

    The experiment harness runs many independent single-threaded
    simulations (one engine, one RNG, one store per run); {!map} fans them
    out across OCaml 5 domains while keeping the results in input order,
    so a parallel sweep prints exactly the same tables as a sequential
    one.  Parallelism is an execution detail only: callers must pass
    share-nothing closures (each building its own engine and state).

    The domain count defaults to the [AVA3_DOMAINS] environment variable,
    falling back to [Domain.recommended_domain_count].  [AVA3_DOMAINS=1]
    forces fully sequential execution everywhere. *)

val default_domains : unit -> int
(** The pool width used when [?domains] is omitted: [AVA3_DOMAINS] if set
    to a positive integer, otherwise [Domain.recommended_domain_count ()].
    Always at least 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element of [xs] and returns the
    results in input order.

    With [domains > 1] (default {!default_domains}) the elements are
    dispatched to a pool of that many domains (capped at the list
    length); the calling domain participates as a worker.  With
    [domains <= 1], fewer than two elements, or when called from inside
    a pool worker (nested sweeps), it degrades to plain [List.map] — so
    nesting never oversubscribes or deadlocks.

    If any application raises, the exception of the smallest-indexed
    failing element is re-raised (with its backtrace) after all workers
    finish; the remaining results are discarded. *)

val inside_pool : unit -> bool
(** True while executing inside a pool worker (including the calling
    domain while it participates in a {!map}). *)

val sequential : ('a -> 'b) -> 'a list -> 'b list
(** The explicit no-domain path that {!map} degrades to: plain
    [List.map] on the calling domain.  Exposed so the fallback is a
    named, testable contract — a nested {!map} behaves exactly as if
    the caller had written [sequential f xs]. *)

val domains_spawned : unit -> int
(** Lifetime count of helper domains spawned by {!map} in this process.
    A call that takes the sequential fallback (width <= 1, short list,
    or nested inside a worker) leaves this unchanged — the property the
    nested-degradation tests pin down. *)
