type t = { mutable state : int64; seed0 : int64 }

(* splitmix64 constants, see Steele et al., "Fast splittable pseudorandom
   number generators". *)
let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; seed0 = seed }
let copy t = { state = t.state; seed0 = t.seed0 }

let bits64 t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  create (Int64.logxor seed 0xDEADBEEFCAFEBABEL)

(* FNV-1a over the label bytes: a stable, order-sensitive 64-bit digest. *)
let hash_label label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  !h

(* The child's seed is a pure function of (original seed, label): it does
   not read or advance [t.state], so sibling forks are insensitive to how
   many draws each other made — the property replay-based exploration
   needs.  One splitmix scramble decorrelates labels differing in a few
   bits. *)
let fork_named t label =
  let mixed = Int64.add t.seed0 (Int64.mul gamma (hash_label label)) in
  let g = create mixed in
  create (bits64 g)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits mapped into [0, 1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float v /. 9007199254740992.0 in
  unit *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t 1.0 < p

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = ref (float t 1.0) in
  (* Avoid log 0. *)
  if !u = 0.0 then u := epsilon_float;
  -.mean *. log !u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
