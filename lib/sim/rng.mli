(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from one of these
    generators, so a run is fully reproducible from its seed.  The generator
    is intentionally not the stdlib [Random] module: we need a splittable,
    self-contained stream whose sequence is stable across OCaml releases. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t].  Used to give each simulated component its own stream so
    adding draws in one component does not perturb another. *)

val fork_named : t -> string -> t
(** [fork_named t label] derives a generator from [t]'s {e original} seed
    and the label, without reading or advancing [t]'s state.  Unlike
    {!split}, the child stream depends only on [(seed, label)] — not on
    how many draws [t] or any sibling made first — so adding a component's
    draws can never perturb another component's stream across exploration
    replays.  Forking the same label twice yields identical streams; give
    each component a distinct label. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform on [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for Poisson
    arrival processes and service times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
