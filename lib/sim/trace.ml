type entry = {
  time : float;
  tag : string;
  message : string;
  process : string option;
}

let dummy = { time = nan; tag = ""; message = ""; process = None }

(* Two storage modes, selected by [capacity]:
   - unbounded: a newest-first list, O(1) cons per emit;
   - bounded: a preallocated ring of exactly [capacity] slots, so a hot
     bounded trace (schedule exploration creates millions of short-lived
     engines) never conses per emit and never triggers the old amortized
     list truncation.
   Vacated ring slots are scrubbed with [dummy] so dropped entries are
   collectable. *)
type t = {
  mutable enabled : bool;
  mutable capacity : int option;
  mutable dropped : int;
  mutable rev_entries : entry list; (* unbounded mode *)
  mutable ring : entry array; (* bounded mode *)
  mutable head : int; (* next ring slot to write *)
  mutable count : int; (* live ring entries *)
}

let create ?(enabled = true) ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  let ring =
    match capacity with Some c -> Array.make c dummy | None -> [||]
  in
  { enabled; capacity; dropped = 0; rev_entries = []; ring; head = 0; count = 0 }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let emit t ~time ?process ~tag message =
  if t.enabled then
    let e = { time; tag; message; process } in
    match t.capacity with
    | None -> t.rev_entries <- e :: t.rev_entries
    | Some cap ->
        t.ring.(t.head) <- e;
        t.head <- (t.head + 1) mod cap;
        if t.count = cap then t.dropped <- t.dropped + 1
        else t.count <- t.count + 1

let entries t =
  match t.capacity with
  | None -> List.rev t.rev_entries
  | Some cap ->
      let start = (t.head - t.count + cap) mod cap in
      List.init t.count (fun i -> t.ring.((start + i) mod cap))

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let clear t =
  t.rev_entries <- [];
  t.dropped <- 0;
  if Array.length t.ring > 0 then
    Array.fill t.ring 0 (Array.length t.ring) dummy;
  t.head <- 0;
  t.count <- 0

let capacity t = t.capacity

let rec drop_first n l =
  if n <= 0 then l
  else match l with [] -> [] | _ :: rest -> drop_first (n - 1) rest

let set_capacity t cap =
  (match cap with
  | Some c when c <= 0 ->
      invalid_arg "Trace.set_capacity: capacity must be positive"
  | _ -> ());
  let current = entries t in
  let n = List.length current in
  (match cap with
  | None ->
      t.rev_entries <- List.rev current;
      t.ring <- [||];
      t.head <- 0;
      t.count <- 0
  | Some c ->
      let keep = min n c in
      let kept = drop_first (n - keep) current in
      t.dropped <- t.dropped + (n - keep);
      let ring = Array.make c dummy in
      List.iteri (fun i e -> ring.(i) <- e) kept;
      t.rev_entries <- [];
      t.ring <- ring;
      t.head <- keep mod c;
      t.count <- keep);
  t.capacity <- cap

let dropped t = t.dropped

let pp_entry ppf e =
  match e.process with
  | None -> Format.fprintf ppf "[%8.2f] %-12s %s" e.time e.tag e.message
  | Some name ->
      Format.fprintf ppf "[%8.2f] %-12s <%s> %s" e.time e.tag name e.message
