type entry = {
  time : float;
  tag : string;
  message : string;
  process : string option;
}

type t = { mutable rev_entries : entry list; mutable enabled : bool }

let create ?(enabled = true) () = { rev_entries = []; enabled }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let emit t ~time ?process ~tag message =
  if t.enabled then
    t.rev_entries <- { time; tag; message; process } :: t.rev_entries

let entries t = List.rev t.rev_entries

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let clear t = t.rev_entries <- []

let pp_entry ppf e =
  match e.process with
  | None -> Format.fprintf ppf "[%8.2f] %-12s %s" e.time e.tag e.message
  | Some name ->
      Format.fprintf ppf "[%8.2f] %-12s <%s> %s" e.time e.tag name e.message
