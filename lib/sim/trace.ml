type entry = {
  time : float;
  tag : string;
  message : string;
  process : string option;
}

type t = {
  mutable rev_entries : entry list;
  mutable len : int;
  mutable enabled : bool;
  mutable capacity : int option;
  mutable dropped : int;
}

let create ?(enabled = true) ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity must be positive"
  | _ -> ());
  { rev_entries = []; len = 0; enabled; capacity; dropped = 0 }

let enabled t = t.enabled
let set_enabled t flag = t.enabled <- flag

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* Bounded traces drop their oldest entries.  [rev_entries] is newest
   first, so truncation keeps a prefix; doing it only once the list grows
   to twice the capacity makes the cost amortized O(1) per emit. *)
let truncate t =
  match t.capacity with
  | Some cap when t.len > 2 * cap ->
      t.rev_entries <- take cap t.rev_entries;
      t.dropped <- t.dropped + (t.len - cap);
      t.len <- cap
  | _ -> ()

let emit t ~time ?process ~tag message =
  if t.enabled then begin
    t.rev_entries <- { time; tag; message; process } :: t.rev_entries;
    t.len <- t.len + 1;
    truncate t
  end

let entries t =
  (match t.capacity with
  | Some cap when t.len > cap ->
      (* Present at most [capacity] entries even between truncations. *)
      t.rev_entries <- take cap t.rev_entries;
      t.dropped <- t.dropped + (t.len - cap);
      t.len <- cap
  | _ -> ());
  List.rev t.rev_entries

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let clear t =
  t.rev_entries <- [];
  t.len <- 0;
  t.dropped <- 0

let capacity t = t.capacity

let set_capacity t capacity =
  (match capacity with
  | Some c when c <= 0 ->
      invalid_arg "Trace.set_capacity: capacity must be positive"
  | _ -> ());
  t.capacity <- capacity;
  truncate t

let dropped t = t.dropped

let pp_entry ppf e =
  match e.process with
  | None -> Format.fprintf ppf "[%8.2f] %-12s %s" e.time e.tag e.message
  | Some name ->
      Format.fprintf ppf "[%8.2f] %-12s <%s> %s" e.time e.tag name e.message
