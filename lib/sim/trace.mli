(** Recording of timestamped simulation events.

    Traces back the human-readable reproductions of the paper's Table 1 and
    Figure 1: protocol code emits tagged lines, experiments render them. *)

type entry = {
  time : float;
  tag : string;
  message : string;
  process : string option;
      (** name of the simulation process that emitted the entry, when it
          was spawned with [Engine.spawn ~name] *)
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity], if given, bounds the trace to the most recent [capacity]
    entries, kept in a preallocated ring (no allocation per emit); older
    ones are dropped and counted in {!dropped}.  Unbounded by default.  A
    bound keeps memory flat when millions of short engine runs each record
    a trace (schedule exploration). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val capacity : t -> int option

val set_capacity : t -> int option -> unit
(** Change the bound; shrinking truncates immediately. *)

val dropped : t -> int
(** Entries discarded by the capacity bound since the last {!clear}. *)

val emit : t -> time:float -> ?process:string -> tag:string -> string -> unit
(** Record one entry (no-op when disabled).  [process] attributes the
    entry to a named simulation process. *)

val entries : t -> entry list
(** Recorded entries in emission order — all of them when unbounded, the
    most recent [capacity] otherwise. *)

val find : t -> tag:string -> entry list
(** Entries carrying the given tag, in emission order. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
