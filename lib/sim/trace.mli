(** Recording of timestamped simulation events.

    Traces back the human-readable reproductions of the paper's Table 1 and
    Figure 1: protocol code emits tagged lines, experiments render them. *)

type entry = {
  time : float;
  tag : string;
  message : string;
  process : string option;
      (** name of the simulation process that emitted the entry, when it
          was spawned with [Engine.spawn ~name] *)
}

type t

val create : ?enabled:bool -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> time:float -> ?process:string -> tag:string -> string -> unit
(** Record one entry (no-op when disabled).  [process] attributes the
    entry to a named simulation process. *)

val entries : t -> entry list
(** All recorded entries in emission order. *)

val find : t -> tag:string -> entry list
(** Entries carrying the given tag, in emission order. *)

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
