type version = int

exception Version_bound_exceeded of { key : string; versions : version list }

type 'v body = Value of 'v | Tombstone
type 'v entry = { version : version; body : 'v body }

(* AVA3's central claim is "at most three live versions per item", so the
   item representation is three inline slots sorted by version, descending
   (slot 0 = newest).  Reads, writes and copy-forwards on a bounded store
   touch only these mutable fields: no list cells are allocated and no
   polymorphic comparisons run on the hot path.  Stores without a bound
   (the unbounded-MVCC baseline) spill entries older than slot 2 into
   [spill], also descending — the slots always hold the newest three.
   [Tombstone] doubles as the filler body of unused slots ([n] is the
   number of live slots). *)
type 'v item = {
  mutable n : int; (* live slots, 0..3 *)
  mutable v0 : version;
  mutable b0 : 'v body;
  mutable v1 : version;
  mutable b1 : 'v body;
  mutable v2 : version;
  mutable b2 : 'v body;
  mutable spill : 'v entry list; (* entries older than slot 2, descending *)
}

module String_set = Set.Make (String)

type 'v t = {
  bound : int option;
  gc_renumber : bool;
  items : (string, 'v item) Hashtbl.t;
  mutable key_order : String_set.t;
      (* ordered key index for range scans, kept in sync with [items] *)
  (* Version index (the structure the paper defers to MPL92 for): which
     items have an entry in each version.  Keeps garbage collection
     proportional to the touched items instead of the whole store. *)
  by_version : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable high_water : int;
  mutable gc_items_visited : int;
  (* Derived structures (lib/index) register here to observe mutations;
     [None] (the common case) costs one load-and-branch per write. *)
  mutable listener : (string -> unit) option;
}

let create ?bound ?(gc_renumber = true) () =
  (match bound with
  | Some b when b < 1 -> invalid_arg "Store.create: bound must be >= 1"
  | _ -> ());
  {
    bound;
    gc_renumber;
    items = Hashtbl.create 1024;
    key_order = String_set.empty;
    by_version = Hashtbl.create 8;
    high_water = 0;
    gc_items_visited = 0;
    listener = None;
  }

let set_listener t listener = t.listener <- listener

let notify t key =
  match t.listener with None -> () | Some f -> f key

let index_add t version key =
  let set =
    match Hashtbl.find_opt t.by_version version with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.replace t.by_version version s;
        s
  in
  Hashtbl.replace set key ()

let index_remove t version key =
  match Hashtbl.find_opt t.by_version version with
  | None -> ()
  | Some s ->
      Hashtbl.remove s key;
      if Hashtbl.length s = 0 then Hashtbl.remove t.by_version version

(* Re-derive an item's index membership after its entries changed. *)
let reindex t key ~before ~after =
  List.iter
    (fun v -> if not (List.mem v after) then index_remove t v key)
    before;
  List.iter
    (fun v -> if not (List.mem v before) then index_add t v key)
    after

let bound t = t.bound

let find_item t key = Hashtbl.find_opt t.items key

(* {2 Slot/list conversions — used by the cold paths (GC, snapshots)} *)

let entries_desc item =
  let tail = if item.n > 2 then { version = item.v2; body = item.b2 } :: item.spill else item.spill in
  let tail = if item.n > 1 then { version = item.v1; body = item.b1 } :: tail else tail in
  if item.n > 0 then { version = item.v0; body = item.b0 } :: tail else tail

(* Refill the slots from a descending entry list. *)
let set_entries item desc =
  item.n <- 0;
  item.spill <- [];
  item.b0 <- Tombstone;
  item.b1 <- Tombstone;
  item.b2 <- Tombstone;
  match desc with
  | [] -> ()
  | e0 :: rest -> (
      item.v0 <- e0.version;
      item.b0 <- e0.body;
      item.n <- 1;
      match rest with
      | [] -> ()
      | e1 :: rest -> (
          item.v1 <- e1.version;
          item.b1 <- e1.body;
          item.n <- 2;
          match rest with
          | [] -> ()
          | e2 :: rest ->
              item.v2 <- e2.version;
              item.b2 <- e2.body;
              item.n <- 3;
              item.spill <- rest))

let desc_compare a b = Int.compare b.version a.version

let live_count item = item.n + List.length item.spill

let versions_desc item = List.map (fun e -> e.version) (entries_desc item)

let versions_of_item item = List.rev (versions_desc item)

let exists_in t key v =
  match find_item t key with
  | None -> false
  | Some item ->
      (item.n > 0 && item.v0 = v)
      || (item.n > 1 && item.v1 = v)
      || (item.n > 2 && item.v2 = v)
      || List.exists (fun e -> e.version = v) item.spill

let max_version t key =
  match find_item t key with
  | None -> None
  | Some item -> if item.n = 0 then None else Some item.v0

let versions_of t key =
  match find_item t key with None -> [] | Some item -> versions_of_item item

let value_of = function Value value -> Some value | Tombstone -> None

let rec spill_le spill v =
  match spill with
  | [] -> None
  | e :: rest -> if e.version <= v then value_of e.body else spill_le rest v

let read_le t key v =
  match find_item t key with
  | None -> None
  | Some item ->
      (* Slots are descending: the first slot with version <= v wins. *)
      if item.n > 0 && item.v0 <= v then value_of item.b0
      else if item.n > 1 && item.v1 <= v then value_of item.b1
      else if item.n > 2 && item.v2 <= v then value_of item.b2
      else spill_le item.spill v

let rec spill_exact spill v =
  match spill with
  | [] -> None
  | e :: rest ->
      if e.version = v then value_of e.body
      else if e.version < v then None
      else spill_exact rest v

let read_exact t key v =
  match find_item t key with
  | None -> None
  | Some item ->
      if item.n > 0 && item.v0 = v then value_of item.b0
      else if item.n > 1 && item.v1 = v then value_of item.b1
      else if item.n > 2 && item.v2 = v then value_of item.b2
      else spill_exact item.spill v

let note_size t key item =
  let n = live_count item in
  if n > t.high_water then t.high_water <- n;
  match t.bound with
  | Some b when n > b ->
      raise (Version_bound_exceeded { key; versions = versions_of_item item })
  | _ -> ()

(* Insert a new entry at [version] (known absent), keeping slots and spill
   descending.  The common case — a bounded item with a free slot — only
   shifts the inline fields. *)
let insert_new item version body =
  if item.n > 0 && version > item.v0 then begin
    (* Newest: shift everything down one position. *)
    if item.n > 2 then
      item.spill <- { version = item.v2; body = item.b2 } :: item.spill;
    if item.n > 1 then begin
      item.v2 <- item.v1;
      item.b2 <- item.b1
    end;
    item.v1 <- item.v0;
    item.b1 <- item.b0;
    item.v0 <- version;
    item.b0 <- body;
    if item.n < 3 then item.n <- item.n + 1
  end
  else if item.n > 1 && version > item.v1 then begin
    if item.n > 2 then
      item.spill <- { version = item.v2; body = item.b2 } :: item.spill;
    item.v2 <- item.v1;
    item.b2 <- item.b1;
    item.v1 <- version;
    item.b1 <- body;
    if item.n < 3 then item.n <- item.n + 1
  end
  else if item.n > 2 && version > item.v2 then begin
    item.spill <- { version = item.v2; body = item.b2 } :: item.spill;
    item.v2 <- version;
    item.b2 <- body
  end
  else if item.n < 3 then begin
    (* Free slot at the tail. *)
    (match item.n with
    | 0 ->
        item.v0 <- version;
        item.b0 <- body
    | 1 ->
        item.v1 <- version;
        item.b1 <- body
    | _ ->
        item.v2 <- version;
        item.b2 <- body);
    item.n <- item.n + 1
  end
  else begin
    (* Older than every slot of a full item: sorted insert into the
       spill (unbounded stores, or the entry that triggers the bound
       check right after). *)
    let rec insert = function
      | [] -> [ { version; body } ]
      | e :: rest when e.version < version -> { version; body } :: e :: rest
      | e :: rest -> e :: insert rest
    in
    item.spill <- insert item.spill
  end

(* Insert or replace the entry for [version]. *)
let put_entry t key item version body =
  if item.n > 0 && item.v0 = version then item.b0 <- body
  else if item.n > 1 && item.v1 = version then item.b1 <- body
  else if item.n > 2 && item.v2 = version then item.b2 <- body
  else if List.exists (fun e -> e.version = version) item.spill then
    item.spill <-
      List.map
        (fun e -> if e.version = version then { version; body } else e)
        item.spill
  else insert_new item version body;
  index_add t version key;
  note_size t key item

let get_or_create_item t key =
  match find_item t key with
  | Some item -> item
  | None ->
      let item =
        {
          n = 0;
          v0 = 0;
          b0 = Tombstone;
          v1 = 0;
          b1 = Tombstone;
          v2 = 0;
          b2 = Tombstone;
          spill = [];
        }
      in
      Hashtbl.replace t.items key item;
      t.key_order <- String_set.add key t.key_order;
      item

let remove_item t key =
  Hashtbl.remove t.items key;
  t.key_order <- String_set.remove key t.key_order

(* [note_size] inside [put_entry] may raise [Version_bound_exceeded] after
   the entry is already in place, so on the listener path the notification
   must still fire — otherwise a derived index would silently diverge from
   the store it mirrors. *)
let put_entry_notified t key item version body =
  match t.listener with
  | None -> put_entry t key item version body
  | Some f ->
      Fun.protect
        ~finally:(fun () -> f key)
        (fun () -> put_entry t key item version body)

let write t key v value =
  let item = get_or_create_item t key in
  put_entry_notified t key item v (Value value)

let find_body item v =
  if item.n > 0 && item.v0 = v then Some item.b0
  else if item.n > 1 && item.v1 = v then Some item.b1
  else if item.n > 2 && item.v2 = v then Some item.b2
  else
    match List.find_opt (fun e -> e.version = v) item.spill with
    | Some e -> Some e.body
    | None -> None

let copy_forward t key ~src ~dst =
  match find_item t key with
  | None -> raise Not_found
  | Some item -> (
      match find_body item src with
      | None -> raise Not_found
      | Some body -> put_entry_notified t key item dst body)

let drop_item_if_empty t key item = if item.n = 0 then remove_item t key

(* An item whose only remaining entry is a tombstone can be removed outright
   (paper: once all earlier versions are gone, the deleted item itself may
   be removed). *)
let drop_lone_tombstone t key item =
  match (item.n, item.spill, item.b0) with
  | 1, [], Tombstone ->
      index_remove t item.v0 key;
      remove_item t key
  | _ -> drop_item_if_empty t key item

(* The tombstone is retained even when it is the item's only entry: an
   uncommitted transaction may still hold an undo image or need to copy the
   entry forward in moveToFuture.  The paper removes fully-deleted items
   when their earlier versions are garbage-collected, which is what {!gc}
   does. *)
let delete t key v =
  let item = get_or_create_item t key in
  put_entry_notified t key item v Tombstone

let remove_version t key v =
  match find_item t key with
  | None -> ()
  | Some item ->
      (if item.n > 0 && item.v0 = v then begin
         (* Shift newer slots up over the removed one. *)
         item.v0 <- item.v1;
         item.b0 <- item.b1;
         item.v1 <- item.v2;
         item.b1 <- item.b2;
         match item.spill with
         | e :: rest ->
             item.v2 <- e.version;
             item.b2 <- e.body;
             item.spill <- rest
         | [] ->
             item.b2 <- Tombstone;
             item.n <- item.n - 1
       end
       else if item.n > 1 && item.v1 = v then begin
         item.v1 <- item.v2;
         item.b1 <- item.b2;
         match item.spill with
         | e :: rest ->
             item.v2 <- e.version;
             item.b2 <- e.body;
             item.spill <- rest
         | [] ->
             item.b2 <- Tombstone;
             item.n <- item.n - 1
       end
       else if item.n > 2 && item.v2 = v then begin
         match item.spill with
         | e :: rest ->
             item.v2 <- e.version;
             item.b2 <- e.body;
             item.spill <- rest
         | [] ->
             item.b2 <- Tombstone;
             item.n <- item.n - 1
       end
       else item.spill <- List.filter (fun e -> e.version <> v) item.spill);
      index_remove t v key;
      drop_item_if_empty t key item;
      notify t key

let gc t ~collect ~query =
  let process key item =
    t.gc_items_visited <- t.gc_items_visited + 1;
    let entries = entries_desc item in
    let before = List.map (fun e -> e.version) entries in
    (* A reader at [query] resolves to the newest entry at or below it; the
       entries at or below [collect] are garbage iff such an entry exists
       strictly above [collect].  Checking for an incarnation at exactly
       [query] is not enough: when [query] has skipped versions (a lagging
       collector catching up), an entry strictly between [collect] and
       [query] protects the item, and renumbering a stale entry up to
       [query] would shadow it. *)
    (if List.exists (fun e -> e.version > collect && e.version <= query) entries
     then set_entries item (List.filter (fun e -> e.version > collect) entries)
     else if t.gc_renumber then begin
       (* Paper rule: no incarnation at [query] — renumber the newest entry
          at or below [collect] so readers of [query] still find the item. *)
       match List.find_opt (fun e -> e.version <= collect) entries with
       | None -> ()
       | Some e ->
           set_entries item
             (List.sort desc_compare
                ({ e with version = query }
                :: List.filter (fun x -> x.version > collect) entries))
     end
     else begin
       (* In-place rule: keep the newest entry <= collect (still the one
          readers of [query] resolve to) and drop any older ones. *)
       match List.find_opt (fun e -> e.version <= collect) entries with
       | None -> ()
       | Some newest ->
           set_entries item
             (List.filter
                (fun x -> x.version > collect || x.version = newest.version)
                entries)
     end);
    reindex t key ~before ~after:(versions_desc item);
    drop_lone_tombstone t key item;
    notify t key
  in
  (* The version index bounds the scan.  Under the paper's renumbering rule
     every item with an entry at or below [collect] is a candidate (each
     untouched item gets renumbered every round).  Under the in-place rule,
     steady state guarantees at most one entry below [collect] per item, so
     only items actually written in [collect] or [query] need work. *)
  let candidate_versions =
    Hashtbl.fold
      (fun v _ acc ->
        if
          (if t.gc_renumber then v <= collect
           else v = collect || v = query)
        then v :: acc
        else acc)
      t.by_version []
  in
  let keys = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt t.by_version v with
      | None -> ()
      | Some set -> Hashtbl.iter (fun k () -> Hashtbl.replace keys k ()) set)
    candidate_versions;
  Hashtbl.iter
    (fun k () ->
      match find_item t k with None -> () | Some item -> process k item)
    keys

let prune_below t ~keep =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.items [] in
  List.iter
    (fun key ->
      match find_item t key with
      | None -> ()
      | Some item ->
          let entries = entries_desc item in
          let before = List.map (fun e -> e.version) entries in
          (match List.find_opt (fun e -> e.version <= keep) entries with
          | None -> ()
          | Some newest_visible ->
              set_entries item
                (List.filter
                   (fun e -> e.version >= newest_visible.version)
                   entries));
          reindex t key ~before ~after:(versions_desc item);
          drop_lone_tombstone t key item;
          notify t key)
    keys

type 'v snapshot = (string * (version * 'v option) list) list

let snapshot t =
  Hashtbl.fold
    (fun key item acc ->
      let entries =
        List.rev_map (fun e -> (e.version, value_of e.body)) (entries_desc item)
      in
      (key, entries) :: acc)
    t.items []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let restore ?bound ?gc_renumber snap =
  let t = create ?bound ?gc_renumber () in
  List.iter
    (fun (key, entries) ->
      List.iter
        (fun (v, value) ->
          match value with
          | Some value -> write t key v value
          | None -> delete t key v)
        entries)
    snap;
  t

let snapshot_items snap = snap

let snapshot_of_items items =
  List.sort (fun (a, _) (b, _) -> String.compare a b) items

(* Range scan at a version: keys in [lo, hi] (inclusive), ascending, with
   their value as of [version]; deleted/absent-as-of-version keys are
   skipped. *)
let range t ~lo ~hi version =
  if hi < lo then []
  else begin
    (* Split twice to isolate [lo, hi]. *)
    let _, lo_present, ge_lo = String_set.split lo t.key_order in
    let le_hi, hi_present, _ = String_set.split hi ge_lo in
    let keys =
      (if lo_present then [ lo ] else [])
      @ String_set.elements le_hi
      @ if hi_present && hi <> lo then [ hi ] else []
    in
    List.filter_map
      (fun key ->
        match read_le t key version with
        | Some value -> Some (key, value)
        | None -> None)
      keys
  end

(* Full ordered scan at a version — the reference plan an index probe must
   match byte-for-byte (lib/index).  O(items) by construction. *)
let scan_all t version =
  String_set.fold
    (fun key acc ->
      match read_le t key version with
      | Some value -> (key, value) :: acc
      | None -> acc)
    t.key_order []
  |> List.rev

let item_count t = Hashtbl.length t.items

let iter f t =
  Hashtbl.iter
    (fun key item ->
      let summary =
        List.rev_map
          (fun e ->
            (e.version, match e.body with Value _ -> `Value | Tombstone -> `Tombstone))
          (entries_desc item)
      in
      f key summary)
    t.items

let live_versions t key =
  match find_item t key with None -> 0 | Some item -> live_count item

let max_live_versions_now t =
  Hashtbl.fold (fun _ item acc -> max acc (live_count item)) t.items 0

let high_water_versions t = t.high_water
let gc_items_visited t = t.gc_items_visited

let items_in_version t v =
  match Hashtbl.find_opt t.by_version v with
  | None -> 0
  | Some s -> Hashtbl.length s

let version_histogram t =
  let tbl = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ item ->
      let k = live_count item in
      let cur = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
      Hashtbl.replace tbl k (cur + 1))
    t.items;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
