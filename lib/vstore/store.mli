(** Versioned key-value storage engine.

    Each data item [x] exists in a small set of integer versions; the store
    answers the two index questions the AVA3 paper requires (§3): does [x]
    exist in version [v], and what is [maxV(x)]?  Deletions are modelled as
    tombstones inside a version (paper §3.1), and the Phase-3
    garbage-collection rules (drop the collected version, or renumber it to
    the query version when the item has no newer incarnation) are provided
    as a single {!gc} operation.

    The store can be created with a [bound] on live versions per item; AVA3
    uses [bound = 3] and the store raises {!Version_bound_exceeded} if a
    write would violate it — turning the paper's central claim into a
    runtime-checked invariant.  Baselines that need unlimited versions
    create unbounded stores. *)

type version = int

exception Version_bound_exceeded of { key : string; versions : version list }

type 'v t

val create : ?bound:int -> ?gc_renumber:bool -> unit -> 'v t
(** [bound], if given, is the maximum number of simultaneously live versions
    of any single item (AVA3: 3).

    [gc_renumber] (default [true]) selects the garbage-collection rule for
    items with no incarnation at the new query version: the paper's
    renumbering rule moves their old entry to the query version — touching
    {e every} live item each round — while [false] keeps the old entry in
    place (readers resolve to it anyway), letting the version index bound
    GC work by the items actually written.  Both rules are read-equivalent;
    experiment E8b measures the difference. *)

val bound : _ t -> int option

(** {1 Index queries} *)

val exists_in : _ t -> string -> version -> bool
(** Is there an entry (value or tombstone) for this key at exactly this
    version? *)

val max_version : _ t -> string -> version option
(** [maxV(x)]: greatest version in which the item exists, or [None] if the
    item is unknown. *)

val versions_of : _ t -> string -> version list
(** All live versions of the item, ascending. *)

(** {1 Reads} *)

val read_le : 'v t -> string -> version -> 'v option
(** [read_le t x v] is the value of [x] in the greatest existing version not
    exceeding [v] — the visibility rule used by both queries and update
    transactions.  [None] when the item is absent or deleted as of [v]. *)

val read_exact : 'v t -> string -> version -> 'v option
(** Value stored at exactly this version ([None] if absent or tombstone). *)

val range : 'v t -> lo:string -> hi:string -> version -> (string * 'v) list
(** Ordered scan: keys in [\[lo, hi\]] (inclusive) with their value as of
    [version], ascending; items deleted or absent as of that version are
    skipped.  O(log n + results) over the store's ordered key index. *)

val scan_all : 'v t -> version -> (string * 'v) list
(** Full ordered scan: every key with its value as of [version], ascending.
    O(items) by construction — the reference plan a secondary-index probe
    ({!Index.probe}) must match byte-for-byte at the same version. *)

(** {1 Writes} *)

val write : 'v t -> string -> version -> 'v -> unit
(** Create or overwrite the item's entry at [version]. *)

val copy_forward : 'v t -> string -> src:version -> dst:version -> unit
(** Duplicate the entry (value or tombstone) at [src] into [dst]; the
    update-protocol step "create y in version V(T) by copying y(maxV(y))".
    Raises [Not_found] if nothing exists at [src]. *)

val delete : 'v t -> string -> version -> unit
(** Tombstone the item in [version].  The tombstone persists (uncommitted
    transactions may still reference it); items reduced to a lone tombstone
    are physically removed at garbage-collection time, per paper §3.1. *)

val remove_version : _ t -> string -> version -> unit
(** Physically drop the entry at [version] (no-op if absent); used by
    moveToFuture to undo a transaction's effect on the old version. *)

(** {1 Change notification (derived structures)} *)

val set_listener : 'v t -> (string -> unit) option -> unit
(** Install (or clear) the store's single mutation listener: it is called
    with the affected key after every mutation that may change that key's
    live entries — {!write}, {!delete}, {!copy_forward}, {!remove_version},
    and each item processed by {!gc} or {!prune_below}.  Because every
    mutation path (update execution, moveToFuture, WAL replay, replication
    apply, checkpoint restore) funnels through those operations, a derived
    structure that re-derives the key's state on each call stays exactly
    consistent with the base store.  The no-listener path costs one
    load-and-branch. *)

(** {1 Snapshots (checkpoint support)} *)

type 'v snapshot
(** A deep, immutable copy of a store's contents. *)

val snapshot : 'v t -> 'v snapshot
val restore : ?bound:int -> ?gc_renumber:bool -> 'v snapshot -> 'v t
(** Rebuild a store (and its version index) from a snapshot. *)

val snapshot_items : 'v snapshot -> (string * (version * 'v option) list) list
(** Snapshot contents as data: per item, (version, value-or-tombstone)
    pairs ascending; [None] encodes a tombstone. *)

val snapshot_of_items : (string * (version * 'v option) list) list -> 'v snapshot

(** {1 Garbage collection (advancement Phase 3)} *)

val gc : _ t -> collect:version -> query:version -> unit
(** For every item: if it has an entry visible to a reader at [query]
    (version in [(collect, query]]), drop every entry with version
    [<= collect]; otherwise renumber its newest entry [<= collect] to
    [query] (and drop older ones).  Items left with only a tombstone and no
    earlier version are removed. *)

val prune_below : _ t -> keep:version -> unit
(** MVCC-style garbage collection: for every item, keep the newest entry
    with version [<= keep] (the one a reader at snapshot [keep] needs) and
    everything newer; drop all older entries.  Items reduced to a lone
    tombstone are removed. *)

(** {1 Iteration and statistics} *)

val item_count : _ t -> int
val iter : (string -> (version * [ `Value | `Tombstone ]) list -> unit) -> _ t -> unit

val live_versions : _ t -> string -> int
(** Number of live versions of the item (0 if unknown). *)

val max_live_versions_now : _ t -> int
(** Largest number of live versions any current item has. *)

val high_water_versions : _ t -> int
(** Largest number of live versions any item has ever had — the statistic
    that verifies "at most three versions" (paper §6.2 property 2a). *)

val gc_items_visited : _ t -> int
(** Cumulative count of items {!gc} has processed.  Garbage collection uses
    the store's version index, so this is proportional to the items that
    actually had entries in collected versions, not to the store size. *)

val items_in_version : _ t -> version -> int
(** Number of items with an entry at exactly this version (from the version
    index). *)

val version_histogram : _ t -> (int * int) list
(** [(k, n)] pairs: [n] items currently have [k] live versions. *)
