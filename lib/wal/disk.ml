type t = {
  force_latency : float;
  mutable busy_until : float;
  mutable forces : int;
  mutable records_forced : int;
}

let create ?(force_latency = 0.0) () =
  if force_latency < 0.0 then invalid_arg "Disk.create: negative force latency";
  { force_latency; busy_until = 0.0; forces = 0; records_forced = 0 }

let force_latency t = t.force_latency
let forces t = t.forces
let records_forced t = t.records_forced

(* The disk is a serial resource: concurrent forces queue behind each
   other ([busy_until] is the virtual time the head frees up), which is
   exactly why group commit pays — one force serves a whole batch instead
   of each committer queueing for its own.

   A force with zero latency completes synchronously — no engine
   interaction at all, so the zero-cost configuration schedules events
   exactly as a build without the disk model would. *)
let force t =
  t.forces <- t.forces + 1;
  if t.force_latency > 0.0 then begin
    let now = Sim.Engine.now (Sim.Engine.current ()) in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start +. t.force_latency in
    t.busy_until <- finish;
    Sim.Engine.sleep (finish -. now)
  end

(* Attribution happens after the force returns: with concurrent forces
   queued on the serial disk, the records a force {e newly} made durable
   are only known once it completes (an earlier force in the queue may
   have covered part of its range already). *)
let note_records t n = t.records_forced <- t.records_forced + n
