(** Simulated durable-storage cost model.

    The in-memory {!Log} is free to append to; what costs time on a real
    system is the {e force} — the synchronous write barrier a committing
    transaction waits on.  A [Disk] charges a configurable virtual-time
    latency per force and counts forces and records forced, so experiments
    can report both the latency the commit path pays and the I/O traffic
    batching saves.

    The disk is a {e serial} resource: concurrent forces queue behind one
    another.  That queueing is what makes group commit profitable — a
    burst of [n] independent committers pays [n] force latencies end to
    end, while one batched force serves them all. *)

type t

val create : ?force_latency:float -> unit -> t
(** [force_latency] (default [0.]) is the virtual time one force takes.
    With the default, {!force} is synchronous and touches no engine state,
    so a zero-latency disk is behaviourally invisible. *)

val force : t -> unit
(** Charge one force: queue behind any force already in progress, then
    sleep [force_latency] (must be called inside a process when the
    latency is nonzero).  The caller marks the log durable {e after} this
    returns and reports the records it newly covered via
    {!note_records}. *)

val note_records : t -> int -> unit
(** Attribute [n] newly-durable records to this disk's traffic counter.
    Called after {!force} returns so overlapping forces queued on the
    serial disk don't double-count the records an earlier force already
    covered. *)

val force_latency : t -> float
val forces : t -> int
val records_forced : t -> int
