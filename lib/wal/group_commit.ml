exception Crashed

type 'v t = {
  engine : Sim.Engine.t;
  disk : Disk.t;
  log : 'v Log.t;
  window : float;
  max_batch : int;
  ack_early : bool;
  on_force : (records:int -> unit) option;
  mutable waiters : ((unit, exn) result -> unit) list;
  mutable flush_scheduled : bool;
  mutable forcing : bool;
  mutable crashed : bool;
  mutable generation : int;
}

let create ~engine ~disk ~log ?(window = 0.0) ?(max_batch = 64)
    ?(ack_early = false) ?on_force () =
  if window < 0.0 then invalid_arg "Group_commit.create: negative window";
  if max_batch < 1 then invalid_arg "Group_commit.create: max_batch < 1";
  {
    engine;
    disk;
    log;
    window;
    max_batch;
    ack_early;
    on_force;
    waiters = [];
    flush_scheduled = false;
    forcing = false;
    crashed = false;
    generation = 0;
  }

let active t = t.window > 0.0 || Disk.force_latency t.disk > 0.0
let disk t = t.disk
let pending t = List.length t.waiters

(* Force everything currently in the log and note the work done.  Runs
   inside a process; with a nonzero disk latency the records become durable
   only when the sleep completes, and a crash during the sleep leaves them
   volatile. *)
let force_now t =
  let target = Log.length t.log in
  if target > Log.durable_length t.log then begin
    Disk.force t.disk;
    if not t.crashed then begin
      (* Records newly covered by THIS force: an earlier force queued
         ahead of us on the serial disk may have marked part of our range
         durable while we slept. *)
      let records = target - Log.durable_length t.log in
      if records > 0 then begin
        Log.mark_durable_to t.log target;
        Disk.note_records t.disk records;
        match t.on_force with Some f -> f ~records | None -> ()
      end
    end
  end

(* One batch: take every queued waiter, force once, release them all.
   Waiters that arrive while the disk is busy form the next batch, which
   is flushed immediately — the disk never idles with committers queued.
   Must run inside a process (the force sleeps). *)
let rec flush t =
  t.flush_scheduled <- false;
  if (not t.crashed) && (not t.forcing) && t.waiters <> [] then begin
    t.forcing <- true;
    t.generation <- t.generation + 1;
    let batch = List.rev t.waiters in
    t.waiters <- [];
    force_now t;
    t.forcing <- false;
    if t.crashed then
      (* The force never completed: the committers' records may be lost.
         Fail them so the (zombie) commit paths unwind. *)
      List.iter (fun k -> k (Error Crashed)) batch
    else begin
      List.iter (fun k -> k (Ok ())) batch;
      if t.waiters <> [] then flush t
    end
  end

(* The flusher is always a fresh scheduled process — [sync]'s register
   callback runs in the engine's handler context where sleeping is not
   allowed.  A full batch schedules an immediate flush; the earlier
   window timer then finds [flush_scheduled] cleared and stands down. *)
let schedule_flush t ~delay =
  t.flush_scheduled <- true;
  let gen = t.generation in
  Sim.Engine.schedule t.engine ~delay (fun () ->
      if t.flush_scheduled && gen = t.generation then flush t)

let sync t =
  if t.crashed then raise Crashed;
  let target = Log.length t.log in
  if Log.durable_length t.log >= target then ()
  else if t.window <= 0.0 then begin
    (* No batching: the committer forces its own records (classic one
       force per commit).  With a zero-latency disk this is synchronous
       and scheduling-invisible. *)
    force_now t;
    if t.crashed then raise Crashed
  end
  else begin
    let enqueue resume =
      (if t.ack_early then begin
         (* Deliberately broken variant for the model checker: acknowledge
            as soon as the record is queued, before any force.  The force
            still happens on schedule (a no-op waiter keeps the batch
            machinery honest) — but a crash in between loses an acked
            commit. *)
         t.waiters <- (fun _ -> ()) :: t.waiters;
         resume (Ok ())
       end
       else t.waiters <- resume :: t.waiters);
      if List.length t.waiters >= t.max_batch && not t.forcing then
        schedule_flush t ~delay:0.0
      else if (not t.flush_scheduled) && not t.forcing then
        schedule_flush t ~delay:t.window
    in
    match Sim.Engine.suspend enqueue with
    | Ok () -> ()
    | Error e -> raise e
  end

let crash t =
  if not t.crashed then begin
    t.crashed <- true;
    t.generation <- t.generation + 1;
    let orphans = List.rev t.waiters in
    t.waiters <- [];
    (* Waiters parked in the queue (the force they were waiting for never
       started) lose their records with the crash; release them so their
       processes can unwind.  Waiters held by an in-flight [flush] are
       failed by the flush itself when its force returns. *)
    List.iter (fun k -> k (Error Crashed)) orphans
  end
