(** Group commit: one disk force covers a batch of committers.

    A committing subtransaction appends its Commit record to the {!Log} and
    then calls {!sync}, which blocks until the record is durable.  With a
    batching window, the first waiter arms a flush timer; every committer
    that arrives within the window (or until {!create}'s [max_batch] is
    reached, whichever is first) is released by the {e same} force.  The
    classic trade: each commit waits up to a window longer, but an
    [n]-transaction batch pays one force instead of [n].

    With a zero window, {!sync} forces immediately on the caller's own
    time; with a zero window {e and} a zero-latency disk it is synchronous
    and scheduling-invisible, so the default configuration behaves exactly
    like a build without the durability model. *)

type 'v t

exception Crashed
(** Raised from {!sync} when the node crashed before the caller's records
    reached the disk — the commit acknowledgement must not escape. *)

val create :
  engine:Sim.Engine.t ->
  disk:Disk.t ->
  log:'v Log.t ->
  ?window:float ->
  ?max_batch:int ->
  ?ack_early:bool ->
  ?on_force:(records:int -> unit) ->
  unit ->
  'v t
(** [window] (default [0.]) is how long the first committer of a batch
    waits for company; [max_batch] (default [64]) flushes a full batch
    early.  [on_force] is invoked after every completed force with the
    number of records it covered (metrics hook).

    [ack_early] (default [false]) builds the {e deliberately broken}
    variant used by the [group-commit-crash-buggy] model-checking
    scenario: {!sync} returns at enqueue time, before the force.  Never
    enable it outside that test. *)

val sync : 'v t -> unit
(** Block (inside a process) until every record currently in the log is
    durable.  Raises {!Crashed} if the node crashes first. *)

val crash : _ t -> unit
(** The node died: fail every parked waiter with {!Crashed} and refuse all
    future {!sync}s.  The caller separately discards the log's volatile
    tail ({!Log.drop_volatile}). *)

val active : _ t -> bool
(** Whether the durability model costs anything ([window > 0] or a nonzero
    disk force latency).  When [false], crashes must not drop log records
    — the whole log behaves as synchronously durable, preserving the
    pre-durability-model semantics. *)

val disk : _ t -> Disk.t

val pending : _ t -> int
(** Committers currently parked waiting for a force. *)
