type 'v t = {
  mutable rev : 'v Record.t list;
  mutable count : int;
  mutable durable : int;
}

let create () = { rev = []; count = 0; durable = 0 }

let append t r =
  t.rev <- r :: t.rev;
  t.count <- t.count + 1

let length t = t.count
let records t = List.rev t.rev
let records_rev t = t.rev
let fold_rev f init t = List.fold_left f init t.rev

let slice t ~from_ ~upto =
  if from_ < 0 || upto > t.count || from_ > upto then
    invalid_arg "Log.slice: bad range";
  (* [rev] is newest-first: drop the tail beyond [upto], keep
     [upto - from_] records, and flip back to append order. *)
  let rec drop n l =
    if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
  in
  let rec take n l acc =
    if n = 0 then acc
    else match l with [] -> acc | r :: tl -> take (n - 1) tl (r :: acc)
  in
  take (upto - from_) (drop (t.count - upto) t.rev) []

let truncate t =
  t.rev <- [];
  t.count <- 0;
  t.durable <- 0

let durable_length t = t.durable

let mark_durable_to t n =
  if n > t.count then invalid_arg "Log.mark_durable_to: beyond end of log";
  if n > t.durable then t.durable <- n

let mark_all_durable t = t.durable <- t.count

let drop_volatile t =
  let dropped = t.count - t.durable in
  if dropped > 0 then begin
    let rec drop n l =
      if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    t.rev <- drop dropped t.rev;
    t.count <- t.durable
  end;
  dropped
