(** Append-only write-ahead log for one node.

    The log is kept in memory (the simulated node's "disk"): appends are
    counted so experiments can report log traffic, and {!Recovery} replays
    the log after a simulated crash.

    The log tracks a {e durable prefix}: appends land in the volatile tail
    and become durable only when a force ({!mark_durable_to}, driven by
    {!Disk}/{!Group_commit}) covers them.  A simulated crash discards the
    volatile tail ({!drop_volatile}); recovery then replays only what a real
    disk would have retained. *)

type 'v t

val create : unit -> 'v t

val append : 'v t -> 'v Record.t -> unit

val length : _ t -> int

val records : 'v t -> 'v Record.t list
(** In append order. *)

val records_rev : 'v t -> 'v Record.t list
(** Newest first — the direction moveToFuture walks. *)

val fold_rev : ('a -> 'v Record.t -> 'a) -> 'a -> 'v t -> 'a
(** Fold newest-to-oldest. *)

val slice : 'v t -> from_:int -> upto:int -> 'v Record.t list
(** Records with 0-based indexes [from_ .. upto - 1], in append order —
    the shape a log-shipping cursor sends to a replica.  Raises
    [Invalid_argument] on a range outside the log. *)

val truncate : _ t -> unit
(** Discard all records (used after a checkpoint in long experiments so logs
    do not grow without bound).  Resets the durable prefix to empty. *)

(** {1 Durability} *)

val durable_length : _ t -> int
(** Number of leading records known to be on disk. *)

val mark_durable_to : _ t -> int -> unit
(** Extend the durable prefix to cover the first [n] records (a completed
    disk force).  Regressions are ignored; [n] beyond the end of the log
    raises [Invalid_argument]. *)

val mark_all_durable : _ t -> unit
(** Mark every current record durable — synchronous-write semantics, used
    for bootstrap loads and checkpoints. *)

val drop_volatile : _ t -> int
(** Simulate the crash: discard every record beyond the durable prefix and
    return how many were lost.  What remains is exactly what recovery may
    read. *)
