type 'v t =
  | Begin of { txn : int; version : int }
  | Update of { txn : int; key : string; value : 'v option }
  | Commit of { txn : int; final_version : int }
  | Rollback of { txn : int; keep : int }
  | Abort of { txn : int }
  | Advance_update of int
  | Advance_query of int
  | Collect of { collect : int; query : int }
  | Checkpoint of {
      items : (string * (int * 'v option) list) list;
      u : int;
      q : int;
      g : int;
    }

let txn_of = function
  | Begin { txn; _ }
  | Update { txn; _ }
  | Commit { txn; _ }
  | Rollback { txn; _ }
  | Abort { txn } ->
      Some txn
  | Advance_update _ | Advance_query _ | Collect _ | Checkpoint _ -> None

let pp pp_v ppf = function
  | Begin { txn; version } -> Format.fprintf ppf "begin(T%d, v%d)" txn version
  | Update { txn; key; value = Some v } ->
      Format.fprintf ppf "update(T%d, %s := %a)" txn key pp_v v
  | Update { txn; key; value = None } ->
      Format.fprintf ppf "update(T%d, delete %s)" txn key
  | Commit { txn; final_version } ->
      Format.fprintf ppf "commit(T%d, v%d)" txn final_version
  | Rollback { txn; keep } ->
      Format.fprintf ppf "rollback(T%d, keep %d)" txn keep
  | Abort { txn } -> Format.fprintf ppf "abort(T%d)" txn
  | Advance_update v -> Format.fprintf ppf "advance-u(%d)" v
  | Advance_query v -> Format.fprintf ppf "advance-q(%d)" v
  | Collect { collect; query } ->
      Format.fprintf ppf "collect(v%d, q=%d)" collect query
  | Checkpoint { items; u; q; g } ->
      Format.fprintf ppf "checkpoint(%d items, u=%d q=%d g=%d)"
        (List.length items) u q g
