(** Log record types for a node's write-ahead log.

    Only redo information is logged (paper §4: undo records of uncommitted
    transactions stay in main memory, as in BPR+96).  The commit record
    carries the transaction's final version number so that, during recovery,
    its updates are applied to the proper version. *)

type 'v t =
  | Begin of { txn : int; version : int }
      (** Subtransaction [txn] started with starting version [version]. *)
  | Update of { txn : int; key : string; value : 'v option }
      (** Redo record; [None] encodes a deletion. *)
  | Commit of { txn : int; final_version : int }
  | Rollback of { txn : int; keep : int }
      (** Savepoint rollback: discard all but the first [keep] of [txn]'s
          update records.  Redo-only counterpart of the session layer's
          partial abort — replay truncates the pending write list the same
          way the live path discards the in-memory workspace suffix. *)
  | Abort of { txn : int }
  | Advance_update of int  (** Node set its update version number. *)
  | Advance_query of int  (** Node set its query version number. *)
  | Collect of { collect : int; query : int }
      (** Node garbage-collected version [collect] with query version
          [query] (needed to replay the renumbering rule). *)
  | Checkpoint of {
      items : (string * (int * 'v option) list) list;
          (** full store contents; [None] encodes a tombstone *)
      u : int;
      q : int;
      g : int;
    }
      (** Quiescent checkpoint: recovery restarts from here instead of
          replaying history from the beginning.  Taken only when no update
          transaction is active at the node (the paper's remark about
          coordinating checkpoints, after BPR+96). *)

val txn_of : _ t -> int option
(** Transaction a record belongs to, if any. *)

val pp : (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v t -> unit
